//! `xsq` — command-line streaming XPath over XML files or stdin.
//!
//! ```text
//! xsq [OPTIONS] QUERY [FILE...]        evaluate QUERY (stdin if no FILE)
//! xsq --queries FILE [FILE...]         evaluate a whole query set (one
//!                                      query per line) in a single pass,
//!                                      results tagged with the query index
//! xsq multi [--shard N] (QUERY | --queries QFILE) FILE...
//!                                      evaluate over a document corpus on
//!                                      an N-worker pool (0 = one per CPU),
//!                                      output merged in document order and
//!                                      tagged doc<TAB>query<TAB>value
//! xsq --dataset-stats FILE...          print Fig. 15-style statistics
//! xsq --dump QUERY                     print the compiled HPDT
//! xsq analyze [--json] [--dot] [--dtd FILE] QUERY
//!                                      static analysis: verifier
//!                                      diagnostics, dead-state pruning,
//!                                      buffer-necessity classes, engine
//!                                      auto-selection, and (with --dtd)
//!                                      the static memory bound with its
//!                                      derivation; exits nonzero if any
//!                                      diagnostic is an error
//!
//! Options:
//!   --engine NAME   xsq-f (default) | xsq-nc | saxon | galax | xmltk |
//!                   joost | xqengine
//!   --stats         print events / results / memory / time to stderr
//!   --running       for aggregations, print running updates as they occur
//!   --quiet         suppress result output (timing runs)
//!   --json          emit results as JSON lines ({"result": …})
//!   --schema-optimize  use the document's internal DTD (if any) to
//!                   rewrite provably-child closures and skip provably
//!                   empty queries
//! xsq --dot QUERY                      print the HPDT as Graphviz
//! xsq serve [--addr A] [--model eventloop|threaded] [--workers N]
//!           [--loop-threads N] [--dtd FILE] [--max-bound K]
//!           [--broadcast] [--broadcast-queue N]
//!           [--broadcast-policy block|drop]
//!                                      streaming query server: framed
//!                                      SUB/FEED protocol over TCP; runs
//!                                      until stdin reaches EOF, then
//!                                      drains and exits. --max-bound K
//!                                      rejects subscriptions whose
//!                                      static memory bound (proven
//!                                      against --dtd) exceeds K
//!                                      buffered items. --broadcast: one
//!                                      feeder fans one stream through a
//!                                      shared index to every subscriber
//! xsq connect [--addr A] [--chunk N] [--verify]
//!             (QUERY | --queries QFILE) [FILE...]
//!                                      replay a corpus over the wire;
//!                                      --verify byte-compares the replies
//!                                      against the sequential driver
//! xsq connect --broadcast-feed [--wait-subs N] FILE...
//!                                      claim the broadcast feeder role
//! xsq connect --broadcast-sub --expect-docs N [--verify]
//!             (QUERY | --queries QFILE) [FILE...]
//!                                      subscribe to a broadcast stream
//! xsq transform [--engine stream|dom] [--chunk N] [--verify]
//!               RULES.xfm [FILE...]    rewrite documents under .xfm
//!                                      template rules; stream engine is
//!                                      one-pass push-mode, dom is the
//!                                      two-pass reference; --verify
//!                                      byte-compares the two
//! ```
//!
//! Exit codes: 0 success, 1 analysis found errors, 2 usage, 3 I/O,
//! 4 query compile error, 5 evaluation error, 6 protocol/server error,
//! 7 --verify mismatch.

use std::io::{BufReader, Read, Write};
use std::process::ExitCode;
use std::time::{Duration, Instant};

use xsq::baselines::{GalaxLike, JoostLike, SaxonLike, XmltkLike, XqEngineLike};
use xsq::engine::{
    run_sharded_with, QueryId, QuerySet, QuerySink, ShardOptions, Sink, XPathEngine, XsqEngine,
};

/// Distinct exit codes per error class, so scripts (and CI) can tell
/// a bad query from a dead server from an unreadable file.
const EXIT_USAGE: u8 = 2;
const EXIT_IO: u8 = 3;
const EXIT_QUERY: u8 = 4;
const EXIT_RUN: u8 = 5;
const EXIT_PROTOCOL: u8 = 6;
const EXIT_VERIFY: u8 = 7;

struct Options {
    engine: String,
    queries: Option<String>,
    /// Worker threads for `xsq multi` (0 = one per CPU).
    shard: usize,
    /// Bind/connect address for `serve` / `connect`.
    addr: String,
    /// Accept workers for `serve` (0 = one per CPU).
    workers: usize,
    /// FEED chunk size for `connect`.
    chunk: usize,
    /// Idle timeout in seconds for `serve`.
    idle_timeout: f64,
    /// `connect`: byte-compare replies against the sequential driver.
    verify: bool,
    stats: bool,
    running: bool,
    quiet: bool,
    json: bool,
    dump: bool,
    dot: bool,
    trace: bool,
    schema_optimize: bool,
    dataset_stats: bool,
    analyze: bool,
    dtd: Option<String>,
    /// `serve`: per-subscription static-bound budget (buffered items).
    max_bound: Option<u64>,
    /// `serve`: serving model (`eventloop` default on Unix, `threaded`).
    model: Option<String>,
    /// `serve`: event-loop shard count.
    loop_threads: usize,
    /// `serve`: broadcast mode (one feeder, shared index, fan-out).
    broadcast: bool,
    /// `serve`: per-subscriber broadcast queue bound (frames).
    broadcast_queue: usize,
    /// `serve`: overflow policy, `block` (default) or `drop`.
    broadcast_policy: String,
    /// `connect`: claim the broadcast feeder role and push the corpus.
    broadcast_feed: bool,
    /// `connect`: subscribe to a broadcast stream instead of feeding.
    broadcast_sub: bool,
    /// `connect --broadcast-sub`: documents to render before detaching.
    expect_docs: usize,
    /// `connect --broadcast-feed`: wait until N subscribers attached.
    wait_subs: Option<u64>,
    positional: Vec<String>,
}

fn parse_args() -> Result<Options, String> {
    let mut o = Options {
        engine: "xsq-f".into(),
        queries: None,
        shard: 0,
        addr: "127.0.0.1:7878".into(),
        workers: 0,
        chunk: 64 * 1024,
        idle_timeout: 30.0,
        verify: false,
        stats: false,
        running: false,
        quiet: false,
        json: false,
        dump: false,
        dot: false,
        trace: false,
        schema_optimize: false,
        dataset_stats: false,
        analyze: false,
        dtd: None,
        max_bound: None,
        model: None,
        loop_threads: 1,
        broadcast: false,
        broadcast_queue: 1024,
        broadcast_policy: "block".into(),
        broadcast_feed: false,
        broadcast_sub: false,
        expect_docs: 1,
        wait_subs: None,
        positional: Vec::new(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--engine" => {
                o.engine = args.next().ok_or("--engine needs a name")?;
            }
            "--queries" => {
                o.queries = Some(args.next().ok_or("--queries needs a file")?);
            }
            "--shard" => {
                o.shard = args
                    .next()
                    .ok_or("--shard needs a worker count")?
                    .parse()
                    .map_err(|_| "--shard needs a number (0 = one per CPU)".to_string())?;
            }
            "--addr" => {
                o.addr = args.next().ok_or("--addr needs HOST:PORT")?;
            }
            "--workers" => {
                o.workers = args
                    .next()
                    .ok_or("--workers needs a thread count")?
                    .parse()
                    .map_err(|_| "--workers needs a number (0 = one per CPU)".to_string())?;
            }
            "--chunk" => {
                let n: usize = args
                    .next()
                    .ok_or("--chunk needs a byte count")?
                    .parse()
                    .map_err(|_| "--chunk needs a positive number".to_string())?;
                if n == 0 {
                    return Err("--chunk needs a positive number".into());
                }
                o.chunk = n;
            }
            "--idle-timeout" => {
                o.idle_timeout = args
                    .next()
                    .ok_or("--idle-timeout needs seconds")?
                    .parse()
                    .map_err(|_| "--idle-timeout needs seconds (may be fractional)".to_string())?;
            }
            "--verify" => o.verify = true,
            "--stats" => o.stats = true,
            "--running" => o.running = true,
            "--quiet" => o.quiet = true,
            "--json" => o.json = true,
            "--dump" => o.dump = true,
            "--dot" => o.dot = true,
            "--trace" => o.trace = true,
            "--schema-optimize" => o.schema_optimize = true,
            "--dataset-stats" => o.dataset_stats = true,
            "--analyze" => o.analyze = true,
            "--dtd" => {
                o.dtd = Some(args.next().ok_or("--dtd needs a file")?);
            }
            "--max-bound" => {
                o.max_bound = Some(
                    args.next()
                        .ok_or("--max-bound needs an item count")?
                        .parse()
                        .map_err(|_| "--max-bound needs a non-negative number".to_string())?,
                );
            }
            "--model" => {
                o.model = Some(args.next().ok_or("--model needs eventloop or threaded")?);
            }
            "--loop-threads" => {
                let n: usize = args
                    .next()
                    .ok_or("--loop-threads needs a thread count")?
                    .parse()
                    .map_err(|_| "--loop-threads needs a positive number".to_string())?;
                if n == 0 {
                    return Err("--loop-threads needs a positive number".into());
                }
                o.loop_threads = n;
            }
            "--broadcast" => o.broadcast = true,
            "--broadcast-queue" => {
                let n: usize = args
                    .next()
                    .ok_or("--broadcast-queue needs a frame count")?
                    .parse()
                    .map_err(|_| "--broadcast-queue needs a positive number".to_string())?;
                if n == 0 {
                    return Err("--broadcast-queue needs a positive number".into());
                }
                o.broadcast_queue = n;
            }
            "--broadcast-policy" => {
                o.broadcast_policy = args
                    .next()
                    .ok_or("--broadcast-policy needs block or drop")?;
            }
            "--broadcast-feed" => o.broadcast_feed = true,
            "--broadcast-sub" => o.broadcast_sub = true,
            "--expect-docs" => {
                o.expect_docs = args
                    .next()
                    .ok_or("--expect-docs needs a document count")?
                    .parse()
                    .map_err(|_| "--expect-docs needs a number".to_string())?;
            }
            "--wait-subs" => {
                o.wait_subs = Some(
                    args.next()
                        .ok_or("--wait-subs needs a subscriber count")?
                        .parse()
                        .map_err(|_| "--wait-subs needs a number".to_string())?,
                );
            }
            "--help" | "-h" => return Err(String::new()),
            _ => o.positional.push(a),
        }
    }
    Ok(o)
}

struct StdoutSink {
    quiet: bool,
    running: bool,
    json: bool,
    results: u64,
}

/// Minimal JSON string escaping (the result values are arbitrary text).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

impl Sink for StdoutSink {
    fn result(&mut self, value: &str) {
        self.results += 1;
        if self.quiet {
            return;
        }
        if self.json {
            println!("{{\"result\":\"{}\"}}", json_escape(value));
        } else {
            println!("{value}");
        }
    }
    fn aggregate_update(&mut self, value: f64) {
        if !self.running || self.quiet {
            return;
        }
        if self.json {
            println!("{{\"running\":{value}}}");
        } else {
            println!("# running: {value}");
        }
    }
}

/// Shared sink for `--queries` mode: every line says which query matched.
struct QueryStdoutSink {
    quiet: bool,
    running: bool,
    json: bool,
    results: u64,
}

impl QuerySink for QueryStdoutSink {
    fn result(&mut self, id: QueryId, value: &str) {
        self.results += 1;
        if self.quiet {
            return;
        }
        if self.json {
            println!(
                "{{\"query\":{},\"result\":\"{}\"}}",
                id.0,
                json_escape(value)
            );
        } else {
            println!("{}\t{}", id.0, value);
        }
    }

    fn aggregate_update(&mut self, id: QueryId, value: f64) {
        if !self.running || self.quiet {
            return;
        }
        if self.json {
            println!("{{\"query\":{},\"running\":{value}}}", id.0);
        } else {
            println!("# running[{}]: {value}", id.0);
        }
    }
}

/// `--queries FILE` mode: the whole standing query set evaluates in one
/// pass per document via the query index (prefix-shared compilation,
/// dispatch-indexed event routing).
fn run_query_file(path: &str, opts: &Options) -> ExitCode {
    let engine = match opts.engine.as_str() {
        "xsq-f" => XsqEngine::full(),
        "xsq-nc" => XsqEngine::no_closure(),
        other => return usage(&format!("--queries runs on xsq-f or xsq-nc, not '{other}'")),
    };
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => return fail_io(&format!("reading {path}: {e}")),
    };
    let queries: Vec<&str> = text
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .collect();
    if queries.is_empty() {
        return fail_query(&format!("{path} contains no queries"));
    }
    let set = match QuerySet::compile(engine, &queries) {
        Ok(s) => s,
        Err((i, e)) => return fail_query(&format!("query {} ({}): {e}", i + 1, queries[i])),
    };

    let files: Vec<Option<String>> = if opts.positional.is_empty() {
        vec![None]
    } else {
        opts.positional.iter().cloned().map(Some).collect()
    };
    for file in files {
        let t0 = Instant::now();
        let mut index = set.index();
        let mut sink = QueryStdoutSink {
            quiet: opts.quiet,
            running: opts.running,
            json: opts.json,
            results: 0,
        };
        let run = match &file {
            None => index.run_reader(BufReader::new(std::io::stdin()), &mut sink),
            Some(p) => match std::fs::File::open(p) {
                Ok(f) => index.run_reader(BufReader::new(f), &mut sink),
                Err(e) => return fail_io(&format!("reading {p}: {e}")),
            },
        };
        match run {
            Err(e) => return fail_run(&e.to_string()),
            Ok(stats) => {
                if opts.stats {
                    eprintln!(
                        "# {}: {} results in {:.1} ms [{} queries, {} groups] engine={} \
                         events={} touches={} (loop path: {})",
                        file.as_deref().unwrap_or("<stdin>"),
                        sink.results,
                        t0.elapsed().as_secs_f64() * 1e3,
                        set.len(),
                        set.group_count(),
                        opts.engine,
                        stats.events,
                        index.touches(),
                        stats.events * set.len() as u64,
                    );
                }
            }
        }
    }
    ExitCode::SUCCESS
}

/// `xsq multi [--shard N] (QUERY | --queries QFILE) FILE...`: evaluate
/// the query (or query set) over a corpus of documents on a worker pool,
/// results merged back in global document order. Each output line is
/// tagged with the document index and the query index. `--shard 0` (the
/// default) sizes the pool to the machine; `--shard 1` is the sequential
/// driver with identical output.
fn run_multi(opts: &Options) -> ExitCode {
    let engine = match opts.engine.as_str() {
        "xsq-f" => XsqEngine::full(),
        "xsq-nc" => XsqEngine::no_closure(),
        other => return usage(&format!("multi runs on xsq-f or xsq-nc, not '{other}'")),
    };
    let rest = &opts.positional[1..];
    let (query_text, files): (String, &[String]) = match &opts.queries {
        Some(qfile) => match std::fs::read_to_string(qfile) {
            Ok(t) => (t, rest),
            Err(e) => return fail_io(&format!("reading {qfile}: {e}")),
        },
        None => match rest.split_first() {
            Some((q, files)) => (q.clone(), files),
            None => return usage("multi needs a QUERY (or --queries QFILE)"),
        },
    };
    let queries: Vec<&str> = query_text
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .collect();
    if queries.is_empty() {
        return usage("multi needs at least one query");
    }
    if files.is_empty() {
        return usage("multi needs at least one FILE");
    }
    let set = match QuerySet::compile(engine, &queries) {
        Ok(s) => s,
        Err((i, e)) => return fail_query(&format!("query {} ({}): {e}", i + 1, queries[i])),
    };
    let mut docs = Vec::with_capacity(files.len());
    for f in files {
        match std::fs::read(f) {
            Ok(d) => docs.push(d),
            Err(e) => return fail_io(&format!("reading {f}: {e}")),
        }
    }

    let t0 = Instant::now();
    let shard_opts = ShardOptions::with_workers(opts.shard);
    let mut results = 0u64;
    let mut events = 0u64;
    let run = run_sharded_with(&set, &docs, &shard_opts, |di, out| {
        events += out.events;
        results += out.results.len() as u64;
        if opts.quiet {
            return;
        }
        if opts.running {
            for (id, v) in &out.updates {
                if opts.json {
                    println!("{{\"doc\":{di},\"query\":{},\"running\":{v}}}", id.0);
                } else {
                    println!("# running[{di}:{}]: {v}", id.0);
                }
            }
        }
        for (id, v) in &out.results {
            if opts.json {
                println!(
                    "{{\"doc\":{di},\"query\":{},\"result\":\"{}\"}}",
                    id.0,
                    json_escape(v)
                );
            } else {
                println!("{di}\t{}\t{v}", id.0);
            }
        }
    });
    match run {
        Err(e) => fail_run(&e.to_string()),
        Ok(workers) => {
            if opts.stats {
                let secs = t0.elapsed().as_secs_f64();
                let corpus_bytes: usize = docs.iter().map(Vec::len).sum();
                eprintln!(
                    "# multi: {} docs, {} results in {:.1} ms [{} queries, {} groups] \
                     engine={} workers={} events={} ingest={:.1} MB/s \
                     events/s={:.0} kernel={}",
                    docs.len(),
                    results,
                    secs * 1e3,
                    set.len(),
                    set.group_count(),
                    opts.engine,
                    workers,
                    events,
                    corpus_bytes as f64 / (1024.0 * 1024.0) / secs,
                    events as f64 / secs,
                    xsq::xml::scan::active_kernel(),
                );
            }
            ExitCode::SUCCESS
        }
    }
}

/// Render a [`BoundAnalysis`] as the `"bound"` JSON object of
/// `xsq analyze --json` — kind, count, display form, and the full
/// derivation trace (rule names are stable identifiers).
fn bound_json(b: &xsq::engine::BoundAnalysis) -> String {
    use xsq::engine::MemoryBound;
    let mut obj = format!("{{\"kind\":\"{}\"", b.bound.label());
    match &b.bound {
        MemoryBound::Zero => obj.push_str(",\"items\":0"),
        MemoryBound::Items(k) => obj.push_str(&format!(",\"items\":{k}")),
        MemoryBound::PerDepth(k) => obj.push_str(&format!(",\"items_per_level\":{k}")),
        MemoryBound::Unbounded { reason, span } => {
            obj.push_str(&format!(",\"reason\":\"{}\"", json_escape(reason)));
            if !span.is_empty() {
                obj.push_str(&format!(",\"span\":[{},{}]", span.start, span.end));
            }
        }
    }
    obj.push_str(&format!(
        ",\"display\":\"{}\"",
        json_escape(&b.bound.to_string())
    ));
    let trace: Vec<String> = b
        .trace
        .iter()
        .map(|s| {
            format!(
                "{{\"rule\":\"{}\",\"detail\":\"{}\"}}",
                s.rule,
                json_escape(&s.detail)
            )
        })
        .collect();
    obj.push_str(&format!(",\"derivation\":[{}]", trace.join(",")));
    if !b.elidable_predicates.is_empty() {
        let idx: Vec<String> = b
            .elidable_predicates
            .iter()
            .map(|i| i.to_string())
            .collect();
        obj.push_str(&format!(",\"elidable_predicates\":[{}]", idx.join(",")));
    }
    obj.push('}');
    obj
}

/// `xsq analyze QUERY`: run the full static-analysis pipeline (verify,
/// lint, prune, buffer classification, determinism proof) and report it.
/// Exit status is nonzero iff any diagnostic is an error — the smoke-test
/// contract CI relies on.
fn run_analyze(query: &str, opts: &Options) -> ExitCode {
    let parsed = match xsq::xpath::parse_query(query) {
        Ok(q) => q,
        Err(e) => return fail_query(&e.to_string()),
    };
    // Queries outside the HPDT surface (reverse axes, positional
    // predicates) can't build a transducer; report the streamability
    // diagnostics instead of a bare compile error — spanned, never a
    // panic. Errors exit 1 like any other analysis failure;
    // transform-only findings alone exit 0 (the query is fine for
    // `xsq transform`, just not for selection).
    if !xsq::xpath::streamability(&parsed).hpdt_supported() {
        let mut diags = xsq::engine::analyze::lint_streamability(&parsed);
        diags.extend(xsq::engine::analyze::lint_query(&parsed));
        let errors = xsq::engine::analyze::has_errors(&diags);
        if opts.json {
            let rendered: Vec<String> = diags
                .iter()
                .map(|d| {
                    let mut obj = format!(
                        "{{\"severity\":\"{}\",\"code\":\"{}\",\"message\":\"{}\"",
                        d.severity.label(),
                        d.code,
                        json_escape(&d.message)
                    );
                    if let Some(s) = d.step {
                        obj.push_str(&format!(",\"step\":{s}"));
                    }
                    obj.push('}');
                    obj
                })
                .collect();
            println!(
                "{{\"query\":\"{}\",\"engine\":null,\"diagnostics\":[{}]}}",
                json_escape(query),
                rendered.join(","),
            );
        } else {
            println!("query:         {query}");
            println!("engine:        none (outside the HPDT surface)");
            println!("diagnostics:");
            for d in &diags {
                println!("  {d}");
            }
        }
        return if errors {
            ExitCode::FAILURE
        } else {
            ExitCode::SUCCESS
        };
    }
    let dtd = match &opts.dtd {
        Some(path) => {
            let text = match std::fs::read_to_string(path) {
                Ok(t) => t,
                Err(e) => return fail_io(&format!("reading {path}: {e}")),
            };
            match xsq::xml::dtd::Dtd::parse(&text) {
                Ok(dtd) => Some(dtd),
                Err(e) => return fail_run(&format!("parsing {path}: {e}")),
            }
        }
        None => None,
    };
    let analysis = match xsq::engine::analyze_with_dtd(&parsed, dtd.as_ref()) {
        Ok(a) => a,
        Err(e) => return fail_query(&e.to_string()),
    };

    let errors = xsq::engine::analyze::has_errors(&analysis.diagnostics);
    if opts.dot {
        // Both transducers, concatenable into one Graphviz input; the
        // summary still goes to stderr so pipelines stay clean.
        print!(
            "{}",
            xsq::engine::dot::to_dot_named(
                &analysis.original,
                "original",
                &format!("original HPDT for {query}")
            )
        );
        print!(
            "{}",
            xsq::engine::dot::to_dot_named(
                &analysis.pruned,
                "pruned",
                &format!("pruned HPDT for {query}")
            )
        );
        for d in &analysis.diagnostics {
            eprintln!("{d}");
        }
    } else if opts.json {
        let buffers: Vec<String> = analysis
            .plan
            .buffers
            .iter()
            .map(|b| {
                format!(
                    "{{\"bpdt\":\"{}\",\"class\":\"{}\"}}",
                    b.bpdt,
                    b.class.label()
                )
            })
            .collect();
        let diags: Vec<String> = analysis
            .diagnostics
            .iter()
            .map(|d| {
                let mut obj = format!(
                    "{{\"severity\":\"{}\",\"code\":\"{}\",\"message\":\"{}\"",
                    d.severity.label(),
                    d.code,
                    json_escape(&d.message)
                );
                if let Some(s) = d.step {
                    obj.push_str(&format!(",\"step\":{s}"));
                }
                if let Some(s) = d.state {
                    obj.push_str(&format!(",\"state\":{s}"));
                }
                if let Some(b) = d.bpdt {
                    obj.push_str(&format!(",\"bpdt\":\"{b}\""));
                }
                obj.push('}');
                obj
            })
            .collect();
        println!(
            "{{\"query\":\"{}\",\"engine\":\"{}\",\"deterministic\":{},\
             \"states_before\":{},\"states_after\":{},\
             \"arcs_before\":{},\"arcs_after\":{},\
             \"buffered\":{},\"live_buffers\":{},\
             \"buffers\":[{}],\"bound\":{},\"diagnostics\":[{}]}}",
            json_escape(query),
            analysis.engine,
            analysis.proven_deterministic,
            analysis.stats.states_before,
            analysis.stats.states_after,
            analysis.stats.arcs_before,
            analysis.stats.arcs_after,
            analysis.plan.buffered,
            analysis.plan.live_buffers(),
            buffers.join(","),
            bound_json(&analysis.bound),
            diags.join(","),
        );
    } else {
        println!("query:         {query}");
        println!("engine:        {}", analysis.engine);
        println!(
            "deterministic: {}",
            if analysis.proven_deterministic {
                "proven (first-match execution is exact)"
            } else {
                "not proven (closure arcs present; scan-all execution)"
            }
        );
        println!(
            "states:        {} -> {}{}",
            analysis.stats.states_before,
            analysis.stats.states_after,
            if analysis.stats.changed() {
                "  (pruned)"
            } else {
                ""
            }
        );
        println!(
            "arcs:          {} -> {}",
            analysis.stats.arcs_before, analysis.stats.arcs_after
        );
        if analysis.plan.buffered {
            println!(
                "buffers:       {} live of {}",
                analysis.plan.live_buffers(),
                analysis.plan.buffers.len()
            );
        } else {
            println!("buffers:       none (buffering statically elided)");
        }
        for b in &analysis.plan.buffers {
            println!("  {}: {}", b.bpdt, b.class.label());
        }
        println!("memory bound:  {}", analysis.bound.bound);
        if !analysis.bound.trace.is_empty() {
            println!("derivation:");
            for s in &analysis.bound.trace {
                println!("  [{}] {}", s.rule, s.detail);
            }
        }
        if analysis.diagnostics.is_empty() {
            println!("diagnostics:   none");
        } else {
            println!("diagnostics:");
            for d in &analysis.diagnostics {
                println!("  {d}");
            }
        }
    }
    if errors {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// `xsq serve [--addr A] [--workers N] [--engine E] [--idle-timeout S]`:
/// run the streaming query server until stdin reaches EOF, then drain
/// in-flight sessions and exit. The stdin gate is the clean-shutdown
/// hook: interactively Ctrl-D stops the server; in scripts, holding a
/// pipe open keeps it serving and closing the pipe shuts it down.
fn run_serve(opts: &Options) -> ExitCode {
    let engine = match opts.engine.as_str() {
        "xsq-f" => XsqEngine::full(),
        "xsq-nc" => XsqEngine::no_closure(),
        other => return usage(&format!("serve runs on xsq-f or xsq-nc, not '{other}'")),
    };
    let mut sopts = xsq::server::ServeOptions::new(opts.addr.clone());
    sopts.workers = opts.workers;
    sopts.engine = engine;
    sopts.idle_timeout = Duration::from_secs_f64(opts.idle_timeout.max(0.1));
    // Admission control: `--max-bound K` refuses subscriptions whose
    // static memory bound exceeds K buffered items; `--dtd FILE` gives
    // the analyzer the schema to prove bounds against.
    let dtd = match &opts.dtd {
        Some(path) => {
            let text = match std::fs::read_to_string(path) {
                Ok(t) => t,
                Err(e) => return fail_io(&format!("reading {path}: {e}")),
            };
            match xsq::xml::dtd::Dtd::parse(&text) {
                Ok(dtd) => Some(std::sync::Arc::new(dtd)),
                Err(e) => return fail_run(&format!("parsing {path}: {e}")),
            }
        }
        None => None,
    };
    sopts.limits = xsq::server::SessionLimits {
        max_bound: opts.max_bound,
        dtd,
    };
    sopts.model = match opts.model.as_deref() {
        None => xsq::server::ServeModel::platform_default(),
        Some("eventloop") => xsq::server::ServeModel::EventLoop,
        Some("threaded") => xsq::server::ServeModel::Threaded,
        Some(other) => return usage(&format!("--model is eventloop or threaded, not '{other}'")),
    };
    sopts.loop_threads = opts.loop_threads;
    if opts.broadcast {
        let policy = match opts.broadcast_policy.as_str() {
            "block" => xsq::server::BroadcastPolicy::Block,
            "drop" => xsq::server::BroadcastPolicy::Drop,
            other => {
                return usage(&format!(
                    "--broadcast-policy is block or drop, not '{other}'"
                ))
            }
        };
        sopts.broadcast = Some(xsq::server::BroadcastOptions {
            queue: opts.broadcast_queue,
            policy,
        });
    }
    let model_label = match (opts.broadcast, sopts.model) {
        (true, _) => "broadcast",
        (false, xsq::server::ServeModel::EventLoop) => "eventloop",
        (false, xsq::server::ServeModel::Threaded) => "threaded",
    };
    let handle = match xsq::server::serve(sopts) {
        Ok(h) => h,
        Err(e) => return fail_io(&format!("binding {}: {e}", opts.addr)),
    };
    // The bound address goes to stdout (machine-readable: with port 0
    // a script learns the real port here), status to stderr.
    println!("{}", handle.addr());
    let _ = std::io::stdout().flush();
    eprintln!(
        "# xsq serve: listening on {} (model={model_label}, workers={}, \
         engine={}, idle={}s, scan-kernel={}, max-bound={}); EOF on stdin \
         shuts down; STAT replies carry ingest MB/s and events/s",
        handle.addr(),
        if opts.workers == 0 {
            "auto".to_string()
        } else {
            opts.workers.to_string()
        },
        opts.engine,
        opts.idle_timeout,
        xsq::xml::scan::active_kernel(),
        match opts.max_bound {
            Some(k) => format!("{k} items"),
            None => "off".to_string(),
        },
    );
    let mut sink = [0u8; 4096];
    let mut stdin = std::io::stdin();
    loop {
        match stdin.read(&mut sink) {
            Ok(0) | Err(_) => break,
            Ok(_) => {}
        }
    }
    eprintln!("# xsq serve: stdin closed, draining");
    handle.shutdown();
    ExitCode::SUCCESS
}

/// `xsq connect [--addr A] [--chunk N] [--verify] (QUERY | --queries
/// QFILE) [FILE...]`: subscribe the query set, replay the corpus as
/// FEED chunks, and print replies exactly like `xsq multi --shard 1`.
/// With `--verify`, the output is additionally byte-compared against
/// the in-process sequential driver.
fn run_connect(opts: &Options) -> ExitCode {
    let engine = match opts.engine.as_str() {
        "xsq-f" => XsqEngine::full(),
        "xsq-nc" => XsqEngine::no_closure(),
        other => return usage(&format!("connect runs on xsq-f or xsq-nc, not '{other}'")),
    };
    if opts.broadcast_feed {
        return run_broadcast_feed(opts);
    }
    if opts.broadcast_sub {
        return run_broadcast_sub(engine, opts);
    }
    let rest = &opts.positional[1..];
    let (query_text, files): (String, &[String]) = match &opts.queries {
        Some(qfile) => match std::fs::read_to_string(qfile) {
            Ok(t) => (t, rest),
            Err(e) => return fail_io(&format!("reading {qfile}: {e}")),
        },
        None => match rest.split_first() {
            Some((q, files)) => (q.clone(), files),
            None => return usage("connect needs a QUERY (or --queries QFILE)"),
        },
    };
    let queries: Vec<&str> = query_text
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .collect();
    if queries.is_empty() {
        return usage("connect needs at least one query");
    }
    let mut docs = Vec::new();
    if files.is_empty() {
        match read_input(None) {
            Ok(d) => docs.push(d),
            Err(e) => return fail_io(&e),
        }
    } else {
        for f in files {
            match std::fs::read(f) {
                Ok(d) => docs.push(d),
                Err(e) => return fail_io(&format!("reading {f}: {e}")),
            }
        }
    }

    let copts = xsq::server::ConnectOptions {
        chunk: opts.chunk,
        running: opts.running,
        want_stats: opts.stats,
    };
    let t0 = Instant::now();
    let mut out = Vec::new();
    let report = match xsq::server::run_corpus(&opts.addr, &queries, &docs, &copts, &mut out) {
        Ok(r) => r,
        Err(xsq::server::ClientError::Io(e)) => {
            return fail_io(&format!("talking to {}: {e}", opts.addr))
        }
        Err(e) => return fail_protocol(&e.to_string()),
    };
    if !opts.quiet {
        if std::io::stdout().write_all(&out).is_err() {
            return fail_io("writing results to stdout");
        }
        let _ = std::io::stdout().flush();
    }
    if opts.stats {
        eprintln!(
            "# connect {}: {} docs, {} results, {} updates in {:.1} ms [{} queries] chunk={}",
            opts.addr,
            report.docs,
            report.results,
            report.updates,
            t0.elapsed().as_secs_f64() * 1e3,
            queries.len(),
            opts.chunk,
        );
        if let Some(json) = &report.stats_json {
            eprintln!("# stat: {json}");
            if let Some(summary) = xsq::server::stat_transport_summary(json) {
                eprintln!("# transport: {summary}");
            }
        }
        eprintln!(
            "# wire: {} bytes out, {} bytes in",
            report.wire_out, report.wire_in
        );
    }
    if opts.verify {
        let expected = match xsq::server::reference_output(engine, &queries, &docs, opts.running) {
            Ok(t) => t,
            Err(e) => return fail_run(&format!("reference run: {e}")),
        };
        if out != expected.as_bytes() {
            eprintln!(
                "error: server output diverged from the sequential driver \
                 ({} vs {} bytes)",
                out.len(),
                expected.len()
            );
            return ExitCode::from(EXIT_VERIFY);
        }
        eprintln!(
            "# verify: output matches the sequential driver ({} bytes)",
            out.len()
        );
    }
    ExitCode::SUCCESS
}

/// `xsq connect --broadcast-feed [--wait-subs N] FILE...`: claim the
/// feeder role on a broadcast server and push the corpus through the
/// shared index. With `--wait-subs N` the feed starts only once N
/// subscribers are attached (STAT polling), so scripted fan-outs are
/// deterministic.
fn run_broadcast_feed(opts: &Options) -> ExitCode {
    let files = &opts.positional[1..];
    if files.is_empty() {
        return usage("connect --broadcast-feed needs at least one FILE");
    }
    let mut docs = Vec::with_capacity(files.len());
    for f in files {
        match std::fs::read(f) {
            Ok(d) => docs.push(d),
            Err(e) => return fail_io(&format!("reading {f}: {e}")),
        }
    }
    let fopts = xsq::server::FeedOptions {
        chunk: opts.chunk,
        wait_subs: opts.wait_subs,
        want_stats: opts.stats,
    };
    let t0 = Instant::now();
    let report = match xsq::server::broadcast_feed(&opts.addr, &docs, &fopts) {
        Ok(r) => r,
        Err(xsq::server::ClientError::Io(e)) => {
            return fail_io(&format!("talking to {}: {e}", opts.addr))
        }
        Err(e) => return fail_protocol(&e.to_string()),
    };
    if opts.stats {
        eprintln!(
            "# feed {}: {} docs, {} bytes in {:.1} ms",
            opts.addr,
            report.docs,
            report.bytes,
            t0.elapsed().as_secs_f64() * 1e3,
        );
        if let Some(json) = &report.stats_json {
            eprintln!("# stat: {json}");
            if let Some(summary) = xsq::server::stat_transport_summary(json) {
                eprintln!("# transport: {summary}");
            }
        }
        eprintln!(
            "# wire: {} bytes out, {} bytes in",
            report.wire_out, report.wire_in
        );
    }
    ExitCode::SUCCESS
}

/// `xsq connect --broadcast-sub --expect-docs N (QUERY | --queries
/// QFILE) [FILE...]`: subscribe to a broadcast stream and render N
/// documents of fan-out in the `xsq multi --shard 1` output format.
/// With `--verify` and the corpus FILEs given, the received output is
/// byte-compared against the in-process sequential driver over those
/// files — the CI smoke gate.
fn run_broadcast_sub(engine: XsqEngine, opts: &Options) -> ExitCode {
    let rest = &opts.positional[1..];
    let (query_text, files): (String, &[String]) = match &opts.queries {
        Some(qfile) => match std::fs::read_to_string(qfile) {
            Ok(t) => (t, rest),
            Err(e) => return fail_io(&format!("reading {qfile}: {e}")),
        },
        None => match rest.split_first() {
            Some((q, files)) => (q.clone(), files),
            None => return usage("connect --broadcast-sub needs a QUERY (or --queries QFILE)"),
        },
    };
    let queries: Vec<&str> = query_text
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .collect();
    if queries.is_empty() {
        return usage("connect --broadcast-sub needs at least one query");
    }
    let t0 = Instant::now();
    let mut out = Vec::new();
    let report = match xsq::server::broadcast_subscribe(
        &opts.addr,
        &queries,
        opts.expect_docs,
        opts.running,
        &mut out,
    ) {
        Ok(r) => r,
        Err(xsq::server::ClientError::Io(e)) => {
            return fail_io(&format!("talking to {}: {e}", opts.addr))
        }
        Err(e) => return fail_protocol(&e.to_string()),
    };
    if !opts.quiet {
        if std::io::stdout().write_all(&out).is_err() {
            return fail_io("writing results to stdout");
        }
        let _ = std::io::stdout().flush();
    }
    if opts.stats {
        eprintln!(
            "# subscribe {}: {} docs, {} results, {} updates in {:.1} ms [{} queries]",
            opts.addr,
            report.docs,
            report.results,
            report.updates,
            t0.elapsed().as_secs_f64() * 1e3,
            queries.len(),
        );
        eprintln!(
            "# wire: {} bytes out, {} bytes in",
            report.wire_out, report.wire_in
        );
    }
    if opts.verify {
        if files.is_empty() {
            return usage("--verify on --broadcast-sub needs the corpus FILEs to compare against");
        }
        let mut docs = Vec::with_capacity(files.len());
        for f in files {
            match std::fs::read(f) {
                Ok(d) => docs.push(d),
                Err(e) => return fail_io(&format!("reading {f}: {e}")),
            }
        }
        let expected = match xsq::server::reference_output(engine, &queries, &docs, opts.running) {
            Ok(t) => t,
            Err(e) => return fail_run(&format!("reference run: {e}")),
        };
        if out != expected.as_bytes() {
            eprintln!(
                "error: broadcast output diverged from the sequential driver \
                 ({} vs {} bytes)",
                out.len(),
                expected.len()
            );
            return ExitCode::from(EXIT_VERIFY);
        }
        eprintln!(
            "# verify: broadcast output matches the sequential driver ({} bytes)",
            out.len()
        );
    }
    ExitCode::SUCCESS
}

/// `xsq transform [--engine stream|dom] [--chunk N] [--verify] [--stats]
/// RULES.xfm [FILE...]`: rewrite documents under a `.xfm` template rule
/// file. The default engine is the one-pass streaming transducer, pushed
/// in `--chunk`-byte pieces with output written as soon as each region's
/// verdict is known; `--engine dom` runs the two-pass DOM reference
/// instead; `--verify` runs both and byte-compares them (exit 7 on
/// mismatch). Rule compile errors carry line:col spans and exit 4.
fn run_transform(opts: &Options) -> ExitCode {
    let rest = &opts.positional[1..];
    let Some((rules_path, files)) = rest.split_first() else {
        return usage("transform needs a RULES.xfm file");
    };
    let rules_text = match std::fs::read_to_string(rules_path) {
        Ok(t) => t,
        Err(e) => return fail_io(&format!("reading {rules_path}: {e}")),
    };
    let transformer = match xsq::transform::Transformer::compile(&rules_text) {
        Ok(t) => t,
        Err(e) => return fail_query(&format!("{rules_path}:{e}")),
    };
    for w in &transformer.warnings {
        eprintln!("warning: {rules_path}: {w}");
    }
    let rules = match xsq::xpath::RuleSet::parse(&rules_text) {
        Ok(r) => r,
        Err(e) => return fail_query(&format!("{rules_path}:{e}")),
    };
    let engine = opts.engine.as_str();
    // `xsq transform` ignores the query-engine default; only these two
    // names are meaningful here.
    let engine = if engine == "xsq-f" { "stream" } else { engine };
    if !matches!(engine, "stream" | "dom") {
        return usage(&format!("transform runs on stream or dom, not '{engine}'"));
    }

    let inputs: Vec<Option<String>> = if files.is_empty() {
        vec![None]
    } else {
        files.iter().cloned().map(Some).collect()
    };
    let stdout = std::io::stdout();
    for file in inputs {
        let t0 = Instant::now();
        let data = match read_input(file.as_deref()) {
            Ok(d) => d,
            Err(e) => return fail_io(&e),
        };
        let label = file.as_deref().unwrap_or("<stdin>");
        let dom_out = if engine == "dom" || opts.verify {
            match xsq::baselines::dom::transform::transform_bytes(&data, &rules) {
                Ok(x) => Some(x),
                Err(e) => return fail_run(&format!("{label}: {e}")),
            }
        } else {
            None
        };
        let written: u64;
        let mut stats_line = String::new();
        if engine == "stream" {
            // Push-mode: output streams out as verdicts are decided, in
            // `--chunk`-byte input pieces regardless of file size.
            let mut session = transformer.session();
            let mut out = stdout.lock();
            let mut stream_xml = String::new();
            let mut emit = |piece: &str, out: &mut std::io::StdoutLock<'_>| -> Result<(), String> {
                if opts.verify {
                    stream_xml.push_str(piece);
                }
                if opts.quiet {
                    return Ok(());
                }
                out.write_all(piece.as_bytes())
                    .map_err(|e| format!("writing output: {e}"))
            };
            for chunk in data.chunks(opts.chunk.max(1)) {
                match session.push(chunk) {
                    Ok(piece) => {
                        if let Err(e) = emit(&piece, &mut out) {
                            return fail_io(&e);
                        }
                    }
                    Err(e) => return fail_run(&format!("{label}: {e}")),
                }
            }
            let tail = match session.finish() {
                Ok(t) => t,
                Err(e) => return fail_run(&format!("{label}: {e}")),
            };
            if let Err(e) = emit(&tail.xml, &mut out) {
                return fail_io(&e);
            }
            if !opts.quiet {
                let _ = out.write_all(b"\n");
                let _ = out.flush();
            }
            written = tail.stats.bytes_out;
            stats_line = format!(
                "elements={} matched={} deferred={} peak_buffered={}",
                tail.stats.elements,
                tail.stats.matched,
                tail.stats.deferred,
                tail.stats.peak_buffered
            );
            if opts.verify {
                let dom = dom_out.as_deref().unwrap_or_default();
                if stream_xml != dom {
                    eprintln!(
                        "error: {label}: stream output diverged from the DOM \
                         reference ({} vs {} bytes)",
                        stream_xml.len(),
                        dom.len()
                    );
                    return ExitCode::from(EXIT_VERIFY);
                }
                eprintln!(
                    "# verify: {label}: stream output matches the DOM reference \
                     ({} bytes)",
                    stream_xml.len()
                );
            }
        } else {
            let xml = dom_out.expect("dom engine always materializes");
            written = xml.len() as u64;
            if !opts.quiet {
                let mut out = stdout.lock();
                if out
                    .write_all(xml.as_bytes())
                    .and_then(|_| out.write_all(b"\n"))
                    .is_err()
                {
                    return fail_io("writing output");
                }
                let _ = out.flush();
            }
        }
        if opts.stats {
            eprintln!(
                "# {label}: {} -> {} bytes in {:.1} ms [{} rules] engine={engine}{}{}",
                data.len(),
                written,
                t0.elapsed().as_secs_f64() * 1e3,
                rules.rules.len(),
                if stats_line.is_empty() { "" } else { " " },
                stats_line,
            );
        }
    }
    ExitCode::SUCCESS
}

fn read_input(path: Option<&str>) -> Result<Vec<u8>, String> {
    match path {
        None => {
            let mut buf = Vec::new();
            BufReader::new(std::io::stdin())
                .read_to_end(&mut buf)
                .map_err(|e| format!("reading stdin: {e}"))?;
            Ok(buf)
        }
        Some(p) => std::fs::read(p).map_err(|e| format!("reading {p}: {e}")),
    }
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => return usage(&e),
    };

    if opts.dataset_stats {
        if opts.positional.is_empty() {
            return usage("--dataset-stats needs at least one file");
        }
        println!(
            "{:<24} {:>9} {:>9} {:>10} {:>12} {:>8}",
            "file", "size(MB)", "text(MB)", "elements", "avg/max dep", "tag len"
        );
        for f in &opts.positional {
            let data = match read_input(Some(f)) {
                Ok(d) => d,
                Err(e) => return fail_io(&e),
            };
            match xsq::xml::dataset_stats(&data) {
                Ok(s) => println!(
                    "{:<24} {:>9.2} {:>9.2} {:>10} {:>7.2}/{:<4} {:>8.2}",
                    f,
                    s.size_bytes as f64 / 1048576.0,
                    s.text_bytes as f64 / 1048576.0,
                    s.elements,
                    s.avg_depth,
                    s.max_depth,
                    s.avg_tag_length
                ),
                Err(e) => return fail_run(&format!("{f}: {e}")),
            }
        }
        return ExitCode::SUCCESS;
    }

    // Subcommands own --queries when present, so route them first.
    match opts.positional.first().map(String::as_str) {
        Some("multi") => return run_multi(&opts),
        Some("serve") => return run_serve(&opts),
        Some("connect") => return run_connect(&opts),
        Some("transform") => return run_transform(&opts),
        _ => {}
    }

    if let Some(qfile) = &opts.queries {
        return run_query_file(qfile, &opts);
    }

    let Some(mut query) = opts.positional.first().cloned() else {
        return usage("missing QUERY");
    };

    // `xsq analyze QUERY` is an alias for `xsq --analyze QUERY`.
    let mut analyze_mode = opts.analyze;
    if query == "analyze" {
        analyze_mode = true;
        match opts.positional.get(1) {
            Some(q) => query = q.clone(),
            None => return usage("analyze needs a QUERY"),
        }
    }
    if analyze_mode {
        return run_analyze(&query, &opts);
    }

    if opts.dump || opts.dot {
        return match XsqEngine::full().compile_str(&query) {
            Ok(c) => {
                if opts.dot {
                    print!("{}", xsq::engine::dot::to_dot(c.hpdt()));
                } else {
                    print!("{}", c.hpdt().dump());
                }
                ExitCode::SUCCESS
            }
            Err(e) => fail_query(&e.to_string()),
        };
    }

    let files: Vec<Option<String>> = if opts.positional.len() > 1 {
        opts.positional[1..].iter().cloned().map(Some).collect()
    } else {
        vec![None]
    };

    for file in files {
        let t0 = Instant::now();
        // The native engines stream directly from the source in constant
        // memory unless a feature needs the whole document (DTD
        // extraction for --schema-optimize) or another engine runs.
        let streamable = matches!(opts.engine.as_str(), "xsq-f" | "xsq-nc")
            && !opts.schema_optimize
            && !opts.trace;
        if streamable {
            let engine = if opts.engine == "xsq-f" {
                XsqEngine::full()
            } else {
                XsqEngine::no_closure()
            };
            let compiled = match engine.compile_str(&query) {
                Ok(c) => c,
                Err(e) => return fail_query(&e.to_string()),
            };
            let mut sink = StdoutSink {
                quiet: opts.quiet,
                running: opts.running,
                json: opts.json,
                results: 0,
            };
            let run = match &file {
                None => compiled.run_reader(BufReader::new(std::io::stdin()), &mut sink),
                Some(p) => match std::fs::File::open(p) {
                    Ok(f) => compiled.run_reader(BufReader::new(f), &mut sink),
                    Err(e) => return fail_io(&format!("reading {p}: {e}")),
                },
            };
            match run {
                Err(e) => return fail_run(&e.to_string()),
                Ok(stats) => {
                    if opts.stats {
                        eprintln!(
                            "# {}: {} results in {:.1} ms [{}] engine={} events={} \
                             peak_buffered_bytes={} peak_configs={}",
                            file.as_deref().unwrap_or("<stdin>"),
                            sink.results,
                            t0.elapsed().as_secs_f64() * 1e3,
                            query,
                            opts.engine,
                            stats.events,
                            stats.memory.peak_bytes,
                            stats.memory.peak_configs,
                        );
                    }
                }
            }
            continue;
        }
        let data = match read_input(file.as_deref()) {
            Ok(d) => d,
            Err(e) => return fail_io(&e),
        };
        let outcome: Result<(u64, String), String> = match opts.engine.as_str() {
            // The native engines stream through a sink (results appear as
            // soon as they are determined).
            "xsq-f" | "xsq-nc" => {
                let engine = if opts.engine == "xsq-f" {
                    XsqEngine::full()
                } else {
                    XsqEngine::no_closure()
                };
                // Schema-aware rewrite (paper §5's future-work item):
                // prove emptiness or remove redundant closures using the
                // document's internal DTD.
                let mut effective = query.clone();
                if opts.schema_optimize {
                    if let Some(dtd) = xsq::xml::dtd::extract_from_document(&data) {
                        if let Ok(parsed) = xsq::xpath::parse_query(&query) {
                            let (optimized, analysis) =
                                xsq::engine::schema::optimize(&parsed, &dtd);
                            if !analysis.satisfiable {
                                eprintln!("# schema: query can never match; skipping stream");
                                continue;
                            }
                            // Earliest-flush: drop existence predicates
                            // the DTD proves always true, so nothing is
                            // buffered waiting on them. Same validity
                            // assumption as the closure rewrite, same
                            // opt-in flag.
                            let (optimized, dropped) =
                                xsq::engine::analyze::elide_always_true(&optimized, &dtd);
                            if !dropped.is_empty() {
                                eprintln!(
                                    "# schema: elided {} always-true predicate(s)",
                                    dropped.len()
                                );
                            }
                            if optimized.to_string() != query {
                                eprintln!("# schema: rewrote to {optimized}");
                                effective = optimized.to_string();
                            }
                        }
                    }
                }
                engine
                    .compile_str(&effective)
                    .map_err(|e| e.to_string())
                    .and_then(|compiled| {
                        let mut sink = StdoutSink {
                            quiet: opts.quiet,
                            running: opts.running,
                            json: opts.json,
                            results: 0,
                        };
                        let run = |sink: &mut StdoutSink| -> Result<_, String> {
                            if opts.trace {
                                // Example 5-style walkthrough on stderr.
                                let mut tracer =
                                    |step: xsq::engine::trace::TraceStep| eprintln!("{step}");
                                let mut parser = xsq::xml::StreamParser::new(&data[..]);
                                let mut runner = compiled.runner();
                                runner.set_tracer(&mut tracer);
                                while let Some(ev) = parser.next_raw().map_err(|e| e.to_string())? {
                                    runner.feed_raw(&ev, sink);
                                }
                                Ok(runner.finish(sink))
                            } else {
                                compiled
                                    .run_document(&data, sink)
                                    .map_err(|e| e.to_string())
                            }
                        };
                        run(&mut sink).map(|stats| {
                            (
                                sink.results,
                                format!(
                                    "events={} peak_buffered_bytes={} peak_configs={}",
                                    stats.events,
                                    stats.memory.peak_bytes,
                                    stats.memory.peak_configs
                                ),
                            )
                        })
                    })
            }
            // The study baselines run whole-document.
            name => {
                let engine: &dyn XPathEngine = match name {
                    "saxon" => &SaxonLike,
                    "galax" => &GalaxLike,
                    "xmltk" => &XmltkLike,
                    "joost" => &JoostLike,
                    "xqengine" => &XqEngineLike,
                    other => return usage(&format!("unknown engine '{other}'")),
                };
                engine
                    .run(&query, &data)
                    .map_err(|e| e.to_string())
                    .map(|r| {
                        if !opts.quiet {
                            for v in &r.results {
                                println!("{v}");
                            }
                        }
                        (
                            r.results.len() as u64,
                            format!("peak_bytes={}", r.memory.total_peak_bytes()),
                        )
                    })
            }
        };
        match outcome {
            Err(e) => return fail_run(&e),
            Ok((results, mem)) => {
                if opts.stats {
                    eprintln!(
                        "# {}: {} results in {:.1} ms [{}] engine={} {}",
                        file.as_deref().unwrap_or("<stdin>"),
                        results,
                        t0.elapsed().as_secs_f64() * 1e3,
                        query,
                        opts.engine,
                        mem
                    );
                }
            }
        }
    }
    ExitCode::SUCCESS
}

/// Print `error: …` to stderr and exit with the class's code. Every
/// failure path funnels through here — no subcommand panics or
/// unwraps on bad input.
fn fail_with(code: u8, err: &str) -> ExitCode {
    eprintln!("error: {err}");
    ExitCode::from(code)
}

/// Unreadable file, unwritable socket, dead connection.
fn fail_io(err: &str) -> ExitCode {
    fail_with(EXIT_IO, err)
}

/// A query that does not parse or compile.
fn fail_query(err: &str) -> ExitCode {
    fail_with(EXIT_QUERY, err)
}

/// The stream or engine failed during evaluation.
fn fail_run(err: &str) -> ExitCode {
    fail_with(EXIT_RUN, err)
}

/// The server (or a peer) broke the wire protocol.
fn fail_protocol(err: &str) -> ExitCode {
    fail_with(EXIT_PROTOCOL, err)
}

fn usage(err: &str) -> ExitCode {
    if !err.is_empty() {
        eprintln!("error: {err}");
    }
    eprintln!(
        "usage: xsq [--engine NAME] [--stats] [--running] [--quiet] QUERY [FILE...]\n\
         \u{20}      xsq --queries QFILE [FILE...]   (one query per line, '#' comments)\n\
         \u{20}      xsq multi [--shard N] (QUERY | --queries QFILE) FILE...\n\
         \u{20}          corpus evaluation on an N-worker pool (0 = one per CPU);\n\
         \u{20}          output merged in document order, doc<TAB>query<TAB>value\n\
         \u{20}      xsq --dataset-stats FILE...\n\
         \u{20}      xsq --dump QUERY\n\
         \u{20}      xsq analyze [--json] [--dot] [--dtd FILE] QUERY\n\
         \u{20}          static analysis: verifier diagnostics, dead-state pruning,\n\
         \u{20}          buffer classes, engine auto-selection, and (with --dtd) the\n\
         \u{20}          static memory bound + derivation; exits nonzero on errors\n\
         \u{20}      xsq serve [--addr A] [--model eventloop|threaded] [--workers N] \\\n\
         \u{20}                [--loop-threads N] [--idle-timeout S] [--dtd FILE] \\\n\
         \u{20}                [--max-bound K] [--broadcast] [--broadcast-queue N] \\\n\
         \u{20}                [--broadcast-policy block|drop]\n\
         \u{20}          streaming query server; prints the bound address, runs\n\
         \u{20}          until stdin reaches EOF, then drains and exits;\n\
         \u{20}          --max-bound K rejects subscriptions whose static memory\n\
         \u{20}          bound (proven against --dtd) exceeds K buffered items;\n\
         \u{20}          --broadcast: one feeder fans one stream through a shared\n\
         \u{20}          index to every subscriber (bounded per-subscriber queues)\n\
         \u{20}      xsq connect [--addr A] [--chunk N] [--verify] \\\n\
         \u{20}                  (QUERY | --queries QFILE) [FILE...]\n\
         \u{20}          replay a corpus against a server; --verify byte-compares\n\
         \u{20}          the replies with the in-process sequential driver\n\
         \u{20}      xsq connect --broadcast-feed [--wait-subs N] FILE...\n\
         \u{20}          claim the broadcast feeder role and push the corpus\n\
         \u{20}      xsq connect --broadcast-sub --expect-docs N [--verify] \\\n\
         \u{20}                  (QUERY | --queries QFILE) [FILE...]\n\
         \u{20}          subscribe to a broadcast stream and render N documents;\n\
         \u{20}          --verify compares against the driver over FILE...\n\
         \u{20}      xsq transform [--engine stream|dom] [--chunk N] [--verify] \\\n\
         \u{20}                    RULES.xfm [FILE...]\n\
         \u{20}          rewrite documents under .xfm template rules; --verify\n\
         \u{20}          byte-compares the streaming engine with the DOM reference\n\
         engines: xsq-f (default), xsq-nc, saxon, galax, xmltk, joost, xqengine\n\
         exit codes: 0 ok, 1 analysis errors, 2 usage, 3 io, 4 query,\n\
         \u{20}           5 runtime, 6 protocol, 7 verify mismatch"
    );
    if err.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(EXIT_USAGE)
    }
}
