//! # xsq — facade crate for the XSQ reproduction
//!
//! Re-exports the workspace crates under one roof so examples and
//! downstream users can depend on a single crate:
//!
//! * [`xml`] — streaming SAX substrate (`xsq-xml`)
//! * [`xpath`] — query front end (`xsq-xpath`)
//! * [`engine`] — the XSQ-F / XSQ-NC engines (`xsq-core`)
//! * [`transform`] — streaming transformation engine (`xsq-transform`)
//! * [`server`] — TCP streaming query server + reference client
//!   (`xsq-server`)
//! * [`baselines`] — comparison systems (`xsq-baselines`)
//! * [`datagen`] — synthetic dataset generators (`xsq-datagen`)

pub use xsq_baselines as baselines;
pub use xsq_core as engine;
pub use xsq_datagen as datagen;
pub use xsq_server as server;
pub use xsq_transform as transform;
pub use xsq_xml as xml;
pub use xsq_xpath as xpath;

// The multi-query surface, re-exported at the root: most downstream
// users hold a standing query set and only need these names.
pub use xsq_core::{run_sequential, run_sharded, run_sharded_with, ShardOptions, ShardRun};
pub use xsq_core::{QueryId, QueryIndex, QuerySet, QuerySink, VecQuerySink, XsqEngine};
