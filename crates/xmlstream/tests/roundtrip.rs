//! Round-trip property test for the serializer: for any document —
//! including comments, processing instructions, CDATA sections, and
//! whitespace that XML normalization would otherwise destroy — parsing,
//! serializing the events, and reparsing must yield the same events.
//!
//! The generator is a seeded xorshift PRNG (hermetic — no external
//! property-testing crate), so failures reproduce exactly.

use xsq_xml::writer::{events_to_string, DocumentWriter, WriteError, XmlWriter};
use xsq_xml::{parse_to_events, SaxEvent};

/// Minimal deterministic PRNG (xorshift64*).
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed.max(1))
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }

    fn pick<T: Copy>(&mut self, items: &[T]) -> T {
        items[self.below(items.len())]
    }
}

const TAGS: &[&str] = &["a", "bk", "name", "pub", "x-y", "deep"];
const ATTRS: &[&str] = &["id", "lang", "v"];
// Text fragments exercising every escaping rule: markup characters,
// entity-looking text, CR/LF/tab (CR must become &#13; to survive), and
// multi-byte UTF-8.
const TEXTS: &[&str] = &[
    "plain",
    "a & b < c > d",
    "line1\r\nline2\rline3",
    "tabs\tand\nnewlines",
    "\"quoted\" 'single'",
    "caf\u{e9} \u{1F600}",
    "]] not-a-cdata-end",
    "&amp;-looking",
];
const COMMENTS: &[&str] = &["note", "a - b", "tricky -- dashes -", "<tag> inside"];
const PI_DATA: &[&str] = &["", "href=\"x\"", "ends with ?", "quest?>ion"];
const CDATA: &[&str] = &["<raw> & unescaped", "a]]>b", "]]>", "plain cdata"];

/// Write one random document. `markup` controls whether comments, PIs,
/// and CDATA are sprinkled in (the parser drops/merges them; the text
/// they decode to must still round-trip).
fn gen_document(rng: &mut Rng) -> String {
    let mut out = String::new();
    if rng.below(2) == 0 {
        out.push_str("<?xml version=\"1.0\"?>");
    }
    let mut w = XmlWriter::new();
    if rng.below(3) == 0 {
        w.write_comment(rng.pick(COMMENTS));
    }
    if rng.below(3) == 0 {
        w.write_pi("target", rng.pick(PI_DATA));
    }
    out.push_str(w.as_str());
    gen_element(rng, &mut out, 0);
    out
}

fn gen_element(rng: &mut Rng, out: &mut String, depth: usize) {
    let tag = rng.pick(TAGS);
    out.push('<');
    out.push_str(tag);
    let chosen: Vec<&str> = ATTRS
        .iter()
        .filter(|_| rng.below(3) == 0)
        .copied()
        .collect();
    for name in chosen {
        // Attribute values with whitespace that §3.3.3 normalization
        // would turn into spaces if the writer emitted them raw.
        out.push(' ');
        out.push_str(name);
        out.push_str("=\"");
        let mut esc = String::new();
        xsq_xml::entities::escape_attr_into(rng.pick(TEXTS), &mut esc);
        out.push_str(&esc);
        out.push('"');
    }
    out.push('>');
    for _ in 0..rng.below(4) {
        let mut w = XmlWriter::new();
        match rng.below(6) {
            0 | 1 => {
                let mut esc = String::new();
                xsq_xml::entities::escape_text_into(rng.pick(TEXTS), &mut esc);
                out.push_str(&esc);
            }
            2 if depth < 4 => gen_element(rng, out, depth + 1),
            3 => {
                w.write_cdata(rng.pick(CDATA));
                out.push_str(w.as_str());
            }
            4 => {
                w.write_comment(rng.pick(COMMENTS));
                out.push_str(w.as_str());
            }
            _ => {
                w.write_pi("pi", rng.pick(PI_DATA));
                out.push_str(w.as_str());
            }
        }
    }
    out.push_str("</");
    out.push_str(tag);
    out.push('>');
}

#[test]
fn random_documents_roundtrip_at_event_level() {
    let mut rng = Rng::new(0x5EED_CAFE);
    for case in 0..300 {
        let doc = gen_document(&mut rng);
        let events = parse_to_events(doc.as_bytes())
            .unwrap_or_else(|e| panic!("case {case}: generated doc failed to parse: {e}\n{doc}"));
        let rewritten = events_to_string(&events);
        let events2 = parse_to_events(rewritten.as_bytes()).unwrap_or_else(|e| {
            panic!("case {case}: serialized form failed to reparse: {e}\n{rewritten}")
        });
        assert_eq!(events, events2, "case {case}:\n{doc}\n→\n{rewritten}");
        // Serialization is a fixpoint: a second round emits identical bytes.
        assert_eq!(rewritten, events_to_string(&events2), "case {case}");
    }
}

#[test]
fn cr_in_text_survives_roundtrip() {
    // A CR reaches the event stream only via &#13;. The writer must
    // re-emit it as a character reference or reparse turns it into \n.
    let doc = "<a>x&#13;y</a>";
    let events = parse_to_events(doc.as_bytes()).unwrap();
    let rewritten = events_to_string(&events);
    let events2 = parse_to_events(rewritten.as_bytes()).unwrap();
    assert_eq!(events, events2);
    match &events2[2] {
        SaxEvent::Text { text, .. } => assert_eq!(text, "x\ry"),
        other => panic!("expected text event, got {other:?}"),
    }
}

#[test]
fn whitespace_attributes_survive_roundtrip() {
    let doc = "<a v=\"x&#10;y&#9;z&#13;\"/>";
    let events = parse_to_events(doc.as_bytes()).unwrap();
    let rewritten = events_to_string(&events);
    assert_eq!(rewritten, "<a v=\"x&#10;y&#9;z&#13;\"></a>");
    assert_eq!(events, parse_to_events(rewritten.as_bytes()).unwrap());
}

#[test]
fn comment_and_pi_emission_is_always_well_formed() {
    for c in COMMENTS {
        let mut w = XmlWriter::new();
        w.write_comment(c);
        let doc = format!("{}<a/>", w.as_str());
        parse_to_events(doc.as_bytes())
            .unwrap_or_else(|e| panic!("comment {c:?} broke parsing: {e}"));
    }
    for d in PI_DATA {
        let mut w = XmlWriter::new();
        w.write_pi("t", d);
        let doc = format!("{}<a/>", w.as_str());
        parse_to_events(doc.as_bytes()).unwrap_or_else(|e| panic!("pi {d:?} broke parsing: {e}"));
    }
}

#[test]
fn cdata_sections_decode_to_their_payload() {
    for c in CDATA {
        let mut w = XmlWriter::new();
        w.write_cdata(c);
        let doc = format!("<a>{}</a>", w.as_str());
        let events = parse_to_events(doc.as_bytes())
            .unwrap_or_else(|e| panic!("cdata {c:?} broke parsing: {e}\n{doc}"));
        let text: String = events
            .iter()
            .filter_map(|e| match e {
                SaxEvent::Text { text, .. } => Some(text.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(&text, c);
    }
}

#[test]
fn document_writer_validates_structure() {
    // Balanced document passes.
    let events = parse_to_events(b"<a><b>x</b></a>").unwrap();
    let mut w = DocumentWriter::with_decl();
    for e in &events {
        w.write_event(e).unwrap();
    }
    let doc = w.finish().unwrap();
    assert!(doc.starts_with("<?xml version=\"1.0\""));
    assert!(doc.ends_with("</a>"));

    // A second root is rejected.
    let mut w = DocumentWriter::new();
    for e in parse_to_events(b"<a/>").unwrap() {
        if !matches!(e, SaxEvent::EndDocument) {
            w.write_event(&e).unwrap();
        }
    }
    let second = SaxEvent::Begin {
        name: "b".into(),
        attributes: vec![],
        depth: 1,
    };
    assert!(matches!(
        w.write_event(&second),
        Err(WriteError::SecondRoot { .. })
    ));

    // Unclosed elements are rejected at finish.
    let mut w = DocumentWriter::new();
    w.write_event(&second).unwrap();
    assert!(matches!(
        w.finish(),
        Err(WriteError::UnclosedElements { open: 1 })
    ));

    // Empty documents are rejected.
    assert!(matches!(
        DocumentWriter::new().finish(),
        Err(WriteError::NoRoot)
    ));

    // An end with nothing open is rejected.
    let mut w = DocumentWriter::new();
    let stray = SaxEvent::End {
        name: "a".into(),
        depth: 1,
    };
    assert!(matches!(
        w.write_event(&stray),
        Err(WriteError::UnbalancedEnd { .. })
    ));
}
