//! Fuzz-ish property tests for the DTD parser: generated well-formed
//! declarations must parse with the expected child graph, and mutated /
//! truncated inputs must error with a position — never panic.
//!
//! No external property-testing crate is available, so generation runs
//! on a small seeded LCG: deterministic, reproducible by seed.

use xsq_xml::dtd::{Dtd, Occurs};

/// Minimal deterministic PRNG (Numerical Recipes LCG constants).
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }

    fn chance(&mut self, pct: u64) -> bool {
        self.next() % 100 < pct
    }
}

const NAMES: &[&str] = &[
    "a", "bb", "c-c", "d.d", "e:e", "f_f", "g1", "hh", "ii", "jj",
];

fn rep(rng: &mut Lcg) -> &'static str {
    ["", "?", "*", "+"][rng.below(4)]
}

/// A random content particle of bounded depth; records the names used.
fn particle(rng: &mut Lcg, depth: usize, used: &mut Vec<&'static str>) -> String {
    if depth == 0 || rng.chance(50) {
        let n = NAMES[rng.below(NAMES.len())];
        used.push(n);
        return format!("{n}{}", rep(rng));
    }
    let sep = if rng.chance(50) { " | " } else { ", " };
    let count = 1 + rng.below(3);
    let items: Vec<String> = (0..count).map(|_| particle(rng, depth - 1, used)).collect();
    format!("({}){}", items.join(sep), rep(rng))
}

/// One random ELEMENT declaration; returns (text, parent, children).
fn declaration(rng: &mut Lcg, parent: &'static str) -> (String, Vec<&'static str>) {
    let mut used = Vec::new();
    let body = match rng.below(5) {
        0 => "EMPTY".to_string(),
        1 => "ANY".to_string(),
        2 => {
            if rng.chance(50) {
                "(#PCDATA)".to_string()
            } else {
                let count = 1 + rng.below(3);
                let names: Vec<&str> = (0..count)
                    .map(|_| {
                        let n = NAMES[rng.below(NAMES.len())];
                        used.push(n);
                        n
                    })
                    .collect();
                format!("(#PCDATA | {})*", names.join(" | "))
            }
        }
        _ => {
            // Force a group at top level (the grammar requires parens).
            let sep = if rng.chance(50) { " | " } else { ", " };
            let count = 1 + rng.below(3);
            let items: Vec<String> = (0..count).map(|_| particle(rng, 2, &mut used)).collect();
            format!("({}){}", items.join(sep), rep(rng))
        }
    };
    used.sort_unstable();
    used.dedup();
    (format!("<!ELEMENT {parent} {body}>"), used)
}

#[test]
fn generated_dtds_parse_with_the_expected_child_graph() {
    for seed in 0..200u64 {
        let mut rng = Lcg(seed.wrapping_mul(0x9e3779b97f4a7c15) | 1);
        let mut text = String::new();
        let mut expected: Vec<(&str, Vec<&str>)> = Vec::new();
        // Distinct parents per DTD (duplicate declarations merge, which
        // would complicate the expectation).
        let mut parents = NAMES.to_vec();
        for _ in 0..(1 + rng.below(4)) {
            let parent = parents.swap_remove(rng.below(parents.len()));
            let (decl, kids) = declaration(&mut rng, parent);
            if rng.chance(30) {
                text.push_str("<!-- noise -->\n");
            }
            if rng.chance(20) {
                text.push_str(&format!("<![INCLUDE[ {decl} ]]>\n"));
            } else if rng.chance(10) {
                text.push_str(&format!("<![IGNORE[ {decl} ]]>\n"));
                continue; // ignored: must not appear
            } else {
                text.push_str(&decl);
                text.push('\n');
            }
            expected.push((parent, kids));
        }
        let dtd = Dtd::parse(&text).unwrap_or_else(|e| panic!("seed {seed}: {e}\n{text}"));
        for (parent, kids) in &expected {
            assert!(
                dtd.declares(parent),
                "seed {seed}: {parent} missing\n{text}"
            );
            let got: Vec<&str> = dtd.children_of(parent).collect();
            assert_eq!(&got, kids, "seed {seed}: children of {parent}\n{text}");
            // Multiplicity queries never panic and stay consistent:
            // min_count > 0 implies max_count > 0.
            for kid in kids {
                let max = dtd.max_count(parent, kid);
                let min = dtd.min_count(parent, kid);
                assert!(
                    !max.is_zero() || min == 0,
                    "seed {seed}: {parent}/{kid} min {min} but max 0\n{text}"
                );
                if let Occurs::Bounded(k) = max {
                    assert!(min <= k, "seed {seed}: {parent}/{kid} min {min} > max {k}");
                }
            }
        }
    }
}

#[test]
fn truncated_inputs_error_and_never_panic() {
    let mut rng = Lcg(0xfeed);
    for seed in 0..60u64 {
        let mut inner = Lcg(seed | 1);
        let (decl, _) = declaration(&mut inner, "root");
        let text = format!("<![INCLUDE[ {decl} ]]> <!-- c --> {decl}");
        // Truncation at every char boundary: parse succeeds or errors,
        // never panics.
        for cut in (0..text.len()).filter(|&i| text.is_char_boundary(i)) {
            let _ = Dtd::parse(&text[..cut]);
        }
        // Byte-flip mutations likewise.
        for _ in 0..40 {
            let mut bytes = text.as_bytes().to_vec();
            let at = rng.below(bytes.len());
            bytes[at] = (rng.next() % 128) as u8;
            if let Ok(s) = std::str::from_utf8(&bytes) {
                let _ = Dtd::parse(s);
            }
        }
    }
}

#[test]
fn multibyte_text_between_declarations_is_safe() {
    // Non-ASCII bytes around and between declarations must not cause
    // mid-UTF-8 slicing.
    let text = "héllo — <!ELEMENT a (b*)> “noise” <!ELEMENT b (#PCDATA)> 終";
    let dtd = Dtd::parse(text).unwrap();
    assert_eq!(dtd.children_of("a").collect::<Vec<_>>(), ["b"]);
    assert_eq!(dtd.max_count("a", "b"), Occurs::Unbounded);
}
