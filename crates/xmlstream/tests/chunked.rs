//! Streaming-boundary differential test (ISSUE: spec-conformance PR).
//!
//! Feeds documents through 1-, 3- and 7-byte chunked readers so that
//! every hazard the tokenizer handles statefully — multi-byte UTF-8
//! sequences, the CDATA `]]>` terminator, and `\r\n` line endings that
//! must normalize to a single `\n` — gets split across `fill_buf`
//! refills, and asserts the event stream is identical to a
//! whole-buffer parse.
//!
//! The same corpus doubles as the conformance oracle for the push API
//! (ISSUE 5): every document is also fed through
//! [`StreamParser::push`] in the same chunk sizes, polling between
//! pushes, and must yield the identical event stream again.

use std::io::{BufRead, Read};

use xsq_xml::{parse_to_events, ParsePoll, SaxEvent, StreamParser};

/// A reader that yields at most `chunk` bytes per `fill_buf` call.
struct Chunked<'a> {
    data: &'a [u8],
    pos: usize,
    chunk: usize,
}

impl Read for Chunked<'_> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let n = buf.len().min(self.chunk).min(self.data.len() - self.pos);
        buf[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
        self.pos += n;
        Ok(n)
    }
}

impl BufRead for Chunked<'_> {
    fn fill_buf(&mut self) -> std::io::Result<&[u8]> {
        let end = (self.pos + self.chunk).min(self.data.len());
        Ok(&self.data[self.pos..end])
    }
    fn consume(&mut self, amt: usize) {
        self.pos += amt;
    }
}

fn parse_chunked(data: &[u8], chunk: usize) -> Vec<SaxEvent> {
    let mut parser = StreamParser::new(Chunked {
        data,
        pos: 0,
        chunk,
    });
    let mut out = Vec::new();
    while let Some(ev) = parser.next_event().expect("chunked parse failed") {
        out.push(ev);
    }
    out
}

/// Push-feed the document in `chunk`-byte pieces, polling to
/// exhaustion between pushes.
fn parse_pushed(data: &[u8], chunk: usize) -> Vec<SaxEvent> {
    let mut parser = StreamParser::push_mode();
    let mut out = Vec::new();
    let mut drain = |p: &mut xsq_xml::PushParser| {
        while let ParsePoll::Event(ev) = p.poll_raw().expect("pushed parse failed") {
            out.push(ev.to_owned());
        }
    };
    for piece in data.chunks(chunk) {
        parser.push(piece);
        drain(&mut parser);
    }
    parser.finish();
    drain(&mut parser);
    out
}

/// Every chunk size must produce the event stream of a whole-buffer
/// parse — through the pull parser over a starving reader *and*
/// through the push API.
fn assert_boundary_independent(doc: &str) {
    let whole = parse_to_events(doc.as_bytes()).unwrap();
    for chunk in [1, 3, 7] {
        let chunked = parse_chunked(doc.as_bytes(), chunk);
        assert_eq!(chunked, whole, "chunk size {chunk} diverged for {doc:?}");
        let pushed = parse_pushed(doc.as_bytes(), chunk);
        assert_eq!(pushed, whole, "push chunk {chunk} diverged for {doc:?}");
    }
}

#[test]
fn multibyte_utf8_split_across_refills() {
    // 2-, 3- and 4-byte UTF-8 sequences in text, CDATA and attribute
    // values: a 1-byte chunk splits every one of them mid-sequence.
    assert_boundary_independent(
        "<doc lang=\"日本語\"><t>héllo § — ünïcode</t>\
         <![CDATA[emoji 🚀 and ｆｕｌｌｗｉｄｔｈ]]><t>末尾</t></doc>",
    );
}

#[test]
fn cdata_terminator_split_across_refills() {
    // `]]>` straddles refill boundaries at every offset; lone `]` and
    // `]]` inside the section must not terminate it early.
    assert_boundary_independent(
        "<doc><![CDATA[a]b]]x]]]><t>after</t>\
         <![CDATA[]]]]><t>brackets</t></doc>",
    );
}

#[test]
fn crlf_split_across_refills() {
    // `\r\n` pairs in text, CDATA and attribute values with the CR and
    // LF landing in different refills must still collapse to one
    // newline (XML 1.0 §2.11) / one space (§3.3.3).
    assert_boundary_independent(
        "<doc a=\"x\r\ny\rz\"><t>line1\r\nline2\rline3</t>\
         <![CDATA[raw\r\ncdata\r]]></doc>",
    );
}

#[test]
fn entity_references_split_across_refills() {
    // `&amp;` and numeric character references cut mid-reference.
    assert_boundary_independent(
        "<doc a=\"p &amp; q &#10; r\"><t>&lt;tag&gt; &#x1F680; &apos;</t></doc>",
    );
}

#[test]
fn combined_hazards_one_document() {
    // All of the above in one document, plus tags/comments/PIs that
    // themselves straddle boundaries.
    assert_boundary_independent(
        "<?xml version=\"1.0\"?><!-- ünïcode — comment -->\
         <pub year=\"2002\r\n2003\"><book id=\"1\"><name>日本\r\nLanguage</name>\
         <![CDATA[x]]y\r\nz🚀]]><price>10.5</price></book><?pi data?></pub>",
    );
}
