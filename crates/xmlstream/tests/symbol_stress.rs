//! Multi-thread stress test for the global tag symbol table.
//!
//! The interner backs the zero-copy event path: every tokenizer thread
//! interns tag names into one global table, and the multi-query dispatch
//! index relies on `Sym` identity being stable — the same name must map
//! to the same symbol from every thread, forever. N threads intern
//! overlapping tag sets concurrently and every assignment is checked for
//! stability and round-tripping.

use std::collections::HashMap;
use std::sync::{Arc, Barrier};
use std::thread;

use xsq_xml::Sym;

#[test]
fn concurrent_interning_is_stable_across_threads() {
    const THREADS: usize = 8;
    const ROUNDS: usize = 50;

    // Overlapping tag sets: every thread shares the `common*` tags and
    // owns a private `t{i}-*` family, so the table sees both racing
    // inserts of the same name and disjoint inserts.
    let names: Vec<Vec<String>> = (0..THREADS)
        .map(|t| {
            let mut v: Vec<String> = (0..32).map(|i| format!("common{i}")).collect();
            v.extend((0..16).map(|i| format!("t{t}-tag{i}")));
            v
        })
        .collect();

    let barrier = Arc::new(Barrier::new(THREADS));
    let handles: Vec<_> = names
        .into_iter()
        .map(|mine| {
            let barrier = Arc::clone(&barrier);
            thread::spawn(move || {
                barrier.wait();
                let mut seen: HashMap<String, Sym> = HashMap::new();
                for _ in 0..ROUNDS {
                    for name in &mine {
                        let sym = Sym::intern(name);
                        // Same name -> same symbol, on every re-intern.
                        let prev = seen.entry(name.clone()).or_insert(sym);
                        assert_eq!(*prev, sym, "unstable symbol for {name}");
                        // The symbol round-trips to its exact name.
                        assert_eq!(sym.as_str(), name.as_str());
                        // And lookup agrees with intern.
                        assert_eq!(Sym::lookup(name), Some(sym));
                    }
                }
                seen
            })
        })
        .collect();

    let per_thread: Vec<HashMap<String, Sym>> =
        handles.into_iter().map(|h| h.join().unwrap()).collect();

    // Cross-thread agreement on the shared tags.
    for maps in per_thread.windows(2) {
        for (name, sym) in &maps[0] {
            if let Some(other) = maps[1].get(name) {
                assert_eq!(sym, other, "threads disagree on {name}");
            }
        }
    }

    // Distinct names got distinct symbols.
    let mut by_sym: HashMap<Sym, &str> = HashMap::new();
    for map in &per_thread {
        for (name, sym) in map {
            let prior = by_sym.insert(*sym, name);
            assert!(
                prior.is_none() || prior == Some(name.as_str()),
                "symbol collision: {sym:?} maps to both {prior:?} and {name}"
            );
        }
    }
}
