//! Differential property tests for the scan-kernel family.
//!
//! Every tier available on this machine (scalar, SWAR, SSE2, AVX2) must
//! be byte-identical to a naive reference scan across:
//!
//! - haystack lengths 0–130 (spans the 8-byte SWAR step, the 16-byte
//!   two-lane/SSE2 blocks, the 32-byte AVX2 blocks, and every tail
//!   remainder shape);
//! - every needle position within each length, including positions that
//!   land in the final partial block (needle-in-remainder) and the
//!   needle-absent case;
//! - misaligned slice starts (offsets 0–31 into a larger buffer), so
//!   unaligned vector loads are exercised at every phase.
//!
//! Under Miri the sweeps shrink (Miri is ~1000× slower) but still cover
//! each block-size boundary; the vector tiers are compiled out under
//! Miri, so only scalar and SWAR run there — which is exactly the pair
//! Miri can check for UB.

use xsq_xml::scan::{available_kernels, Kernel, TEXT_DELIMS};

/// The always-correct reference all tiers are measured against.
fn naive(haystack: &[u8], needles: &[u8]) -> Option<usize> {
    haystack.iter().position(|b| needles.contains(b))
}

/// Invoke `kernel`'s finder of matching arity.
fn run(kernel: Kernel, haystack: &[u8], needles: &[u8]) -> Option<usize> {
    match *needles {
        [a] => kernel.find_byte(haystack, a),
        [a, b] => kernel.find_byte2(haystack, a, b),
        [a, b, c] => kernel.find_byte3(haystack, a, b, c),
        [a, b, c, d] => kernel.find_byte4(haystack, a, b, c, d),
        _ => unreachable!("finders are arity 1–4"),
    }
}

fn max_len() -> usize {
    if cfg!(miri) {
        40
    } else {
        130
    }
}

fn offsets() -> Vec<usize> {
    if cfg!(miri) {
        vec![0, 1, 7, 15, 31]
    } else {
        (0..32).collect()
    }
}

/// For each tier, each length, and each needle position: exactly one
/// needle planted, the reference and the tier must agree.
#[test]
fn every_position_every_length() {
    let needle_sets: [&[u8]; 4] = [b"<", b"<&", b"<&\r", &TEXT_DELIMS];
    for kernel in available_kernels() {
        for needles in needle_sets {
            for len in 0..=max_len() {
                let mut buf = vec![b'x'; len];
                // Needle-absent case first.
                assert_eq!(
                    run(kernel, &buf, needles),
                    None,
                    "{kernel} len={len} absent"
                );
                for pos in 0..len {
                    buf[pos] = needles[pos % needles.len()];
                    let got = run(kernel, &buf, needles);
                    assert_eq!(
                        got,
                        Some(pos),
                        "{kernel} len={len} pos={pos} needles={needles:?}"
                    );
                    buf[pos] = b'x';
                }
            }
        }
    }
}

/// Misaligned starts: the same sweep but on slices beginning at every
/// offset 0–31 into a page-ish buffer, so vector loads hit every
/// alignment phase.
#[test]
fn misaligned_slice_starts() {
    let lens: Vec<usize> = if cfg!(miri) {
        vec![0, 1, 7, 8, 15, 16, 17, 31, 32, 33]
    } else {
        (0..=66).collect()
    };
    let mut page = [b'x'; 32 + 130 + 32];
    for kernel in available_kernels() {
        for &off in &offsets() {
            for &len in &lens {
                // Plant a needle just past the slice end: must NOT be found.
                page[off + len] = b'<';
                {
                    let slice = &page[off..off + len];
                    assert_eq!(
                        kernel.find_byte(slice, b'<'),
                        None,
                        "{kernel} off={off} len={len} past-end leak"
                    );
                }
                page[off + len] = b'x';
                // And at the last in-slice byte (the remainder): found.
                if len > 0 {
                    page[off + len - 1] = b'<';
                    let slice = &page[off..off + len];
                    assert_eq!(
                        kernel.find_byte(slice, b'<'),
                        Some(len - 1),
                        "{kernel} off={off} len={len} remainder"
                    );
                    page[off + len - 1] = b'x';
                }
            }
        }
    }
}

/// Multiple needles present: the *first* match wins regardless of which
/// needle it is, for every pair of positions.
#[test]
fn first_of_several_matches_wins() {
    let limit = if cfg!(miri) { 24 } else { 70 };
    for kernel in available_kernels() {
        for len in 2..=limit {
            let mut buf = vec![b'x'; len];
            for a in 0..len {
                for b in (a + 1)..len {
                    buf[a] = b'&';
                    buf[b] = b'<';
                    let expect = naive(&buf, b"<&");
                    assert_eq!(expect, Some(a));
                    assert_eq!(
                        run(kernel, &buf, b"<&"),
                        expect,
                        "{kernel} len={len} a={a} b={b}"
                    );
                    buf[a] = b'x';
                    buf[b] = b'x';
                }
            }
        }
    }
}

/// Randomized-ish content: a pseudo-random byte soup compared against
/// the reference for all four arities on every tier.
#[test]
fn byte_soup_differential() {
    let total = if cfg!(miri) { 200 } else { 4096 };
    // xorshift; deterministic so failures reproduce.
    let mut state = 0x2003_c0ffee_u64;
    let mut soup = Vec::with_capacity(total);
    for _ in 0..total {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        soup.push((state >> 33) as u8);
    }
    let needle_sets: [&[u8]; 4] = [b"<", b"<&", b"<&\r", &TEXT_DELIMS];
    for kernel in available_kernels() {
        for needles in needle_sets {
            let mut i = 0;
            while i < soup.len() {
                let window = &soup[i..];
                let expect = naive(window, needles);
                assert_eq!(
                    run(kernel, window, needles),
                    expect,
                    "{kernel} i={i} needles={needles:?}"
                );
                i += expect.map_or(window.len(), |p| p + 1);
            }
        }
    }
}

/// `classify_run` is definitionally `find_byte4` over the text delimiter
/// set, with `len` standing in for "no delimiter".
#[test]
fn classify_run_matches_find_byte4() {
    let limit = if cfg!(miri) { 40 } else { 130 };
    let [d1, d2, d3, d4] = TEXT_DELIMS;
    for kernel in available_kernels() {
        for len in 0..=limit {
            let mut buf = vec![b'a'; len];
            assert_eq!(kernel.classify_run(&buf), len, "{kernel} clean len={len}");
            for pos in 0..len {
                for delim in TEXT_DELIMS {
                    buf[pos] = delim;
                    assert_eq!(
                        kernel.classify_run(&buf),
                        kernel.find_byte4(&buf, d1, d2, d3, d4).unwrap(),
                        "{kernel} len={len} pos={pos} delim={delim}"
                    );
                    assert_eq!(kernel.classify_run(&buf), pos);
                    buf[pos] = b'a';
                }
            }
        }
    }
}

/// The dispatching module-level functions agree with the tier they claim
/// to be running (the active kernel).
#[test]
fn dispatch_matches_active_kernel() {
    let active = xsq_xml::scan::active_kernel();
    assert!(available_kernels().contains(&active));
    let buf: Vec<u8> = (0..160)
        .map(|i| if i == 97 { b'<' } else { b'x' })
        .collect();
    assert_eq!(xsq_xml::scan::find_byte(&buf, b'<'), Some(97));
    assert_eq!(active.find_byte(&buf, b'<'), Some(97));
    assert_eq!(xsq_xml::scan::find_byte2(&buf, b'&', b'<'), Some(97));
    assert_eq!(xsq_xml::scan::find_byte3(&buf, b'&', b']', b'<'), Some(97));
    assert_eq!(
        xsq_xml::scan::find_byte4(&buf, b'&', b']', b'\r', b'<'),
        Some(97)
    );
    let clean = vec![b'x'; 33];
    assert_eq!(xsq_xml::scan::classify_run(&clean), 33);
}
