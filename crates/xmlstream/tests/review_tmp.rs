use xsq_xml::event::SaxEvent;
use xsq_xml::StreamParser;

fn text_of(doc: &str) -> Result<String, String> {
    let mut p = StreamParser::new(std::io::Cursor::new(doc.as_bytes().to_vec()));
    let mut out = String::new();
    loop {
        match p.next_event() {
            Ok(Some(SaxEvent::Text { text, .. })) => out.push_str(&text),
            Ok(Some(SaxEvent::EndDocument)) => return Ok(out),
            Ok(Some(_)) => {}
            Ok(None) => return Ok(out),
            Err(e) => return Err(format!("{e}")),
        }
    }
}

#[test]
fn cdata_edges() {
    assert_eq!(text_of("<r><![CDATA[]]></r>").unwrap(), "");
    assert_eq!(text_of("<r><![CDATA[a]]></r>").unwrap(), "a");
    assert_eq!(text_of("<r><![CDATA[a]b]]></r>").unwrap(), "a]b");
    assert_eq!(text_of("<r><![CDATA[a]]]></r>").unwrap(), "a]");
    assert_eq!(text_of("<r><![CDATA[a]]]]></r>").unwrap(), "a]]");
    assert_eq!(text_of("<r><![CDATA[]>]]></r>").unwrap(), "]>");
    assert_eq!(text_of("<r><![CDATA[x]] >]]></r>").unwrap(), "x]] >");
    assert!(text_of("<r><![CDATA[never ends").is_err());
    assert!(text_of("<r><![CDATA[ends with ]").is_err());
    assert!(text_of("<r><![CDATA[ends with ]]").is_err());
}

#[test]
fn comment_pi_edges() {
    assert_eq!(text_of("<r><!-- c -->t</r>").unwrap(), "t");
    assert_eq!(text_of("<r><!---->t</r>").unwrap(), "t");
    assert_eq!(text_of("<r><!----->t</r>").unwrap(), "t");
    assert!(text_of("<r><!--->").is_err());
    assert_eq!(text_of("<r><?pi??>t</r>").unwrap(), "t");
    assert_eq!(text_of("<r><?pi a?b?>t</r>").unwrap(), "t");
    assert!(text_of("<r><?pi never").is_err());
}

#[test]
fn text_edges() {
    assert_eq!(text_of("<r>a\r\nb\rc</r>").unwrap(), "a\nb\nc");
    assert_eq!(text_of("<r>&amp;&lt;x</r>").unwrap(), "&<x");
    assert_eq!(text_of("<r>\r</r>").unwrap(), "\n");
    assert_eq!(text_of("<r>&amp;</r>").unwrap(), "&");
    assert_eq!(text_of("<r>a]b]]c</r>").unwrap(), "a]b]]c");
    assert!(text_of("<r>unterminated").is_err());
}
