//! Parser robustness: chunked reads (buffer-boundary independence),
//! arbitrary-bytes no-panic fuzzing, and idempotent re-serialization.

use std::io::{BufRead, Read};

use xsq_xml::{parse_to_events, SaxEvent, StreamParser};

/// A reader that yields at most `chunk` bytes per `fill_buf` call —
/// exercises every token-straddles-a-chunk-boundary path.
struct Trickle<'a> {
    data: &'a [u8],
    pos: usize,
    chunk: usize,
}

impl Read for Trickle<'_> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let n = buf.len().min(self.chunk).min(self.data.len() - self.pos);
        buf[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
        self.pos += n;
        Ok(n)
    }
}

impl BufRead for Trickle<'_> {
    fn fill_buf(&mut self) -> std::io::Result<&[u8]> {
        let end = (self.pos + self.chunk).min(self.data.len());
        Ok(&self.data[self.pos..end])
    }
    fn consume(&mut self, amt: usize) {
        self.pos += amt;
    }
}

fn parse_trickled(data: &[u8], chunk: usize) -> Result<Vec<SaxEvent>, xsq_xml::Error> {
    let mut p = StreamParser::new(Trickle {
        data,
        pos: 0,
        chunk,
    });
    let mut out = Vec::new();
    while let Some(ev) = p.next_event()? {
        out.push(ev);
    }
    Ok(out)
}

const SAMPLE: &str = r#"<?xml version="1.0"?><!-- c --><pub>
  <book id="1" cat="a&amp;b"><name>First &lt;ed.&gt;</name>
  <![CDATA[raw <stuff> here]]><price>10.00</price></book>
  <empty/><year>2002</year>
</pub>"#;

#[test]
fn one_byte_chunks_equal_whole_buffer() {
    let whole = parse_to_events(SAMPLE.as_bytes()).unwrap();
    for chunk in [1, 2, 3, 7, 64] {
        let trickled = parse_trickled(SAMPLE.as_bytes(), chunk).unwrap();
        assert_eq!(trickled, whole, "chunk size {chunk}");
    }
}

#[test]
fn errors_are_chunk_size_independent() {
    let bad = b"<a><b>text</a></b>";
    let e1 = parse_trickled(bad, 1).unwrap_err();
    let e2 = parse_trickled(bad, 1024).unwrap_err();
    assert_eq!(e1, e2);
}

// Opt-in (`RUSTFLAGS="--cfg xsq_proptest"`): the dependency needs network access.
#[cfg(xsq_proptest)]
mod props {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn arbitrary_bytes_never_panic(data in prop::collection::vec(any::<u8>(), 0..512)) {
            // Any outcome is fine; panicking or looping is not.
            let _ = parse_to_events(&data);
        }

        #[test]
        fn arbitrary_ascii_never_panics(s in "[ -~]{0,256}") {
            let _ = parse_to_events(s.as_bytes());
        }

        #[test]
        fn xmlish_soup_never_panics(s in r#"[<>/a-c ="'&;!\[\]-]{0,200}"#) {
            let _ = parse_to_events(s.as_bytes());
        }

        #[test]
        fn valid_docs_parse_identically_at_every_chunk_size(
            texts in prop::collection::vec("[a-z ]{0,8}", 1..6),
            chunk in 1usize..32,
        ) {
            let mut doc = String::from("<r>");
            for t in &texts {
                doc.push_str(&format!("<e>{t}</e>"));
            }
            doc.push_str("</r>");
            let whole = parse_to_events(doc.as_bytes()).unwrap();
            let trickled = parse_trickled(doc.as_bytes(), chunk).unwrap();
            prop_assert_eq!(whole, trickled);
        }

        #[test]
        fn reserialization_is_idempotent(
            texts in prop::collection::vec("[a-z<&>\" ]{0,10}", 0..5),
        ) {
            // Build a doc with escaped content, parse, write, parse, write:
            // the second and later serializations must be a fixed point.
            let mut doc = String::from("<r>");
            for t in &texts {
                doc.push_str("<e>");
                xsq_xml::entities::escape_text_into(t, &mut doc);
                doc.push_str("</e>");
            }
            doc.push_str("</r>");
            let ev1 = parse_to_events(doc.as_bytes()).unwrap();
            let s1 = xsq_xml::writer::events_to_string(&ev1);
            let ev2 = parse_to_events(s1.as_bytes()).unwrap();
            let s2 = xsq_xml::writer::events_to_string(&ev2);
            prop_assert_eq!(s1, s2);
        }
    }
}
