//! Dataset statistics — the columns of the paper's Fig. 15.
//!
//! For each dataset the paper reports: size (MB), text size (MB), number
//! of elements, average/maximum depth, and average tag length. This module
//! computes the same quantities in one streaming pass so the experiment
//! harness can print its own Fig. 15 for the generated datasets.

use crate::error::Result;
use crate::event::RawEvent;
use crate::parser::StreamParser;

/// The Fig. 15 statistics for one dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetStats {
    /// Total size of the serialized document in bytes.
    pub size_bytes: u64,
    /// Bytes of character data (text content, after entity decoding).
    pub text_bytes: u64,
    /// Number of elements.
    pub elements: u64,
    /// Mean depth over all elements.
    pub avg_depth: f64,
    /// Maximum element depth.
    pub max_depth: u32,
    /// Mean tag-name length over all elements.
    pub avg_tag_length: f64,
    /// Number of attributes (not in Fig. 15, useful for generator tuning).
    pub attributes: u64,
}

impl DatasetStats {
    /// Render one row in the layout of Fig. 15.
    pub fn to_row(&self, name: &str) -> String {
        format!(
            "{:<8} {:>9.2} {:>9.2} {:>12} {:>6.2}/{:<4} {:>8.2}",
            name,
            self.size_bytes as f64 / (1024.0 * 1024.0),
            self.text_bytes as f64 / (1024.0 * 1024.0),
            self.elements,
            self.avg_depth,
            self.max_depth,
            self.avg_tag_length,
        )
    }
}

/// Compute [`DatasetStats`] for a serialized document.
pub fn dataset_stats(input: &[u8]) -> Result<DatasetStats> {
    let mut parser = StreamParser::new(input);
    let mut elements = 0u64;
    let mut attributes = 0u64;
    let mut text_bytes = 0u64;
    let mut depth_sum = 0u64;
    let mut max_depth = 0u32;
    let mut tag_len_sum = 0u64;
    while let Some(ev) = parser.next_raw()? {
        match ev {
            RawEvent::Begin {
                name,
                attributes: attrs,
                depth,
            } => {
                elements += 1;
                attributes += attrs.len() as u64;
                depth_sum += depth as u64;
                max_depth = max_depth.max(depth);
                tag_len_sum += name.as_str().len() as u64;
            }
            RawEvent::Text { text, .. } => {
                text_bytes += text.len() as u64;
            }
            _ => {}
        }
    }
    let n = elements.max(1) as f64;
    Ok(DatasetStats {
        size_bytes: input.len() as u64,
        text_bytes,
        elements,
        avg_depth: depth_sum as f64 / n,
        max_depth,
        avg_tag_length: tag_len_sum as f64 / n,
        attributes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_for_tiny_document() {
        let doc = b"<aa><bb x=\"1\">hello</bb><bb>world</bb></aa>";
        let s = dataset_stats(doc).unwrap();
        assert_eq!(s.size_bytes, doc.len() as u64);
        assert_eq!(s.elements, 3);
        assert_eq!(s.attributes, 1);
        assert_eq!(s.text_bytes, 10);
        assert_eq!(s.max_depth, 2);
        assert!((s.avg_depth - (1 + 2 + 2) as f64 / 3.0).abs() < 1e-9);
        assert!((s.avg_tag_length - 2.0).abs() < 1e-9);
    }

    #[test]
    fn empty_element_document() {
        let s = dataset_stats(b"<a/>").unwrap();
        assert_eq!(s.elements, 1);
        assert_eq!(s.text_bytes, 0);
        assert_eq!(s.max_depth, 1);
    }

    #[test]
    fn row_formatting_contains_name() {
        let s = dataset_stats(b"<a>x</a>").unwrap();
        let row = s.to_row("TINY");
        assert!(row.starts_with("TINY"));
    }
}
