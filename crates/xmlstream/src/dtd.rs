//! A small DTD reader: element declarations and the parent→child graph.
//!
//! The XSQ paper leaves schema awareness as future work ("it is an
//! interesting topic to automatically incorporate schema information, if
//! available, into the system for optimization", §5) and cites Choi's
//! survey that 35 of 60 real DTDs are *recursive* — the property that
//! makes closures expensive. This module parses the `<!ELEMENT …>`
//! declarations of a DTD (standalone text or a DOCTYPE internal subset)
//! into a child graph, with reachability and recursion queries that the
//! schema optimizer in `xsq-core` builds on.
//!
//! Content-model *structure* (sequencing, repetition) is deliberately
//! ignored: the optimizer only needs "which tags may appear (anywhere)
//! inside which", so `(a, (b | c)*, d?)` reads as the set `{a, b, c, d}`.

use std::collections::{BTreeMap, BTreeSet};

use crate::error::{Error, Result};

/// A parsed DTD: for each declared element, the set of child element
/// tags its content model allows.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Dtd {
    children: BTreeMap<String, BTreeSet<String>>,
}

impl Dtd {
    /// Parse DTD text: every `<!ELEMENT name (content)>` declaration is
    /// read; other declarations (`ATTLIST`, `ENTITY`, comments, PIs) are
    /// skipped.
    pub fn parse(text: &str) -> Result<Dtd> {
        let mut dtd = Dtd::default();
        let bytes = text.as_bytes();
        let mut i = 0;
        while i < bytes.len() {
            match bytes[i] {
                b'<' if text[i..].starts_with("<!--") => {
                    i = text[i..]
                        .find("-->")
                        .map(|j| i + j + 3)
                        .ok_or(Error::UnexpectedEof {
                            offset: i as u64,
                            context: "DTD comment",
                        })?;
                }
                b'<' if text[i..].starts_with("<!ELEMENT") => {
                    let end = text[i..].find('>').ok_or(Error::UnexpectedEof {
                        offset: i as u64,
                        context: "ELEMENT declaration",
                    })?;
                    dtd.read_element(&text[i + "<!ELEMENT".len()..i + end], i as u64)?;
                    i += end + 1;
                }
                b'<' => {
                    // Some other declaration or PI: skip to '>'.
                    i = text[i..]
                        .find('>')
                        .map(|j| i + j + 1)
                        .ok_or(Error::UnexpectedEof {
                            offset: i as u64,
                            context: "DTD declaration",
                        })?;
                }
                _ => i += 1,
            }
        }
        Ok(dtd)
    }

    fn read_element(&mut self, body: &str, offset: u64) -> Result<()> {
        let mut parts = body.split_whitespace();
        let name = parts
            .next()
            .ok_or_else(|| Error::syntax(offset, "ELEMENT declaration without a name"))?;
        let content: String = parts.collect::<Vec<_>>().join(" ");
        let mut kids = BTreeSet::new();
        // Tag names are the identifier tokens of the content model,
        // minus the keywords.
        let mut token = String::new();
        for c in content.chars().chain(Some(' ')) {
            if c.is_alphanumeric() || c == '_' || c == '-' || c == '.' || c == ':' || c == '#' {
                token.push(c);
            } else {
                if !token.is_empty() && !matches!(token.as_str(), "#PCDATA" | "EMPTY" | "ANY") {
                    kids.insert(std::mem::take(&mut token));
                }
                token.clear();
            }
        }
        self.children
            .entry(name.to_string())
            .or_default()
            .extend(kids);
        Ok(())
    }

    /// Build a DTD directly from edges (tests, programmatic schemas).
    pub fn from_edges(edges: &[(&str, &[&str])]) -> Dtd {
        let mut dtd = Dtd::default();
        for (parent, kids) in edges {
            dtd.children
                .entry(parent.to_string())
                .or_default()
                .extend(kids.iter().map(|s| s.to_string()));
        }
        dtd
    }

    /// Declared element names.
    pub fn elements(&self) -> impl Iterator<Item = &str> {
        self.children.keys().map(String::as_str)
    }

    /// Direct children allowed inside `tag` (empty if undeclared).
    pub fn children_of(&self, tag: &str) -> impl Iterator<Item = &str> {
        self.children
            .get(tag)
            .into_iter()
            .flat_map(|s| s.iter().map(String::as_str))
    }

    /// Is `tag` declared at all?
    pub fn declares(&self, tag: &str) -> bool {
        self.children.contains_key(tag)
    }

    /// Every tag reachable *strictly below* `tag` (transitive closure of
    /// the child relation).
    pub fn descendants_of(&self, tag: &str) -> BTreeSet<String> {
        let mut seen = BTreeSet::new();
        let mut work: Vec<&str> = self.children_of(tag).collect();
        while let Some(t) = work.pop() {
            if seen.insert(t.to_string()) {
                work.extend(self.children_of(t));
            }
        }
        seen
    }

    /// Tags reachable at depth ≥ 2 below `tag` (descendants of its
    /// children) — the test for `//t ≡ /t` rewrites.
    pub fn deep_descendants_of(&self, tag: &str) -> BTreeSet<String> {
        let mut deep = BTreeSet::new();
        for child in self.children_of(tag) {
            deep.extend(self.descendants_of(child));
        }
        deep
    }

    /// Is the schema recursive — can some element contain itself at any
    /// depth? (Choi's survey: 35 of 60 real DTDs are.)
    pub fn is_recursive(&self) -> bool {
        self.children
            .keys()
            .any(|t| self.descendants_of(t).contains(t))
    }

    /// Elements that never occur as anyone's child: document-element
    /// candidates.
    pub fn root_candidates(&self) -> BTreeSet<String> {
        let mut all: BTreeSet<String> = self.children.keys().cloned().collect();
        for kids in self.children.values() {
            for k in kids {
                all.remove(k);
            }
        }
        all
    }
}

/// Extract and parse the internal DTD subset of a document's `DOCTYPE`
/// declaration, if any: `<!DOCTYPE name [ …subset… ]>`.
pub fn extract_from_document(input: &[u8]) -> Option<Dtd> {
    let text = std::str::from_utf8(input).ok()?;
    let start = text.find("<!DOCTYPE")?;
    let open = text[start..].find('[')? + start;
    // Find the matching ']' (the subset itself contains no brackets in
    // the declarations we read).
    let close = text[open..].find(']')? + open;
    Dtd::parse(&text[open + 1..close]).ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    const PUB_DTD: &str = r#"
        <!-- bibliography schema -->
        <!ELEMENT pub (year?, (book | pub)*)>
        <!ELEMENT book (name, author*, price*)>
        <!ELEMENT name (#PCDATA)>
        <!ELEMENT author (#PCDATA)>
        <!ELEMENT price (#PCDATA)>
        <!ELEMENT year (#PCDATA)>
        <!ATTLIST book id CDATA #IMPLIED>
    "#;

    #[test]
    fn parses_element_declarations() {
        let dtd = Dtd::parse(PUB_DTD).unwrap();
        let kids: Vec<&str> = dtd.children_of("pub").collect();
        assert_eq!(kids, ["book", "pub", "year"]);
        let kids: Vec<&str> = dtd.children_of("book").collect();
        assert_eq!(kids, ["author", "name", "price"]);
        assert!(dtd.declares("name"));
        assert_eq!(dtd.children_of("name").count(), 0);
    }

    #[test]
    fn keywords_are_not_children() {
        let dtd =
            Dtd::parse("<!ELEMENT a (#PCDATA | b)*> <!ELEMENT e EMPTY> <!ELEMENT x ANY>").unwrap();
        assert_eq!(dtd.children_of("a").collect::<Vec<_>>(), ["b"]);
        assert_eq!(dtd.children_of("e").count(), 0);
        assert_eq!(dtd.children_of("x").count(), 0);
    }

    #[test]
    fn reachability_and_recursion() {
        let dtd = Dtd::parse(PUB_DTD).unwrap();
        let desc = dtd.descendants_of("pub");
        assert!(desc.contains("author") && desc.contains("pub"));
        assert!(dtd.is_recursive());

        let flat = Dtd::from_edges(&[("r", &["a", "b"]), ("a", &["c"])]);
        assert!(!flat.is_recursive());
        assert_eq!(
            flat.descendants_of("r"),
            ["a", "b", "c"].iter().map(|s| s.to_string()).collect()
        );
    }

    #[test]
    fn deep_descendants_exclude_direct_only_children() {
        let dtd = Dtd::from_edges(&[("r", &["a"]), ("a", &["b"]), ("b", &[])]);
        // 'a' is a direct child of r and nothing deeper re-introduces it.
        let deep = dtd.deep_descendants_of("r");
        assert!(deep.contains("b"));
        assert!(!deep.contains("a"));
    }

    #[test]
    fn root_candidates_are_unparented_elements() {
        let dtd = Dtd::parse(PUB_DTD).unwrap();
        // pub occurs as its own child, so nothing is unparented except…
        assert!(dtd.root_candidates().is_empty());
        let flat = Dtd::from_edges(&[("r", &["a"]), ("a", &[])]);
        assert_eq!(flat.root_candidates().len(), 1);
        assert!(flat.root_candidates().contains("r"));
    }

    #[test]
    fn unterminated_declarations_error() {
        assert!(Dtd::parse("<!ELEMENT a (b").is_err());
        assert!(Dtd::parse("<!-- never closed").is_err());
    }

    #[test]
    fn extracts_internal_subset_from_a_document() {
        let doc = br#"<?xml version="1.0"?>
            <!DOCTYPE r [
              <!ELEMENT r (a*)>
              <!ELEMENT a (#PCDATA)>
            ]>
            <r><a>x</a></r>"#;
        let dtd = extract_from_document(doc).expect("subset present");
        assert_eq!(dtd.children_of("r").collect::<Vec<_>>(), ["a"]);
        assert!(extract_from_document(b"<r/>").is_none());
        assert!(extract_from_document(b"<!DOCTYPE r SYSTEM \"x.dtd\"><r/>").is_none());
    }
}
