//! A DTD reader: element declarations, content models, and the
//! parent→child graph.
//!
//! The XSQ paper leaves schema awareness as future work ("it is an
//! interesting topic to automatically incorporate schema information, if
//! available, into the system for optimization", §5) and cites Choi's
//! survey that 35 of 60 real DTDs are *recursive* — the property that
//! makes closures expensive. This module parses the `<!ELEMENT …>`
//! declarations of a DTD (standalone text or a DOCTYPE internal subset)
//! into two views the optimizers in `xsq-core` build on:
//!
//! * the flattened child *graph* — "which tags may appear (anywhere)
//!   inside which", so `(a, (b | c)*, d?)` reads as the set
//!   `{a, b, c, d}`; this drives closure-elimination and reachability;
//! * the structured [`ContentModel`] — sequencing, choice, and the
//!   `?`/`*`/`+` repetition suffixes, so the same declaration also
//!   answers *how many* `b` children one parent instance may hold
//!   ([`Dtd::max_count`]) and how many it must ([`Dtd::min_count`]);
//!   these multiplicities are what the static memory-bound analyzer
//!   (Koch et al.'s FluX line of buffer minimization) interprets.
//!
//! Conditional sections (`<![INCLUDE[…]]>` / `<![IGNORE[…]]>`, XML 1.0
//! §3.4 without parameter entities) are honored, mixed content
//! (`(#PCDATA | a | b)*`) parses into [`ContentModel::Mixed`], and every
//! malformed declaration is a positioned [`Error`] — never a panic.

use std::collections::{BTreeMap, BTreeSet};

use crate::error::{Error, Result};

/// An occurrence count read off a content model: either a concrete
/// maximum or "no static limit" (a `*`/`+` repetition on the path).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Occurs {
    Bounded(u64),
    Unbounded,
}

impl Occurs {
    pub const ZERO: Occurs = Occurs::Bounded(0);
    pub const ONE: Occurs = Occurs::Bounded(1);

    pub fn is_zero(&self) -> bool {
        *self == Occurs::ZERO
    }

    pub fn is_bounded(&self) -> bool {
        matches!(self, Occurs::Bounded(_))
    }

    /// Saturating sum (sequence composition: counts add).
    pub fn plus(self, other: Occurs) -> Occurs {
        match (self, other) {
            (Occurs::Bounded(a), Occurs::Bounded(b)) => Occurs::Bounded(a.saturating_add(b)),
            _ => Occurs::Unbounded,
        }
    }

    /// Saturating product (repetition composition: counts multiply).
    /// Zero annihilates even `Unbounded`: a child that cannot occur in
    /// the body occurs zero times however often the body repeats.
    pub fn times(self, other: Occurs) -> Occurs {
        match (self, other) {
            (Occurs::Bounded(0), _) | (_, Occurs::Bounded(0)) => Occurs::ZERO,
            (Occurs::Bounded(a), Occurs::Bounded(b)) => Occurs::Bounded(a.saturating_mul(b)),
            _ => Occurs::Unbounded,
        }
    }

    /// Pointwise maximum (choice composition: the worse branch wins).
    pub fn join(self, other: Occurs) -> Occurs {
        match (self, other) {
            (Occurs::Bounded(a), Occurs::Bounded(b)) => Occurs::Bounded(a.max(b)),
            _ => Occurs::Unbounded,
        }
    }
}

impl std::fmt::Display for Occurs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Occurs::Bounded(n) => write!(f, "{n}"),
            Occurs::Unbounded => write!(f, "unbounded"),
        }
    }
}

/// A repetition suffix on a name or group: nothing, `?`, `*`, or `+`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rep {
    One,
    Opt,
    Star,
    Plus,
}

impl Rep {
    pub fn max_occurs(self) -> Occurs {
        match self {
            Rep::One | Rep::Opt => Occurs::ONE,
            Rep::Star | Rep::Plus => Occurs::Unbounded,
        }
    }

    pub fn min_occurs(self) -> u64 {
        match self {
            Rep::One | Rep::Plus => 1,
            Rep::Opt | Rep::Star => 0,
        }
    }

    fn suffix(self) -> &'static str {
        match self {
            Rep::One => "",
            Rep::Opt => "?",
            Rep::Star => "*",
            Rep::Plus => "+",
        }
    }
}

/// One content particle: a name or a parenthesized group, with its
/// repetition suffix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Particle {
    Name(String, Rep),
    /// `(a, b, c)` — all in order.
    Seq(Vec<Particle>, Rep),
    /// `(a | b | c)` — exactly one.
    Choice(Vec<Particle>, Rep),
}

impl Particle {
    fn rep(&self) -> Rep {
        match self {
            Particle::Name(_, r) | Particle::Seq(_, r) | Particle::Choice(_, r) => *r,
        }
    }

    fn collect_names(&self, out: &mut BTreeSet<String>) {
        match self {
            Particle::Name(n, _) => {
                out.insert(n.clone());
            }
            Particle::Seq(items, _) | Particle::Choice(items, _) => {
                for p in items {
                    p.collect_names(out);
                }
            }
        }
    }

    /// Most instances of `tag` one expansion of this particle can hold.
    pub fn max_occurs(&self, tag: &str) -> Occurs {
        let inner = match self {
            Particle::Name(n, _) => {
                if n == tag {
                    Occurs::ONE
                } else {
                    Occurs::ZERO
                }
            }
            Particle::Seq(items, _) => items
                .iter()
                .fold(Occurs::ZERO, |acc, p| acc.plus(p.max_occurs(tag))),
            Particle::Choice(items, _) => items
                .iter()
                .fold(Occurs::ZERO, |acc, p| acc.join(p.max_occurs(tag))),
        };
        inner.times(self.rep().max_occurs())
    }

    /// Fewest instances of `tag` every expansion of this particle must
    /// hold (the always-true witness for `[tag]` existence predicates).
    pub fn min_occurs(&self, tag: &str) -> u64 {
        let inner = match self {
            Particle::Name(n, _) => u64::from(n == tag),
            Particle::Seq(items, _) => items
                .iter()
                .fold(0u64, |acc, p| acc.saturating_add(p.min_occurs(tag))),
            Particle::Choice(items, _) => {
                items.iter().map(|p| p.min_occurs(tag)).min().unwrap_or(0)
            }
        };
        inner.saturating_mul(self.rep().min_occurs())
    }

    /// Most *element children of any tag* one expansion can hold — the
    /// fan-out that bounds how many text runs interleave inside a parent.
    pub fn max_children(&self) -> Occurs {
        let inner = match self {
            Particle::Name(_, _) => Occurs::ONE,
            Particle::Seq(items, _) => items
                .iter()
                .fold(Occurs::ZERO, |acc, p| acc.plus(p.max_children())),
            Particle::Choice(items, _) => items
                .iter()
                .fold(Occurs::ZERO, |acc, p| acc.join(p.max_children())),
        };
        inner.times(self.rep().max_occurs())
    }
}

impl std::fmt::Display for Particle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Particle::Name(n, r) => write!(f, "{n}{}", r.suffix()),
            Particle::Seq(items, r) => {
                write!(f, "(")?;
                for (i, p) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{p}")?;
                }
                write!(f, "){}", r.suffix())
            }
            Particle::Choice(items, r) => {
                write!(f, "(")?;
                for (i, p) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, " | ")?;
                    }
                    write!(f, "{p}")?;
                }
                write!(f, "){}", r.suffix())
            }
        }
    }
}

/// A declared element's content model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ContentModel {
    /// `EMPTY` — no content at all.
    Empty,
    /// `ANY` — any declared element, any number of times.
    Any,
    /// `(#PCDATA)` or `(#PCDATA | a | …)*` — text freely interleaved
    /// with the named elements (each may repeat without limit).
    Mixed(BTreeSet<String>),
    /// An element-content particle.
    Children(Particle),
}

impl std::fmt::Display for ContentModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ContentModel::Empty => write!(f, "EMPTY"),
            ContentModel::Any => write!(f, "ANY"),
            ContentModel::Mixed(names) if names.is_empty() => write!(f, "(#PCDATA)"),
            ContentModel::Mixed(names) => {
                write!(f, "(#PCDATA")?;
                for n in names {
                    write!(f, " | {n}")?;
                }
                write!(f, ")*")
            }
            ContentModel::Children(p) => write!(f, "{p}"),
        }
    }
}

/// A parsed DTD: for each declared element, its content model and the
/// flattened set of child element tags the model allows.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Dtd {
    children: BTreeMap<String, BTreeSet<String>>,
    models: BTreeMap<String, ContentModel>,
}

impl Dtd {
    /// Parse DTD text: every `<!ELEMENT name (content)>` declaration is
    /// read, conditional sections are honored (`INCLUDE` bodies parse,
    /// `IGNORE` bodies are skipped), and other declarations (`ATTLIST`,
    /// `ENTITY`, comments, PIs) are skipped.
    pub fn parse(text: &str) -> Result<Dtd> {
        let mut dtd = Dtd::default();
        dtd.scan(text, 0, text.len())?;
        Ok(dtd)
    }

    /// Parse the region `text[start..end]`; offsets in errors are
    /// absolute into `text` (conditional-section bodies recurse here).
    fn scan(&mut self, text: &str, start: usize, end: usize) -> Result<()> {
        let bytes = text.as_bytes();
        let mut i = start;
        while i < end {
            match bytes[i] {
                b'<' if text[i..end].starts_with("<!--") => {
                    i = text[i..end].find("-->").map(|j| i + j + 3).ok_or(
                        Error::UnexpectedEof {
                            offset: i as u64,
                            context: "DTD comment",
                        },
                    )?;
                }
                b'<' if text[i..end].starts_with("<![") => {
                    // Conditional section: `<![ KEYWORD [ body ]]>`.
                    let kw_end = text[i + 3..end].find('[').ok_or(Error::UnexpectedEof {
                        offset: i as u64,
                        context: "conditional section keyword",
                    })?;
                    let keyword = text[i + 3..i + 3 + kw_end].trim();
                    let body_start = i + 3 + kw_end + 1;
                    let body_end =
                        find_section_close(text, body_start, end).ok_or(Error::UnexpectedEof {
                            offset: i as u64,
                            context: "conditional section",
                        })?;
                    match keyword {
                        "INCLUDE" => self.scan(text, body_start, body_end)?,
                        "IGNORE" => {}
                        other => {
                            return Err(Error::syntax(
                                i as u64,
                                format!(
                                    "conditional section keyword must be INCLUDE or IGNORE, \
                                     got \"{other}\""
                                ),
                            ));
                        }
                    }
                    i = body_end + 3;
                }
                b'<' if text[i..end].starts_with("<!ELEMENT") => {
                    let decl_end = text[i..end].find('>').ok_or(Error::UnexpectedEof {
                        offset: i as u64,
                        context: "ELEMENT declaration",
                    })?;
                    let body_at = i + "<!ELEMENT".len();
                    self.read_element(&text[body_at..i + decl_end], body_at as u64)?;
                    i += decl_end + 1;
                }
                b'<' => {
                    // Some other declaration or PI: skip to '>'.
                    i = text[i..end]
                        .find('>')
                        .map(|j| i + j + 1)
                        .ok_or(Error::UnexpectedEof {
                            offset: i as u64,
                            context: "DTD declaration",
                        })?;
                }
                _ => i += 1,
            }
        }
        Ok(())
    }

    /// Parse one declaration body (`name content-model`) starting at
    /// absolute byte `offset`.
    fn read_element(&mut self, body: &str, offset: u64) -> Result<()> {
        let mut p = ModelCursor::new(body, offset);
        p.skip_ws();
        let name = p
            .name()
            .ok_or_else(|| Error::syntax(p.pos(), "ELEMENT declaration without a name"))?;
        p.skip_ws();
        let model = p.content_model()?;
        p.skip_ws();
        if !p.at_end() {
            return Err(Error::syntax(
                p.pos(),
                "unexpected trailing characters after the content model",
            ));
        }
        self.insert_model(name, model);
        Ok(())
    }

    fn insert_model(&mut self, name: String, model: ContentModel) {
        let mut kids = BTreeSet::new();
        match &model {
            ContentModel::Empty | ContentModel::Any => {}
            ContentModel::Mixed(names) => kids.extend(names.iter().cloned()),
            ContentModel::Children(p) => p.collect_names(&mut kids),
        }
        let entry = self.children.entry(name.clone()).or_default();
        let duplicate = self.models.contains_key(&name);
        entry.extend(kids);
        if duplicate {
            // Repeated declarations (illegal per spec, tolerated here)
            // merge their child sets; the structured model degrades to
            // the conservative "any of them, any number of times".
            let merged = entry.clone();
            self.models.insert(name, conservative_model(&merged));
        } else {
            self.models.insert(name, model);
        }
    }

    /// Build a DTD directly from edges (tests, programmatic schemas).
    /// Edges carry no multiplicity, so each child set reads as the
    /// conservative `(a | b | …)*` — any child, any number of times.
    pub fn from_edges(edges: &[(&str, &[&str])]) -> Dtd {
        let mut dtd = Dtd::default();
        for (parent, kids) in edges {
            let entry = dtd.children.entry(parent.to_string()).or_default();
            entry.extend(kids.iter().map(|s| s.to_string()));
            let merged = entry.clone();
            dtd.models
                .insert(parent.to_string(), conservative_model(&merged));
        }
        dtd
    }

    /// Declared element names.
    pub fn elements(&self) -> impl Iterator<Item = &str> {
        self.children.keys().map(String::as_str)
    }

    /// Direct children allowed inside `tag` (empty if undeclared).
    pub fn children_of(&self, tag: &str) -> impl Iterator<Item = &str> {
        self.children
            .get(tag)
            .into_iter()
            .flat_map(|s| s.iter().map(String::as_str))
    }

    /// Is `tag` declared at all?
    pub fn declares(&self, tag: &str) -> bool {
        self.children.contains_key(tag)
    }

    /// The structured content model of `tag`, if declared.
    pub fn model_of(&self, tag: &str) -> Option<&ContentModel> {
        self.models.get(tag)
    }

    /// Most `child` elements one `parent` instance may directly hold.
    /// Undeclared parents answer `Unbounded` — no declaration, no claim.
    pub fn max_count(&self, parent: &str, child: &str) -> Occurs {
        match self.models.get(parent) {
            None => Occurs::Unbounded,
            Some(ContentModel::Empty) => Occurs::ZERO,
            Some(ContentModel::Any) => {
                if self.declares(child) {
                    Occurs::Unbounded
                } else {
                    Occurs::ZERO
                }
            }
            Some(ContentModel::Mixed(names)) => {
                if names.contains(child) {
                    Occurs::Unbounded
                } else {
                    Occurs::ZERO
                }
            }
            Some(ContentModel::Children(p)) => p.max_occurs(child),
        }
    }

    /// Fewest `child` elements every valid `parent` instance must hold.
    /// Only element-content models can prove a minimum; everything else
    /// (including undeclared parents) answers 0.
    pub fn min_count(&self, parent: &str, child: &str) -> u64 {
        match self.models.get(parent) {
            Some(ContentModel::Children(p)) => p.min_occurs(child),
            _ => 0,
        }
    }

    /// Most element children (of any tag) one `parent` instance may
    /// hold — bounds how many text runs its character data can split
    /// into (runs ≤ children + 1; markup that emits no events, like
    /// comments and CDATA, coalesces and does not split a run).
    pub fn max_child_elements(&self, parent: &str) -> Occurs {
        match self.models.get(parent) {
            None => Occurs::Unbounded,
            Some(ContentModel::Empty) => Occurs::ZERO,
            Some(ContentModel::Any) => Occurs::Unbounded,
            Some(ContentModel::Mixed(names)) => {
                if names.is_empty() {
                    Occurs::ZERO
                } else {
                    Occurs::Unbounded
                }
            }
            Some(ContentModel::Children(p)) => p.max_children(),
        }
    }

    /// Every tag reachable *strictly below* `tag` (transitive closure of
    /// the child relation).
    pub fn descendants_of(&self, tag: &str) -> BTreeSet<String> {
        let mut seen = BTreeSet::new();
        let mut work: Vec<&str> = self.children_of(tag).collect();
        while let Some(t) = work.pop() {
            if seen.insert(t.to_string()) {
                work.extend(self.children_of(t));
            }
        }
        seen
    }

    /// Tags reachable at depth ≥ 2 below `tag` (descendants of its
    /// children) — the test for `//t ≡ /t` rewrites.
    pub fn deep_descendants_of(&self, tag: &str) -> BTreeSet<String> {
        let mut deep = BTreeSet::new();
        for child in self.children_of(tag) {
            deep.extend(self.descendants_of(child));
        }
        deep
    }

    /// Is the schema recursive — can some element contain itself at any
    /// depth? (Choi's survey: 35 of 60 real DTDs are.)
    pub fn is_recursive(&self) -> bool {
        self.children
            .keys()
            .any(|t| self.descendants_of(t).contains(t))
    }

    /// Elements that never occur as anyone's child: document-element
    /// candidates.
    pub fn root_candidates(&self) -> BTreeSet<String> {
        let mut all: BTreeSet<String> = self.children.keys().cloned().collect();
        for kids in self.children.values() {
            for k in kids {
                all.remove(k);
            }
        }
        all
    }
}

/// The `(a | b | …)*` model used where multiplicity is unknown
/// (edge-built DTDs, merged duplicate declarations).
fn conservative_model(kids: &BTreeSet<String>) -> ContentModel {
    if kids.is_empty() {
        ContentModel::Mixed(BTreeSet::new())
    } else {
        ContentModel::Children(Particle::Choice(
            kids.iter()
                .map(|k| Particle::Name(k.clone(), Rep::One))
                .collect(),
            Rep::Star,
        ))
    }
}

/// Find the `]]>` closing the section whose body starts at `from`,
/// skipping over nested `<![ … ]]>` sections.
fn find_section_close(text: &str, from: usize, end: usize) -> Option<usize> {
    let mut depth = 1usize;
    let mut i = from;
    while i < end {
        let rest = &text[i..end];
        if rest.starts_with("<![") {
            depth += 1;
            i += 3;
        } else if rest.starts_with("]]>") {
            depth -= 1;
            if depth == 0 {
                return Some(i);
            }
            i += 3;
        } else {
            // Advance one byte; both delimiters are pure ASCII, so a
            // mid-UTF-8 position can never match the prefixes above.
            i += 1;
        }
    }
    None
}

fn is_name_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || matches!(b, b'_' | b'-' | b'.' | b':')
}

/// A cursor over one declaration body, tracking absolute offsets for
/// positioned errors.
struct ModelCursor<'a> {
    bytes: &'a [u8],
    text: &'a str,
    i: usize,
    base: u64,
}

impl<'a> ModelCursor<'a> {
    fn new(text: &'a str, base: u64) -> Self {
        ModelCursor {
            bytes: text.as_bytes(),
            text,
            i: 0,
            base,
        }
    }

    fn pos(&self) -> u64 {
        self.base + self.i as u64
    }

    fn at_end(&self) -> bool {
        self.i >= self.bytes.len()
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.i).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b) if b.is_ascii_whitespace()) {
            self.i += 1;
        }
    }

    fn eat(&mut self, b: u8) -> bool {
        if self.peek() == Some(b) {
            self.i += 1;
            true
        } else {
            false
        }
    }

    fn name(&mut self) -> Option<String> {
        let start = self.i;
        while matches!(self.peek(), Some(b) if is_name_byte(b)) {
            self.i += 1;
        }
        if self.i == start {
            None
        } else {
            Some(self.text[start..self.i].to_string())
        }
    }

    fn rep(&mut self) -> Rep {
        match self.peek() {
            Some(b'?') => {
                self.i += 1;
                Rep::Opt
            }
            Some(b'*') => {
                self.i += 1;
                Rep::Star
            }
            Some(b'+') => {
                self.i += 1;
                Rep::Plus
            }
            _ => Rep::One,
        }
    }

    fn content_model(&mut self) -> Result<ContentModel> {
        match self.peek() {
            Some(b'(') => {}
            _ => {
                let at = self.pos();
                return match self.name().as_deref() {
                    Some("EMPTY") => Ok(ContentModel::Empty),
                    Some("ANY") => Ok(ContentModel::Any),
                    Some(other) => Err(Error::syntax(
                        at,
                        format!("content model must be EMPTY, ANY, or a group, got \"{other}\""),
                    )),
                    None => Err(Error::syntax(at, "missing content model")),
                };
            }
        }
        // Peek past "( S?" for #PCDATA without consuming: mixed content
        // has its own shape.
        let save = self.i;
        self.i += 1; // '('
        self.skip_ws();
        if self.text[self.i..].starts_with("#PCDATA") {
            self.i += "#PCDATA".len();
            return self.mixed_tail();
        }
        self.i = save;
        let particle = self.group()?;
        Ok(ContentModel::Children(particle))
    }

    /// After `( S? #PCDATA`: either `S? )` or `( … | name )* `.
    fn mixed_tail(&mut self) -> Result<ContentModel> {
        let mut names = BTreeSet::new();
        loop {
            self.skip_ws();
            if self.eat(b')') {
                if names.is_empty() {
                    // `(#PCDATA)` — a trailing `*` is legal too.
                    self.eat(b'*');
                    return Ok(ContentModel::Mixed(names));
                }
                if !self.eat(b'*') {
                    return Err(Error::syntax(
                        self.pos(),
                        "mixed content with element names must end in \")*\"",
                    ));
                }
                return Ok(ContentModel::Mixed(names));
            }
            if !self.eat(b'|') {
                return Err(Error::syntax(
                    self.pos(),
                    "expected \"|\" or \")\" in mixed content",
                ));
            }
            self.skip_ws();
            let at = self.pos();
            match self.name() {
                Some(n) => {
                    names.insert(n);
                }
                None => {
                    return Err(Error::syntax(at, "expected an element name after \"|\""));
                }
            }
        }
    }

    /// A parenthesized group: `( cp (sep cp)* )` with one separator kind.
    fn group(&mut self) -> Result<Particle> {
        let open_at = self.pos();
        if !self.eat(b'(') {
            return Err(Error::syntax(open_at, "expected \"(\""));
        }
        self.skip_ws();
        let first = self.cp()?;
        self.skip_ws();
        let mut items = vec![first];
        let mut sep: Option<u8> = None;
        loop {
            match self.peek() {
                Some(b')') => {
                    self.i += 1;
                    let rep = self.rep();
                    return Ok(match sep {
                        Some(b'|') => Particle::Choice(items, rep),
                        _ => Particle::Seq(items, rep),
                    });
                }
                Some(b @ (b'|' | b',')) => {
                    if sep.is_some_and(|s| s != b) {
                        return Err(Error::syntax(
                            self.pos(),
                            "a group mixes \",\" and \"|\" separators",
                        ));
                    }
                    sep = Some(b);
                    self.i += 1;
                    self.skip_ws();
                    items.push(self.cp()?);
                    self.skip_ws();
                }
                Some(_) => {
                    return Err(Error::syntax(
                        self.pos(),
                        "expected \",\", \"|\", or \")\" in a content group",
                    ));
                }
                None => {
                    return Err(Error::UnexpectedEof {
                        offset: open_at,
                        context: "content-model group",
                    });
                }
            }
        }
    }

    /// One content particle: a name or nested group, plus repetition.
    fn cp(&mut self) -> Result<Particle> {
        if self.peek() == Some(b'(') {
            return self.group();
        }
        let at = self.pos();
        if self.text[self.i..].starts_with("#PCDATA") {
            return Err(Error::syntax(
                at,
                "#PCDATA is only allowed first in a mixed-content group",
            ));
        }
        match self.name() {
            Some(n) => {
                let rep = self.rep();
                Ok(Particle::Name(n, rep))
            }
            None => Err(Error::syntax(at, "expected an element name or \"(\"")),
        }
    }
}

/// Extract and parse the internal DTD subset of a document's `DOCTYPE`
/// declaration, if any: `<!DOCTYPE name [ …subset… ]>`.
pub fn extract_from_document(input: &[u8]) -> Option<Dtd> {
    let text = std::str::from_utf8(input).ok()?;
    let start = text.find("<!DOCTYPE")?;
    let open = text[start..].find('[')? + start;
    // Find the matching ']' (the subset itself contains no brackets in
    // the declarations we read).
    let close = text[open..].find(']')? + open;
    Dtd::parse(&text[open + 1..close]).ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    const PUB_DTD: &str = r#"
        <!-- bibliography schema -->
        <!ELEMENT pub (year?, (book | pub)*)>
        <!ELEMENT book (name, author*, price*)>
        <!ELEMENT name (#PCDATA)>
        <!ELEMENT author (#PCDATA)>
        <!ELEMENT price (#PCDATA)>
        <!ELEMENT year (#PCDATA)>
        <!ATTLIST book id CDATA #IMPLIED>
    "#;

    #[test]
    fn parses_element_declarations() {
        let dtd = Dtd::parse(PUB_DTD).unwrap();
        let kids: Vec<&str> = dtd.children_of("pub").collect();
        assert_eq!(kids, ["book", "pub", "year"]);
        let kids: Vec<&str> = dtd.children_of("book").collect();
        assert_eq!(kids, ["author", "name", "price"]);
        assert!(dtd.declares("name"));
        assert_eq!(dtd.children_of("name").count(), 0);
    }

    #[test]
    fn keywords_are_not_children() {
        let dtd =
            Dtd::parse("<!ELEMENT a (#PCDATA | b)*> <!ELEMENT e EMPTY> <!ELEMENT x ANY>").unwrap();
        assert_eq!(dtd.children_of("a").collect::<Vec<_>>(), ["b"]);
        assert_eq!(dtd.children_of("e").count(), 0);
        assert_eq!(dtd.children_of("x").count(), 0);
        assert_eq!(dtd.model_of("e"), Some(&ContentModel::Empty));
        assert_eq!(dtd.model_of("x"), Some(&ContentModel::Any));
    }

    #[test]
    fn multiplicities_are_read_off_the_model() {
        let dtd = Dtd::parse(PUB_DTD).unwrap();
        // (year?, (book | pub)*): at most one year, unbounded books.
        assert_eq!(dtd.max_count("pub", "year"), Occurs::ONE);
        assert_eq!(dtd.max_count("pub", "book"), Occurs::Unbounded);
        assert_eq!(dtd.max_count("pub", "name"), Occurs::ZERO);
        // (name, author*, price*): exactly one name, required.
        assert_eq!(dtd.max_count("book", "name"), Occurs::ONE);
        assert_eq!(dtd.min_count("book", "name"), 1);
        assert_eq!(dtd.min_count("book", "author"), 0);
        assert_eq!(dtd.min_count("pub", "year"), 0);
        // #PCDATA leaves hold no element children.
        assert_eq!(dtd.max_child_elements("name"), Occurs::ZERO);
        assert_eq!(dtd.max_child_elements("pub"), Occurs::Unbounded);
    }

    #[test]
    fn nested_groups_with_repetition_parse() {
        let dtd = Dtd::parse(
            "<!ELEMENT r ((a, b?)+ , (c | (d, e))*, f)>\
             <!ELEMENT a EMPTY> <!ELEMENT b EMPTY> <!ELEMENT c EMPTY>\
             <!ELEMENT d EMPTY> <!ELEMENT e EMPTY> <!ELEMENT f EMPTY>",
        )
        .unwrap();
        assert_eq!(
            dtd.children_of("r").collect::<Vec<_>>(),
            ["a", "b", "c", "d", "e", "f"]
        );
        assert_eq!(dtd.max_count("r", "a"), Occurs::Unbounded); // inside +
        assert_eq!(dtd.max_count("r", "f"), Occurs::ONE);
        assert_eq!(dtd.min_count("r", "a"), 1); // (a, b?)+ guarantees one a
        assert_eq!(dtd.min_count("r", "b"), 0);
        assert_eq!(dtd.min_count("r", "f"), 1);
        assert_eq!(dtd.min_count("r", "d"), 0); // choice branch
    }

    #[test]
    fn choice_and_seq_multiplicities_compose() {
        let dtd = Dtd::parse("<!ELEMENT r (a, (a | b), a?)> <!ELEMENT a EMPTY> <!ELEMENT b EMPTY>")
            .unwrap();
        // a: 1 (seq) + 1 (choice branch) + 1 (opt) = 3.
        assert_eq!(dtd.max_count("r", "a"), Occurs::Bounded(3));
        assert_eq!(dtd.min_count("r", "a"), 1); // the choice may pick b
        assert_eq!(dtd.max_count("r", "b"), Occurs::ONE);
        assert_eq!(dtd.max_child_elements("r"), Occurs::Bounded(3));
    }

    #[test]
    fn mixed_content_edge_cases() {
        // Bare #PCDATA, with and without the redundant star.
        for decl in ["<!ELEMENT t (#PCDATA)>", "<!ELEMENT t (#PCDATA)*>"] {
            let dtd = Dtd::parse(decl).unwrap();
            assert_eq!(
                dtd.model_of("t"),
                Some(&ContentModel::Mixed(BTreeSet::new()))
            );
        }
        // Mixed with names requires the closing ")*".
        let err = Dtd::parse("<!ELEMENT t (#PCDATA | a)>").unwrap_err();
        assert!(err.to_string().contains(")*"), "{err}");
        // #PCDATA not first is an error with a position.
        assert!(Dtd::parse("<!ELEMENT t (a | #PCDATA)*>").is_err());
        // Whitespace inside the group is fine.
        let dtd = Dtd::parse("<!ELEMENT t ( #PCDATA | a | b )*>").unwrap();
        assert_eq!(dtd.children_of("t").collect::<Vec<_>>(), ["a", "b"]);
        assert_eq!(dtd.max_count("t", "a"), Occurs::Unbounded);
    }

    #[test]
    fn conditional_sections_include_and_ignore() {
        let dtd = Dtd::parse(
            "<![INCLUDE[ <!ELEMENT a (b)> ]]>\
             <![ IGNORE [ <!ELEMENT a (broken > ]]>\
             <!ELEMENT b (#PCDATA)>",
        )
        .unwrap();
        assert_eq!(dtd.children_of("a").collect::<Vec<_>>(), ["b"]);
        assert!(dtd.declares("b"));
        // Nested sections resolve to the matching close.
        let dtd = Dtd::parse("<![IGNORE[ <![INCLUDE[ <!ELEMENT x (y)> ]]> ]]> <!ELEMENT z EMPTY>")
            .unwrap();
        assert!(!dtd.declares("x"));
        assert!(dtd.declares("z"));
        // Unknown keyword and unterminated section are positioned errors.
        assert!(Dtd::parse("<![MAYBE[ <!ELEMENT a (b)> ]]>").is_err());
        assert!(Dtd::parse("<![INCLUDE[ <!ELEMENT a (b)>").is_err());
    }

    #[test]
    fn malformed_models_error_with_positions() {
        for bad in [
            "<!ELEMENT a (b,, c)>",
            "<!ELEMENT a (b | c, d)>",
            "<!ELEMENT a (b c)>",
            "<!ELEMENT a FOO>",
            "<!ELEMENT a>",
            "<!ELEMENT a (b) junk>",
            "<!ELEMENT (b)>",
        ] {
            let err = Dtd::parse(bad).unwrap_err();
            // Every rejection names a byte offset.
            assert!(err.to_string().contains("byte"), "{bad}: {err}");
        }
    }

    #[test]
    fn reachability_and_recursion() {
        let dtd = Dtd::parse(PUB_DTD).unwrap();
        let desc = dtd.descendants_of("pub");
        assert!(desc.contains("author") && desc.contains("pub"));
        assert!(dtd.is_recursive());

        let flat = Dtd::from_edges(&[("r", &["a", "b"]), ("a", &["c"])]);
        assert!(!flat.is_recursive());
        assert_eq!(
            flat.descendants_of("r"),
            ["a", "b", "c"].iter().map(|s| s.to_string()).collect()
        );
    }

    #[test]
    fn edge_built_dtds_are_conservative_about_counts() {
        let dtd = Dtd::from_edges(&[("r", &["a"]), ("a", &[])]);
        assert_eq!(dtd.max_count("r", "a"), Occurs::Unbounded);
        assert_eq!(dtd.min_count("r", "a"), 0);
        assert_eq!(dtd.max_count("undeclared", "a"), Occurs::Unbounded);
        assert_eq!(dtd.min_count("undeclared", "a"), 0);
    }

    #[test]
    fn deep_descendants_exclude_direct_only_children() {
        let dtd = Dtd::from_edges(&[("r", &["a"]), ("a", &["b"]), ("b", &[])]);
        // 'a' is a direct child of r and nothing deeper re-introduces it.
        let deep = dtd.deep_descendants_of("r");
        assert!(deep.contains("b"));
        assert!(!deep.contains("a"));
    }

    #[test]
    fn root_candidates_are_unparented_elements() {
        let dtd = Dtd::parse(PUB_DTD).unwrap();
        // pub occurs as its own child, so nothing is unparented except…
        assert!(dtd.root_candidates().is_empty());
        let flat = Dtd::from_edges(&[("r", &["a"]), ("a", &[])]);
        assert_eq!(flat.root_candidates().len(), 1);
        assert!(flat.root_candidates().contains("r"));
    }

    #[test]
    fn unterminated_declarations_error() {
        assert!(Dtd::parse("<!ELEMENT a (b").is_err());
        assert!(Dtd::parse("<!-- never closed").is_err());
    }

    #[test]
    fn occurs_arithmetic() {
        use Occurs::*;
        assert_eq!(Bounded(2).plus(Bounded(3)), Bounded(5));
        assert_eq!(Bounded(2).plus(Unbounded), Unbounded);
        assert_eq!(Bounded(2).times(Bounded(3)), Bounded(6));
        assert_eq!(Occurs::ZERO.times(Unbounded), Occurs::ZERO);
        assert_eq!(Unbounded.times(Bounded(2)), Unbounded);
        assert_eq!(Bounded(2).join(Bounded(3)), Bounded(3));
        assert_eq!(Bounded(u64::MAX).plus(Bounded(1)), Bounded(u64::MAX));
    }

    #[test]
    fn extracts_internal_subset_from_a_document() {
        let doc = br#"<?xml version="1.0"?>
            <!DOCTYPE r [
              <!ELEMENT r (a*)>
              <!ELEMENT a (#PCDATA)>
            ]>
            <r><a>x</a></r>"#;
        let dtd = extract_from_document(doc).expect("subset present");
        assert_eq!(dtd.children_of("r").collect::<Vec<_>>(), ["a"]);
        assert!(extract_from_document(b"<r/>").is_none());
        assert!(extract_from_document(b"<!DOCTYPE r SYSTEM \"x.dtd\"><r/>").is_none());
    }
}
