//! Error type for the XML substrate.

use std::fmt;

/// Result alias used throughout `xsq-xml`.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors raised while parsing or validating an XML stream.
///
/// Every variant carries the byte offset at which the problem was detected,
/// so streaming consumers can report a position inside an unbounded feed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// Underlying reader failed. The message of the original
    /// [`std::io::Error`] is preserved (the error itself is not, so that
    /// `Error` stays `Clone` + `Eq` for use in tests).
    Io { offset: u64, message: String },
    /// The input ended in the middle of a construct (tag, comment, CDATA…).
    UnexpectedEof { offset: u64, context: &'static str },
    /// A syntactic problem: malformed tag, bad attribute syntax, stray `<`…
    Syntax { offset: u64, message: String },
    /// A closing tag did not match the innermost open element.
    TagMismatch {
        offset: u64,
        expected: String,
        found: String,
    },
    /// A closing tag appeared with no element open.
    UnbalancedClose { offset: u64, tag: String },
    /// The document ended with elements still open.
    UnclosedElements { offset: u64, open: Vec<String> },
    /// An entity reference could not be decoded.
    BadEntity { offset: u64, entity: String },
    /// Content appeared outside the document element (other than
    /// whitespace, comments, and processing instructions).
    ContentOutsideRoot { offset: u64 },
    /// More than one top-level element.
    MultipleRoots { offset: u64, tag: String },
}

impl Error {
    /// Byte offset in the input at which the error was detected.
    pub fn offset(&self) -> u64 {
        match self {
            Error::Io { offset, .. }
            | Error::UnexpectedEof { offset, .. }
            | Error::Syntax { offset, .. }
            | Error::TagMismatch { offset, .. }
            | Error::UnbalancedClose { offset, .. }
            | Error::UnclosedElements { offset, .. }
            | Error::BadEntity { offset, .. }
            | Error::ContentOutsideRoot { offset }
            | Error::MultipleRoots { offset, .. } => *offset,
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Io { offset, message } => {
                write!(f, "I/O error at byte {offset}: {message}")
            }
            Error::UnexpectedEof { offset, context } => {
                write!(
                    f,
                    "unexpected end of input at byte {offset} while reading {context}"
                )
            }
            Error::Syntax { offset, message } => {
                write!(f, "XML syntax error at byte {offset}: {message}")
            }
            Error::TagMismatch {
                offset,
                expected,
                found,
            } => write!(
                f,
                "mismatched closing tag at byte {offset}: expected </{expected}>, found </{found}>"
            ),
            Error::UnbalancedClose { offset, tag } => {
                write!(
                    f,
                    "closing tag </{tag}> at byte {offset} with no open element"
                )
            }
            Error::UnclosedElements { offset, open } => write!(
                f,
                "document ended at byte {offset} with unclosed elements: {}",
                open.join(", ")
            ),
            Error::BadEntity { offset, entity } => {
                write!(f, "unknown or malformed entity &{entity}; at byte {offset}")
            }
            Error::ContentOutsideRoot { offset } => {
                write!(
                    f,
                    "character content outside the document element at byte {offset}"
                )
            }
            Error::MultipleRoots { offset, tag } => {
                write!(f, "second top-level element <{tag}> at byte {offset}")
            }
        }
    }
}

impl std::error::Error for Error {}

/// Translate a byte offset (as carried by [`Error`]) into a 1-based
/// (line, column) pair for human-facing diagnostics.
///
/// ```
/// let doc = b"<a>\n  <b></a>";
/// let err = xsq_xml::parse_to_events(doc).unwrap_err();
/// let (line, col) = xsq_xml::error::locate(doc, err.offset());
/// assert_eq!((line, col), (2, 6));
/// ```
pub fn locate(input: &[u8], offset: u64) -> (u64, u64) {
    let upto = (offset as usize).min(input.len());
    let mut line = 1;
    let mut col = 1;
    for &b in &input[..upto] {
        if b == b'\n' {
            line += 1;
            col = 1;
        } else {
            col += 1;
        }
    }
    (line, col)
}

impl Error {
    pub(crate) fn io(offset: u64, err: std::io::Error) -> Self {
        Error::Io {
            offset,
            message: err.to_string(),
        }
    }

    pub(crate) fn syntax(offset: u64, message: impl Into<String>) -> Self {
        Error::Syntax {
            offset,
            message: message.into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_offset() {
        let e = Error::syntax(42, "bad tag");
        assert!(e.to_string().contains("42"));
        assert_eq!(e.offset(), 42);
    }

    #[test]
    fn locate_reports_line_and_column() {
        let input = b"ab\ncdef\ng";
        assert_eq!(locate(input, 0), (1, 1));
        assert_eq!(locate(input, 2), (1, 3));
        assert_eq!(locate(input, 3), (2, 1));
        assert_eq!(locate(input, 6), (2, 4));
        assert_eq!(locate(input, 8), (3, 1));
        // Out-of-range offsets clamp to the end.
        assert_eq!(locate(input, 999), (3, 2));
    }

    #[test]
    fn tag_mismatch_display_names_both_tags() {
        let e = Error::TagMismatch {
            offset: 7,
            expected: "a".into(),
            found: "b".into(),
        };
        let s = e.to_string();
        assert!(s.contains("</a>") && s.contains("</b>"));
    }
}
