//! The streaming pull parser: bytes in, depth-extended SAX events out.
//!
//! [`StreamParser`] reads from any [`BufRead`] and never materializes the
//! document: memory use is bounded by the size of a single token (one tag
//! or one run of character data). Well-formedness is enforced with the tag
//! stack exactly as the paper's "simple PDA" (§3.1) does: every end event
//! must match the top of the stack.
//!
//! The primary interface is [`StreamParser::next_raw`], which lends out a
//! [`RawEvent`] borrowing the parser's scratch buffers — element names are
//! interned [`Sym`]s, attribute storage and the text accumulator are
//! reused across events, and delimiter scanning runs the runtime-dispatched
//! SIMD kernels ([`crate::scan`]). In steady state (all names interned,
//! buffers grown to the document's token sizes) pulling an event performs
//! **zero heap allocations**. [`StreamParser::next_event`] is the owned
//! convenience wrapper for consumers that retain events.

use std::collections::VecDeque;
use std::io::BufRead;

use crate::entities::decode_into;
use crate::error::{Error, Result};
use crate::event::{Attribute, RawEvent, SaxEvent};
use crate::scan;
use crate::symbol::Sym;

/// Configuration for [`StreamParser`].
#[derive(Debug, Clone)]
pub struct ParserOptions {
    /// Drop text events consisting only of whitespace (indentation between
    /// elements). The engines in this reproduction never match on
    /// whitespace-only text, and skipping it is what SAX-based systems in
    /// the paper's study effectively do. Default: `true`.
    pub skip_whitespace_text: bool,
}

impl Default for ParserOptions {
    fn default() -> Self {
        ParserOptions {
            skip_whitespace_text: true,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum DocState {
    /// Nothing emitted yet.
    Init,
    /// `StartDocument` emitted, document element not yet seen.
    BeforeRoot,
    /// Inside the document element.
    InRoot,
    /// Document element closed; only misc content allowed.
    AfterRoot,
    /// `EndDocument` emitted.
    Done,
}

/// Outcome of one non-blocking pull on a parser whose input may be
/// incomplete (see [`crate::push::PushParser`]). Ordinary pull parsers
/// over a [`BufRead`] never observe `NeedMore`: an empty `fill_buf`
/// means end of input for them.
#[derive(Debug)]
pub enum ParsePoll<'a> {
    /// The next event.
    Event(RawEvent<'a>),
    /// The buffered input ends mid-construct and more may be pushed;
    /// nothing was lost — poll again after the next push (or after
    /// end-of-input is signalled).
    NeedMore,
    /// `EndDocument` has already been delivered.
    End,
}

/// What one [`StreamParser::advance`] call achieved.
enum Advance {
    /// Events were queued or the document ended.
    Progress,
    /// Soft input ran dry at a resumable point (push mode only).
    Starved,
}

/// A parsed-but-not-yet-delivered event descriptor. `Copy`-small: the
/// variable-size payloads (attributes, text) stay in the parser's scratch
/// buffers and are attached when the descriptor is materialized as a
/// [`RawEvent`].
#[derive(Debug, Clone, Copy)]
enum Pending {
    EndDocument,
    /// Attributes are `attrs[..attrs_len]` at materialization time.
    Begin {
        name: Sym,
        depth: u32,
    },
    End {
        name: Sym,
        depth: u32,
    },
    /// Text payload is `text_out` at materialization time.
    Text {
        element: Sym,
        depth: u32,
    },
}

/// A streaming, pull-based XML parser.
///
/// ```
/// use xsq_xml::{StreamParser, SaxEvent};
///
/// let mut p = StreamParser::new(&b"<a x=\"1\"><b>hi</b></a>"[..]);
/// let mut names = Vec::new();
/// while let Some(ev) = p.next_event().unwrap() {
///     if let SaxEvent::Begin { name, depth, .. } = &ev {
///         names.push(format!("{name}@{depth}"));
///     }
/// }
/// assert_eq!(names, ["a@1", "b@2"]);
/// ```
pub struct StreamParser<R: BufRead> {
    reader: R,
    offset: u64,
    options: ParserOptions,
    /// When true (push mode), an empty `fill_buf` means "no more bytes
    /// buffered *yet*" rather than end of input: [`Self::poll_raw`]
    /// reports [`ParsePoll::NeedMore`] instead of finishing the
    /// document. Flipped off when the push layer signals end-of-input.
    soft_input: bool,
    state: DocState,
    /// Open-element stack; `stack.len()` is the current depth. Each entry
    /// carries the interned name's `&'static str` so closing-tag checks
    /// compare raw bytes without touching the symbol table.
    stack: Vec<(Sym, &'static str)>,
    /// Event descriptors parsed but not yet handed out (a markup token can
    /// yield a pending text event plus the tag's own event, or Begin+End
    /// for `<a/>`). At most `[Text, Begin, End]` — the scratch buffers
    /// they reference stay untouched until the queue drains.
    pending: VecDeque<Pending>,
    /// Accumulated character data awaiting a flush.
    text_acc: String,
    /// Payload of the pending `Text` descriptor (swapped from `text_acc`
    /// at flush so both buffers keep their capacity).
    text_out: String,
    /// Attribute storage for the pending `Begin`; the live prefix is
    /// `attrs[..attrs_len]`. Slots beyond `attrs_len` keep their `String`
    /// capacity for reuse by the next tag.
    attrs: Vec<Attribute>,
    attrs_len: usize,
    /// Scratch buffer for raw token bytes.
    scratch: Vec<u8>,
    /// Lock-free fast path for [`Sym::intern`]: names this parser has
    /// already resolved. Documents repeat a tiny tag vocabulary millions
    /// of times; hitting this FNV map skips the symbol table's read lock
    /// entirely. Keys are the table's leaked `&'static str`s, so misses
    /// allocate nothing here either.
    sym_cache: std::collections::HashMap<&'static str, Sym, crate::symbol::FnvBuild>,
    /// One-entry memo in front of `sym_cache`: the last name resolved.
    /// Record-shaped documents repeat the same tag in runs, so a single
    /// byte compare often replaces the FNV hash + map probe. Interned
    /// symbols are process-global, so the memo survives `reset` safely.
    last_name: Option<(&'static str, Sym)>,
}

impl<R: BufRead> StreamParser<R> {
    /// Create a parser with default options.
    pub fn new(reader: R) -> Self {
        Self::with_options(reader, ParserOptions::default())
    }

    /// Create a parser with explicit options.
    pub fn with_options(reader: R, options: ParserOptions) -> Self {
        StreamParser {
            reader,
            offset: 0,
            options,
            soft_input: false,
            state: DocState::Init,
            stack: Vec::new(),
            pending: VecDeque::new(),
            text_acc: String::new(),
            text_out: String::new(),
            attrs: Vec::new(),
            attrs_len: 0,
            scratch: Vec::new(),
            sym_cache: std::collections::HashMap::default(),
            last_name: None,
        }
    }

    /// Current byte offset in the input.
    pub fn offset(&self) -> u64 {
        self.offset
    }

    /// Rearm the parser for a new document, keeping every warmed scratch
    /// buffer and the interned-name cache. Returns the old reader.
    ///
    /// A long-lived consumer (one worker of the sharded multi-document
    /// driver, a socket server handling documents back to back) parses
    /// thousands of documents on one thread; constructing a fresh parser
    /// each time would re-grow the text/attribute/token buffers and
    /// re-resolve every tag name through the global symbol table. After
    /// the first few documents of a corpus this method restores the
    /// zero-allocation steady state immediately.
    pub fn reset_with(&mut self, reader: R) -> R {
        let old = std::mem::replace(&mut self.reader, reader);
        self.reset();
        old
    }

    /// Rearm the parser for a new document on the *same* reader (see
    /// [`reset_with`](Self::reset_with) for what is kept). The push
    /// layer uses this to reuse one parser across the documents of a
    /// session after clearing its chunk buffer.
    pub fn reset(&mut self) {
        self.offset = 0;
        self.state = DocState::Init;
        self.stack.clear();
        self.pending.clear();
        self.text_acc.clear();
        self.text_out.clear();
        self.attrs_len = 0;
    }

    /// Direct access to the underlying reader (the push layer feeds its
    /// chunk buffer through this).
    pub(crate) fn reader_mut(&mut self) -> &mut R {
        &mut self.reader
    }

    /// Shared access to the underlying reader.
    pub(crate) fn reader_ref(&self) -> &R {
        &self.reader
    }

    /// Switch between soft input (empty buffer = not yet) and final
    /// input (empty buffer = end of document).
    pub(crate) fn set_soft_input(&mut self, soft: bool) {
        self.soft_input = soft;
    }

    /// Pull the next event as an owned [`SaxEvent`], or `Ok(None)` after
    /// `EndDocument`. Allocates for attribute lists and text payloads;
    /// hot loops should prefer [`next_raw`](Self::next_raw).
    pub fn next_event(&mut self) -> Result<Option<SaxEvent>> {
        Ok(self.next_raw()?.map(|ev| ev.to_owned()))
    }

    /// Pull the next event as a zero-copy [`RawEvent`] borrowing the
    /// parser's scratch buffers, or `Ok(None)` after `EndDocument`. The
    /// returned view is invalidated by the next call.
    ///
    /// Requires final input (an empty `fill_buf` is end of document);
    /// push-fed parsers must use [`poll_raw`](Self::poll_raw) until
    /// end-of-input has been signalled.
    pub fn next_raw(&mut self) -> Result<Option<RawEvent<'_>>> {
        let offset = self.offset;
        match self.poll_raw()? {
            ParsePoll::Event(ev) => Ok(Some(ev)),
            ParsePoll::End => Ok(None),
            ParsePoll::NeedMore => Err(Error::UnexpectedEof {
                offset,
                context: "push-mode input not finished (use poll_raw)",
            }),
        }
    }

    /// Pull the next event without treating an empty buffer as end of
    /// input: in push mode a starved parser reports
    /// [`ParsePoll::NeedMore`] and resumes cleanly after more bytes are
    /// pushed. For ordinary pull parsers this behaves like
    /// [`next_raw`](Self::next_raw) (`NeedMore` never occurs).
    pub fn poll_raw(&mut self) -> Result<ParsePoll<'_>> {
        loop {
            if let Some(p) = self.pending.pop_front() {
                return Ok(ParsePoll::Event(self.materialize(p)));
            }
            match self.state {
                DocState::Init => {
                    self.state = DocState::BeforeRoot;
                    return Ok(ParsePoll::Event(RawEvent::StartDocument));
                }
                DocState::Done => return Ok(ParsePoll::End),
                _ => {
                    if let Advance::Starved = self.advance()? {
                        return Ok(ParsePoll::NeedMore);
                    }
                }
            }
        }
    }

    /// Attach the scratch-buffer payloads to a pending descriptor.
    fn materialize(&self, p: Pending) -> RawEvent<'_> {
        match p {
            Pending::EndDocument => RawEvent::EndDocument,
            Pending::Begin { name, depth } => RawEvent::Begin {
                name,
                attributes: &self.attrs[..self.attrs_len],
                depth,
            },
            Pending::End { name, depth } => RawEvent::End { name, depth },
            Pending::Text { element, depth } => RawEvent::Text {
                element,
                text: &self.text_out,
                depth,
            },
        }
    }

    /// Parse input until at least one event lands in `pending` (or the
    /// document ends). Only runs when `pending` is empty, so the scratch
    /// buffers it overwrites are no longer referenced.
    ///
    /// In push mode the input can run dry only at resumable points: the
    /// chunk buffer exposes markup tokens whole, so starvation happens
    /// between tokens (here) or inside a text run — whose accumulated
    /// prefix persists in `text_acc` across polls.
    fn advance(&mut self) -> Result<Advance> {
        loop {
            match self.next_byte()? {
                None => {
                    if self.soft_input {
                        return Ok(Advance::Starved);
                    }
                    self.end_of_input()?;
                    return Ok(Advance::Progress);
                }
                Some(b'<') => {
                    self.parse_markup()?;
                    if !self.pending.is_empty() {
                        return Ok(Advance::Progress);
                    }
                    // Comments/PIs produce no events; keep scanning.
                }
                Some(b) => {
                    self.read_text(b)?;
                    // Text is flushed lazily when markup or EOF arrives, so
                    // keep scanning: the loop re-enters at the '<'.
                }
            }
        }
    }

    /// Accumulate character data starting with byte `b` until the next `<`.
    fn read_text(&mut self, b: u8) -> Result<()> {
        let start_offset = self.offset - 1;
        self.scratch.clear();
        self.scratch.push(b);
        let (mut saw_amp, mut saw_cr) = self.take_text_run()?;
        saw_amp |= b == b'&';
        saw_cr |= b == b'\r';
        // The run scan already noted whether any `\r` or `&` occurred, so
        // the normalization and entity-decode passes are skipped outright
        // for the overwhelming majority of runs instead of each paying
        // its own gating scan over the bytes.
        if saw_cr {
            normalize_line_endings(&mut self.scratch);
        }
        let raw = std::str::from_utf8(&self.scratch)
            .map_err(|_| Error::syntax(start_offset, "invalid UTF-8 in character data"))?;
        if self.state != DocState::InRoot {
            if raw.chars().all(char::is_whitespace) {
                return Ok(());
            }
            return Err(Error::ContentOutsideRoot {
                offset: start_offset,
            });
        }
        // Entity references decode straight into the accumulator —
        // `raw` borrows `scratch`, a disjoint field from `text_acc`.
        if !saw_amp {
            self.text_acc.push_str(raw);
        } else {
            decode_into(raw, start_offset, &mut self.text_acc)?;
        }
        Ok(())
    }

    /// Emit any buffered text as a `Text` event.
    fn flush_text(&mut self) {
        if self.text_acc.is_empty() {
            return;
        }
        let keep = !self.options.skip_whitespace_text || !is_all_whitespace(&self.text_acc);
        if keep && !self.stack.is_empty() {
            let element = self.stack.last().expect("in root").0;
            let depth = self.stack.len() as u32;
            // Swap instead of clone: `text_out` is free once `pending`
            // drained, and both buffers keep their capacity.
            self.text_out.clear();
            std::mem::swap(&mut self.text_acc, &mut self.text_out);
            self.pending.push_back(Pending::Text { element, depth });
        } else {
            self.text_acc.clear();
        }
    }

    /// Handle a token that begins with `<` (the `<` is already consumed).
    fn parse_markup(&mut self) -> Result<()> {
        let markup_offset = self.offset - 1;
        match self.peek_byte()? {
            None => Err(Error::UnexpectedEof {
                offset: self.offset,
                context: "markup after '<'",
            }),
            Some(b'/') => {
                self.next_byte()?;
                self.flush_text();
                self.parse_end_tag(markup_offset)
            }
            Some(b'!') => {
                self.next_byte()?;
                self.parse_declaration(markup_offset)
            }
            Some(b'?') => {
                self.next_byte()?;
                self.skip_past_terminator(b'?', 1, "processing instruction")
            }
            Some(_) => {
                self.flush_text();
                self.parse_start_tag(markup_offset)
            }
        }
    }

    /// `<name attr="v" …>` or `<name/>`.
    fn parse_start_tag(&mut self, markup_offset: u64) -> Result<()> {
        match self.state {
            DocState::BeforeRoot => self.state = DocState::InRoot,
            DocState::InRoot => {}
            DocState::AfterRoot => {
                // Peek the name for the error message.
                let (_, name) = self.read_name(markup_offset)?;
                return Err(Error::MultipleRoots {
                    offset: markup_offset,
                    tag: name.to_string(),
                });
            }
            _ => unreachable!("start tag in state {:?}", self.state),
        }
        let (name, name_str) = self.read_name(markup_offset)?;
        self.attrs_len = 0;
        let self_closing = self.parse_attributes(markup_offset)?;
        self.stack.push((name, name_str));
        let depth = self.stack.len() as u32;
        self.pending.push_back(Pending::Begin { name, depth });
        if self_closing {
            self.stack.pop();
            self.pending.push_back(Pending::End { name, depth });
            if self.stack.is_empty() {
                self.state = DocState::AfterRoot;
            }
        }
        Ok(())
    }

    /// `</name>` — must match the innermost open element.
    fn parse_end_tag(&mut self, markup_offset: u64) -> Result<()> {
        self.scratch.clear();
        self.take_until(|b| !is_name_byte(b))?;
        // Well-formed XML closes the innermost open element, whose symbol
        // sits on top of the stack: one byte compare against its cached
        // name resolves the tag without hashing or a table lookup.
        let name = match self.stack.last().copied() {
            Some((open, open_name)) if self.scratch.as_slice() == open_name.as_bytes() => open,
            _ => self.resolve_scratch_name(markup_offset)?.0,
        };
        // `</name>` with no trailing space is the only shape real
        // documents produce; skip the whitespace scan when `>` is next.
        if self.peek_byte()? != Some(b'>') {
            self.skip_whitespace()?;
        }
        match self.next_byte()? {
            Some(b'>') => {}
            Some(_) => return Err(Error::syntax(markup_offset, "junk in closing tag")),
            None => {
                return Err(Error::UnexpectedEof {
                    offset: self.offset,
                    context: "closing tag",
                })
            }
        }
        match self.stack.pop() {
            None => Err(Error::UnbalancedClose {
                offset: markup_offset,
                tag: name.as_str().to_string(),
            }),
            Some((open, _)) if open != name => Err(Error::TagMismatch {
                offset: markup_offset,
                expected: open.as_str().to_string(),
                found: name.as_str().to_string(),
            }),
            Some(_) => {
                let depth = self.stack.len() as u32 + 1;
                self.pending.push_back(Pending::End { name, depth });
                if self.stack.is_empty() {
                    self.state = DocState::AfterRoot;
                }
                Ok(())
            }
        }
    }

    /// `<!--…-->`, `<![CDATA[…]]>`, or `<!DOCTYPE …>`.
    fn parse_declaration(&mut self, markup_offset: u64) -> Result<()> {
        if self.try_consume(b"--")? {
            return self.skip_past_terminator(b'-', 2, "comment");
        }
        if self.try_consume(b"[CDATA[")? {
            return self.read_cdata(markup_offset);
        }
        // DOCTYPE or other declaration: skip to the matching '>', honoring
        // nested '[' … ']' internal subsets. The kernels bulk-skip to the
        // next structurally interesting byte instead of inspecting each.
        let mut bracket_depth = 0i32;
        loop {
            match self.skip_to_byte3(b'[', b']', b'>', "declaration")? {
                b'[' => bracket_depth += 1,
                b']' => bracket_depth -= 1,
                _ => {
                    if bracket_depth <= 0 {
                        return Ok(());
                    }
                }
            }
        }
    }

    /// CDATA content is raw character data (no entity decoding).
    ///
    /// The body is copied a bulk run at a time (everything up to the next
    /// `]`), then runs of consecutive `]` are counted: a `>` arriving with
    /// two or more pending brackets terminates the section, with any
    /// brackets beyond the final two restored as literal content.
    fn read_cdata(&mut self, markup_offset: u64) -> Result<()> {
        if self.state != DocState::InRoot {
            return Err(Error::ContentOutsideRoot {
                offset: markup_offset,
            });
        }
        self.scratch.clear();
        'section: loop {
            self.take_until_byte(b']')?;
            if self.next_byte()?.is_none() {
                return Err(Error::UnexpectedEof {
                    offset: self.offset,
                    context: "CDATA section",
                });
            }
            let mut pending = 1usize;
            loop {
                match self.peek_byte()? {
                    Some(b']') => {
                        self.next_byte()?;
                        pending += 1;
                    }
                    Some(b'>') if pending >= 2 => {
                        self.next_byte()?;
                        let keep = self.scratch.len() + pending - 2;
                        self.scratch.resize(keep, b']');
                        break 'section;
                    }
                    _ => {
                        // All pending brackets were literal content; a
                        // trailing EOF surfaces on the next bulk scan.
                        let keep = self.scratch.len() + pending;
                        self.scratch.resize(keep, b']');
                        break;
                    }
                }
            }
        }
        normalize_line_endings(&mut self.scratch);
        let raw = std::str::from_utf8(&self.scratch)
            .map_err(|_| Error::syntax(markup_offset, "invalid UTF-8 in CDATA"))?;
        self.text_acc.push_str(raw);
        Ok(())
    }

    /// Read an element or attribute name and intern it. Interning
    /// allocates only the first time a name is seen process-wide.
    fn read_name(&mut self, markup_offset: u64) -> Result<(Sym, &'static str)> {
        self.scratch.clear();
        self.take_until(|b| !is_name_byte(b))?;
        self.resolve_scratch_name(markup_offset)
    }

    /// Resolve the name sitting in `scratch` through the parser-local
    /// cache, returning the symbol together with the table's interned
    /// `&'static str` (so callers never pay a table lookup for it).
    fn resolve_scratch_name(&mut self, markup_offset: u64) -> Result<(Sym, &'static str)> {
        if self.scratch.is_empty() {
            return Err(Error::syntax(markup_offset, "expected a name"));
        }
        if let Some((name, sym)) = self.last_name {
            if self.scratch.as_slice() == name.as_bytes() {
                return Ok((sym, name));
            }
        }
        let raw = std::str::from_utf8(&self.scratch)
            .map_err(|_| Error::syntax(markup_offset, "invalid UTF-8 in name"))?;
        if let Some((&name, &sym)) = self.sym_cache.get_key_value(raw) {
            self.last_name = Some((name, sym));
            return Ok((sym, name));
        }
        let sym = Sym::intern(raw);
        let name = sym.as_str();
        self.sym_cache.insert(name, sym);
        self.last_name = Some((name, sym));
        Ok((sym, name))
    }

    /// Parse attributes up to `>` or `/>` into the reusable `attrs`
    /// buffer (`attrs[..attrs_len]`). Returns `true` if self-closing.
    fn parse_attributes(&mut self, markup_offset: u64) -> Result<bool> {
        // The overwhelmingly common shape is `<name>` with no attributes:
        // settle it with a single buffered read before the general loop.
        if self.peek_byte()? == Some(b'>') {
            self.next_byte()?;
            return Ok(false);
        }
        loop {
            self.skip_whitespace()?;
            match self.peek_byte()? {
                None => {
                    return Err(Error::UnexpectedEof {
                        offset: self.offset,
                        context: "start tag",
                    })
                }
                Some(b'>') => {
                    self.next_byte()?;
                    return Ok(false);
                }
                Some(b'/') => {
                    self.next_byte()?;
                    match self.next_byte()? {
                        Some(b'>') => return Ok(true),
                        _ => return Err(Error::syntax(markup_offset, "expected '>' after '/'")),
                    }
                }
                Some(_) => {
                    let (name, _) = self.read_name(markup_offset)?;
                    self.skip_whitespace()?;
                    match self.next_byte()? {
                        Some(b'=') => {}
                        _ => {
                            return Err(Error::syntax(
                                markup_offset,
                                format!("attribute '{name}' missing '='"),
                            ))
                        }
                    }
                    self.skip_whitespace()?;
                    let quote = match self.next_byte()? {
                        Some(q @ (b'"' | b'\'')) => q,
                        _ => {
                            return Err(Error::syntax(
                                markup_offset,
                                format!("attribute '{name}' value must be quoted"),
                            ))
                        }
                    };
                    let value_offset = self.offset;
                    self.scratch.clear();
                    self.take_until_byte2(quote, b'<')?;
                    match self.next_byte()? {
                        Some(b) if b == quote => {}
                        Some(_) => {
                            return Err(Error::syntax(
                                value_offset,
                                "'<' not allowed in attribute value",
                            ))
                        }
                        None => {
                            return Err(Error::UnexpectedEof {
                                offset: self.offset,
                                context: "attribute value",
                            })
                        }
                    }
                    normalize_attr_whitespace(&mut self.scratch);
                    let raw = std::str::from_utf8(&self.scratch).map_err(|_| {
                        Error::syntax(value_offset, "invalid UTF-8 in attribute value")
                    })?;
                    // Reuse the slot (and its value's capacity) past the
                    // live prefix if one exists; decode straight into it.
                    if self.attrs_len == self.attrs.len() {
                        self.attrs.push(Attribute {
                            name,
                            value: String::new(),
                        });
                    }
                    let slot = &mut self.attrs[self.attrs_len];
                    slot.name = name;
                    slot.value.clear();
                    if scan::find_byte(raw.as_bytes(), b'&').is_none() {
                        slot.value.push_str(raw);
                    } else {
                        decode_into(raw, value_offset, &mut slot.value)?;
                    }
                    self.attrs_len += 1;
                }
            }
        }
    }

    /// End of input: verify balance and emit `EndDocument`.
    fn end_of_input(&mut self) -> Result<()> {
        if !self.stack.is_empty() {
            return Err(Error::UnclosedElements {
                offset: self.offset,
                open: self.stack.iter().map(|&(_, n)| n.to_string()).collect(),
            });
        }
        if self.state == DocState::BeforeRoot {
            return Err(Error::UnexpectedEof {
                offset: self.offset,
                context: "document element",
            });
        }
        self.state = DocState::Done;
        self.pending.push_back(Pending::EndDocument);
        Ok(())
    }

    // ---- byte-level helpers -------------------------------------------

    /// Bulk-append input bytes into `scratch` until `stop` matches (the
    /// stopping byte is left unconsumed) or the input ends. Scans whole
    /// `fill_buf` slices instead of byte-at-a-time. Used for names, where
    /// the stop set is a predicate; the single/double-delimiter hot paths
    /// go through the SWAR variants below.
    fn take_until(&mut self, stop: impl Fn(u8) -> bool) -> Result<()> {
        self.take_until_with(|buf| buf.iter().position(|&b| stop(b)))
    }

    /// [`take_until`](Self::take_until) specialized to one delimiter,
    /// scanning 8 bytes per step — the character-data hot path.
    fn take_until_byte(&mut self, stop: u8) -> Result<()> {
        self.take_until_with(|buf| scan::find_byte(buf, stop))
    }

    /// [`take_until`](Self::take_until) specialized to two delimiters —
    /// the attribute-value hot path (closing quote or stray `<`).
    fn take_until_byte2(&mut self, s1: u8, s2: u8) -> Result<()> {
        self.take_until_with(|buf| scan::find_byte2(buf, s1, s2))
    }

    fn take_until_with(&mut self, find: impl Fn(&[u8]) -> Option<usize>) -> Result<()> {
        loop {
            let buf = self
                .reader
                .fill_buf()
                .map_err(|e| Error::io(self.offset, e))?;
            if buf.is_empty() {
                return Ok(());
            }
            match find(buf) {
                Some(0) => return Ok(()),
                Some(n) => {
                    self.scratch.extend_from_slice(&buf[..n]);
                    self.reader.consume(n);
                    self.offset += n as u64;
                    return Ok(());
                }
                None => {
                    let n = buf.len();
                    self.scratch.extend_from_slice(buf);
                    self.reader.consume(n);
                    self.offset += n as u64;
                }
            }
        }
    }

    fn next_byte(&mut self) -> Result<Option<u8>> {
        let buf = self
            .reader
            .fill_buf()
            .map_err(|e| Error::io(self.offset, e))?;
        if buf.is_empty() {
            return Ok(None);
        }
        let b = buf[0];
        self.reader.consume(1);
        self.offset += 1;
        Ok(Some(b))
    }

    fn peek_byte(&mut self) -> Result<Option<u8>> {
        let buf = self
            .reader
            .fill_buf()
            .map_err(|e| Error::io(self.offset, e))?;
        Ok(buf.first().copied())
    }

    fn skip_whitespace(&mut self) -> Result<()> {
        loop {
            let buf = self
                .reader
                .fill_buf()
                .map_err(|e| Error::io(self.offset, e))?;
            if buf.is_empty() {
                return Ok(());
            }
            let len = buf.len();
            let run = buf
                .iter()
                .position(|b| !b.is_ascii_whitespace())
                .unwrap_or(len);
            if run > 0 {
                self.reader.consume(run);
                self.offset += run as u64;
            }
            if run < len {
                return Ok(());
            }
        }
    }

    /// Consume `expected` if it is next in the input; single-byte lookahead
    /// is not enough, so this backtracks by buffering into `pending`? No —
    /// it is only called right after a known prefix where a partial match
    /// cannot occur in valid XML, so a mismatch mid-way is a syntax error.
    fn try_consume(&mut self, expected: &[u8]) -> Result<bool> {
        match self.peek_byte()? {
            Some(b) if b == expected[0] => {}
            _ => return Ok(false),
        }
        for (i, &e) in expected.iter().enumerate() {
            match self.next_byte()? {
                Some(b) if b == e => {}
                _ => {
                    return Err(Error::syntax(
                        self.offset,
                        format!("malformed declaration (expected byte {i} of marker)"),
                    ))
                }
            }
        }
        Ok(true)
    }

    /// Skip to (and past) the terminator `marker`×`min_repeat` followed by
    /// `>` — the shared shape of `-->` (marker `-`, 2) and `?>` (`?`, 1).
    /// The kernels bulk-skip to each candidate marker; only the short
    /// marker run itself is inspected per byte.
    fn skip_past_terminator(
        &mut self,
        marker: u8,
        min_repeat: usize,
        context: &'static str,
    ) -> Result<()> {
        loop {
            self.skip_to_byte(marker, context)?;
            let mut run = 1usize;
            loop {
                match self.peek_byte()? {
                    Some(b) if b == marker => {
                        self.next_byte()?;
                        run += 1;
                    }
                    Some(b'>') if run >= min_repeat => {
                        self.next_byte()?;
                        return Ok(());
                    }
                    Some(_) => break,
                    None => {
                        return Err(Error::UnexpectedEof {
                            offset: self.offset,
                            context,
                        })
                    }
                }
            }
        }
    }

    /// Discard input up to and including the next `needle`.
    fn skip_to_byte(&mut self, needle: u8, context: &'static str) -> Result<()> {
        loop {
            let buf = self
                .reader
                .fill_buf()
                .map_err(|e| Error::io(self.offset, e))?;
            if buf.is_empty() {
                return Err(Error::UnexpectedEof {
                    offset: self.offset,
                    context,
                });
            }
            match scan::find_byte(buf, needle) {
                Some(n) => {
                    self.reader.consume(n + 1);
                    self.offset += n as u64 + 1;
                    return Ok(());
                }
                None => {
                    let len = buf.len();
                    self.reader.consume(len);
                    self.offset += len as u64;
                }
            }
        }
    }

    /// Discard input up to and including the next occurrence of any of
    /// three bytes, returning the byte found.
    fn skip_to_byte3(&mut self, n1: u8, n2: u8, n3: u8, context: &'static str) -> Result<u8> {
        loop {
            let buf = self
                .reader
                .fill_buf()
                .map_err(|e| Error::io(self.offset, e))?;
            if buf.is_empty() {
                return Err(Error::UnexpectedEof {
                    offset: self.offset,
                    context,
                });
            }
            match scan::find_byte3(buf, n1, n2, n3) {
                Some(n) => {
                    let b = buf[n];
                    self.reader.consume(n + 1);
                    self.offset += n as u64 + 1;
                    return Ok(b);
                }
                None => {
                    let len = buf.len();
                    self.reader.consume(len);
                    self.offset += len as u64;
                }
            }
        }
    }

    /// Bulk-append character data into `scratch` until the next `<` (left
    /// unconsumed) or end of input, reporting whether any `&` or `\r` was
    /// seen along the way. One fused [`scan::classify_run`] pass settles
    /// the run boundary *and* the flags that decide whether the line-ending
    /// normalization and entity-decode passes can be skipped.
    fn take_text_run(&mut self) -> Result<(bool, bool)> {
        let mut saw_amp = false;
        let mut saw_cr = false;
        loop {
            let buf = self
                .reader
                .fill_buf()
                .map_err(|e| Error::io(self.offset, e))?;
            if buf.is_empty() {
                return Ok((saw_amp, saw_cr));
            }
            let mut consumed = 0usize;
            let mut stop = false;
            loop {
                let rest = &buf[consumed..];
                let n = scan::classify_run(rest);
                if n == rest.len() {
                    consumed = buf.len();
                    break;
                }
                match rest[n] {
                    b'<' => {
                        consumed += n;
                        stop = true;
                        break;
                    }
                    b'&' => {
                        saw_amp = true;
                        consumed += n + 1;
                    }
                    b'\r' => {
                        saw_cr = true;
                        consumed += n + 1;
                    }
                    // `]` is ordinary content here; it is in the delimiter
                    // set for the push pre-scanner's `]]>` tracking.
                    _ => consumed += n + 1,
                }
            }
            self.scratch.extend_from_slice(&buf[..consumed]);
            self.reader.consume(consumed);
            self.offset += consumed as u64;
            if stop {
                return Ok((saw_amp, saw_cr));
            }
        }
    }
}

/// Byte-class table for name scanning: a single indexed load per byte
/// beats re-evaluating the whitespace + delimiter predicate in the
/// name loop, which runs twice per element (tag name, closing name)
/// plus once per attribute.
static NAME_BYTE: [bool; 256] = build_name_byte_table();

const fn build_name_byte_table() -> [bool; 256] {
    let mut table = [false; 256];
    let mut i = 0usize;
    while i < 256 {
        let b = i as u8;
        let ws = matches!(b, b' ' | b'\t' | b'\n' | b'\r' | 0x0c);
        let delim = matches!(b, b'>' | b'/' | b'=' | b'<' | b'"' | b'\'');
        table[i] = !ws && !delim;
        i += 1;
    }
    table
}

fn is_name_byte(b: u8) -> bool {
    NAME_BYTE[b as usize]
}

/// XML 1.0 §2.11: `\r\n` and bare `\r` become `\n` in character data.
/// Runs on the raw bytes of one accumulated run (names and markup never
/// contain `\r`), before entity decoding so `&#13;` stays a literal CR.
/// In-place compaction; a run with no `\r` — the overwhelming majority —
/// costs one SWAR scan and no writes.
fn normalize_line_endings(buf: &mut Vec<u8>) {
    let Some(first) = scan::find_byte(buf, b'\r') else {
        return;
    };
    let len = buf.len();
    let (mut r, mut w) = (first, first);
    while r < len {
        let b = buf[r];
        r += 1;
        if b == b'\r' {
            buf[w] = b'\n';
            if r < len && buf[r] == b'\n' {
                r += 1;
            }
        } else {
            buf[w] = b;
        }
        w += 1;
    }
    buf.truncate(w);
}

/// XML 1.0 §3.3.3 (CDATA-type attributes): after line-ending
/// normalization, every literal whitespace character in an attribute
/// value becomes a single space — so `\r\n` collapses to one space, and
/// `\t`/`\n`/`\r` each become one. Character references (`&#10;`, `&#9;`)
/// are exempt: they decode after this pass and stay literal.
fn normalize_attr_whitespace(buf: &mut Vec<u8>) {
    let Some(first) = scan::find_byte3(buf, b'\t', b'\r', b'\n') else {
        return;
    };
    let len = buf.len();
    let (mut r, mut w) = (first, first);
    while r < len {
        let b = buf[r];
        r += 1;
        match b {
            b'\r' => {
                buf[w] = b' ';
                if r < len && buf[r] == b'\n' {
                    r += 1;
                }
            }
            b'\t' | b'\n' => buf[w] = b' ',
            _ => buf[w] = b,
        }
        w += 1;
    }
    buf.truncate(w);
}

/// Whitespace-only test with a byte-wise ASCII fast path; the `chars()`
/// pass only runs when a non-ASCII-whitespace byte shows up (it could
/// still be Unicode whitespace, which `char::is_whitespace` accepts).
fn is_all_whitespace(s: &str) -> bool {
    s.bytes().all(|b| b.is_ascii_whitespace()) || s.chars().all(char::is_whitespace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_to_events;

    fn events(input: &str) -> Vec<SaxEvent> {
        parse_to_events(input.as_bytes()).unwrap()
    }

    fn err(input: &str) -> Error {
        parse_to_events(input.as_bytes()).unwrap_err()
    }

    #[test]
    fn simple_document() {
        let evs = events("<a><b>hi</b></a>");
        assert_eq!(evs[0], SaxEvent::StartDocument);
        assert_eq!(
            evs[1],
            SaxEvent::Begin {
                name: "a".into(),
                attributes: vec![],
                depth: 1
            }
        );
        assert_eq!(
            evs[3],
            SaxEvent::Text {
                element: "b".into(),
                text: "hi".into(),
                depth: 2
            }
        );
        assert_eq!(evs[6], SaxEvent::EndDocument);
    }

    #[test]
    fn raw_events_match_owned_events() {
        let doc = b"<a id=\"1\"><b>hi &amp; bye</b><c x='2' y='3'/></a>";
        let owned = parse_to_events(doc).unwrap();
        let mut p = StreamParser::new(&doc[..]);
        let mut raws = Vec::new();
        while let Some(ev) = p.next_raw().unwrap() {
            raws.push(ev.to_owned());
        }
        assert_eq!(owned, raws);
    }

    #[test]
    fn raw_text_borrows_scratch() {
        let mut p = StreamParser::new(&b"<a>hello</a>"[..]);
        p.next_raw().unwrap(); // StartDocument
        p.next_raw().unwrap(); // <a>
        let ev = p.next_raw().unwrap().unwrap();
        let RawEvent::Text { element, text, .. } = ev else {
            panic!("expected text, got {ev}");
        };
        assert_eq!(element, "a");
        assert_eq!(text, "hello");
    }

    #[test]
    fn attributes_are_decoded() {
        let evs = events(r#"<a id="1" name='x &amp; y'/>"#);
        let SaxEvent::Begin { attributes, .. } = &evs[1] else {
            panic!("expected begin");
        };
        assert_eq!(attributes[0], Attribute::new("id", "1"));
        assert_eq!(attributes[1], Attribute::new("name", "x & y"));
        // Self-closing yields an immediate end event at the same depth.
        assert_eq!(
            evs[2],
            SaxEvent::End {
                name: "a".into(),
                depth: 1
            }
        );
    }

    #[test]
    fn attribute_buffer_is_reused_not_leaked_across_tags() {
        // Second tag has fewer attributes than the first: the stale third
        // slot must not resurface.
        let evs = events(r#"<a p="1" q="2" r="3"><b s="4"/></a>"#);
        let SaxEvent::Begin { attributes, .. } = &evs[1] else {
            panic!();
        };
        assert_eq!(attributes.len(), 3);
        let SaxEvent::Begin {
            name, attributes, ..
        } = &evs[2]
        else {
            panic!();
        };
        assert_eq!(*name, "b");
        assert_eq!(attributes.len(), 1);
        assert_eq!(attributes[0], Attribute::new("s", "4"));
    }

    #[test]
    fn whitespace_only_text_is_skipped_by_default() {
        let evs = events("<a>\n  <b>x</b>\n</a>");
        assert!(evs
            .iter()
            .filter(|e| e.is_text())
            .all(|e| matches!(e, SaxEvent::Text { text, .. } if text == "x")));
    }

    #[test]
    fn whitespace_text_kept_when_requested() {
        let opts = ParserOptions {
            skip_whitespace_text: false,
        };
        let mut p = StreamParser::with_options(&b"<a> <b>x</b></a>"[..], opts);
        let mut texts = Vec::new();
        while let Some(ev) = p.next_event().unwrap() {
            if let SaxEvent::Text { text, .. } = ev {
                texts.push(text);
            }
        }
        assert_eq!(texts, vec![" ".to_string(), "x".to_string()]);
    }

    #[test]
    fn text_entities_are_decoded() {
        let evs = events("<a>1 &lt; 2 &amp;&amp; 3 &gt; 2</a>");
        let SaxEvent::Text { text, .. } = &evs[2] else {
            panic!()
        };
        assert_eq!(text, "1 < 2 && 3 > 2");
    }

    #[test]
    fn cdata_is_raw_text_and_coalesces() {
        let evs = events("<a>x<![CDATA[<not-a-tag> & raw]]>y</a>");
        let SaxEvent::Text { text, .. } = &evs[2] else {
            panic!()
        };
        assert_eq!(text, "x<not-a-tag> & rawy");
    }

    #[test]
    fn crlf_and_bare_cr_normalize_to_lf_in_text() {
        // XML 1.0 §2.11: the three line-ending spellings are one.
        let evs = events("<a>line1\r\nline2\rline3\nline4</a>");
        let SaxEvent::Text { text, .. } = &evs[2] else {
            panic!()
        };
        assert_eq!(text, "line1\nline2\nline3\nline4");
    }

    #[test]
    fn crlf_normalizes_in_cdata() {
        let evs = events("<a><![CDATA[x\r\ny\rz]]></a>");
        let SaxEvent::Text { text, .. } = &evs[2] else {
            panic!()
        };
        assert_eq!(text, "x\ny\nz");
    }

    #[test]
    fn char_ref_cr_stays_literal() {
        // §2.11 normalizes the input stream, not decoded references.
        let evs = events("<a>x&#13;y&#xD;&#10;z</a>");
        let SaxEvent::Text { text, .. } = &evs[2] else {
            panic!()
        };
        assert_eq!(text, "x\ry\r\nz");
    }

    #[test]
    fn crlf_only_text_is_whitespace_skipped() {
        let evs = events("<a>\r\n  <b>x</b>\r\n</a>");
        assert!(evs
            .iter()
            .filter(|e| e.is_text())
            .all(|e| matches!(e, SaxEvent::Text { text, .. } if text == "x")));
    }

    #[test]
    fn attribute_whitespace_normalizes_to_spaces() {
        // XML 1.0 §3.3.3: literal tab/CR/LF become spaces (one per \r\n
        // pair, since line-ending normalization runs first).
        let evs = events("<a v=\"a\tb\nc\rd\r\ne\"/>");
        let SaxEvent::Begin { attributes, .. } = &evs[1] else {
            panic!()
        };
        assert_eq!(attributes[0], Attribute::new("v", "a b c d e"));
    }

    #[test]
    fn attribute_char_refs_stay_literal_whitespace() {
        let evs = events("<a v='x&#10;y&#9;z&#13;'/>");
        let SaxEvent::Begin { attributes, .. } = &evs[1] else {
            panic!()
        };
        assert_eq!(attributes[0], Attribute::new("v", "x\ny\tz\r"));
    }

    #[test]
    fn wrapped_attribute_equality_predicate_shape() {
        // The conformance bug this fixes: a value wrapped across lines
        // must compare equal to its single-space spelling.
        let evs = events("<a v=\"two\r\nwords\"/>");
        let SaxEvent::Begin { attributes, .. } = &evs[1] else {
            panic!()
        };
        assert_eq!(attributes[0].value, "two words");
    }

    #[test]
    fn comments_and_pis_are_skipped() {
        let evs = events("<?xml version=\"1.0\"?><!-- c --><a><!-- inner -->t<?pi d?></a>");
        assert_eq!(evs.len(), 5);
        let SaxEvent::Text { text, .. } = &evs[2] else {
            panic!()
        };
        assert_eq!(text, "t");
    }

    #[test]
    fn doctype_with_internal_subset_is_skipped() {
        let evs = events("<!DOCTYPE a [ <!ELEMENT a (#PCDATA)> ]><a>x</a>");
        assert_eq!(evs.len(), 5);
    }

    #[test]
    fn depths_follow_nesting() {
        let evs = events("<a><b><c/></b><b/></a>");
        let depths: Vec<(Option<String>, u32)> = evs
            .iter()
            .map(|e| (e.name().map(String::from), e.depth()))
            .collect();
        assert_eq!(
            depths,
            vec![
                (None, 0),
                (Some("a".into()), 1),
                (Some("b".into()), 2),
                (Some("c".into()), 3),
                (Some("c".into()), 3),
                (Some("b".into()), 2),
                (Some("b".into()), 2),
                (Some("b".into()), 2),
                (Some("a".into()), 1),
                (None, 0),
            ]
        );
    }

    #[test]
    fn mismatched_close_is_detected() {
        assert!(matches!(err("<a><b></a></b>"), Error::TagMismatch { .. }));
    }

    #[test]
    fn unbalanced_close_is_detected() {
        assert!(matches!(err("<a></a></b>"), Error::UnbalancedClose { .. }));
    }

    #[test]
    fn unclosed_elements_detected_at_eof() {
        assert!(matches!(err("<a><b>"), Error::UnclosedElements { .. }));
    }

    #[test]
    fn content_outside_root_is_rejected() {
        assert!(matches!(err("hello<a/>"), Error::ContentOutsideRoot { .. }));
        assert!(matches!(
            err("<a/>trailing"),
            Error::ContentOutsideRoot { .. }
        ));
    }

    #[test]
    fn multiple_roots_are_rejected() {
        assert!(matches!(err("<a/><b/>"), Error::MultipleRoots { .. }));
    }

    #[test]
    fn empty_input_is_rejected() {
        assert!(matches!(err(""), Error::UnexpectedEof { .. }));
        assert!(matches!(err("   \n "), Error::UnexpectedEof { .. }));
    }

    #[test]
    fn bad_attribute_syntax_is_rejected() {
        assert!(matches!(err("<a id=1/>"), Error::Syntax { .. }));
        assert!(matches!(err("<a id></a>"), Error::Syntax { .. }));
    }

    #[test]
    fn unterminated_comment_is_rejected() {
        assert!(matches!(
            err("<a><!-- oops</a>"),
            Error::UnexpectedEof { .. }
        ));
    }

    #[test]
    fn offsets_advance() {
        let mut p = StreamParser::new(&b"<a>x</a>"[..]);
        while p.next_event().unwrap().is_some() {}
        assert_eq!(p.offset(), 8);
    }

    #[test]
    fn reset_with_reuses_a_parser_across_documents() {
        let mut p = StreamParser::new(&b"<a x=\"1\"><b>one</b></a>"[..]);
        let mut first = Vec::new();
        while let Some(ev) = p.next_event().unwrap() {
            first.push(ev);
        }
        // Rearm mid-state too: abandon a half-read document cleanly.
        p.reset_with(&b"<a><b>ignored"[..]);
        p.next_raw().unwrap();
        p.next_raw().unwrap();
        p.reset_with(&b"<a x=\"1\"><b>one</b></a>"[..]);
        let mut second = Vec::new();
        while let Some(ev) = p.next_event().unwrap() {
            second.push(ev);
        }
        assert_eq!(first, second);
        assert_eq!(p.offset(), 23);
    }

    #[test]
    fn mixed_content_produces_multiple_text_events() {
        let evs = events("<a>one<b/>two</a>");
        let texts: Vec<&str> = evs
            .iter()
            .filter_map(|e| match e {
                SaxEvent::Text { text, .. } => Some(text.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(texts, vec!["one", "two"]);
    }

    #[test]
    fn deeply_nested_document_parses() {
        let mut doc = String::new();
        for _ in 0..200 {
            doc.push_str("<d>");
        }
        doc.push('x');
        for _ in 0..200 {
            doc.push_str("</d>");
        }
        let evs = events(&doc);
        let max_depth = evs.iter().map(|e| e.depth()).max().unwrap();
        assert_eq!(max_depth, 200);
    }
}
