//! The streaming pull parser: bytes in, depth-extended SAX events out.
//!
//! [`StreamParser`] reads from any [`BufRead`] and never materializes the
//! document: memory use is bounded by the size of a single token (one tag
//! or one run of character data). Well-formedness is enforced with the tag
//! stack exactly as the paper's "simple PDA" (§3.1) does: every end event
//! must match the top of the stack.

use std::collections::VecDeque;
use std::io::BufRead;

use crate::entities::decode_into;
use crate::error::{Error, Result};
use crate::event::{Attribute, SaxEvent};

/// Configuration for [`StreamParser`].
#[derive(Debug, Clone)]
pub struct ParserOptions {
    /// Drop text events consisting only of whitespace (indentation between
    /// elements). The engines in this reproduction never match on
    /// whitespace-only text, and skipping it is what SAX-based systems in
    /// the paper's study effectively do. Default: `true`.
    pub skip_whitespace_text: bool,
}

impl Default for ParserOptions {
    fn default() -> Self {
        ParserOptions {
            skip_whitespace_text: true,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum DocState {
    /// Nothing emitted yet.
    Init,
    /// `StartDocument` emitted, document element not yet seen.
    BeforeRoot,
    /// Inside the document element.
    InRoot,
    /// Document element closed; only misc content allowed.
    AfterRoot,
    /// `EndDocument` emitted.
    Done,
}

/// A streaming, pull-based XML parser.
///
/// ```
/// use xsq_xml::{StreamParser, SaxEvent};
///
/// let mut p = StreamParser::new(&b"<a x=\"1\"><b>hi</b></a>"[..]);
/// let mut names = Vec::new();
/// while let Some(ev) = p.next_event().unwrap() {
///     if let SaxEvent::Begin { name, depth, .. } = &ev {
///         names.push(format!("{name}@{depth}"));
///     }
/// }
/// assert_eq!(names, ["a@1", "b@2"]);
/// ```
pub struct StreamParser<R: BufRead> {
    reader: R,
    offset: u64,
    options: ParserOptions,
    state: DocState,
    /// Open-element stack; `stack.len()` is the current depth.
    stack: Vec<String>,
    /// Events parsed but not yet handed out (a markup token can yield a
    /// pending text event plus the tag's own event, or Begin+End for
    /// `<a/>`).
    pending: VecDeque<SaxEvent>,
    /// Accumulated character data awaiting a flush.
    text: String,
    /// Scratch buffer for raw token bytes.
    scratch: Vec<u8>,
}

impl<R: BufRead> StreamParser<R> {
    /// Create a parser with default options.
    pub fn new(reader: R) -> Self {
        Self::with_options(reader, ParserOptions::default())
    }

    /// Create a parser with explicit options.
    pub fn with_options(reader: R, options: ParserOptions) -> Self {
        StreamParser {
            reader,
            offset: 0,
            options,
            state: DocState::Init,
            stack: Vec::new(),
            pending: VecDeque::new(),
            text: String::new(),
            scratch: Vec::new(),
        }
    }

    /// Current byte offset in the input.
    pub fn offset(&self) -> u64 {
        self.offset
    }

    /// Pull the next event, or `Ok(None)` after `EndDocument`.
    pub fn next_event(&mut self) -> Result<Option<SaxEvent>> {
        loop {
            if let Some(ev) = self.pending.pop_front() {
                return Ok(Some(ev));
            }
            match self.state {
                DocState::Init => {
                    self.state = DocState::BeforeRoot;
                    return Ok(Some(SaxEvent::StartDocument));
                }
                DocState::Done => return Ok(None),
                _ => self.advance()?,
            }
        }
    }

    /// Parse input until at least one event lands in `pending` (or the
    /// document ends).
    fn advance(&mut self) -> Result<()> {
        loop {
            match self.next_byte()? {
                None => return self.finish(),
                Some(b'<') => {
                    self.parse_markup()?;
                    if !self.pending.is_empty() {
                        return Ok(());
                    }
                    // Comments/PIs produce no events; keep scanning.
                }
                Some(b) => {
                    self.read_text(b)?;
                    // Text is flushed lazily when markup or EOF arrives, so
                    // keep scanning: the loop re-enters at the '<'.
                }
            }
        }
    }

    /// Accumulate character data starting with byte `b` until the next `<`.
    fn read_text(&mut self, b: u8) -> Result<()> {
        let start_offset = self.offset - 1;
        self.scratch.clear();
        self.scratch.push(b);
        self.take_until(|c| c == b'<')?;
        let raw = std::str::from_utf8(&self.scratch)
            .map_err(|_| Error::syntax(start_offset, "invalid UTF-8 in character data"))?;
        if self.state != DocState::InRoot {
            if raw.chars().all(char::is_whitespace) {
                return Ok(());
            }
            return Err(Error::ContentOutsideRoot {
                offset: start_offset,
            });
        }
        // Decode into a temporary because `decode_into` borrows `raw`,
        // which aliases `self.scratch`.
        let mut decoded = String::new();
        decode_into(raw, start_offset, &mut decoded)?;
        self.text.push_str(&decoded);
        Ok(())
    }

    /// Emit any buffered text as a `Text` event.
    fn flush_text(&mut self) {
        if self.text.is_empty() {
            return;
        }
        let keep =
            !self.options.skip_whitespace_text || !self.text.chars().all(char::is_whitespace);
        if keep && !self.stack.is_empty() {
            let element = self.stack.last().expect("in root").clone();
            let depth = self.stack.len() as u32;
            self.pending.push_back(SaxEvent::Text {
                element,
                text: std::mem::take(&mut self.text),
                depth,
            });
        } else {
            self.text.clear();
        }
    }

    /// Handle a token that begins with `<` (the `<` is already consumed).
    fn parse_markup(&mut self) -> Result<()> {
        let markup_offset = self.offset - 1;
        match self.peek_byte()? {
            None => Err(Error::UnexpectedEof {
                offset: self.offset,
                context: "markup after '<'",
            }),
            Some(b'/') => {
                self.next_byte()?;
                self.flush_text();
                self.parse_end_tag(markup_offset)
            }
            Some(b'!') => {
                self.next_byte()?;
                self.parse_declaration(markup_offset)
            }
            Some(b'?') => {
                self.next_byte()?;
                self.skip_until(b"?>", "processing instruction")
            }
            Some(_) => {
                self.flush_text();
                self.parse_start_tag(markup_offset)
            }
        }
    }

    /// `<name attr="v" …>` or `<name/>`.
    fn parse_start_tag(&mut self, markup_offset: u64) -> Result<()> {
        match self.state {
            DocState::BeforeRoot => self.state = DocState::InRoot,
            DocState::InRoot => {}
            DocState::AfterRoot => {
                // Peek the name for the error message.
                let name = self.read_name(markup_offset)?;
                return Err(Error::MultipleRoots {
                    offset: markup_offset,
                    tag: name,
                });
            }
            _ => unreachable!("start tag in state {:?}", self.state),
        }
        let name = self.read_name(markup_offset)?;
        if name.is_empty() {
            return Err(Error::syntax(markup_offset, "empty element name"));
        }
        let mut attributes = Vec::new();
        let self_closing = self.parse_attributes(&mut attributes, markup_offset)?;
        self.stack.push(name.clone());
        let depth = self.stack.len() as u32;
        self.pending.push_back(SaxEvent::Begin {
            name: name.clone(),
            attributes,
            depth,
        });
        if self_closing {
            self.stack.pop();
            self.pending.push_back(SaxEvent::End { name, depth });
            if self.stack.is_empty() {
                self.state = DocState::AfterRoot;
            }
        }
        Ok(())
    }

    /// `</name>` — must match the innermost open element.
    fn parse_end_tag(&mut self, markup_offset: u64) -> Result<()> {
        let name = self.read_name(markup_offset)?;
        self.skip_whitespace()?;
        match self.next_byte()? {
            Some(b'>') => {}
            Some(_) => return Err(Error::syntax(markup_offset, "junk in closing tag")),
            None => {
                return Err(Error::UnexpectedEof {
                    offset: self.offset,
                    context: "closing tag",
                })
            }
        }
        match self.stack.pop() {
            None => Err(Error::UnbalancedClose {
                offset: markup_offset,
                tag: name,
            }),
            Some(open) if open != name => Err(Error::TagMismatch {
                offset: markup_offset,
                expected: open,
                found: name,
            }),
            Some(_) => {
                let depth = self.stack.len() as u32 + 1;
                self.pending.push_back(SaxEvent::End { name, depth });
                if self.stack.is_empty() {
                    self.state = DocState::AfterRoot;
                }
                Ok(())
            }
        }
    }

    /// `<!--…-->`, `<![CDATA[…]]>`, or `<!DOCTYPE …>`.
    fn parse_declaration(&mut self, markup_offset: u64) -> Result<()> {
        if self.try_consume(b"--")? {
            return self.skip_until(b"-->", "comment");
        }
        if self.try_consume(b"[CDATA[")? {
            return self.read_cdata(markup_offset);
        }
        // DOCTYPE or other declaration: skip to the matching '>', honoring
        // nested '[' … ']' internal subsets.
        let mut bracket_depth = 0i32;
        loop {
            match self.next_byte()? {
                None => {
                    return Err(Error::UnexpectedEof {
                        offset: self.offset,
                        context: "declaration",
                    })
                }
                Some(b'[') => bracket_depth += 1,
                Some(b']') => bracket_depth -= 1,
                Some(b'>') if bracket_depth <= 0 => return Ok(()),
                Some(_) => {}
            }
        }
    }

    /// CDATA content is raw character data (no entity decoding).
    fn read_cdata(&mut self, markup_offset: u64) -> Result<()> {
        if self.state != DocState::InRoot {
            return Err(Error::ContentOutsideRoot {
                offset: markup_offset,
            });
        }
        self.scratch.clear();
        loop {
            match self.next_byte()? {
                None => {
                    return Err(Error::UnexpectedEof {
                        offset: self.offset,
                        context: "CDATA section",
                    })
                }
                Some(b) => {
                    self.scratch.push(b);
                    if self.scratch.ends_with(b"]]>") {
                        self.scratch.truncate(self.scratch.len() - 3);
                        break;
                    }
                }
            }
        }
        let raw = std::str::from_utf8(&self.scratch)
            .map_err(|_| Error::syntax(markup_offset, "invalid UTF-8 in CDATA"))?;
        self.text.push_str(raw);
        Ok(())
    }

    /// Read an element or attribute name.
    fn read_name(&mut self, markup_offset: u64) -> Result<String> {
        self.scratch.clear();
        self.take_until(|b| !is_name_byte(b))?;
        if self.scratch.is_empty() {
            return Err(Error::syntax(markup_offset, "expected a name"));
        }
        String::from_utf8(std::mem::take(&mut self.scratch))
            .map_err(|_| Error::syntax(markup_offset, "invalid UTF-8 in name"))
    }

    /// Parse attributes up to `>` or `/>`. Returns `true` if self-closing.
    fn parse_attributes(
        &mut self,
        attributes: &mut Vec<Attribute>,
        markup_offset: u64,
    ) -> Result<bool> {
        loop {
            self.skip_whitespace()?;
            match self.peek_byte()? {
                None => {
                    return Err(Error::UnexpectedEof {
                        offset: self.offset,
                        context: "start tag",
                    })
                }
                Some(b'>') => {
                    self.next_byte()?;
                    return Ok(false);
                }
                Some(b'/') => {
                    self.next_byte()?;
                    match self.next_byte()? {
                        Some(b'>') => return Ok(true),
                        _ => return Err(Error::syntax(markup_offset, "expected '>' after '/'")),
                    }
                }
                Some(_) => {
                    let name = self.read_name(markup_offset)?;
                    self.skip_whitespace()?;
                    match self.next_byte()? {
                        Some(b'=') => {}
                        _ => {
                            return Err(Error::syntax(
                                markup_offset,
                                format!("attribute '{name}' missing '='"),
                            ))
                        }
                    }
                    self.skip_whitespace()?;
                    let quote = match self.next_byte()? {
                        Some(q @ (b'"' | b'\'')) => q,
                        _ => {
                            return Err(Error::syntax(
                                markup_offset,
                                format!("attribute '{name}' value must be quoted"),
                            ))
                        }
                    };
                    let value_offset = self.offset;
                    self.scratch.clear();
                    self.take_until(|b| b == quote || b == b'<')?;
                    match self.next_byte()? {
                        Some(b) if b == quote => {}
                        Some(_) => {
                            return Err(Error::syntax(
                                value_offset,
                                "'<' not allowed in attribute value",
                            ))
                        }
                        None => {
                            return Err(Error::UnexpectedEof {
                                offset: self.offset,
                                context: "attribute value",
                            })
                        }
                    }
                    let raw = std::str::from_utf8(&self.scratch).map_err(|_| {
                        Error::syntax(value_offset, "invalid UTF-8 in attribute value")
                    })?;
                    let mut value = String::new();
                    decode_into(raw, value_offset, &mut value)?;
                    attributes.push(Attribute { name, value });
                }
            }
        }
    }

    /// End of input: verify balance and emit `EndDocument`.
    fn finish(&mut self) -> Result<()> {
        if !self.stack.is_empty() {
            return Err(Error::UnclosedElements {
                offset: self.offset,
                open: self.stack.clone(),
            });
        }
        if self.state == DocState::BeforeRoot {
            return Err(Error::UnexpectedEof {
                offset: self.offset,
                context: "document element",
            });
        }
        self.state = DocState::Done;
        self.pending.push_back(SaxEvent::EndDocument);
        Ok(())
    }

    // ---- byte-level helpers -------------------------------------------

    /// Bulk-append input bytes into `scratch` until `stop` matches (the
    /// stopping byte is left unconsumed) or the input ends. Scans whole
    /// `fill_buf` slices instead of byte-at-a-time — the parser's hot
    /// path for character data, names, and attribute values.
    fn take_until(&mut self, stop: impl Fn(u8) -> bool) -> Result<()> {
        loop {
            let buf = self
                .reader
                .fill_buf()
                .map_err(|e| Error::io(self.offset, e))?;
            if buf.is_empty() {
                return Ok(());
            }
            match buf.iter().position(|&b| stop(b)) {
                Some(0) => return Ok(()),
                Some(n) => {
                    self.scratch.extend_from_slice(&buf[..n]);
                    self.reader.consume(n);
                    self.offset += n as u64;
                    return Ok(());
                }
                None => {
                    let n = buf.len();
                    self.scratch.extend_from_slice(buf);
                    self.reader.consume(n);
                    self.offset += n as u64;
                }
            }
        }
    }

    fn next_byte(&mut self) -> Result<Option<u8>> {
        let buf = self
            .reader
            .fill_buf()
            .map_err(|e| Error::io(self.offset, e))?;
        if buf.is_empty() {
            return Ok(None);
        }
        let b = buf[0];
        self.reader.consume(1);
        self.offset += 1;
        Ok(Some(b))
    }

    fn peek_byte(&mut self) -> Result<Option<u8>> {
        let buf = self
            .reader
            .fill_buf()
            .map_err(|e| Error::io(self.offset, e))?;
        Ok(buf.first().copied())
    }

    fn skip_whitespace(&mut self) -> Result<()> {
        while let Some(b) = self.peek_byte()? {
            if b.is_ascii_whitespace() {
                self.next_byte()?;
            } else {
                break;
            }
        }
        Ok(())
    }

    /// Consume `expected` if it is next in the input; single-byte lookahead
    /// is not enough, so this backtracks by buffering into `pending`? No —
    /// it is only called right after a known prefix where a partial match
    /// cannot occur in valid XML, so a mismatch mid-way is a syntax error.
    fn try_consume(&mut self, expected: &[u8]) -> Result<bool> {
        match self.peek_byte()? {
            Some(b) if b == expected[0] => {}
            _ => return Ok(false),
        }
        for (i, &e) in expected.iter().enumerate() {
            match self.next_byte()? {
                Some(b) if b == e => {}
                _ => {
                    return Err(Error::syntax(
                        self.offset,
                        format!("malformed declaration (expected byte {i} of marker)"),
                    ))
                }
            }
        }
        Ok(true)
    }

    fn skip_until(&mut self, terminator: &[u8], context: &'static str) -> Result<()> {
        let mut window: Vec<u8> = Vec::with_capacity(terminator.len());
        loop {
            match self.next_byte()? {
                None => {
                    return Err(Error::UnexpectedEof {
                        offset: self.offset,
                        context,
                    })
                }
                Some(b) => {
                    window.push(b);
                    if window.len() > terminator.len() {
                        window.remove(0);
                    }
                    if window == terminator {
                        return Ok(());
                    }
                }
            }
        }
    }
}

fn is_name_byte(b: u8) -> bool {
    !b.is_ascii_whitespace() && !matches!(b, b'>' | b'/' | b'=' | b'<' | b'"' | b'\'')
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_to_events;

    fn events(input: &str) -> Vec<SaxEvent> {
        parse_to_events(input.as_bytes()).unwrap()
    }

    fn err(input: &str) -> Error {
        parse_to_events(input.as_bytes()).unwrap_err()
    }

    #[test]
    fn simple_document() {
        let evs = events("<a><b>hi</b></a>");
        assert_eq!(evs[0], SaxEvent::StartDocument);
        assert_eq!(
            evs[1],
            SaxEvent::Begin {
                name: "a".into(),
                attributes: vec![],
                depth: 1
            }
        );
        assert_eq!(
            evs[3],
            SaxEvent::Text {
                element: "b".into(),
                text: "hi".into(),
                depth: 2
            }
        );
        assert_eq!(evs[6], SaxEvent::EndDocument);
    }

    #[test]
    fn attributes_are_decoded() {
        let evs = events(r#"<a id="1" name='x &amp; y'/>"#);
        let SaxEvent::Begin { attributes, .. } = &evs[1] else {
            panic!("expected begin");
        };
        assert_eq!(attributes[0], Attribute::new("id", "1"));
        assert_eq!(attributes[1], Attribute::new("name", "x & y"));
        // Self-closing yields an immediate end event at the same depth.
        assert_eq!(
            evs[2],
            SaxEvent::End {
                name: "a".into(),
                depth: 1
            }
        );
    }

    #[test]
    fn whitespace_only_text_is_skipped_by_default() {
        let evs = events("<a>\n  <b>x</b>\n</a>");
        assert!(evs
            .iter()
            .filter(|e| e.is_text())
            .all(|e| matches!(e, SaxEvent::Text { text, .. } if text == "x")));
    }

    #[test]
    fn whitespace_text_kept_when_requested() {
        let opts = ParserOptions {
            skip_whitespace_text: false,
        };
        let mut p = StreamParser::with_options(&b"<a> <b>x</b></a>"[..], opts);
        let mut texts = Vec::new();
        while let Some(ev) = p.next_event().unwrap() {
            if let SaxEvent::Text { text, .. } = ev {
                texts.push(text);
            }
        }
        assert_eq!(texts, vec![" ".to_string(), "x".to_string()]);
    }

    #[test]
    fn text_entities_are_decoded() {
        let evs = events("<a>1 &lt; 2 &amp;&amp; 3 &gt; 2</a>");
        let SaxEvent::Text { text, .. } = &evs[2] else {
            panic!()
        };
        assert_eq!(text, "1 < 2 && 3 > 2");
    }

    #[test]
    fn cdata_is_raw_text_and_coalesces() {
        let evs = events("<a>x<![CDATA[<not-a-tag> & raw]]>y</a>");
        let SaxEvent::Text { text, .. } = &evs[2] else {
            panic!()
        };
        assert_eq!(text, "x<not-a-tag> & rawy");
    }

    #[test]
    fn comments_and_pis_are_skipped() {
        let evs = events("<?xml version=\"1.0\"?><!-- c --><a><!-- inner -->t<?pi d?></a>");
        assert_eq!(evs.len(), 5);
        let SaxEvent::Text { text, .. } = &evs[2] else {
            panic!()
        };
        assert_eq!(text, "t");
    }

    #[test]
    fn doctype_with_internal_subset_is_skipped() {
        let evs = events("<!DOCTYPE a [ <!ELEMENT a (#PCDATA)> ]><a>x</a>");
        assert_eq!(evs.len(), 5);
    }

    #[test]
    fn depths_follow_nesting() {
        let evs = events("<a><b><c/></b><b/></a>");
        let depths: Vec<(Option<String>, u32)> = evs
            .iter()
            .map(|e| (e.name().map(String::from), e.depth()))
            .collect();
        assert_eq!(
            depths,
            vec![
                (None, 0),
                (Some("a".into()), 1),
                (Some("b".into()), 2),
                (Some("c".into()), 3),
                (Some("c".into()), 3),
                (Some("b".into()), 2),
                (Some("b".into()), 2),
                (Some("b".into()), 2),
                (Some("a".into()), 1),
                (None, 0),
            ]
        );
    }

    #[test]
    fn mismatched_close_is_detected() {
        assert!(matches!(err("<a><b></a></b>"), Error::TagMismatch { .. }));
    }

    #[test]
    fn unbalanced_close_is_detected() {
        assert!(matches!(err("<a></a></b>"), Error::UnbalancedClose { .. }));
    }

    #[test]
    fn unclosed_elements_detected_at_eof() {
        assert!(matches!(err("<a><b>"), Error::UnclosedElements { .. }));
    }

    #[test]
    fn content_outside_root_is_rejected() {
        assert!(matches!(err("hello<a/>"), Error::ContentOutsideRoot { .. }));
        assert!(matches!(
            err("<a/>trailing"),
            Error::ContentOutsideRoot { .. }
        ));
    }

    #[test]
    fn multiple_roots_are_rejected() {
        assert!(matches!(err("<a/><b/>"), Error::MultipleRoots { .. }));
    }

    #[test]
    fn empty_input_is_rejected() {
        assert!(matches!(err(""), Error::UnexpectedEof { .. }));
        assert!(matches!(err("   \n "), Error::UnexpectedEof { .. }));
    }

    #[test]
    fn bad_attribute_syntax_is_rejected() {
        assert!(matches!(err("<a id=1/>"), Error::Syntax { .. }));
        assert!(matches!(err("<a id></a>"), Error::Syntax { .. }));
    }

    #[test]
    fn unterminated_comment_is_rejected() {
        assert!(matches!(
            err("<a><!-- oops</a>"),
            Error::UnexpectedEof { .. }
        ));
    }

    #[test]
    fn offsets_advance() {
        let mut p = StreamParser::new(&b"<a>x</a>"[..]);
        while p.next_event().unwrap().is_some() {}
        assert_eq!(p.offset(), 8);
    }

    #[test]
    fn mixed_content_produces_multiple_text_events() {
        let evs = events("<a>one<b/>two</a>");
        let texts: Vec<&str> = evs
            .iter()
            .filter_map(|e| match e {
                SaxEvent::Text { text, .. } => Some(text.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(texts, vec!["one", "two"]);
    }

    #[test]
    fn deeply_nested_document_parses() {
        let mut doc = String::new();
        for _ in 0..200 {
            doc.push_str("<d>");
        }
        doc.push('x');
        for _ in 0..200 {
            doc.push_str("</d>");
        }
        let evs = events(&doc);
        let max_depth = evs.iter().map(|e| e.depth()).max().unwrap();
        assert_eq!(max_depth, 200);
    }
}
