//! The "simple PDA" of Fig. 4(a): a pushdown automaton over SAX events
//! that accepts exactly the well-formed XML streams.
//!
//! For each begin event it pushes the tag onto the stack; for each end
//! event it pops and requires a match. After `EndDocument` the stack must
//! be empty and the machine is in its final state. The paper uses this PDA
//! both to motivate the PDT design (§3.1) and as the well-formedness layer
//! every BPDT inherits; here it is also used as a property-test oracle for
//! the parser.

use crate::event::SaxEvent;
use crate::symbol::Sym;

/// Current status of the PDA.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PdaStatus {
    /// Stream consumed so far is a prefix of some well-formed stream.
    Running,
    /// Stream is complete and well-formed (final state, empty stack).
    Accepted,
    /// Stream can no longer be well-formed.
    Rejected,
}

/// A streaming well-formedness checker over [`SaxEvent`]s.
#[derive(Debug, Default)]
pub struct WellFormednessPda {
    stack: Vec<Sym>,
    started: bool,
    root_seen: bool,
    status: Option<PdaStatus>,
}

impl WellFormednessPda {
    /// Fresh PDA in its start state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Feed one event; returns the status after consuming it.
    pub fn feed(&mut self, event: &SaxEvent) -> PdaStatus {
        if matches!(self.status, Some(PdaStatus::Accepted | PdaStatus::Rejected)) {
            // Anything after acceptance, or after rejection, is a reject.
            self.status = Some(PdaStatus::Rejected);
            return PdaStatus::Rejected;
        }
        let st = match event {
            SaxEvent::StartDocument => {
                if self.started {
                    PdaStatus::Rejected
                } else {
                    self.started = true;
                    PdaStatus::Running
                }
            }
            SaxEvent::EndDocument => {
                if self.started && self.stack.is_empty() && self.root_seen {
                    PdaStatus::Accepted
                } else {
                    PdaStatus::Rejected
                }
            }
            SaxEvent::Begin { name, depth, .. } => {
                if !self.started
                    || (self.stack.is_empty() && self.root_seen)
                    || *depth as usize != self.stack.len() + 1
                {
                    PdaStatus::Rejected
                } else {
                    self.root_seen = true;
                    self.stack.push(*name);
                    PdaStatus::Running
                }
            }
            SaxEvent::End { name, depth } => match self.stack.last() {
                Some(top) if *top == *name && *depth as usize == self.stack.len() => {
                    self.stack.pop();
                    PdaStatus::Running
                }
                _ => PdaStatus::Rejected,
            },
            SaxEvent::Text { depth, .. } => {
                if self.stack.is_empty() || *depth as usize != self.stack.len() {
                    PdaStatus::Rejected
                } else {
                    PdaStatus::Running
                }
            }
        };
        self.status = Some(st);
        st
    }

    /// Current status without feeding anything.
    pub fn status(&self) -> PdaStatus {
        self.status.unwrap_or(PdaStatus::Running)
    }

    /// Current element nesting depth.
    pub fn depth(&self) -> usize {
        self.stack.len()
    }

    /// Run the PDA over a whole event sequence.
    pub fn accepts(events: &[SaxEvent]) -> bool {
        let mut pda = WellFormednessPda::new();
        let mut last = PdaStatus::Running;
        for e in events {
            last = pda.feed(e);
            if last == PdaStatus::Rejected {
                return false;
            }
        }
        last == PdaStatus::Accepted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_to_events;

    #[test]
    fn accepts_parser_output() {
        let evs = parse_to_events(b"<a><b>t</b><b/></a>").unwrap();
        assert!(WellFormednessPda::accepts(&evs));
    }

    #[test]
    fn rejects_mismatched_end() {
        let evs = vec![
            SaxEvent::StartDocument,
            SaxEvent::Begin {
                name: "a".into(),
                attributes: vec![],
                depth: 1,
            },
            SaxEvent::End {
                name: "b".into(),
                depth: 1,
            },
        ];
        assert!(!WellFormednessPda::accepts(&evs));
    }

    #[test]
    fn rejects_wrong_depth() {
        let evs = vec![
            SaxEvent::StartDocument,
            SaxEvent::Begin {
                name: "a".into(),
                attributes: vec![],
                depth: 2, // should be 1
            },
        ];
        assert!(!WellFormednessPda::accepts(&evs));
    }

    #[test]
    fn rejects_truncated_stream() {
        let evs = vec![
            SaxEvent::StartDocument,
            SaxEvent::Begin {
                name: "a".into(),
                attributes: vec![],
                depth: 1,
            },
        ];
        assert!(!WellFormednessPda::accepts(&evs)); // never accepted
    }

    #[test]
    fn rejects_second_root() {
        let evs = vec![
            SaxEvent::StartDocument,
            SaxEvent::Begin {
                name: "a".into(),
                attributes: vec![],
                depth: 1,
            },
            SaxEvent::End {
                name: "a".into(),
                depth: 1,
            },
            SaxEvent::Begin {
                name: "b".into(),
                attributes: vec![],
                depth: 1,
            },
        ];
        assert!(!WellFormednessPda::accepts(&evs));
    }

    #[test]
    fn rejects_events_after_end_document() {
        let mut pda = WellFormednessPda::new();
        pda.feed(&SaxEvent::StartDocument);
        pda.feed(&SaxEvent::Begin {
            name: "a".into(),
            attributes: vec![],
            depth: 1,
        });
        pda.feed(&SaxEvent::End {
            name: "a".into(),
            depth: 1,
        });
        assert_eq!(pda.feed(&SaxEvent::EndDocument), PdaStatus::Accepted);
        assert_eq!(pda.feed(&SaxEvent::StartDocument), PdaStatus::Rejected);
    }

    #[test]
    fn depth_tracks_stack() {
        let mut pda = WellFormednessPda::new();
        pda.feed(&SaxEvent::StartDocument);
        pda.feed(&SaxEvent::Begin {
            name: "a".into(),
            attributes: vec![],
            depth: 1,
        });
        assert_eq!(pda.depth(), 1);
    }
}
