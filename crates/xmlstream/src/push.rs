//! Push-based incremental parsing: network chunks in, events out.
//!
//! The pull parser ([`StreamParser`]) owns its input and demands the
//! next byte whenever it wants one — fine for files, wrong for sockets,
//! where bytes arrive in chunks that split tokens, multi-byte UTF-8
//! sequences, and the CDATA `]]>` terminator at arbitrary boundaries.
//! This module inverts the flow without duplicating the tokenizer:
//!
//! * [`ChunkBuf`] is a [`BufRead`] the *caller* appends to. A one-pass
//!   **token-boundary pre-scanner** runs over every appended chunk and
//!   tracks how far the buffer can safely be exposed to the pull
//!   parser: markup tokens (`<…>`, `<!--…-->`, `<![CDATA[…]]>`,
//!   `<?…?>`, `<!DOCTYPE…>`) are exposed only once complete, and a text
//!   run only once its terminating `<` has arrived. The pull parser
//!   therefore never begins a token it cannot finish, and never
//!   processes a text run whose tail (a split UTF-8 sequence, a `\r` of
//!   a `\r\n` pair, an unterminated `&entity;`) is still in flight.
//! * [`PushParser`] (= `StreamParser<ChunkBuf>`) adds the push surface:
//!   [`push`](StreamParser::push) appends a chunk,
//!   [`poll_raw`](StreamParser::poll_raw) pulls events until it reports
//!   [`ParsePoll::NeedMore`], and [`finish`](StreamParser::finish)
//!   marks end-of-input so the final token and well-formedness checks
//!   run.
//!
//! The pre-scanner mirrors the tokenizer's delimiter rules exactly
//! (quote-aware tags, bracket-aware DOCTYPE, rolling `-->`/`]]>`/`?>`
//! matches), so a document fed in 1-byte chunks produces the event
//! stream — and the errors — of a whole-buffer parse. The chunked
//! differential tests pin that equivalence. It runs on the same
//! runtime-dispatched scan kernels ([`crate::scan`]) as the tokenizer:
//! every state bulk-skips to its next structurally interesting byte, so
//! server and transform ingest pay vector-speed per byte, not a
//! state-machine step.
//!
//! Memory is bounded by the largest single token plus one chunk, the
//! same bound the pull parser's scratch buffers already have: consumed
//! bytes are compacted away as the buffer refills.

use std::io::{BufRead, Read};

use crate::parser::{ParserOptions, StreamParser};
use crate::scan;

/// Pre-scanner state: where in the raw XML grammar the last appended
/// byte sits. Only completeness of tokens is tracked — validity is the
/// pull parser's job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
enum Scan {
    /// Outside markup (character data, or between tokens).
    #[default]
    Text,
    /// Consumed `<`, nothing after it yet.
    Lt,
    /// Inside a start/end tag. `quote` is the active attribute-value
    /// delimiter (`"` / `'`), or 0 outside a value — a `>` inside a
    /// quoted value does not end the tag.
    Tag { quote: u8 },
    /// Consumed `<!`.
    Bang,
    /// Consumed `<!-`.
    BangDash,
    /// Inside `<!--`; `matched` is the length of the `-->` terminator
    /// prefix currently pending (0–2).
    Comment { matched: u8 },
    /// Inside `<![`, matching the `[CDATA[` opener; `matched` bytes of
    /// it are confirmed.
    CdataOpen { matched: u8 },
    /// Inside `<![CDATA[`; `matched` is the pending `]]>` prefix (0–2).
    Cdata { matched: u8 },
    /// Inside `<?`; `qmark` means the previous byte was `?`.
    Pi { qmark: bool },
    /// Inside `<!DOCTYPE` (or any other `<!…` declaration); `depth` is
    /// the internal-subset bracket nesting, mirroring the tokenizer's
    /// skip loop.
    Decl { depth: i32 },
}

/// Compact once the consumed prefix passes this size (or the buffer is
/// fully drained, which is free).
const COMPACT_THRESHOLD: usize = 4096;

/// A growable chunk buffer with a token-boundary pre-scanner: the
/// [`BufRead`] side exposes only bytes that form complete tokens, so
/// the pull parser layered on top can always run to a resumable point.
#[derive(Debug, Default)]
pub struct ChunkBuf {
    data: Vec<u8>,
    /// Read position of the consumer side.
    pos: usize,
    /// Exposure limit: `data[pos..safe]` is servable. Always a token
    /// boundary (or the start of the pending token) unless `eof`.
    safe: usize,
    /// Pre-scanner progress (`scanned ≥ safe`).
    scanned: usize,
    state: Scan,
    /// End-of-input signalled: expose everything, complete or not.
    eof: bool,
}

impl ChunkBuf {
    pub fn new() -> Self {
        ChunkBuf::default()
    }

    /// Append a chunk and advance the pre-scanner over it.
    pub fn push(&mut self, chunk: &[u8]) {
        // Compact the consumed prefix before growing: cheap when fully
        // drained, amortized otherwise.
        if self.pos == self.data.len() {
            self.data.clear();
            self.pos = 0;
            self.safe = 0;
            self.scanned = 0;
        } else if self.pos >= COMPACT_THRESHOLD {
            self.data.copy_within(self.pos.., 0);
            self.data.truncate(self.data.len() - self.pos);
            self.safe -= self.pos;
            self.scanned -= self.pos;
            self.pos = 0;
        }
        self.data.extend_from_slice(chunk);
        self.rescan();
    }

    /// Signal end of input: everything buffered becomes servable (an
    /// incomplete trailing token is now the pull parser's error to
    /// report, exactly as a truncated file would be).
    pub fn finish(&mut self) {
        self.eof = true;
    }

    /// Rearm for a new input stream, keeping the allocation.
    pub fn clear(&mut self) {
        self.data.clear();
        self.pos = 0;
        self.safe = 0;
        self.scanned = 0;
        self.state = Scan::Text;
        self.eof = false;
    }

    /// Bytes appended but not yet consumed by the parser.
    pub fn buffered(&self) -> usize {
        self.data.len() - self.pos
    }

    /// End-of-input already signalled?
    pub fn is_finished(&self) -> bool {
        self.eof
    }

    /// Advance the scanner over `data[scanned..]`, moving `safe` past
    /// every token that completes.
    fn rescan(&mut self) {
        let data = &self.data;
        let len = data.len();
        let mut i = self.scanned;
        let mut state = self.state;
        let mut safe = self.safe;
        while i < len {
            state = match state {
                Scan::Text => match scan::find_byte(&data[i..], b'<') {
                    None => {
                        i = len;
                        Scan::Text
                    }
                    Some(j) => {
                        // Text up to the `<` is a complete run; the `<`
                        // itself stays unexposed until its token ends.
                        safe = i + j;
                        i += j + 1;
                        Scan::Lt
                    }
                },
                Scan::Lt => match data[i] {
                    b'!' => {
                        i += 1;
                        Scan::Bang
                    }
                    b'?' => {
                        i += 1;
                        Scan::Pi { qmark: false }
                    }
                    // Start/end tag (or junk the tokenizer will reject);
                    // reprocess this byte in the tag state.
                    _ => Scan::Tag { quote: 0 },
                },
                Scan::Tag { quote: 0 } => match scan::find_byte3(&data[i..], b'>', b'"', b'\'') {
                    None => {
                        i = len;
                        Scan::Tag { quote: 0 }
                    }
                    Some(j) => {
                        let b = data[i + j];
                        i += j + 1;
                        if b == b'>' {
                            safe = i;
                            Scan::Text
                        } else {
                            Scan::Tag { quote: b }
                        }
                    }
                },
                Scan::Tag { quote } => match scan::find_byte(&data[i..], quote) {
                    None => {
                        i = len;
                        Scan::Tag { quote }
                    }
                    Some(j) => {
                        i += j + 1;
                        Scan::Tag { quote: 0 }
                    }
                },
                Scan::Bang => match data[i] {
                    b'-' => {
                        i += 1;
                        Scan::BangDash
                    }
                    b'[' => {
                        i += 1;
                        Scan::CdataOpen { matched: 1 }
                    }
                    b'>' => {
                        i += 1;
                        safe = i;
                        Scan::Text
                    }
                    _ => Scan::Decl { depth: 0 },
                },
                Scan::BangDash => match data[i] {
                    b'-' => {
                        i += 1;
                        Scan::Comment { matched: 0 }
                    }
                    // `<!-x…` is not a comment; the tokenizer rejects it
                    // when it reads the token. Scan it like a declaration
                    // so it still reaches a boundary.
                    _ => Scan::Decl { depth: 0 },
                },
                // With no terminator prefix pending, the only interesting
                // byte is the next `-`: bulk-skip the comment body to it.
                Scan::Comment { matched: 0 } => match scan::find_byte(&data[i..], b'-') {
                    None => {
                        i = len;
                        Scan::Comment { matched: 0 }
                    }
                    Some(j) => {
                        i += j + 1;
                        Scan::Comment { matched: 1 }
                    }
                },
                Scan::Comment { matched } => {
                    let b = data[i];
                    i += 1;
                    if b == b'-' {
                        Scan::Comment {
                            matched: (matched + 1).min(2),
                        }
                    } else if b == b'>' && matched >= 2 {
                        safe = i;
                        Scan::Text
                    } else {
                        Scan::Comment { matched: 0 }
                    }
                }
                Scan::CdataOpen { matched } => {
                    const OPENER: &[u8] = b"[CDATA[";
                    if data[i] == OPENER[matched as usize] {
                        i += 1;
                        if matched as usize + 1 == OPENER.len() {
                            Scan::Cdata { matched: 0 }
                        } else {
                            Scan::CdataOpen {
                                matched: matched + 1,
                            }
                        }
                    } else {
                        // Not a CDATA section after all (`<![foo…`): the
                        // tokenizer rejects it; scan like a declaration
                        // whose `[` is already open, reprocessing this
                        // byte there.
                        Scan::Decl { depth: 1 }
                    }
                }
                // Same shape as the comment body: bulk-skip to the next
                // `]` when no `]]>` prefix is pending.
                Scan::Cdata { matched: 0 } => match scan::find_byte(&data[i..], b']') {
                    None => {
                        i = len;
                        Scan::Cdata { matched: 0 }
                    }
                    Some(j) => {
                        i += j + 1;
                        Scan::Cdata { matched: 1 }
                    }
                },
                Scan::Cdata { matched } => {
                    let b = data[i];
                    i += 1;
                    if b == b']' {
                        Scan::Cdata {
                            matched: (matched + 1).min(2),
                        }
                    } else if b == b'>' && matched >= 2 {
                        safe = i;
                        Scan::Text
                    } else {
                        Scan::Cdata { matched: 0 }
                    }
                }
                Scan::Pi { qmark: false } => match scan::find_byte(&data[i..], b'?') {
                    None => {
                        i = len;
                        Scan::Pi { qmark: false }
                    }
                    Some(j) => {
                        i += j + 1;
                        Scan::Pi { qmark: true }
                    }
                },
                Scan::Pi { qmark: true } => {
                    let b = data[i];
                    i += 1;
                    if b == b'>' {
                        safe = i;
                        Scan::Text
                    } else {
                        Scan::Pi { qmark: b == b'?' }
                    }
                }
                Scan::Decl { depth } => match scan::find_byte3(&data[i..], b'[', b']', b'>') {
                    None => {
                        i = len;
                        Scan::Decl { depth }
                    }
                    Some(j) => {
                        let b = data[i + j];
                        i += j + 1;
                        match b {
                            b'[' => Scan::Decl { depth: depth + 1 },
                            b']' => Scan::Decl { depth: depth - 1 },
                            _ if depth <= 0 => {
                                safe = i;
                                Scan::Text
                            }
                            _ => Scan::Decl { depth },
                        }
                    }
                },
            };
        }
        self.scanned = i;
        self.state = state;
        self.safe = safe;
    }
}

impl Read for ChunkBuf {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let avail = self.fill_buf()?;
        let n = avail.len().min(buf.len());
        buf[..n].copy_from_slice(&avail[..n]);
        self.consume(n);
        Ok(n)
    }
}

impl BufRead for ChunkBuf {
    fn fill_buf(&mut self) -> std::io::Result<&[u8]> {
        let end = if self.eof { self.data.len() } else { self.safe };
        Ok(&self.data[self.pos..end])
    }

    fn consume(&mut self, amt: usize) {
        self.pos += amt;
        debug_assert!(self.pos <= self.data.len());
    }
}

/// A push-fed [`StreamParser`]: bytes go in through
/// [`push`](StreamParser::push), events come out through
/// [`poll_raw`](StreamParser::poll_raw).
///
/// ```
/// use xsq_xml::{ParsePoll, RawEvent, StreamParser};
///
/// let mut p = StreamParser::push_mode();
/// // A chunk boundary in the middle of a tag, a UTF-8 sequence, …
/// p.push(b"<a><b>caf\xc3");
/// let mut names = Vec::new();
/// loop {
///     match p.poll_raw().unwrap() {
///         ParsePoll::Event(RawEvent::Begin { name, .. }) => names.push(name.to_string()),
///         ParsePoll::Event(_) => {}
///         ParsePoll::NeedMore => break,
///         ParsePoll::End => unreachable!(),
///     }
/// }
/// assert_eq!(names, ["a", "b"]);
/// p.push(b"\xa9</b></a>");
/// p.finish();
/// let mut texts = Vec::new();
/// loop {
///     match p.poll_raw().unwrap() {
///         ParsePoll::Event(RawEvent::Text { text, .. }) => texts.push(text.to_string()),
///         ParsePoll::Event(_) => {}
///         ParsePoll::NeedMore => unreachable!("input is finished"),
///         ParsePoll::End => break,
///     }
/// }
/// assert_eq!(texts, ["café"]);
/// ```
pub type PushParser = StreamParser<ChunkBuf>;

impl StreamParser<ChunkBuf> {
    /// A push-fed parser with default options.
    pub fn push_mode() -> PushParser {
        Self::push_mode_with_options(ParserOptions::default())
    }

    /// A push-fed parser with explicit options.
    pub fn push_mode_with_options(options: ParserOptions) -> PushParser {
        let mut parser = StreamParser::with_options(ChunkBuf::new(), options);
        parser.set_soft_input(true);
        parser
    }

    /// Append a chunk of the document. Chunks may split anything —
    /// tags, multi-byte UTF-8 sequences, entity references, `]]>` —
    /// at any byte boundary.
    pub fn push(&mut self, chunk: &[u8]) {
        self.reader_mut().push(chunk);
    }

    /// Signal end of input. After this, [`poll_raw`](Self::poll_raw)
    /// never reports [`crate::ParsePoll::NeedMore`]: it drains the
    /// remaining events, reports the errors a truncated document
    /// deserves, and ends with [`crate::ParsePoll::End`].
    pub fn finish(&mut self) {
        self.reader_mut().finish();
        self.set_soft_input(false);
    }

    /// Rearm for the next document of the session, keeping every warmed
    /// scratch buffer, the interned-name cache, and the chunk buffer's
    /// allocation — the push-mode analogue of
    /// [`reset_with`](Self::reset_with).
    pub fn reset_push(&mut self) {
        self.reader_mut().clear();
        self.reset();
        self.set_soft_input(true);
    }

    /// Bytes pushed but not yet consumed by the tokenizer.
    pub fn buffered(&self) -> usize {
        self.reader_ref().buffered()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::Error;
    use crate::event::SaxEvent;
    use crate::{parse_to_events, ParsePoll};

    /// Drive a push parser over `doc` in `chunk`-byte pieces, polling
    /// to exhaustion between pushes, and collect owned events.
    fn push_parse(doc: &[u8], chunk: usize) -> crate::Result<Vec<SaxEvent>> {
        let mut parser = StreamParser::push_mode();
        let mut events = Vec::new();
        for piece in doc.chunks(chunk.max(1)) {
            parser.push(piece);
            loop {
                match parser.poll_raw()? {
                    ParsePoll::Event(ev) => events.push(ev.to_owned()),
                    ParsePoll::NeedMore => break,
                    ParsePoll::End => return Ok(events),
                }
            }
        }
        parser.finish();
        loop {
            match parser.poll_raw()? {
                ParsePoll::Event(ev) => events.push(ev.to_owned()),
                ParsePoll::NeedMore => unreachable!("NeedMore after finish"),
                ParsePoll::End => return Ok(events),
            }
        }
    }

    /// Push-parsing at every tiny chunk size must equal one-shot
    /// parsing — same events or same error.
    fn assert_push_equivalent(doc: &str) {
        let whole = parse_to_events(doc.as_bytes());
        for chunk in [1, 2, 3, 7, 16, doc.len().max(1)] {
            let pushed = push_parse(doc.as_bytes(), chunk);
            match (&whole, &pushed) {
                (Ok(w), Ok(p)) => assert_eq!(w, p, "chunk {chunk} diverged on {doc:?}"),
                (Err(w), Err(p)) => assert_eq!(
                    std::mem::discriminant(w),
                    std::mem::discriminant(p),
                    "chunk {chunk} error diverged on {doc:?}: {w:?} vs {p:?}"
                ),
                (w, p) => panic!("chunk {chunk} on {doc:?}: one-shot {w:?} vs push {p:?}"),
            }
        }
    }

    #[test]
    fn tokens_split_at_every_boundary() {
        assert_push_equivalent("<a x=\"1\" y='2'><b>hi &amp; bye</b><c/>tail</a>");
    }

    #[test]
    fn multibyte_utf8_split_across_pushes() {
        assert_push_equivalent("<doc lang=\"日本語\"><t>héllo § — ünïcode</t><t>末尾🚀</t></doc>");
    }

    #[test]
    fn cdata_terminator_split_across_pushes() {
        assert_push_equivalent("<doc><![CDATA[a]b]]x]]]><t>after</t><![CDATA[]]]]><t>b</t></doc>");
    }

    #[test]
    fn crlf_and_entities_split_across_pushes() {
        assert_push_equivalent("<a v=\"two\r\nwords\">x\r\ny&#13;&amp;z\rw</a>");
    }

    #[test]
    fn comments_pis_doctype_split_across_pushes() {
        assert_push_equivalent(
            "<?xml version=\"1.0\"?><!DOCTYPE a [ <!ELEMENT a (#PCDATA)> ]>\
             <a><!-- c --- comment -->t<?pi d?></a>",
        );
    }

    #[test]
    fn angle_bracket_inside_attribute_value_does_not_end_the_tag() {
        assert_push_equivalent("<a v=\"x > y\"><b w='>>'/></a>");
    }

    #[test]
    fn malformed_documents_error_identically() {
        for doc in [
            "<a><b></a></b>",
            "<a></a></b>",
            "<a><b>",
            "hello<a/>",
            "<a/><b/>",
            "",
            "<a id=1/>",
            "<a><!-- oops</a>",
            "<a>&bogus;</a>",
        ] {
            assert_push_equivalent(doc);
        }
    }

    #[test]
    fn needmore_until_token_completes() {
        let mut p = StreamParser::push_mode();
        p.push(b"<roo");
        // StartDocument is available immediately; the half tag is not.
        assert!(matches!(p.poll_raw().unwrap(), ParsePoll::Event(_)));
        assert!(matches!(p.poll_raw().unwrap(), ParsePoll::NeedMore));
        p.push(b"t>");
        let ParsePoll::Event(ev) = p.poll_raw().unwrap() else {
            panic!("expected Begin after tag completes");
        };
        assert_eq!(ev.name().map(|s| s.to_string()), Some("root".into()));
        assert!(matches!(p.poll_raw().unwrap(), ParsePoll::NeedMore));
        p.push(b"</root>");
        p.finish();
        assert!(matches!(p.poll_raw().unwrap(), ParsePoll::Event(_))); // </root>
        assert!(matches!(p.poll_raw().unwrap(), ParsePoll::Event(_))); // EndDocument
        assert!(matches!(p.poll_raw().unwrap(), ParsePoll::End));
    }

    #[test]
    fn text_held_until_markup_arrives() {
        // A text run is exposed only when its terminating `<` shows up,
        // so a split entity or UTF-8 tail is never half-decoded.
        let mut p = StreamParser::push_mode();
        p.push(b"<a>x &am");
        p.poll_raw().unwrap(); // StartDocument
        p.poll_raw().unwrap(); // <a>
        assert!(matches!(p.poll_raw().unwrap(), ParsePoll::NeedMore));
        p.push(b"p; y<");
        assert!(matches!(p.poll_raw().unwrap(), ParsePoll::NeedMore));
        p.push(b"/a>");
        let ParsePoll::Event(crate::RawEvent::Text { text, .. }) = p.poll_raw().unwrap() else {
            panic!("expected the complete text run");
        };
        assert_eq!(text, "x & y");
    }

    #[test]
    fn truncated_document_errors_on_finish() {
        let mut p = StreamParser::push_mode();
        p.push(b"<a><b>unclosed");
        while let ParsePoll::Event(_) = p.poll_raw().unwrap() {}
        p.finish();
        let err = loop {
            match p.poll_raw() {
                Ok(ParsePoll::Event(_)) => continue,
                Ok(other) => panic!("expected error, got {other:?}"),
                Err(e) => break e,
            }
        };
        assert!(matches!(err, Error::UnclosedElements { .. }));
    }

    #[test]
    fn next_raw_on_starved_push_parser_is_an_error_not_eof() {
        let mut p = StreamParser::push_mode();
        p.push(b"<a><b");
        p.next_raw().unwrap(); // StartDocument
        p.next_raw().unwrap(); // <a>
        assert!(matches!(p.next_raw(), Err(Error::UnexpectedEof { .. })));
    }

    #[test]
    fn reset_push_reuses_parser_across_documents() {
        let mut p = StreamParser::push_mode();
        let doc = b"<a x=\"1\"><b>one</b></a>";
        let mut runs = Vec::new();
        for _ in 0..3 {
            let mut events = Vec::new();
            for piece in doc.chunks(2) {
                p.push(piece);
                while let ParsePoll::Event(ev) = p.poll_raw().unwrap() {
                    events.push(ev.to_owned());
                }
            }
            p.finish();
            loop {
                match p.poll_raw().unwrap() {
                    ParsePoll::Event(ev) => events.push(ev.to_owned()),
                    ParsePoll::End => break,
                    ParsePoll::NeedMore => unreachable!(),
                }
            }
            runs.push(events);
            p.reset_push();
        }
        assert_eq!(runs[0], runs[1]);
        assert_eq!(runs[1], runs[2]);
        assert_eq!(runs[0], parse_to_events(doc).unwrap());
    }

    #[test]
    fn reset_push_recovers_mid_document() {
        let mut p = StreamParser::push_mode();
        p.push(b"<a><b>half a doc");
        while let ParsePoll::Event(_) = p.poll_raw().unwrap() {}
        p.reset_push();
        p.push(b"<c/>");
        p.finish();
        let mut names = Vec::new();
        while let ParsePoll::Event(ev) = p.poll_raw().unwrap() {
            if let Some(n) = ev.name() {
                names.push(n.to_string());
            }
        }
        assert_eq!(names, ["c", "c"]);
    }

    #[test]
    fn buffered_reports_unconsumed_bytes_and_compaction_keeps_them() {
        let mut p = StreamParser::push_mode();
        p.push(b"<a>");
        while let ParsePoll::Event(_) = p.poll_raw().unwrap() {}
        assert_eq!(p.buffered(), 0);
        p.push(b"text without markup yet");
        assert_eq!(p.buffered(), 23);
        // Exceed the compaction threshold with many consumed tokens; the
        // held text must survive the buffer shifts intact.
        let mut texts = Vec::new();
        let mut drain = |p: &mut PushParser| loop {
            match p.poll_raw().unwrap() {
                ParsePoll::Event(crate::RawEvent::Text { text, .. }) => {
                    texts.push(text.to_string())
                }
                ParsePoll::Event(_) => {}
                _ => break,
            }
        };
        for _ in 0..2048 {
            p.push(b"<x/>");
            drain(&mut p);
        }
        p.push(b"</a>");
        p.finish();
        drain(&mut p);
        assert_eq!(texts, ["text without markup yet"]);
    }
}
