//! Decoding of the five predefined XML entities and numeric character
//! references, and the inverse escaping used by the serializer.

use crate::error::{Error, Result};

/// Decode a single entity *name* (the text between `&` and `;`).
///
/// Supports the five predefined entities (`amp`, `lt`, `gt`, `apos`,
/// `quot`) and decimal/hexadecimal character references (`#65`, `#x41`).
pub fn decode_entity(name: &str, offset: u64) -> Result<char> {
    match name {
        "amp" => Ok('&'),
        "lt" => Ok('<'),
        "gt" => Ok('>'),
        "apos" => Ok('\''),
        "quot" => Ok('"'),
        _ => {
            if let Some(rest) = name.strip_prefix("#x").or_else(|| name.strip_prefix("#X")) {
                u32::from_str_radix(rest, 16)
                    .ok()
                    .and_then(char::from_u32)
                    .ok_or_else(|| bad(name, offset))
            } else if let Some(rest) = name.strip_prefix('#') {
                rest.parse::<u32>()
                    .ok()
                    .and_then(char::from_u32)
                    .ok_or_else(|| bad(name, offset))
            } else {
                Err(bad(name, offset))
            }
        }
    }
}

fn bad(name: &str, offset: u64) -> Error {
    Error::BadEntity {
        offset,
        entity: name.to_string(),
    }
}

/// Decode all entity references in `raw`, appending to `out`.
///
/// `offset` is the byte offset of `raw` in the input, used for error
/// positions. Returns an error on malformed references (`&` not followed by
/// a terminated, known entity).
pub fn decode_into(raw: &str, offset: u64, out: &mut String) -> Result<()> {
    let mut rest = raw;
    let mut consumed = 0u64;
    while let Some(pos) = rest.find('&') {
        out.push_str(&rest[..pos]);
        let after = &rest[pos + 1..];
        let semi = after.find(';').ok_or_else(|| Error::BadEntity {
            offset: offset + consumed + pos as u64,
            entity: after.chars().take(12).collect(),
        })?;
        let name = &after[..semi];
        out.push(decode_entity(name, offset + consumed + pos as u64)?);
        let advanced = pos + 1 + semi + 1;
        consumed += advanced as u64;
        rest = &rest[advanced..];
    }
    out.push_str(rest);
    Ok(())
}

/// Escape `text` for use as element character content (escapes `&`, `<`,
/// `>`), appending to `out`.
///
/// A literal CR must become `&#13;`: XML 1.0 §2.11 makes every parser
/// rewrite raw `\r` to `\n`, so only the character reference survives a
/// serialize → reparse round trip.
pub fn escape_text_into(text: &str, out: &mut String) {
    // All four specials are ASCII, so splitting the string at them is
    // UTF-8 safe; clean stretches between specials are appended wholesale
    // at kernel scan speed instead of char by char.
    let bytes = text.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let rest = &bytes[i..];
        let n = crate::scan::find_byte4(rest, b'&', b'<', b'>', b'\r').unwrap_or(rest.len());
        out.push_str(&text[i..i + n]);
        i += n;
        if i >= bytes.len() {
            break;
        }
        match bytes[i] {
            b'&' => out.push_str("&amp;"),
            b'<' => out.push_str("&lt;"),
            b'>' => out.push_str("&gt;"),
            _ => out.push_str("&#13;"),
        }
        i += 1;
    }
}

/// Escape `value` for use inside a double-quoted attribute value.
///
/// Tab, LF, and CR must be character references: attribute-value
/// normalization (XML 1.0 §3.3.3) turns the literal characters into
/// spaces on reparse, so emitting them raw loses the value.
pub fn escape_attr_into(value: &str, out: &mut String) {
    for c in value.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\t' => out.push_str("&#9;"),
            '\n' => out.push_str("&#10;"),
            '\r' => out.push_str("&#13;"),
            _ => out.push(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn decode(raw: &str) -> String {
        let mut s = String::new();
        decode_into(raw, 0, &mut s).unwrap();
        s
    }

    #[test]
    fn predefined_entities_decode() {
        assert_eq!(
            decode("a &amp; b &lt; c &gt; d &apos;&quot;"),
            "a & b < c > d '\""
        );
    }

    #[test]
    fn numeric_references_decode() {
        assert_eq!(decode("&#65;&#x42;&#x63;"), "ABc");
        assert_eq!(decode("&#x1F600;"), "\u{1F600}");
    }

    #[test]
    fn unknown_entity_is_an_error() {
        let mut s = String::new();
        let err = decode_into("&nbsp;", 10, &mut s).unwrap_err();
        assert!(matches!(err, Error::BadEntity { offset: 10, .. }));
    }

    #[test]
    fn unterminated_entity_is_an_error() {
        let mut s = String::new();
        assert!(decode_into("x &amp y", 0, &mut s).is_err());
    }

    #[test]
    fn bad_codepoint_is_an_error() {
        let mut s = String::new();
        assert!(decode_into("&#xD800;", 0, &mut s).is_err()); // surrogate
        assert!(decode_into("&#99999999;", 0, &mut s).is_err());
    }

    #[test]
    fn escape_roundtrips_through_decode() {
        let original = "a<b>&c \"quoted\" 'single'";
        let mut escaped = String::new();
        escape_text_into(original, &mut escaped);
        assert_eq!(decode(&escaped), original);
        let mut attr = String::new();
        escape_attr_into(original, &mut attr);
        assert!(!attr.contains('"') || !attr.contains("\" "));
        assert_eq!(decode(&attr), original);
    }

    #[test]
    fn whitespace_that_normalization_would_destroy_is_referenced() {
        // Text: only CR is at risk (end-of-line normalization).
        let mut s = String::new();
        escape_text_into("a\rb\nc\td", &mut s);
        assert_eq!(s, "a&#13;b\nc\td");
        // Attributes: tab, LF, and CR all normalize to spaces.
        let mut a = String::new();
        escape_attr_into("a\tb\nc\rd", &mut a);
        assert_eq!(a, "a&#9;b&#10;c&#13;d");
        assert_eq!(decode(&a), "a\tb\nc\rd");
    }

    #[test]
    fn error_offset_points_at_the_ampersand() {
        let mut s = String::new();
        let err = decode_into("abc&bogus;x", 100, &mut s).unwrap_err();
        assert_eq!(err.offset(), 103);
    }
}
