//! # xsq-xml — streaming XML substrate
//!
//! This crate is the SAX-layer substrate of the XSQ reproduction (Peng &
//! Chawathe, *XPath Queries on Streaming Data*, SIGMOD 2003). The paper's
//! engines consume an XML document as a stream of SAX events, each extended
//! with the *depth* of the element it belongs to (§2.1 of the paper):
//!
//! * `Begin(a, attrs, d)` — the opening tag of an element `a` at depth `d`,
//!   carrying its attribute list;
//! * `End(a, d)` — the closing tag of `a` at depth `d`;
//! * `Text(a, text, d)` — character content appearing directly inside an
//!   element `a` at depth `d`.
//!
//! In addition we emit `StartDocument` / `EndDocument` events (depth 0);
//! the paper's *root BPDT* (Fig. 12) consumes exactly these.
//!
//! The crate provides:
//!
//! * [`parser::StreamParser`] — a pull parser producing [`event::SaxEvent`]s
//!   from any [`std::io::BufRead`], with entity decoding, comment/CDATA/PI
//!   handling, and well-formedness checking;
//! * [`pda::WellFormednessPda`] — the "simple PDA" of Fig. 4(a): a pushdown
//!   automaton that accepts exactly well-formed event streams;
//! * [`writer::XmlWriter`] — escaping serializer (used for `*̄` catchall
//!   element output and for round-trip property tests);
//! * [`stats`] — the dataset statistics of Fig. 15 (size, text size, element
//!   count, avg/max depth, avg tag length);
//! * [`pure::PureParser`] — the paper's throughput yardstick: parses and
//!   discards, giving the upper bound every engine is normalized against
//!   (§6.2, *relative throughput*).

pub mod dtd;
pub mod entities;
pub mod error;
pub mod event;
pub mod parser;
pub mod pda;
pub mod pure;
pub mod push;
pub mod scan;
pub mod stats;
pub mod symbol;
pub mod writer;

pub use error::{Error, Result};
pub use event::{Attribute, RawEvent, SaxEvent};
pub use parser::{ParsePoll, StreamParser};
pub use pda::WellFormednessPda;
pub use pure::PureParser;
pub use push::{ChunkBuf, PushParser};
pub use stats::{dataset_stats, DatasetStats};
pub use symbol::Sym;
pub use writer::{DocumentWriter, WriteError, XmlWriter};

/// Parse a complete document held in memory into a vector of events.
///
/// Convenience wrapper over [`StreamParser`] for tests and small inputs;
/// streaming consumers should drive the pull parser directly.
pub fn parse_to_events(input: &[u8]) -> Result<Vec<SaxEvent>> {
    let mut parser = StreamParser::new(input);
    let mut events = Vec::new();
    while let Some(ev) = parser.next_event()? {
        events.push(ev);
    }
    Ok(events)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_to_events_roundtrips_simple_document() {
        let events = parse_to_events(b"<a><b>hi</b></a>").unwrap();
        assert_eq!(events.len(), 7); // startdoc, <a>, <b>, text, </b>, </a>, enddoc
    }
}
