//! The depth-extended SAX event model of §2.1.
//!
//! An XML stream is a sequence `{e1, e2, …}` where each event is a begin
//! event `(a, attrs, d)`, an end event `(/a, d)`, or a text event
//! `(a, text(), d)` — `a` the element tag and `d` its depth. The document
//! element has depth 1; `StartDocument`/`EndDocument` bracket the stream at
//! depth 0 and are consumed by the root BPDT (Fig. 12 of the paper).

use std::fmt;

/// A single attribute on a begin event: `name="value"` with the value
/// already entity-decoded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Attribute {
    pub name: String,
    pub value: String,
}

impl Attribute {
    /// Construct an attribute from anything string-like.
    pub fn new(name: impl Into<String>, value: impl Into<String>) -> Self {
        Attribute {
            name: name.into(),
            value: value.into(),
        }
    }
}

/// A depth-extended SAX event.
#[derive(Debug, Clone, PartialEq)]
pub enum SaxEvent {
    /// Start of the document; the paper's synthetic `<root>` event.
    StartDocument,
    /// End of the document; the paper's synthetic `</root>` event.
    EndDocument,
    /// `(a, attrs, d)` — opening tag of element `a` at depth `d ≥ 1`.
    Begin {
        name: String,
        attributes: Vec<Attribute>,
        depth: u32,
    },
    /// `(/a, d)` — closing tag of element `a` at depth `d ≥ 1`.
    End { name: String, depth: u32 },
    /// `(a, text(), d)` — character content directly inside element `a`
    /// (which is at depth `d`). Adjacent character data is coalesced into a
    /// single event; entity references are decoded.
    Text {
        /// Tag of the enclosing element (the paper's text events carry the
        /// element name so a transition arc can match `<tag.text()>`).
        element: String,
        text: String,
        depth: u32,
    },
}

impl SaxEvent {
    /// Depth of the event as defined in §2.1 (document events are depth 0).
    pub fn depth(&self) -> u32 {
        match self {
            SaxEvent::StartDocument | SaxEvent::EndDocument => 0,
            SaxEvent::Begin { depth, .. }
            | SaxEvent::End { depth, .. }
            | SaxEvent::Text { depth, .. } => *depth,
        }
    }

    /// The element tag the event refers to, if any.
    pub fn name(&self) -> Option<&str> {
        match self {
            SaxEvent::Begin { name, .. } | SaxEvent::End { name, .. } => Some(name),
            SaxEvent::Text { element, .. } => Some(element),
            _ => None,
        }
    }

    /// True for begin events (`e ∈ B` in the paper's notation).
    pub fn is_begin(&self) -> bool {
        matches!(self, SaxEvent::Begin { .. })
    }

    /// True for end events (`e ∈ E`).
    pub fn is_end(&self) -> bool {
        matches!(self, SaxEvent::End { .. })
    }

    /// True for text events (`e ∈ T`).
    pub fn is_text(&self) -> bool {
        matches!(self, SaxEvent::Text { .. })
    }

    /// Look up an attribute value on a begin event.
    pub fn attribute(&self, name: &str) -> Option<&str> {
        match self {
            SaxEvent::Begin { attributes, .. } => attributes
                .iter()
                .find(|a| a.name == name)
                .map(|a| a.value.as_str()),
            _ => None,
        }
    }

    /// Approximate in-memory footprint of the event, used by the memory
    /// accounting of the experiment harness (Figs. 19–20).
    pub fn heap_bytes(&self) -> usize {
        match self {
            SaxEvent::StartDocument | SaxEvent::EndDocument => 0,
            SaxEvent::Begin {
                name, attributes, ..
            } => {
                name.len()
                    + attributes
                        .iter()
                        .map(|a| a.name.len() + a.value.len())
                        .sum::<usize>()
            }
            SaxEvent::End { name, .. } => name.len(),
            SaxEvent::Text { element, text, .. } => element.len() + text.len(),
        }
    }
}

impl fmt::Display for SaxEvent {
    /// Renders the event in the paper's notation, e.g. `(book,{id=1},2)`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SaxEvent::StartDocument => write!(f, "(<root>,0)"),
            SaxEvent::EndDocument => write!(f, "(</root>,0)"),
            SaxEvent::Begin {
                name,
                attributes,
                depth,
            } => {
                write!(f, "({name},{{")?;
                for (i, a) in attributes.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{}={}", a.name, a.value)?;
                }
                write!(f, "}},{depth})")
            }
            SaxEvent::End { name, depth } => write!(f, "(/{name},{depth})"),
            SaxEvent::Text { element, depth, .. } => {
                write!(f, "({element},text(),{depth})")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn begin(name: &str, depth: u32) -> SaxEvent {
        SaxEvent::Begin {
            name: name.into(),
            attributes: vec![Attribute::new("id", "1")],
            depth,
        }
    }

    #[test]
    fn depth_and_name_accessors() {
        let b = begin("book", 2);
        assert_eq!(b.depth(), 2);
        assert_eq!(b.name(), Some("book"));
        assert!(b.is_begin() && !b.is_end() && !b.is_text());
        assert_eq!(SaxEvent::StartDocument.depth(), 0);
        assert_eq!(SaxEvent::StartDocument.name(), None);
    }

    #[test]
    fn attribute_lookup() {
        let b = begin("book", 2);
        assert_eq!(b.attribute("id"), Some("1"));
        assert_eq!(b.attribute("missing"), None);
        assert_eq!(SaxEvent::StartDocument.attribute("id"), None);
    }

    #[test]
    fn display_uses_paper_notation() {
        let b = begin("book", 2);
        assert_eq!(b.to_string(), "(book,{id=1},2)");
        let e = SaxEvent::End {
            name: "book".into(),
            depth: 2,
        };
        assert_eq!(e.to_string(), "(/book,2)");
    }

    #[test]
    fn heap_bytes_counts_strings() {
        let b = begin("book", 2);
        assert_eq!(b.heap_bytes(), 4 + 2 + 1);
    }
}
