//! The depth-extended SAX event model of §2.1.
//!
//! An XML stream is a sequence `{e1, e2, …}` where each event is a begin
//! event `(a, attrs, d)`, an end event `(/a, d)`, or a text event
//! `(a, text(), d)` — `a` the element tag and `d` its depth. The document
//! element has depth 1; `StartDocument`/`EndDocument` bracket the stream at
//! depth 0 and are consumed by the root BPDT (Fig. 12 of the paper).
//!
//! Element and attribute names are interned [`Sym`]s (see
//! [`crate::symbol`]), so comparing tags downstream is a `u32` compare.
//! Two event shapes share the model:
//!
//! * [`RawEvent`] — the zero-copy view the parser lends out: attribute
//!   lists and text borrow the parser's scratch buffers, valid until the
//!   next pull. This is the hot-path currency of the engines.
//! * [`SaxEvent`] — the owned form, for queues, tests, and any consumer
//!   that retains events past the next pull. [`RawEvent::to_owned`] and
//!   [`SaxEvent::as_raw`] convert between them.

use std::fmt;

use crate::symbol::Sym;

/// A single attribute on a begin event: `name="value"` with the value
/// already entity-decoded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Attribute {
    pub name: Sym,
    pub value: String,
}

impl Attribute {
    /// Construct an attribute from anything name-like and value-like.
    pub fn new(name: impl Into<Sym>, value: impl Into<String>) -> Self {
        Attribute {
            name: name.into(),
            value: value.into(),
        }
    }
}

/// A depth-extended SAX event (owned form).
#[derive(Debug, Clone, PartialEq)]
pub enum SaxEvent {
    /// Start of the document; the paper's synthetic `<root>` event.
    StartDocument,
    /// End of the document; the paper's synthetic `</root>` event.
    EndDocument,
    /// `(a, attrs, d)` — opening tag of element `a` at depth `d ≥ 1`.
    Begin {
        name: Sym,
        attributes: Vec<Attribute>,
        depth: u32,
    },
    /// `(/a, d)` — closing tag of element `a` at depth `d ≥ 1`.
    End { name: Sym, depth: u32 },
    /// `(a, text(), d)` — character content directly inside element `a`
    /// (which is at depth `d`). Adjacent character data is coalesced into a
    /// single event; entity references are decoded.
    Text {
        /// Tag of the enclosing element (the paper's text events carry the
        /// element name so a transition arc can match `<tag.text()>`).
        element: Sym,
        text: String,
        depth: u32,
    },
}

/// A depth-extended SAX event borrowed from the parser's scratch buffers.
///
/// Valid only until the next [`crate::StreamParser::next_raw`] call; the
/// attribute slice and text str point into buffers the parser reuses.
/// Names are [`Sym`]s and therefore `'static`-safe to copy out.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RawEvent<'a> {
    /// Start of the document.
    StartDocument,
    /// End of the document.
    EndDocument,
    /// `(a, attrs, d)`.
    Begin {
        name: Sym,
        attributes: &'a [Attribute],
        depth: u32,
    },
    /// `(/a, d)`.
    End { name: Sym, depth: u32 },
    /// `(a, text(), d)`.
    Text {
        element: Sym,
        text: &'a str,
        depth: u32,
    },
}

impl SaxEvent {
    /// Depth of the event as defined in §2.1 (document events are depth 0).
    pub fn depth(&self) -> u32 {
        match self {
            SaxEvent::StartDocument | SaxEvent::EndDocument => 0,
            SaxEvent::Begin { depth, .. }
            | SaxEvent::End { depth, .. }
            | SaxEvent::Text { depth, .. } => *depth,
        }
    }

    /// The element tag the event refers to, if any.
    pub fn name(&self) -> Option<&str> {
        self.name_sym().map(Sym::as_str)
    }

    /// The element tag as an interned symbol, if any.
    pub fn name_sym(&self) -> Option<Sym> {
        match self {
            SaxEvent::Begin { name, .. } | SaxEvent::End { name, .. } => Some(*name),
            SaxEvent::Text { element, .. } => Some(*element),
            _ => None,
        }
    }

    /// True for begin events (`e ∈ B` in the paper's notation).
    pub fn is_begin(&self) -> bool {
        matches!(self, SaxEvent::Begin { .. })
    }

    /// True for end events (`e ∈ E`).
    pub fn is_end(&self) -> bool {
        matches!(self, SaxEvent::End { .. })
    }

    /// True for text events (`e ∈ T`).
    pub fn is_text(&self) -> bool {
        matches!(self, SaxEvent::Text { .. })
    }

    /// Look up an attribute value on a begin event.
    pub fn attribute(&self, name: &str) -> Option<&str> {
        match self {
            SaxEvent::Begin { attributes, .. } => attributes
                .iter()
                .find(|a| a.name == *name)
                .map(|a| a.value.as_str()),
            _ => None,
        }
    }

    /// The zero-copy view of this owned event.
    pub fn as_raw(&self) -> RawEvent<'_> {
        match self {
            SaxEvent::StartDocument => RawEvent::StartDocument,
            SaxEvent::EndDocument => RawEvent::EndDocument,
            SaxEvent::Begin {
                name,
                attributes,
                depth,
            } => RawEvent::Begin {
                name: *name,
                attributes,
                depth: *depth,
            },
            SaxEvent::End { name, depth } => RawEvent::End {
                name: *name,
                depth: *depth,
            },
            SaxEvent::Text {
                element,
                text,
                depth,
            } => RawEvent::Text {
                element: *element,
                text,
                depth: *depth,
            },
        }
    }

    /// Approximate in-memory footprint of the event, used by the memory
    /// accounting of the experiment harness (Figs. 19–20). Interned names
    /// are charged at their string length so the figures stay comparable
    /// with the paper's per-event accounting.
    pub fn heap_bytes(&self) -> usize {
        match self {
            SaxEvent::StartDocument | SaxEvent::EndDocument => 0,
            SaxEvent::Begin {
                name, attributes, ..
            } => {
                name.as_str().len()
                    + attributes
                        .iter()
                        .map(|a| a.name.as_str().len() + a.value.len())
                        .sum::<usize>()
            }
            SaxEvent::End { name, .. } => name.as_str().len(),
            SaxEvent::Text { element, text, .. } => element.as_str().len() + text.len(),
        }
    }
}

impl<'a> RawEvent<'a> {
    /// Depth of the event (document events are depth 0).
    pub fn depth(&self) -> u32 {
        match self {
            RawEvent::StartDocument | RawEvent::EndDocument => 0,
            RawEvent::Begin { depth, .. }
            | RawEvent::End { depth, .. }
            | RawEvent::Text { depth, .. } => *depth,
        }
    }

    /// The element tag as an interned symbol, if any.
    pub fn name_sym(&self) -> Option<Sym> {
        match self {
            RawEvent::Begin { name, .. } | RawEvent::End { name, .. } => Some(*name),
            RawEvent::Text { element, .. } => Some(*element),
            _ => None,
        }
    }

    /// The element tag the event refers to, if any.
    pub fn name(&self) -> Option<&'static str> {
        self.name_sym().map(Sym::as_str)
    }

    /// True for begin events.
    pub fn is_begin(&self) -> bool {
        matches!(self, RawEvent::Begin { .. })
    }

    /// True for end events.
    pub fn is_end(&self) -> bool {
        matches!(self, RawEvent::End { .. })
    }

    /// True for text events.
    pub fn is_text(&self) -> bool {
        matches!(self, RawEvent::Text { .. })
    }

    /// Look up an attribute value by interned name — the hot-path lookup,
    /// a `u32` compare per attribute and no hashing.
    pub fn attribute_sym(&self, name: Sym) -> Option<&'a str> {
        match self {
            RawEvent::Begin { attributes, .. } => attributes
                .iter()
                .find(|a| a.name == name)
                .map(|a| a.value.as_str()),
            _ => None,
        }
    }

    /// Look up an attribute value by string name.
    pub fn attribute(&self, name: &str) -> Option<&'a str> {
        Sym::lookup(name).and_then(|s| self.attribute_sym(s))
    }

    /// Materialize an owned event (allocates: attribute vec and text copy).
    pub fn to_owned(&self) -> SaxEvent {
        match self {
            RawEvent::StartDocument => SaxEvent::StartDocument,
            RawEvent::EndDocument => SaxEvent::EndDocument,
            RawEvent::Begin {
                name,
                attributes,
                depth,
            } => SaxEvent::Begin {
                name: *name,
                attributes: attributes.to_vec(),
                depth: *depth,
            },
            RawEvent::End { name, depth } => SaxEvent::End {
                name: *name,
                depth: *depth,
            },
            RawEvent::Text {
                element,
                text,
                depth,
            } => SaxEvent::Text {
                element: *element,
                text: (*text).to_string(),
                depth: *depth,
            },
        }
    }
}

fn fmt_event(f: &mut fmt::Formatter<'_>, ev: &RawEvent<'_>) -> fmt::Result {
    match ev {
        RawEvent::StartDocument => write!(f, "(<root>,0)"),
        RawEvent::EndDocument => write!(f, "(</root>,0)"),
        RawEvent::Begin {
            name,
            attributes,
            depth,
        } => {
            write!(f, "({name},{{")?;
            for (i, a) in attributes.iter().enumerate() {
                if i > 0 {
                    write!(f, ",")?;
                }
                write!(f, "{}={}", a.name, a.value)?;
            }
            write!(f, "}},{depth})")
        }
        RawEvent::End { name, depth } => write!(f, "(/{name},{depth})"),
        RawEvent::Text { element, depth, .. } => {
            write!(f, "({element},text(),{depth})")
        }
    }
}

impl fmt::Display for SaxEvent {
    /// Renders the event in the paper's notation, e.g. `(book,{id=1},2)`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_event(f, &self.as_raw())
    }
}

impl fmt::Display for RawEvent<'_> {
    /// Renders the event in the paper's notation, e.g. `(book,{id=1},2)`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_event(f, self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn begin(name: &str, depth: u32) -> SaxEvent {
        SaxEvent::Begin {
            name: name.into(),
            attributes: vec![Attribute::new("id", "1")],
            depth,
        }
    }

    #[test]
    fn depth_and_name_accessors() {
        let b = begin("book", 2);
        assert_eq!(b.depth(), 2);
        assert_eq!(b.name(), Some("book"));
        assert!(b.is_begin() && !b.is_end() && !b.is_text());
        assert_eq!(SaxEvent::StartDocument.depth(), 0);
        assert_eq!(SaxEvent::StartDocument.name(), None);
    }

    #[test]
    fn attribute_lookup() {
        let b = begin("book", 2);
        assert_eq!(b.attribute("id"), Some("1"));
        assert_eq!(b.attribute("missing"), None);
        assert_eq!(SaxEvent::StartDocument.attribute("id"), None);
    }

    #[test]
    fn display_uses_paper_notation() {
        let b = begin("book", 2);
        assert_eq!(b.to_string(), "(book,{id=1},2)");
        let e = SaxEvent::End {
            name: "book".into(),
            depth: 2,
        };
        assert_eq!(e.to_string(), "(/book,2)");
    }

    #[test]
    fn heap_bytes_counts_strings() {
        let b = begin("book", 2);
        assert_eq!(b.heap_bytes(), 4 + 2 + 1);
    }

    #[test]
    fn raw_and_owned_round_trip() {
        let owned = begin("book", 2);
        let raw = owned.as_raw();
        assert_eq!(raw.depth(), 2);
        assert_eq!(raw.name(), Some("book"));
        assert_eq!(raw.attribute("id"), Some("1"));
        assert_eq!(raw.attribute_sym(Sym::intern("id")), Some("1"));
        assert_eq!(raw.to_string(), owned.to_string());
        assert_eq!(raw.to_owned(), owned);
    }

    #[test]
    fn raw_text_borrows() {
        let owned = SaxEvent::Text {
            element: "b".into(),
            text: "hi".into(),
            depth: 2,
        };
        let raw = owned.as_raw();
        let RawEvent::Text { element, text, .. } = raw else {
            panic!("expected text");
        };
        assert_eq!(element, "b");
        assert_eq!(text, "hi");
        assert_eq!(raw.to_owned(), owned);
    }
}
