//! Serializing SAX events back to XML text.
//!
//! Used by the engines for the paper's catchall (`*̄`) output expression —
//! when a query has no output expression, each matching *element* is
//! emitted whole (§3.4) — and by the round-trip property tests.

use crate::entities::{escape_attr_into, escape_text_into};
use crate::event::{RawEvent, SaxEvent};

/// An incremental XML serializer writing into an owned `String`.
///
/// Feed it the event subsequence corresponding to an element (begin,
/// descendants, end) and it produces the textual form of that element.
#[derive(Debug, Default)]
pub struct XmlWriter {
    out: String,
}

impl XmlWriter {
    /// Create an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append one event's textual form.
    ///
    /// `StartDocument`/`EndDocument` produce nothing: the writer serializes
    /// fragments, not documents.
    pub fn write_event(&mut self, event: &SaxEvent) {
        write_event_into(event, &mut self.out);
    }

    /// The accumulated text.
    pub fn as_str(&self) -> &str {
        &self.out
    }

    /// Consume the writer, returning the accumulated text.
    pub fn into_string(self) -> String {
        self.out
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.out.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.out.is_empty()
    }
}

/// Append the textual form of `event` to `out`.
pub fn write_event_into(event: &SaxEvent, out: &mut String) {
    write_raw_event_into(&event.as_raw(), out);
}

/// Append the textual form of a borrowed [`RawEvent`] to `out` — the
/// zero-copy serialization path used by the engines' `*̄` catchall output.
pub fn write_raw_event_into(event: &RawEvent<'_>, out: &mut String) {
    match event {
        RawEvent::StartDocument | RawEvent::EndDocument => {}
        RawEvent::Begin {
            name, attributes, ..
        } => {
            out.push('<');
            out.push_str(name.as_str());
            for a in attributes.iter() {
                out.push(' ');
                out.push_str(a.name.as_str());
                out.push_str("=\"");
                escape_attr_into(&a.value, out);
                out.push('"');
            }
            out.push('>');
        }
        RawEvent::End { name, .. } => {
            out.push_str("</");
            out.push_str(name.as_str());
            out.push('>');
        }
        RawEvent::Text { text, .. } => escape_text_into(text, out),
    }
}

/// Serialize a slice of events (e.g. one whole element) to a `String`.
pub fn events_to_string(events: &[SaxEvent]) -> String {
    let mut w = XmlWriter::new();
    for e in events {
        w.write_event(&e.clone());
    }
    w.into_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Attribute;
    use crate::parse_to_events;

    #[test]
    fn writes_element_with_escaped_attribute() {
        let mut w = XmlWriter::new();
        w.write_event(&SaxEvent::Begin {
            name: "a".into(),
            attributes: vec![Attribute::new("t", "x\"<&")],
            depth: 1,
        });
        w.write_event(&SaxEvent::Text {
            element: "a".into(),
            text: "1 < 2".into(),
            depth: 1,
        });
        w.write_event(&SaxEvent::End {
            name: "a".into(),
            depth: 1,
        });
        assert_eq!(w.as_str(), "<a t=\"x&quot;&lt;&amp;\">1 &lt; 2</a>");
    }

    #[test]
    fn document_events_write_nothing() {
        let mut w = XmlWriter::new();
        w.write_event(&SaxEvent::StartDocument);
        w.write_event(&SaxEvent::EndDocument);
        assert!(w.is_empty());
        assert_eq!(w.len(), 0);
    }

    #[test]
    fn roundtrip_parse_write_parse_is_identity_on_events() {
        let doc = "<pub><book id=\"1\"><name>A &amp; B</name></book></pub>";
        let evs = parse_to_events(doc.as_bytes()).unwrap();
        let rewritten = events_to_string(&evs);
        let evs2 = parse_to_events(rewritten.as_bytes()).unwrap();
        assert_eq!(evs, evs2);
    }
}
