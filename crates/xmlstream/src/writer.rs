//! Serializing SAX events back to XML text.
//!
//! Used by the engines for the paper's catchall (`*̄`) output expression —
//! when a query has no output expression, each matching *element* is
//! emitted whole (§3.4) — and by the round-trip property tests.

use crate::entities::{escape_attr_into, escape_text_into};
use crate::event::{RawEvent, SaxEvent};

/// An incremental XML serializer writing into an owned `String`.
///
/// Feed it the event subsequence corresponding to an element (begin,
/// descendants, end) and it produces the textual form of that element.
#[derive(Debug, Default)]
pub struct XmlWriter {
    out: String,
}

impl XmlWriter {
    /// Create an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append one event's textual form.
    ///
    /// `StartDocument`/`EndDocument` produce nothing: the writer serializes
    /// fragments, not documents.
    pub fn write_event(&mut self, event: &SaxEvent) {
        write_event_into(event, &mut self.out);
    }

    /// Append a comment: `<!--text-->`.
    ///
    /// XML forbids `--` inside a comment and a `-` just before the
    /// terminator; both are defused with an inserted space so the output
    /// is always well formed (the parser drops comments anyway, so the
    /// mutation is invisible to every event-level consumer).
    pub fn write_comment(&mut self, text: &str) {
        self.out.push_str("<!--");
        self.out.push_str(&text.replace("--", "- -"));
        if self.out.ends_with('-') {
            self.out.push(' ');
        }
        self.out.push_str("-->");
    }

    /// Append a processing instruction: `<?target data?>` (or `<?target?>`
    /// when `data` is empty). A `?>` inside the data would terminate the
    /// PI early; it is defused with an inserted space.
    pub fn write_pi(&mut self, target: &str, data: &str) {
        self.out.push_str("<?");
        self.out.push_str(target);
        if !data.is_empty() {
            self.out.push(' ');
            self.out.push_str(&data.replace("?>", "? >"));
        }
        self.out.push_str("?>");
    }

    /// Append a CDATA section holding `text` verbatim.
    ///
    /// A literal `]]>` cannot appear inside one section; the standard
    /// trick splits it across two sections (`]]]]><![CDATA[>`), keeping
    /// the decoded character data byte-identical.
    pub fn write_cdata(&mut self, text: &str) {
        self.out.push_str("<![CDATA[");
        self.out.push_str(&text.replace("]]>", "]]]]><![CDATA[>"));
        self.out.push_str("]]>");
    }

    /// The accumulated text.
    pub fn as_str(&self) -> &str {
        &self.out
    }

    /// Consume the writer, returning the accumulated text.
    pub fn into_string(self) -> String {
        self.out
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.out.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.out.is_empty()
    }
}

/// Append the textual form of `event` to `out`.
pub fn write_event_into(event: &SaxEvent, out: &mut String) {
    write_raw_event_into(&event.as_raw(), out);
}

/// Append the textual form of a borrowed [`RawEvent`] to `out` — the
/// zero-copy serialization path used by the engines' `*̄` catchall output.
pub fn write_raw_event_into(event: &RawEvent<'_>, out: &mut String) {
    match event {
        RawEvent::StartDocument | RawEvent::EndDocument => {}
        RawEvent::Begin {
            name, attributes, ..
        } => {
            out.push('<');
            out.push_str(name.as_str());
            for a in attributes.iter() {
                out.push(' ');
                out.push_str(a.name.as_str());
                out.push_str("=\"");
                escape_attr_into(&a.value, out);
                out.push('"');
            }
            out.push('>');
        }
        RawEvent::End { name, .. } => {
            out.push_str("</");
            out.push_str(name.as_str());
            out.push('>');
        }
        RawEvent::Text { text, .. } => escape_text_into(text, out),
    }
}

/// Serialize a slice of events (e.g. one whole element) to a `String`.
pub fn events_to_string(events: &[SaxEvent]) -> String {
    let mut w = XmlWriter::new();
    for e in events {
        w.write_event(&e.clone());
    }
    w.into_string()
}

/// A structural error raised by [`DocumentWriter`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WriteError {
    /// A second top-level element after the root already closed.
    SecondRoot { name: String },
    /// An `End` event with no matching open element.
    UnbalancedEnd { name: String },
    /// Non-whitespace character data outside the root element.
    TextOutsideRoot,
    /// `finish` called with elements still open.
    UnclosedElements { open: usize },
    /// `finish` called before any root element was written.
    NoRoot,
}

impl std::fmt::Display for WriteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WriteError::SecondRoot { name } => {
                write!(f, "element <{name}> would be a second document root")
            }
            WriteError::UnbalancedEnd { name } => {
                write!(f, "end event </{name}> has no matching open element")
            }
            WriteError::TextOutsideRoot => {
                write!(f, "non-whitespace character data outside the root element")
            }
            WriteError::UnclosedElements { open } => {
                write!(f, "document finished with {open} element(s) still open")
            }
            WriteError::NoRoot => write!(f, "document has no root element"),
        }
    }
}

impl std::error::Error for WriteError {}

/// A validating whole-document serializer.
///
/// [`XmlWriter`] serializes *fragments* and trusts its caller; this
/// wrapper enforces document well-formedness — exactly one root element,
/// balanced ends, no stray character data — so bulk producers (the
/// transformation engine, test generators) get a structural check for
/// free instead of discovering malformed output at reparse time.
#[derive(Debug, Default)]
pub struct DocumentWriter {
    inner: XmlWriter,
    open: usize,
    root_seen: bool,
}

impl DocumentWriter {
    /// Create a writer with no XML declaration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create a writer that starts with an XML declaration.
    pub fn with_decl() -> Self {
        let mut w = Self::default();
        w.inner
            .out
            .push_str("<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n");
        w
    }

    /// Append one event, validating document structure.
    pub fn write_event(&mut self, event: &SaxEvent) -> Result<(), WriteError> {
        match event {
            SaxEvent::Begin { name, .. } if self.open == 0 && self.root_seen => {
                return Err(WriteError::SecondRoot {
                    name: name.as_str().to_string(),
                });
            }
            SaxEvent::Begin { .. } => {
                self.root_seen = true;
                self.open += 1;
            }
            SaxEvent::End { name, .. } => {
                if self.open == 0 {
                    return Err(WriteError::UnbalancedEnd {
                        name: name.as_str().to_string(),
                    });
                }
                self.open -= 1;
            }
            SaxEvent::Text { text, .. } if self.open == 0 => {
                if !text.chars().all(|c| c.is_ascii_whitespace()) {
                    return Err(WriteError::TextOutsideRoot);
                }
                // Whitespace between the declaration and the root (or
                // after the root) is legal misc content; pass it through.
            }
            SaxEvent::Text { .. } | SaxEvent::StartDocument | SaxEvent::EndDocument => {}
        }
        self.inner.write_event(event);
        Ok(())
    }

    /// Append a comment (legal anywhere in a document).
    pub fn write_comment(&mut self, text: &str) {
        self.inner.write_comment(text);
    }

    /// Append a processing instruction (legal anywhere in a document).
    pub fn write_pi(&mut self, target: &str, data: &str) {
        self.inner.write_pi(target, data);
    }

    /// Number of currently open elements.
    pub fn depth(&self) -> usize {
        self.open
    }

    /// Validate completeness and return the document text.
    pub fn finish(self) -> Result<String, WriteError> {
        if self.open > 0 {
            return Err(WriteError::UnclosedElements { open: self.open });
        }
        if !self.root_seen {
            return Err(WriteError::NoRoot);
        }
        Ok(self.inner.into_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Attribute;
    use crate::parse_to_events;

    #[test]
    fn writes_element_with_escaped_attribute() {
        let mut w = XmlWriter::new();
        w.write_event(&SaxEvent::Begin {
            name: "a".into(),
            attributes: vec![Attribute::new("t", "x\"<&")],
            depth: 1,
        });
        w.write_event(&SaxEvent::Text {
            element: "a".into(),
            text: "1 < 2".into(),
            depth: 1,
        });
        w.write_event(&SaxEvent::End {
            name: "a".into(),
            depth: 1,
        });
        assert_eq!(w.as_str(), "<a t=\"x&quot;&lt;&amp;\">1 &lt; 2</a>");
    }

    #[test]
    fn document_events_write_nothing() {
        let mut w = XmlWriter::new();
        w.write_event(&SaxEvent::StartDocument);
        w.write_event(&SaxEvent::EndDocument);
        assert!(w.is_empty());
        assert_eq!(w.len(), 0);
    }

    #[test]
    fn roundtrip_parse_write_parse_is_identity_on_events() {
        let doc = "<pub><book id=\"1\"><name>A &amp; B</name></book></pub>";
        let evs = parse_to_events(doc.as_bytes()).unwrap();
        let rewritten = events_to_string(&evs);
        let evs2 = parse_to_events(rewritten.as_bytes()).unwrap();
        assert_eq!(evs, evs2);
    }
}
