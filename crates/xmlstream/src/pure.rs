//! The paper's `PureParser` (§6.2): parse the stream and do nothing else.
//!
//! The throughput of a pure parser is the upper bound for any streaming
//! query system built on the same parser; the paper reports every system's
//! throughput *relative* to its PureParser. The experiment harness in this
//! reproduction does the same, so parser cost is factored out of the
//! engine comparison exactly as in the paper.

use std::io::BufRead;

use crate::error::Result;
use crate::event::RawEvent;
use crate::parser::StreamParser;

/// Summary of a PureParser run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ParseCounts {
    pub begin_events: u64,
    pub end_events: u64,
    pub text_events: u64,
    pub attributes: u64,
    pub text_bytes: u64,
}

impl ParseCounts {
    /// Total number of SAX events (excluding the document brackets).
    pub fn total_events(&self) -> u64 {
        self.begin_events + self.end_events + self.text_events
    }
}

/// Parses a stream, counts events, and discards them.
#[derive(Debug, Default)]
pub struct PureParser;

impl PureParser {
    /// Run over a reader and return the event counts. Drives the
    /// zero-copy [`StreamParser::next_raw`] path, so the yardstick
    /// measures tokenization, not allocation.
    pub fn run<R: BufRead>(reader: R) -> Result<ParseCounts> {
        let mut parser = StreamParser::new(reader);
        let mut counts = ParseCounts::default();
        while let Some(ev) = parser.next_raw()? {
            match ev {
                RawEvent::Begin { attributes, .. } => {
                    counts.begin_events += 1;
                    counts.attributes += attributes.len() as u64;
                }
                RawEvent::End { .. } => counts.end_events += 1,
                RawEvent::Text { text, .. } => {
                    counts.text_events += 1;
                    counts.text_bytes += text.len() as u64;
                }
                _ => {}
            }
        }
        Ok(counts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_match_document() {
        let counts = PureParser::run(&b"<a p=\"1\"><b>xy</b><c/></a>"[..]).unwrap();
        assert_eq!(counts.begin_events, 3);
        assert_eq!(counts.end_events, 3);
        assert_eq!(counts.text_events, 1);
        assert_eq!(counts.attributes, 1);
        assert_eq!(counts.text_bytes, 2);
        assert_eq!(counts.total_events(), 7);
    }

    #[test]
    fn malformed_input_propagates_error() {
        assert!(PureParser::run(&b"<a><b></a>"[..]).is_err());
    }
}
