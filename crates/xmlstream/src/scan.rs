//! SWAR byte scanning: the tokenizer's memchr-style fast path.
//!
//! The parser spends most of its time finding the next `<` in character
//! data and the closing quote of an attribute value. Scanning those runs
//! byte-at-a-time leaves 7/8 of every load on the floor; these helpers
//! process 8 bytes per iteration with SIMD-within-a-register bit tricks
//! (the classic "haszero" word trick), with no dependency on the
//! `memchr` crate. A `std::simd` upgrade is an open ROADMAP item.

const LO: u64 = 0x0101_0101_0101_0101;
const HI: u64 = 0x8080_8080_8080_8080;

/// `Some(word_with_high_bits)` if any byte of `w` equals `needle`'s
/// broadcast; each matching byte position has its high bit set.
#[inline(always)]
fn match_mask(w: u64, broadcast: u64) -> u64 {
    let x = w ^ broadcast;
    x.wrapping_sub(LO) & !x & HI
}

#[inline(always)]
fn broadcast(b: u8) -> u64 {
    LO * b as u64
}

/// Position of the first occurrence of `needle` in `haystack`.
#[inline]
pub fn find_byte(haystack: &[u8], needle: u8) -> Option<usize> {
    let bc = broadcast(needle);
    let mut chunks = haystack.chunks_exact(8);
    let mut base = 0;
    for chunk in &mut chunks {
        let w = u64::from_le_bytes(chunk.try_into().unwrap());
        let m = match_mask(w, bc);
        if m != 0 {
            return Some(base + (m.trailing_zeros() / 8) as usize);
        }
        base += 8;
    }
    chunks
        .remainder()
        .iter()
        .position(|&b| b == needle)
        .map(|i| base + i)
}

/// Position of the first occurrence of either `n1` or `n2` in `haystack`.
#[inline]
pub fn find_byte2(haystack: &[u8], n1: u8, n2: u8) -> Option<usize> {
    let b1 = broadcast(n1);
    let b2 = broadcast(n2);
    let mut chunks = haystack.chunks_exact(8);
    let mut base = 0;
    for chunk in &mut chunks {
        let w = u64::from_le_bytes(chunk.try_into().unwrap());
        let m = match_mask(w, b1) | match_mask(w, b2);
        if m != 0 {
            return Some(base + (m.trailing_zeros() / 8) as usize);
        }
        base += 8;
    }
    chunks
        .remainder()
        .iter()
        .position(|&b| b == n1 || b == n2)
        .map(|i| base + i)
}

/// Position of the first occurrence of `n1`, `n2`, or `n3`.
#[inline]
pub fn find_byte3(haystack: &[u8], n1: u8, n2: u8, n3: u8) -> Option<usize> {
    let b1 = broadcast(n1);
    let b2 = broadcast(n2);
    let b3 = broadcast(n3);
    let mut chunks = haystack.chunks_exact(8);
    let mut base = 0;
    for chunk in &mut chunks {
        let w = u64::from_le_bytes(chunk.try_into().unwrap());
        let m = match_mask(w, b1) | match_mask(w, b2) | match_mask(w, b3);
        if m != 0 {
            return Some(base + (m.trailing_zeros() / 8) as usize);
        }
        base += 8;
    }
    chunks
        .remainder()
        .iter()
        .position(|&b| b == n1 || b == n2 || b == n3)
        .map(|i| base + i)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn find_byte_matches_naive_scan() {
        let data = b"abcdefghijklmnop<qrstuvwxyz";
        for needle in [b'<', b'a', b'p', b'z', b'!'] {
            assert_eq!(
                find_byte(data, needle),
                data.iter().position(|&b| b == needle),
                "needle {:?}",
                needle as char
            );
        }
    }

    #[test]
    fn find_byte_handles_all_offsets_and_lengths() {
        for len in 0..40 {
            for pos in 0..len {
                let mut v = vec![b'x'; len];
                v[pos] = b'<';
                assert_eq!(find_byte(&v, b'<'), Some(pos), "len={len} pos={pos}");
            }
            let v = vec![b'x'; len];
            assert_eq!(find_byte(&v, b'<'), None, "len={len} absent");
        }
    }

    #[test]
    fn find_byte2_returns_earliest_of_either() {
        let data = b"aaaaaaaaaaaa\"bbb<ccc";
        assert_eq!(find_byte2(data, b'<', b'"'), Some(12));
        assert_eq!(find_byte2(data, b'<', b'!'), Some(16));
        assert_eq!(find_byte2(data, b'!', b'?'), None);
        for len in 0..25 {
            for pos in 0..len {
                let mut v = vec![b'x'; len];
                v[pos] = b'&';
                assert_eq!(find_byte2(&v, b'<', b'&'), Some(pos));
            }
        }
    }

    #[test]
    fn find_byte3_returns_earliest_of_three() {
        let data = b"0123456789'0123<45&67";
        assert_eq!(find_byte3(data, b'<', b'&', b'\''), Some(10));
        assert_eq!(find_byte3(data, b'<', b'&', b'%'), Some(15));
        assert_eq!(find_byte3(data, b'%', b'@', b'~'), None);
    }
}
