//! Runtime-dispatched delimiter-scan kernels: the tokenizer's memchr.
//!
//! The parser spends most of its time finding the next `<` in character
//! data and the closing quote of an attribute value, and the push-mode
//! pre-scanner ([`crate::push::ChunkBuf`]) spends its time finding token
//! boundaries. Scanning those runs byte-at-a-time leaves most of every
//! cache line on the floor, so this module provides a family of kernels
//! and picks the fastest one the CPU supports, once, at first use:
//!
//! * **`avx2`** — 32 bytes per step via `core::arch::x86_64` intrinsics
//!   (`vpcmpeqb` + `vpmovmskb`), selected when `is_x86_feature_detected!`
//!   reports AVX2.
//! * **`sse2`** — 16 bytes per step; the x86_64 baseline (every x86_64
//!   CPU has SSE2, so on that arch this tier is always available).
//! * **`swar`** — two unrolled `u64` lanes (16 bytes per step) of the
//!   classic "haszero" SIMD-within-a-register trick; portable, the
//!   default on non-x86 targets and under Miri.
//! * **`scalar`** — a plain byte loop; the always-correct reference the
//!   differential tests compare every other tier against.
//!
//! The selected kernel is cached in a function-pointer table
//! ([`Vtable`]) behind a `OnceLock`, so steady-state dispatch is one
//! indirect call with no feature re-detection. `XSQ_SCAN_KERNEL=scalar|
//! swar|sse2|avx2` overrides selection (CI pins each tier with it); an
//! unknown name panics loudly, a known-but-unavailable tier falls back
//! down the chain (`avx2 → sse2 → swar`) and the active kernel is
//! reported by [`active_kernel`] so benches record what actually ran.
//!
//! # Safety
//!
//! The SSE2/AVX2 implementations are `unsafe fn`s marked
//! `#[target_feature(...)]`. They are sound to call because (a) their
//! safe wrappers are only reachable through a [`Vtable`] that is
//! installed after `is_x86_feature_detected!` confirms the feature, or
//! through [`Kernel`] methods that assert [`Kernel::is_available`]
//! first, and (b) every pointer they read is derived from the haystack
//! slice and stays in `[ptr, ptr + len)`: the main loop only loads full
//! vectors at `i` with `i + W <= len`, and the tail uses one *overlapped*
//! load at `len - W` (only taken when `len >= W`). Unaligned loads
//! (`loadu`) are used throughout, so alignment is irrelevant. The
//! overlapped tail window re-examines bytes already proven match-free,
//! so the first set bit in its mask is always a genuine first match.
//!
//! SWAR positional correctness: `match_mask` can set spurious high bits,
//! but only at byte positions *above* the first true match (the borrow
//! in `wrapping_sub` propagates low→high), so `trailing_zeros()/8` is
//! exact and OR-combining several needle masks preserves that property.

use std::sync::OnceLock;

/// One tier of the scan-kernel family.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Kernel {
    /// Plain byte loop; always available; the differential reference.
    Scalar,
    /// Portable two-lane `u64` SWAR; always available.
    Swar,
    /// 16-byte `core::arch` vectors; x86_64 only (and not under Miri).
    Sse2,
    /// 32-byte `core::arch` vectors; x86_64 with runtime-detected AVX2.
    Avx2,
}

impl Kernel {
    /// The name used by `XSQ_SCAN_KERNEL` and recorded in bench JSON.
    pub fn name(self) -> &'static str {
        match self {
            Kernel::Scalar => "scalar",
            Kernel::Swar => "swar",
            Kernel::Sse2 => "sse2",
            Kernel::Avx2 => "avx2",
        }
    }

    /// Parse an `XSQ_SCAN_KERNEL` value.
    pub fn from_name(name: &str) -> Option<Kernel> {
        match name {
            "scalar" => Some(Kernel::Scalar),
            "swar" => Some(Kernel::Swar),
            "sse2" => Some(Kernel::Sse2),
            "avx2" => Some(Kernel::Avx2),
            _ => None,
        }
    }

    /// Whether this tier can run on the current CPU / build.
    pub fn is_available(self) -> bool {
        match self {
            Kernel::Scalar | Kernel::Swar => true,
            #[cfg(all(target_arch = "x86_64", not(miri)))]
            Kernel::Sse2 => std::arch::is_x86_feature_detected!("sse2"),
            #[cfg(all(target_arch = "x86_64", not(miri)))]
            Kernel::Avx2 => std::arch::is_x86_feature_detected!("avx2"),
            #[cfg(not(all(target_arch = "x86_64", not(miri))))]
            Kernel::Sse2 | Kernel::Avx2 => false,
        }
    }

    fn vtable(self) -> &'static Vtable {
        assert!(
            self.is_available(),
            "scan kernel `{}` is not available on this CPU/build",
            self.name()
        );
        match self {
            Kernel::Scalar => &SCALAR_VT,
            Kernel::Swar => &SWAR_VT,
            #[cfg(all(target_arch = "x86_64", not(miri)))]
            Kernel::Sse2 => &SSE2_VT,
            #[cfg(all(target_arch = "x86_64", not(miri)))]
            Kernel::Avx2 => &AVX2_VT,
            #[cfg(not(all(target_arch = "x86_64", not(miri))))]
            Kernel::Sse2 | Kernel::Avx2 => unreachable!(),
        }
    }

    /// [`find_byte`] forced onto this tier (differential tests).
    pub fn find_byte(self, haystack: &[u8], n1: u8) -> Option<usize> {
        (self.vtable().find1)(haystack, n1)
    }

    /// [`find_byte2`] forced onto this tier.
    pub fn find_byte2(self, haystack: &[u8], n1: u8, n2: u8) -> Option<usize> {
        (self.vtable().find2)(haystack, n1, n2)
    }

    /// [`find_byte3`] forced onto this tier.
    pub fn find_byte3(self, haystack: &[u8], n1: u8, n2: u8, n3: u8) -> Option<usize> {
        (self.vtable().find3)(haystack, n1, n2, n3)
    }

    /// [`find_byte4`] forced onto this tier.
    pub fn find_byte4(self, haystack: &[u8], n1: u8, n2: u8, n3: u8, n4: u8) -> Option<usize> {
        (self.vtable().find4)(haystack, n1, n2, n3, n4)
    }

    /// [`classify_run`] forced onto this tier.
    pub fn classify_run(self, haystack: &[u8]) -> usize {
        let [a, b, c, d] = TEXT_DELIMS;
        self.find_byte4(haystack, a, b, c, d)
            .unwrap_or(haystack.len())
    }
}

impl std::fmt::Display for Kernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Every tier runnable on this CPU/build, slowest first.
pub fn available_kernels() -> Vec<Kernel> {
    [Kernel::Scalar, Kernel::Swar, Kernel::Sse2, Kernel::Avx2]
        .into_iter()
        .filter(|k| k.is_available())
        .collect()
}

/// The tier the process-wide dispatch table selected (detection plus
/// any `XSQ_SCAN_KERNEL` override).
pub fn active_kernel() -> Kernel {
    table().kernel
}

/// Comma-joined list of scan-relevant CPU features detected at runtime
/// (empty on non-x86 targets) — recorded in bench JSON so throughput
/// numbers are interpretable across containers.
pub fn cpu_features() -> String {
    #[cfg(all(target_arch = "x86_64", not(miri)))]
    {
        let mut feats: Vec<&str> = Vec::new();
        if std::arch::is_x86_feature_detected!("sse2") {
            feats.push("sse2");
        }
        if std::arch::is_x86_feature_detected!("sse4.2") {
            feats.push("sse4.2");
        }
        if std::arch::is_x86_feature_detected!("avx") {
            feats.push("avx");
        }
        if std::arch::is_x86_feature_detected!("avx2") {
            feats.push("avx2");
        }
        if std::arch::is_x86_feature_detected!("avx512f") {
            feats.push("avx512f");
        }
        feats.join(",")
    }
    #[cfg(not(all(target_arch = "x86_64", not(miri))))]
    {
        String::new()
    }
}

/// The delimiters that end a clean character-data run: tag open, entity
/// reference, carriage return (line-ending normalization), and `]`
/// (the `]]>`-in-content well-formedness check).
pub const TEXT_DELIMS: [u8; 4] = *b"<&\r]";

struct Vtable {
    kernel: Kernel,
    find1: fn(&[u8], u8) -> Option<usize>,
    find2: fn(&[u8], u8, u8) -> Option<usize>,
    find3: fn(&[u8], u8, u8, u8) -> Option<usize>,
    find4: fn(&[u8], u8, u8, u8, u8) -> Option<usize>,
}

static SCALAR_VT: Vtable = Vtable {
    kernel: Kernel::Scalar,
    find1: scalar::find1,
    find2: scalar::find2,
    find3: scalar::find3,
    find4: scalar::find4,
};

static SWAR_VT: Vtable = Vtable {
    kernel: Kernel::Swar,
    find1: swar::find1,
    find2: swar::find2,
    find3: swar::find3,
    find4: swar::find4,
};

#[cfg(all(target_arch = "x86_64", not(miri)))]
static SSE2_VT: Vtable = Vtable {
    kernel: Kernel::Sse2,
    find1: sse2::find1,
    find2: sse2::find2,
    find3: sse2::find3,
    find4: sse2::find4,
};

#[cfg(all(target_arch = "x86_64", not(miri)))]
static AVX2_VT: Vtable = Vtable {
    kernel: Kernel::Avx2,
    find1: avx2::find1,
    find2: avx2::find2,
    find3: avx2::find3,
    find4: avx2::find4,
};

fn detect_best() -> &'static Vtable {
    #[cfg(all(target_arch = "x86_64", not(miri)))]
    {
        if std::arch::is_x86_feature_detected!("avx2") {
            return &AVX2_VT;
        }
        if std::arch::is_x86_feature_detected!("sse2") {
            return &SSE2_VT;
        }
    }
    &SWAR_VT
}

fn select() -> &'static Vtable {
    match std::env::var("XSQ_SCAN_KERNEL") {
        Ok(name) => {
            let requested = Kernel::from_name(&name).unwrap_or_else(|| {
                panic!(
                    "XSQ_SCAN_KERNEL={name:?} is not a scan kernel \
                     (expected scalar|swar|sse2|avx2)"
                )
            });
            // A requested-but-unavailable vector tier falls back down
            // the chain instead of crashing: the override is a floor
            // on portability, not a promise the CPU can keep.
            let chain: &[Kernel] = match requested {
                Kernel::Avx2 => &[Kernel::Avx2, Kernel::Sse2, Kernel::Swar],
                Kernel::Sse2 => &[Kernel::Sse2, Kernel::Swar],
                Kernel::Swar => &[Kernel::Swar],
                Kernel::Scalar => &[Kernel::Scalar],
            };
            let k = chain.iter().copied().find(|k| k.is_available()).unwrap();
            k.vtable()
        }
        Err(_) => detect_best(),
    }
}

fn table() -> &'static Vtable {
    static TABLE: OnceLock<&'static Vtable> = OnceLock::new();
    TABLE.get_or_init(select)
}

/// Position of the first occurrence of `needle` in `haystack`.
#[inline]
pub fn find_byte(haystack: &[u8], needle: u8) -> Option<usize> {
    (table().find1)(haystack, needle)
}

/// Position of the first occurrence of either `n1` or `n2` in `haystack`.
#[inline]
pub fn find_byte2(haystack: &[u8], n1: u8, n2: u8) -> Option<usize> {
    (table().find2)(haystack, n1, n2)
}

/// Position of the first occurrence of `n1`, `n2`, or `n3`.
#[inline]
pub fn find_byte3(haystack: &[u8], n1: u8, n2: u8, n3: u8) -> Option<usize> {
    (table().find3)(haystack, n1, n2, n3)
}

/// Position of the first occurrence of `n1`, `n2`, `n3`, or `n4`.
#[inline]
pub fn find_byte4(haystack: &[u8], n1: u8, n2: u8, n3: u8, n4: u8) -> Option<usize> {
    (table().find4)(haystack, n1, n2, n3, n4)
}

/// Length of the leading clean character-data run: the number of bytes
/// before the first [`TEXT_DELIMS`] byte (`<`, `&`, `\r`, `]`), or the
/// whole slice when none occurs. The text tokenizer copies this prefix
/// wholesale and only then inspects one delimiter.
#[inline]
pub fn classify_run(haystack: &[u8]) -> usize {
    let [a, b, c, d] = TEXT_DELIMS;
    find_byte4(haystack, a, b, c, d).unwrap_or(haystack.len())
}

mod scalar {
    macro_rules! define_scalar {
        ($name:ident, $($n:ident),+) => {
            pub(super) fn $name(haystack: &[u8], $($n: u8),+) -> Option<usize> {
                haystack.iter().position(|&b| $(b == $n)||+)
            }
        };
    }

    define_scalar!(find1, n1);
    define_scalar!(find2, n1, n2);
    define_scalar!(find3, n1, n2, n3);
    define_scalar!(find4, n1, n2, n3, n4);
}

mod swar {
    const LO: u64 = 0x0101_0101_0101_0101;
    const HI: u64 = 0x8080_8080_8080_8080;

    /// Nonzero iff some byte of `w` equals the broadcast needle; each
    /// matching position has its high bit set, and any spurious bits sit
    /// strictly above the first true match, so `trailing_zeros()/8` is
    /// exact even after OR-combining several needles' masks.
    #[inline(always)]
    fn match_mask(w: u64, broadcast: u64) -> u64 {
        let x = w ^ broadcast;
        x.wrapping_sub(LO) & !x & HI
    }

    #[inline(always)]
    fn broadcast(b: u8) -> u64 {
        LO * b as u64
    }

    #[inline(always)]
    fn word(haystack: &[u8], i: usize) -> u64 {
        u64::from_le_bytes(haystack[i..i + 8].try_into().unwrap())
    }

    #[inline(always)]
    fn lane(mask: u64) -> usize {
        (mask.trailing_zeros() / 8) as usize
    }

    macro_rules! define_swar {
        ($name:ident, $($bc:ident = $n:ident),+) => {
            #[inline]
            pub(super) fn $name(haystack: &[u8], $($n: u8),+) -> Option<usize> {
                $(let $bc = broadcast($n);)+
                let len = haystack.len();
                let mut i = 0;
                // Two independent u64 lanes per iteration: the masks
                // have no data dependency, so both loads and both
                // "haszero" chains overlap in the pipeline.
                while i + 16 <= len {
                    let w0 = word(haystack, i);
                    let w1 = word(haystack, i + 8);
                    let m0 = $(match_mask(w0, $bc))|+;
                    let m1 = $(match_mask(w1, $bc))|+;
                    if m0 | m1 != 0 {
                        return Some(if m0 != 0 {
                            i + lane(m0)
                        } else {
                            i + 8 + lane(m1)
                        });
                    }
                    i += 16;
                }
                if i + 8 <= len {
                    let w = word(haystack, i);
                    let m = $(match_mask(w, $bc))|+;
                    if m != 0 {
                        return Some(i + lane(m));
                    }
                    i += 8;
                }
                haystack[i..]
                    .iter()
                    .position(|&b| $(b == $n)||+)
                    .map(|p| i + p)
            }
        };
    }

    define_swar!(find1, b1 = n1);
    define_swar!(find2, b1 = n1, b2 = n2);
    define_swar!(find3, b1 = n1, b2 = n2, b3 = n3);
    define_swar!(find4, b1 = n1, b2 = n2, b3 = n3, b4 = n4);
}

#[cfg(all(target_arch = "x86_64", not(miri)))]
mod sse2 {
    use core::arch::x86_64::{
        __m128i, _mm_cmpeq_epi8, _mm_loadu_si128, _mm_movemask_epi8, _mm_set1_epi8,
    };

    // SSE2 is part of the x86_64 baseline ABI, so these need no
    // `#[target_feature]` gate or runtime check: they are plain safe
    // functions that inline freely — including into the AVX2 tier's
    // short-input path — keeping sub-vector scans call-free.
    macro_rules! define_sse2 {
        ($name:ident, $($v:ident = $n:ident),+) => {
            #[inline]
            pub(super) fn $name(haystack: &[u8], $($n: u8),+) -> Option<usize> {
                let len = haystack.len();
                if len < 16 {
                    return super::swar::$name(haystack, $($n),+);
                }
                let ptr = haystack.as_ptr();
                // SAFETY: SSE2 is unconditionally available on x86_64,
                // and every load below is a full 16-byte window inside
                // `haystack` (`i + 16 <= len`, or the overlapped tail at
                // `len - 16` with `len >= 16`).
                unsafe {
                    $(let $v = _mm_set1_epi8($n as i8);)+
                    let mut i = 0usize;
                    while i + 16 <= len {
                        let w = _mm_loadu_si128(ptr.add(i) as *const __m128i);
                        let m = ($(_mm_movemask_epi8(_mm_cmpeq_epi8(w, $v)))|+) as u32;
                        if m != 0 {
                            return Some(i + m.trailing_zeros() as usize);
                        }
                        i += 16;
                    }
                    if i < len {
                        // Overlapped final window: bytes [len-16, i) were
                        // already proven match-free, so the first set bit
                        // is a genuine first match.
                        let j = len - 16;
                        let w = _mm_loadu_si128(ptr.add(j) as *const __m128i);
                        let m = ($(_mm_movemask_epi8(_mm_cmpeq_epi8(w, $v)))|+) as u32;
                        if m != 0 {
                            return Some(j + m.trailing_zeros() as usize);
                        }
                    }
                }
                None
            }
        };
    }

    define_sse2!(find1, v1 = n1);
    define_sse2!(find2, v1 = n1, v2 = n2);
    define_sse2!(find3, v1 = n1, v2 = n2, v3 = n3);
    define_sse2!(find4, v1 = n1, v2 = n2, v3 = n3, v4 = n4);
}

#[cfg(all(target_arch = "x86_64", not(miri)))]
mod avx2 {
    use core::arch::x86_64::{
        __m256i, _mm256_cmpeq_epi8, _mm256_loadu_si256, _mm256_movemask_epi8, _mm256_set1_epi8,
    };

    macro_rules! define_avx2 {
        ($name:ident, $imp:ident, $($v:ident = $n:ident),+) => {
            /// # Safety
            /// Caller must ensure the CPU supports AVX2. All loads stay
            /// inside `haystack` (see the module-level safety argument).
            #[target_feature(enable = "avx2")]
            unsafe fn $imp(haystack: &[u8], $($n: u8),+) -> Option<usize> {
                let len = haystack.len();
                if len < 32 {
                    // Short inputs take the SSE2 tier (which itself
                    // hands lengths < 16 to SWAR); AVX2 implies SSE2.
                    return super::sse2::$name(haystack, $($n),+);
                }
                let ptr = haystack.as_ptr();
                $(let $v = _mm256_set1_epi8($n as i8);)+
                let mut i = 0usize;
                while i + 32 <= len {
                    let w = _mm256_loadu_si256(ptr.add(i) as *const __m256i);
                    let m = ($(_mm256_movemask_epi8(_mm256_cmpeq_epi8(w, $v)))|+) as u32;
                    if m != 0 {
                        return Some(i + m.trailing_zeros() as usize);
                    }
                    i += 32;
                }
                if i < len {
                    // Overlapped final window (see sse2): prior bytes in
                    // the window are match-free, first set bit is exact.
                    let j = len - 32;
                    let w = _mm256_loadu_si256(ptr.add(j) as *const __m256i);
                    let m = ($(_mm256_movemask_epi8(_mm256_cmpeq_epi8(w, $v)))|+) as u32;
                    if m != 0 {
                        return Some(j + m.trailing_zeros() as usize);
                    }
                }
                None
            }

            pub(super) fn $name(haystack: &[u8], $($n: u8),+) -> Option<usize> {
                // SAFETY: reachable only via a vtable installed after
                // `is_x86_feature_detected!("avx2")` (or the equivalent
                // `Kernel::is_available` assert); the intrinsic loads
                // are in-bounds per the module safety argument.
                unsafe { $imp(haystack, $($n),+) }
            }
        };
    }

    define_avx2!(find1, find1_impl, v1 = n1);
    define_avx2!(find2, find2_impl, v1 = n1, v2 = n2);
    define_avx2!(find3, find3_impl, v1 = n1, v2 = n2, v3 = n3);
    define_avx2!(find4, find4_impl, v1 = n1, v2 = n2, v3 = n3, v4 = n4);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn find_byte_matches_naive_scan() {
        let data = b"abcdefghijklmnop<qrstuvwxyz";
        for needle in [b'<', b'a', b'p', b'z', b'!'] {
            assert_eq!(
                find_byte(data, needle),
                data.iter().position(|&b| b == needle),
                "needle {:?}",
                needle as char
            );
        }
    }

    #[test]
    fn find_byte_handles_all_offsets_and_lengths() {
        for len in 0..70 {
            for pos in 0..len {
                let mut v = vec![b'x'; len];
                v[pos] = b'<';
                assert_eq!(find_byte(&v, b'<'), Some(pos), "len={len} pos={pos}");
            }
            let v = vec![b'x'; len];
            assert_eq!(find_byte(&v, b'<'), None, "len={len} absent");
        }
    }

    #[test]
    fn find_byte2_returns_earliest_of_either() {
        let data = b"aaaaaaaaaaaa\"bbb<ccc";
        assert_eq!(find_byte2(data, b'<', b'"'), Some(12));
        assert_eq!(find_byte2(data, b'<', b'!'), Some(16));
        assert_eq!(find_byte2(data, b'!', b'?'), None);
        for len in 0..70 {
            for pos in 0..len {
                let mut v = vec![b'x'; len];
                v[pos] = b'&';
                assert_eq!(find_byte2(&v, b'<', b'&'), Some(pos));
            }
        }
    }

    #[test]
    fn find_byte3_returns_earliest_of_three() {
        let data = b"0123456789'0123<45&67";
        assert_eq!(find_byte3(data, b'<', b'&', b'\''), Some(10));
        assert_eq!(find_byte3(data, b'<', b'&', b'%'), Some(15));
        assert_eq!(find_byte3(data, b'%', b'@', b'~'), None);
    }

    #[test]
    fn find_byte4_returns_earliest_of_four() {
        let data = b"0123456789012345678901234567890123456789]rest";
        assert_eq!(find_byte4(data, b'<', b'&', b'\r', b']'), Some(40));
        assert_eq!(find_byte4(data, b'<', b'&', b'\r', b'%'), None);
        assert_eq!(find_byte4(b"", b'a', b'b', b'c', b'd'), None);
    }

    #[test]
    fn classify_run_stops_at_each_text_delimiter() {
        for (doc, want) in [
            (&b"hello<b"[..], 5),
            (b"hi&amp;", 2),
            (b"a\rb", 1),
            (b"ab]]>", 2),
            (b"plain text with no delims at all.", 33),
            (b"", 0),
        ] {
            assert_eq!(classify_run(doc), want, "doc {:?}", doc);
        }
    }

    #[test]
    fn every_available_kernel_agrees_on_basics() {
        let data = b"some<text&with\rdelims]here and a much longer tail to cross 32 bytes";
        for k in available_kernels() {
            assert_eq!(k.find_byte(data, b'<'), Some(4), "{k}");
            assert_eq!(k.find_byte2(data, b'&', b'\r'), Some(9), "{k}");
            assert_eq!(k.find_byte3(data, b']', b'\r', b'&'), Some(9), "{k}");
            assert_eq!(k.find_byte4(data, b']', b'~', b'^', b'@'), Some(21), "{k}");
            assert_eq!(k.classify_run(data), 4, "{k}");
            assert_eq!(k.find_byte(data, b'!'), None, "{k}");
        }
    }

    #[test]
    fn kernel_names_round_trip() {
        for k in [Kernel::Scalar, Kernel::Swar, Kernel::Sse2, Kernel::Avx2] {
            assert_eq!(Kernel::from_name(k.name()), Some(k));
        }
        assert_eq!(Kernel::from_name("neon"), None);
    }

    #[test]
    fn active_kernel_is_available() {
        assert!(active_kernel().is_available());
        // Scalar and SWAR are available everywhere.
        assert!(available_kernels().contains(&Kernel::Scalar));
        assert!(available_kernels().contains(&Kernel::Swar));
    }
}
