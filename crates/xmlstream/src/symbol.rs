//! Interned tag symbols: the zero-copy event path's name representation.
//!
//! The vocabulary of element and attribute names in an XML stream is
//! tiny compared to the stream itself (Fig. 15: millions of elements,
//! dozens of distinct tags), so the per-event cost of owning a `String`
//! per name — one malloc on creation, one memcmp per arc match — is
//! pure waste. Following FluXQuery and the compressed-index XPath work,
//! names are interned once into a process-wide [`SymbolTable`] and flow
//! through the pipeline as dense [`Sym`] codes: arc matching, dispatch
//! indexing, and stack maintenance become `u32` compares and `Vec`
//! indexing.
//!
//! The table is append-only and global, so a `Sym` produced by the
//! parser and a `Sym` produced by the query compiler agree by
//! construction — no table handle needs threading through APIs. Interned
//! strings are leaked (names live as `&'static str`); the vocabulary is
//! bounded by the document schemas seen by the process, which is exactly
//! the working set any tag-indexed engine must hold anyway.

use std::collections::HashMap;
use std::fmt;
use std::hash::{BuildHasherDefault, Hasher};
use std::sync::{OnceLock, RwLock};

/// FNV-1a: names are short (a handful of bytes), where FNV beats the
/// default SipHash by a wide margin and DoS resistance is irrelevant —
/// the key space is the document schema, not attacker-controlled bulk.
pub(crate) struct Fnv(u64);

impl Default for Fnv {
    fn default() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }
}

impl Hasher for Fnv {
    fn write(&mut self, bytes: &[u8]) {
        let mut h = self.0;
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        self.0 = h;
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

pub(crate) type FnvBuild = BuildHasherDefault<Fnv>;

/// A dense interned symbol for an element or attribute name.
///
/// Construction goes through [`Sym::intern`] (or `From<&str>`); equality,
/// ordering, and hashing are integer operations on the dense id. The
/// string is recovered with [`Sym::as_str`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Sym(u32);

struct Table {
    map: HashMap<&'static str, u32, FnvBuild>,
    names: Vec<&'static str>,
}

fn table() -> &'static RwLock<Table> {
    static TABLE: OnceLock<RwLock<Table>> = OnceLock::new();
    TABLE.get_or_init(|| {
        RwLock::new(Table {
            map: HashMap::default(),
            names: Vec::new(),
        })
    })
}

impl Sym {
    /// Intern a name, returning its dense symbol. Idempotent: the same
    /// string always maps to the same `Sym`, process-wide. The hot path
    /// (name already interned) takes a shared read lock and performs one
    /// hash lookup — no allocation.
    pub fn intern(name: &str) -> Sym {
        let lock = table();
        if let Some(&id) = lock.read().expect("symbol table poisoned").map.get(name) {
            return Sym(id);
        }
        let mut t = lock.write().expect("symbol table poisoned");
        if let Some(&id) = t.map.get(name) {
            return Sym(id);
        }
        let leaked: &'static str = Box::leak(name.to_owned().into_boxed_str());
        let id = t.names.len() as u32;
        t.names.push(leaked);
        t.map.insert(leaked, id);
        Sym(id)
    }

    /// Look up a name without interning it. `None` means no event or
    /// query has ever mentioned the name — useful for dispatch, where an
    /// unknown name can match nothing.
    pub fn lookup(name: &str) -> Option<Sym> {
        table()
            .read()
            .expect("symbol table poisoned")
            .map
            .get(name)
            .copied()
            .map(Sym)
    }

    /// The interned string.
    pub fn as_str(self) -> &'static str {
        table().read().expect("symbol table poisoned").names[self.0 as usize]
    }

    /// The dense index (0-based, contiguous): suitable for `Vec`
    /// indexing, e.g. the qindex dispatch buckets.
    pub fn index(self) -> u32 {
        self.0
    }

    /// Number of symbols interned so far (the exclusive upper bound of
    /// every live [`Sym::index`]).
    pub fn table_len() -> usize {
        table().read().expect("symbol table poisoned").names.len()
    }
}

impl From<&str> for Sym {
    fn from(s: &str) -> Sym {
        Sym::intern(s)
    }
}

impl From<&String> for Sym {
    fn from(s: &String) -> Sym {
        Sym::intern(s)
    }
}

impl From<String> for Sym {
    fn from(s: String) -> Sym {
        Sym::intern(&s)
    }
}

impl PartialEq<str> for Sym {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == other
    }
}

impl PartialEq<&str> for Sym {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == *other
    }
}

impl PartialEq<String> for Sym {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == other.as_str()
    }
}

impl PartialEq<Sym> for str {
    fn eq(&self, other: &Sym) -> bool {
        self == other.as_str()
    }
}

impl PartialEq<Sym> for &str {
    fn eq(&self, other: &Sym) -> bool {
        *self == other.as_str()
    }
}

impl PartialEq<Sym> for String {
    fn eq(&self, other: &Sym) -> bool {
        self.as_str() == other.as_str()
    }
}

impl fmt::Display for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl fmt::Debug for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}", self.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let a = Sym::intern("book");
        let b = Sym::intern("book");
        assert_eq!(a, b);
        assert_eq!(a.index(), b.index());
        assert_eq!(a.as_str(), "book");
    }

    #[test]
    fn distinct_names_get_distinct_symbols() {
        let a = Sym::intern("sym-test-a");
        let b = Sym::intern("sym-test-b");
        assert_ne!(a, b);
        assert_ne!(a.index(), b.index());
    }

    #[test]
    fn lookup_does_not_intern() {
        assert!(Sym::lookup("sym-test-never-interned-xyzzy").is_none());
        let s = Sym::intern("sym-test-lookup");
        assert_eq!(Sym::lookup("sym-test-lookup"), Some(s));
    }

    #[test]
    fn string_comparisons_work_both_ways() {
        let s = Sym::intern("pub");
        assert_eq!(s, "pub");
        assert_eq!("pub", s);
        assert_eq!(s, "pub".to_string());
        assert!(s != "book");
    }

    #[test]
    fn conversions_and_display() {
        let s: Sym = "year".into();
        assert_eq!(s.to_string(), "year");
        assert_eq!(format!("{s:?}"), "\"year\"");
        let from_string: Sym = String::from("year").into();
        assert_eq!(s, from_string);
    }

    #[test]
    fn table_len_bounds_indices() {
        let s = Sym::intern("sym-test-table-len");
        assert!((s.index() as usize) < Sym::table_len());
    }

    #[test]
    fn interning_is_thread_safe() {
        let handles: Vec<_> = (0..8)
            .map(|i| {
                std::thread::spawn(move || {
                    (0..100)
                        .map(|k| Sym::intern(&format!("thread-sym-{}", (i + k) % 10)))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        let all: Vec<Vec<Sym>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        // Every thread resolved the same names to the same symbols.
        for row in &all[1..] {
            for (a, b) in all[0].iter().zip(row) {
                assert_eq!(a.as_str().is_empty(), b.as_str().is_empty());
            }
        }
        for name in (0..10).map(|k| format!("thread-sym-{k}")) {
            assert!(Sym::lookup(&name).is_some());
        }
    }
}
