//! Front-end robustness: the lexer/parser must never panic, and every
//! successfully parsed query must survive a display → reparse round trip.

// Property tests are opt-in (`RUSTFLAGS="--cfg xsq_proptest"`): the proptest
// dependency needs network access, and the default test run is hermetic.
#![cfg(xsq_proptest)]

use proptest::prelude::*;
use xsq_xpath::parse_query;

proptest! {
    #[test]
    fn arbitrary_strings_never_panic(s in ".{0,128}") {
        let _ = parse_query(&s);
    }

    #[test]
    fn query_shaped_soup_never_panics(s in r#"[/@\[\]()a-z0-9%<>=!."' ]{0,80}"#) {
        let _ = parse_query(&s);
    }

    #[test]
    fn parsed_queries_roundtrip_through_display(s in r#"[/@\[\]()a-z0-9%<>=!."' ]{0,80}"#) {
        if let Ok(q) = parse_query(&s) {
            let shown = q.to_string();
            let reparsed = parse_query(&shown)
                .unwrap_or_else(|e| panic!("display of {s:?} -> {shown:?} fails to reparse: {e}"));
            prop_assert_eq!(q, reparsed);
        }
    }

    #[test]
    fn error_positions_are_in_bounds(s in ".{0,128}") {
        if let Err(e) = parse_query(&s) {
            prop_assert!(e.position <= s.len());
        }
    }
}

#[test]
fn every_paper_query_parses() {
    for q in [
        "//book[year>2000]/name/text()",
        "/pub[year=2002]/book[price<11]/author",
        "//pub[year=2002]//book[author]//name",
        "/pub[year>2000]/book[author]/name/text()",
        "//pub[year>2000]//book[author]//name/text()",
        "//pub[year>2000]//book[author]//name/count()",
        "/pub[year>2000]",
        "/PLAY/ACT/SCENE/SPEECH[LINE%love]/SPEAKER/text()",
        "/PLAY/ACT/SCENE/SPEECH/SPEAKER/text()",
        "//ACT//SPEAKER/text()",
        "/datasets/dataset/reference/source/other/name/text()",
        "/dblp/article/title/text()",
        "/ProteinDatabase/ProteinEntry/reference/refinfo/authors/author/text()",
        "/dblp/inproceedings[author]/title/text()",
        "/dblp/inproceedings/title/text()",
        "//pub[year]//book[@id]/title/text()",
        "/a[prior=0]",
        "/a[posterior=0]",
        "/a[@id=0]",
        "/a/Blue",
        "/book[@id]",
        "/book[@id<=10]",
        "/year[text()=2000]",
        "/book[author]",
        "/pub[book@id<=10]",
        "/book[year<=2000]",
    ] {
        assert!(parse_query(q).is_ok(), "paper query must parse: {q}");
    }
}
