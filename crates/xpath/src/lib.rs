//! # xsq-xpath — the XPath front end
//!
//! Implements the XPath 1.0 subset of the paper's Fig. 3 grammar (§2.2):
//! location paths of child (`/`) and descendant-or-self (`//`) steps with
//! optional predicates, and an optional output expression
//! (`text()`, `@attr`, or an aggregation).
//!
//! The five predicate categories of §3.2 — attribute, own-text, child
//! existence, child-attribute, and child-text — are first-class AST
//! variants, because each maps to its own BPDT template in `xsq-core`.

pub mod ast;
pub mod classify;
pub mod error;
pub mod lexer;
pub mod parser;
pub mod rules;
pub mod value;

pub use ast::{
    AggFunc, Axis, CmpOp, Comparison, FnArg, FnTest, NodeTest, Output, Predicate, Query, Span, Step,
};
pub use classify::{classify, streamability, IssueKind, StepCategory, StreamIssue, StreamReport};
pub use error::{ParseError, ParseResult};
pub use parser::parse_query;
pub use rules::{AttrOp, Rule, RuleAction, RuleError, RuleSet, Shape};
pub use value::{compare, XPathValue};
