//! Abstract syntax for the paper's XPath subset (Fig. 3).
//!
//! A query is `N1 N2 … Nn [/O]`: a location path of steps plus an optional
//! output expression. Each step has an axis (`/` child or `//`
//! descendant-or-self, the *closure* axis), a node test, and at most one
//! predicate. The predicate shapes mirror the five categories of §3.2
//! one-to-one, since each category instantiates a different BPDT template.

use std::fmt;

use crate::value::XPathValue;

/// The axis of a location step.
///
/// `Child` and `Closure` are the paper's forward axes; the reverse axes
/// parse (so diagnostics can point at them by span) but no streaming
/// engine evaluates them — `classify::streamability` rejects them with a
/// clear message instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Axis {
    /// `/tag` — child axis.
    Child,
    /// `//tag` — descendant-or-self, the paper's *closure* axis.
    Closure,
    /// `/parent::tag` — reverse axis, not streamable.
    Parent,
    /// `/ancestor::tag` — reverse axis, not streamable.
    Ancestor,
    /// `/preceding-sibling::tag` — reverse axis, not streamable.
    PrecedingSibling,
}

impl Axis {
    /// Does the axis look forward in document order? Only forward axes can
    /// be evaluated in a single pass over the event stream.
    pub fn is_forward(&self) -> bool {
        matches!(self, Axis::Child | Axis::Closure)
    }

    /// The `name::` spelling of a reverse axis (empty for forward axes,
    /// which are spelled as `/` and `//`).
    pub fn prefix(&self) -> &'static str {
        match self {
            Axis::Child | Axis::Closure => "",
            Axis::Parent => "parent::",
            Axis::Ancestor => "ancestor::",
            Axis::PrecedingSibling => "preceding-sibling::",
        }
    }
}

/// The node test of a location step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NodeTest {
    /// A tag name.
    Name(String),
    /// `*` — matches any element.
    Wildcard,
}

impl NodeTest {
    /// Does this test accept an element with the given tag?
    pub fn matches(&self, tag: &str) -> bool {
        match self {
            NodeTest::Name(n) => n == tag,
            NodeTest::Wildcard => true,
        }
    }
}

/// Comparison operators (`OP` in Fig. 3). `Contains` is spelled `%` in the
/// paper's example queries (e.g. `SPEECH[LINE%love]`) and also accepted as
/// the word `contains`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    Lt,
    Le,
    Eq,
    Ge,
    Gt,
    Ne,
    Contains,
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Eq => "=",
            CmpOp::Ge => ">=",
            CmpOp::Gt => ">",
            CmpOp::Ne => "!=",
            CmpOp::Contains => "%",
        };
        f.write_str(s)
    }
}

/// `OP constant` — the right-hand side of a predicate test.
#[derive(Debug, Clone, PartialEq)]
pub struct Comparison {
    pub op: CmpOp,
    pub rhs: XPathValue,
}

impl Comparison {
    /// Evaluate the comparison against a left-hand-side string taken from
    /// the stream (attribute value or text content).
    pub fn eval(&self, lhs: &str) -> bool {
        crate::value::compare(lhs, self.op, &self.rhs)
    }
}

impl fmt::Display for Comparison {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{}", self.op, self.rhs)
    }
}

/// The argument of a streaming-safe string/number function: `X` in
/// `contains(X, v)`. Only values already visible at the element — its own
/// text runs or an attribute — keep the function evaluable in one pass.
#[derive(Debug, Clone, PartialEq)]
pub enum FnArg {
    /// `text()` — the element's own text content.
    Text,
    /// `@attr` — an attribute of the element.
    Attr(String),
}

impl fmt::Display for FnArg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FnArg::Text => write!(f, "text()"),
            FnArg::Attr(a) => write!(f, "@{a}"),
        }
    }
}

/// The function tests of the streaming-safe surface subset. Each consumes
/// one string drawn from the stream (the [`FnArg`]) and decides a boolean
/// with no lookahead, so the BPDT timing of categories 1 and 2 carries
/// over unchanged.
#[derive(Debug, Clone, PartialEq)]
pub enum FnTest {
    /// `contains(X, v)`.
    Contains(XPathValue),
    /// `starts-with(X, v)`.
    StartsWith(XPathValue),
    /// `string-length(X) op n` — compared in characters, per XPath 1.0.
    StringLength(Comparison),
    /// `number(X) op v` — forces numeric comparison even for string `v`.
    Number(Comparison),
}

impl FnTest {
    /// Evaluate the test against a string taken from the stream.
    pub fn eval(&self, lhs: &str) -> bool {
        match self {
            FnTest::Contains(v) => lhs.contains(v.as_str()),
            FnTest::StartsWith(v) => lhs.starts_with(v.as_str()),
            FnTest::StringLength(c) => {
                crate::value::num_compare(lhs.chars().count() as f64, c.op, c.rhs.as_number())
            }
            FnTest::Number(c) => {
                crate::value::num_compare(crate::value::str_to_number(lhs), c.op, c.rhs.as_number())
            }
        }
    }

    /// Render `name(arg, …)` with the argument spliced in.
    fn fmt_with_arg(&self, f: &mut fmt::Formatter<'_>, arg: &FnArg) -> fmt::Result {
        match self {
            FnTest::Contains(v) => write!(f, "contains({arg},{v})"),
            FnTest::StartsWith(v) => write!(f, "starts-with({arg},{v})"),
            FnTest::StringLength(c) => write!(f, "string-length({arg}){c}"),
            FnTest::Number(c) => write!(f, "number({arg}){c}"),
        }
    }
}

/// A predicate, one of the five categories of §3.2.
#[derive(Debug, Clone, PartialEq)]
pub enum Predicate {
    /// Category 1: `[@attr]` / `[@attr op v]` — decided at the begin event
    /// of the element itself.
    Attr {
        name: String,
        cmp: Option<Comparison>,
    },
    /// Category 2: `[text()]` / `[text() op v]` — decided at a text event
    /// of the element (true) or its end event (false).
    Text { cmp: Option<Comparison> },
    /// Category 3: `[child]` — true at the begin event of a matching
    /// child, false at the end event of the element.
    Child { name: String },
    /// Category 4: `[child@attr]` / `[child@attr op v]` — decided at the
    /// begin events of `child` children.
    ChildAttr {
        child: String,
        attr: String,
        cmp: Option<Comparison>,
    },
    /// Category 5: `[child op v]` — decided at text events of `child`
    /// children (true) or the end event of the element (false).
    ChildText { child: String, cmp: Comparison },
    /// `[position() op n]` / `[n]` — decided at the begin event from a
    /// sibling counter kept by the parent. Streamable on child steps only.
    Position { cmp: Comparison },
    /// `[last()]` — decided *after* the element: false once a later
    /// matching sibling begins, true at the parent's end event.
    /// Streamable on child steps only.
    Last,
    /// A string/number function test over the element's own text or an
    /// attribute: same decision timing as categories 1 and 2.
    Func { arg: FnArg, test: FnTest },
}

impl fmt::Display for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Predicate::Attr { name, cmp } => {
                write!(f, "[@{name}")?;
                if let Some(c) = cmp {
                    write!(f, "{c}")?;
                }
                write!(f, "]")
            }
            Predicate::Text { cmp } => {
                write!(f, "[text()")?;
                if let Some(c) = cmp {
                    write!(f, "{c}")?;
                }
                write!(f, "]")
            }
            Predicate::Child { name } => write!(f, "[{name}]"),
            Predicate::ChildAttr { child, attr, cmp } => {
                write!(f, "[{child}@{attr}")?;
                if let Some(c) = cmp {
                    write!(f, "{c}")?;
                }
                write!(f, "]")
            }
            Predicate::ChildText { child, cmp } => write!(f, "[{child}{cmp}]"),
            Predicate::Position { cmp } => write!(f, "[position(){cmp}]"),
            Predicate::Last => write!(f, "[last()]"),
            Predicate::Func { arg, test } => {
                write!(f, "[")?;
                test.fmt_with_arg(f, arg)?;
                write!(f, "]")
            }
        }
    }
}

/// A byte range in the source query string, attached to each step so
/// diagnostics (`xsq analyze`) can point back into the query text.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Span {
    pub start: usize,
    pub end: usize,
}

impl Span {
    pub fn new(start: usize, end: usize) -> Self {
        Span { start, end }
    }

    /// True for the zero span used by synthesized steps.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}..{}", self.start, self.end)
    }
}

/// One location step.
#[derive(Debug, Clone)]
pub struct Step {
    pub axis: Axis,
    pub test: NodeTest,
    pub predicate: Option<Predicate>,
    /// Source span of this step; metadata only (ignored by `PartialEq`).
    pub span: Span,
}

/// Spans are diagnostics metadata: two steps parsed from different query
/// strings must still compare equal for the multi-query index to share
/// common prefixes, so equality looks only at axis, test, and predicate.
impl PartialEq for Step {
    fn eq(&self, other: &Self) -> bool {
        self.axis == other.axis && self.test == other.test && self.predicate == other.predicate
    }
}

impl fmt::Display for Step {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.axis {
            Axis::Closure => write!(f, "//")?,
            _ => write!(f, "/{}", self.axis.prefix())?,
        }
        match &self.test {
            NodeTest::Name(n) => write!(f, "{n}")?,
            NodeTest::Wildcard => write!(f, "*")?,
        }
        if let Some(p) = &self.predicate {
            write!(f, "{p}")?;
        }
        Ok(())
    }
}

/// Aggregation functions usable as output expressions (§4.4). `count` and
/// `sum` appear in Fig. 3; `avg`, `min`, `max` are the natural extensions
/// implemented on the same stat buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    Count,
    Sum,
    Avg,
    Min,
    Max,
}

impl AggFunc {
    pub fn name(&self) -> &'static str {
        match self {
            AggFunc::Count => "count",
            AggFunc::Sum => "sum",
            AggFunc::Avg => "avg",
            AggFunc::Min => "min",
            AggFunc::Max => "max",
        }
    }
}

/// The output expression `O` of a query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Output {
    /// No output expression: emit each matching element whole (the
    /// catchall `*̄` transitions of §3.4).
    Element,
    /// `text()` — text content of the matching element.
    Text,
    /// `@attr` — an attribute of the matching element.
    Attr(String),
    /// An aggregation over the matches.
    Aggregate(AggFunc),
}

impl fmt::Display for Output {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Output::Element => Ok(()),
            Output::Text => write!(f, "/text()"),
            Output::Attr(a) => write!(f, "/@{a}"),
            Output::Aggregate(func) => write!(f, "/{}()", func.name()),
        }
    }
}

/// A complete query: location path plus output expression.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    pub steps: Vec<Step>,
    pub output: Output,
}

impl Query {
    /// Number of location steps (`n` in the paper's `N1…Nn/O`).
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// True if there are no steps (never produced by the parser).
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Does any step use the closure axis `//`? Queries without closures
    /// compile to a *deterministic* HPDT and can run on the XSQ-NC fast
    /// path (§6.2).
    pub fn has_closure(&self) -> bool {
        self.steps.iter().any(|s| s.axis == Axis::Closure)
    }

    /// Does any step carry a predicate?
    pub fn has_predicates(&self) -> bool {
        self.steps.iter().any(|s| s.predicate.is_some())
    }

    /// Is the output expression an aggregation?
    pub fn is_aggregation(&self) -> bool {
        matches!(self.output, Output::Aggregate(_))
    }

    /// Does any step use a wildcard node test?
    pub fn has_wildcard(&self) -> bool {
        self.steps.iter().any(|s| s.test == NodeTest::Wildcard)
    }

    /// Does any step use a reverse axis (`parent::`, `ancestor::`,
    /// `preceding-sibling::`)? Such queries parse but never stream.
    pub fn has_reverse_axis(&self) -> bool {
        self.steps.iter().any(|s| !s.axis.is_forward())
    }

    /// The first extended-surface feature used by the query (reverse
    /// axis, `position()`/`last()`, or a function predicate), if any.
    /// Baseline engines that implement only the paper's Fig. 3 subset
    /// use this to bail out with a clean `Unsupported` instead of
    /// silently evaluating the predicate as never-true.
    pub fn extended_feature(&self) -> Option<String> {
        for step in &self.steps {
            if !step.axis.is_forward() {
                return Some(format!("reverse axis `{}`", step.axis.prefix()));
            }
            match &step.predicate {
                Some(Predicate::Position { .. }) => return Some("position() predicates".into()),
                Some(Predicate::Last) => return Some("last() predicates".into()),
                Some(Predicate::Func { .. }) => return Some("function predicates".into()),
                _ => {}
            }
        }
        None
    }
}

impl fmt::Display for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for s in &self.steps {
            write!(f, "{s}")?;
        }
        write!(f, "{}", self.output)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn step(axis: Axis, name: &str, predicate: Option<Predicate>) -> Step {
        Step {
            axis,
            test: NodeTest::Name(name.into()),
            predicate,
            span: Span::default(),
        }
    }

    #[test]
    fn spans_are_ignored_by_step_equality() {
        let a = step(Axis::Child, "book", None);
        let mut b = a.clone();
        b.span = Span::new(3, 8);
        assert_eq!(a, b);
        assert!(a.span.is_empty());
        assert!(!b.span.is_empty());
        assert_eq!(b.span.to_string(), "3..8");
    }

    #[test]
    fn display_roundtrips_structure() {
        let q = Query {
            steps: vec![
                step(
                    Axis::Child,
                    "pub",
                    Some(Predicate::ChildText {
                        child: "year".into(),
                        cmp: Comparison {
                            op: CmpOp::Gt,
                            rhs: XPathValue::number(2000.0),
                        },
                    }),
                ),
                step(
                    Axis::Closure,
                    "book",
                    Some(Predicate::Child {
                        name: "author".into(),
                    }),
                ),
                step(Axis::Child, "name", None),
            ],
            output: Output::Text,
        };
        assert_eq!(q.to_string(), "/pub[year>2000]//book[author]/name/text()");
        assert!(q.has_closure());
        assert!(q.has_predicates());
        assert!(!q.is_aggregation());
        assert_eq!(q.len(), 3);
        assert!(!q.is_empty());
        assert!(!q.has_wildcard());
    }

    #[test]
    fn wildcard_matches_everything() {
        assert!(NodeTest::Wildcard.matches("anything"));
        assert!(NodeTest::Name("a".into()).matches("a"));
        assert!(!NodeTest::Name("a".into()).matches("b"));
    }

    #[test]
    fn output_display_forms() {
        assert_eq!(Output::Element.to_string(), "");
        assert_eq!(Output::Attr("id".into()).to_string(), "/@id");
        assert_eq!(Output::Aggregate(AggFunc::Count).to_string(), "/count()");
    }

    #[test]
    fn predicate_display_forms() {
        let p = Predicate::ChildAttr {
            child: "book".into(),
            attr: "id".into(),
            cmp: Some(Comparison {
                op: CmpOp::Le,
                rhs: XPathValue::number(10.0),
            }),
        };
        assert_eq!(p.to_string(), "[book@id<=10]");
        let p = Predicate::Attr {
            name: "id".into(),
            cmp: None,
        };
        assert_eq!(p.to_string(), "[@id]");
    }
}
