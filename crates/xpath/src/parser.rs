//! Recursive-descent parser for the Fig. 3 grammar.
//!
//! `Q ::= N+ [/O]` — one or more location steps, then an optional output
//! expression. The parser is total over the token stream produced by
//! [`crate::lexer::tokenize`]; every query the paper's examples and
//! experiments use parses here.

use crate::ast::{
    AggFunc, Axis, CmpOp, Comparison, FnArg, FnTest, NodeTest, Output, Predicate, Query, Span, Step,
};
use crate::error::{ParseError, ParseResult};
use crate::lexer::{tokenize, Token, TokenKind};
use crate::value::XPathValue;

/// Parse a query string into a [`Query`].
///
/// ```
/// use xsq_xpath::{parse_query, Axis, Output};
///
/// let q = parse_query("//pub[year>2000]//book[author]//name/text()").unwrap();
/// assert_eq!(q.steps.len(), 3);
/// assert_eq!(q.steps[0].axis, Axis::Closure);
/// assert_eq!(q.output, Output::Text);
/// ```
pub fn parse_query(input: &str) -> ParseResult<Query> {
    let tokens = tokenize(input)?;
    let mut p = Parser {
        tokens,
        pos: 0,
        input_len: input.len(),
    };
    p.query()
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    input_len: usize,
}

impl Parser {
    fn peek(&self) -> Option<&TokenKind> {
        self.tokens.get(self.pos).map(|t| &t.kind)
    }

    fn peek2(&self) -> Option<&TokenKind> {
        self.tokens.get(self.pos + 1).map(|t| &t.kind)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn here(&self) -> usize {
        self.tokens
            .get(self.pos)
            .map(|t| t.position)
            .unwrap_or(self.input_len)
    }

    fn err(&self, msg: impl Into<String>) -> ParseError {
        ParseError::new(self.here(), msg)
    }

    fn expect(&mut self, kind: &TokenKind, what: &str) -> ParseResult<()> {
        match self.next() {
            Some(t) if t.kind == *kind => Ok(()),
            Some(t) => Err(ParseError::new(t.position, format!("expected {what}"))),
            None => Err(ParseError::new(self.input_len, format!("expected {what}"))),
        }
    }

    fn query(&mut self) -> ParseResult<Query> {
        let mut steps = Vec::new();
        let mut output = Output::Element;
        loop {
            let step_start = self.here();
            let axis = match self.peek() {
                Some(TokenKind::Slash) => {
                    self.next();
                    Axis::Child
                }
                Some(TokenKind::DoubleSlash) => {
                    self.next();
                    Axis::Closure
                }
                None if !steps.is_empty() => break,
                _ => return Err(self.err("expected '/' or '//'")),
            };
            // After a slash, either a node test (continuing the path) or
            // the output expression (which terminates the query).
            match self.peek() {
                Some(TokenKind::At) => {
                    if axis == Axis::Closure {
                        return Err(self.err("output expression must follow '/', not '//'"));
                    }
                    self.next();
                    let name = self.name("attribute name")?;
                    output = Output::Attr(name);
                    self.end_of_query()?;
                    break;
                }
                Some(TokenKind::Name(n))
                    if self.peek2() == Some(&TokenKind::LParen) && output_function(n).is_some() =>
                {
                    if axis == Axis::Closure {
                        return Err(self.err("output expression must follow '/', not '//'"));
                    }
                    let func = output_function(n).expect("checked");
                    self.next();
                    self.expect(&TokenKind::LParen, "'('")?;
                    self.expect(&TokenKind::RParen, "')'")?;
                    output = func;
                    self.end_of_query()?;
                    break;
                }
                Some(TokenKind::Star) => {
                    self.next();
                    let predicate = self.maybe_predicate()?;
                    steps.push(Step {
                        axis,
                        test: NodeTest::Wildcard,
                        predicate,
                        span: Span::new(step_start, self.here()),
                    });
                }
                Some(TokenKind::Name(_)) => {
                    let name_pos = self.here();
                    let name = self.name("tag name")?;
                    // The lexer keeps `:` inside names, so an explicit axis
                    // (`parent::tag`) arrives as a single token; split it.
                    let (axis, test) = if let Some((ax, rest)) = name.split_once("::") {
                        let resolved = resolve_axis(ax, axis).ok_or_else(|| {
                            ParseError::new(name_pos, format!("unsupported axis '{ax}::'"))
                        })?;
                        if axis == Axis::Closure && resolved != Axis::Closure {
                            return Err(ParseError::new(
                                name_pos,
                                format!("reverse axis '{ax}::' cannot follow '//'"),
                            ));
                        }
                        let test = if rest.is_empty() {
                            // `parent::*` — the wildcard lexed separately.
                            match self.peek() {
                                Some(TokenKind::Star) => {
                                    self.next();
                                    NodeTest::Wildcard
                                }
                                _ => {
                                    return Err(
                                        self.err("expected a tag name or '*' after the axis")
                                    )
                                }
                            }
                        } else if rest.contains("::") {
                            return Err(ParseError::new(
                                name_pos,
                                format!("malformed node test '{name}'"),
                            ));
                        } else {
                            NodeTest::Name(rest.to_string())
                        };
                        (resolved, test)
                    } else {
                        (axis, NodeTest::Name(name))
                    };
                    let predicate = self.maybe_predicate()?;
                    steps.push(Step {
                        axis,
                        test,
                        predicate,
                        span: Span::new(step_start, self.here()),
                    });
                }
                _ => return Err(self.err("expected a node test or output expression")),
            }
            if self.peek().is_none() {
                break;
            }
        }
        if steps.is_empty() {
            return Err(self.err("query must contain at least one location step"));
        }
        Ok(Query { steps, output })
    }

    fn end_of_query(&mut self) -> ParseResult<()> {
        if let Some(t) = self.tokens.get(self.pos) {
            return Err(ParseError::new(
                t.position,
                "output expression must end the query",
            ));
        }
        Ok(())
    }

    fn name(&mut self, what: &str) -> ParseResult<String> {
        match self.next() {
            Some(Token {
                kind: TokenKind::Name(n),
                ..
            }) => Ok(n),
            Some(t) => Err(ParseError::new(t.position, format!("expected {what}"))),
            None => Err(ParseError::new(self.input_len, format!("expected {what}"))),
        }
    }

    fn maybe_predicate(&mut self) -> ParseResult<Option<Predicate>> {
        if self.peek() != Some(&TokenKind::LBracket) {
            return Ok(None);
        }
        self.next();
        let pred = self.predicate_body()?;
        self.expect(&TokenKind::RBracket, "']'")?;
        Ok(Some(pred))
    }

    /// `F ::= [ FO [OP constant] ]` with
    /// `FO ::= @attr | tag[@attr] | text() | n | position() | last()
    ///       | fn(text()|@attr …)` for the streaming-safe function set.
    fn predicate_body(&mut self) -> ParseResult<Predicate> {
        match self.peek() {
            Some(TokenKind::At) => {
                self.next();
                let name = self.name("attribute name")?;
                let cmp = self.maybe_comparison()?;
                Ok(Predicate::Attr { name, cmp })
            }
            Some(TokenKind::Name(n)) if n == "text" && self.peek2() == Some(&TokenKind::LParen) => {
                self.next();
                self.expect(&TokenKind::LParen, "'('")?;
                self.expect(&TokenKind::RParen, "')'")?;
                let cmp = self.maybe_comparison()?;
                Ok(Predicate::Text { cmp })
            }
            // `[3]` — positional shorthand for `[position()=3]`.
            Some(TokenKind::Number { .. }) => {
                let rhs = self.constant()?;
                Ok(Predicate::Position {
                    cmp: Comparison { op: CmpOp::Eq, rhs },
                })
            }
            Some(TokenKind::Name(n))
                if self.peek2() == Some(&TokenKind::LParen) && is_predicate_function(n) =>
            {
                self.predicate_function()
            }
            Some(TokenKind::Name(_)) => {
                let child = self.name("child tag")?;
                match self.peek() {
                    Some(TokenKind::At) => {
                        self.next();
                        let attr = self.name("attribute name")?;
                        let cmp = self.maybe_comparison()?;
                        Ok(Predicate::ChildAttr { child, attr, cmp })
                    }
                    Some(TokenKind::RBracket) => Ok(Predicate::Child { name: child }),
                    _ => {
                        let cmp = self
                            .maybe_comparison()?
                            .ok_or_else(|| self.err("expected an operator or ']'"))?;
                        Ok(Predicate::ChildText { child, cmp })
                    }
                }
            }
            _ => Err(self.err("expected a predicate")),
        }
    }

    /// Dispatch on a function name at the head of a predicate:
    /// `position()`, `last()`, and the string/number function set.
    fn predicate_function(&mut self) -> ParseResult<Predicate> {
        let name = self.name("function name")?;
        self.expect(&TokenKind::LParen, "'('")?;
        match name.as_str() {
            "position" => {
                self.expect(&TokenKind::RParen, "')'")?;
                self.position_comparison()
            }
            "last" => {
                self.expect(&TokenKind::RParen, "')'")?;
                if self.peek() == Some(&TokenKind::RBracket) {
                    Ok(Predicate::Last)
                } else {
                    Err(self
                        .err("last() takes no comparison; write [last()] or [position()=last()]"))
                }
            }
            "contains" | "starts-with" => {
                let arg = self.fn_arg()?;
                self.expect(&TokenKind::Comma, "','")?;
                let v = self.constant()?;
                self.expect(&TokenKind::RParen, "')'")?;
                let test = if name == "contains" {
                    FnTest::Contains(v)
                } else {
                    FnTest::StartsWith(v)
                };
                Ok(Predicate::Func { arg, test })
            }
            "string-length" | "number" => {
                let arg = self.fn_arg()?;
                self.expect(&TokenKind::RParen, "')'")?;
                let cmp = self
                    .maybe_comparison()?
                    .ok_or_else(|| self.err(format!("expected a comparison after {name}(…)")))?;
                let test = if name == "string-length" {
                    FnTest::StringLength(cmp)
                } else {
                    FnTest::Number(cmp)
                };
                Ok(Predicate::Func { arg, test })
            }
            _ => unreachable!("guarded by is_predicate_function"),
        }
    }

    /// After `position()`: `OP n` or `= last()`.
    fn position_comparison(&mut self) -> ParseResult<Predicate> {
        let op = match self.peek() {
            Some(TokenKind::Op(op)) => {
                let op = *op;
                self.next();
                op
            }
            _ => return Err(self.err("expected a comparison after position()")),
        };
        match self.peek() {
            Some(TokenKind::Number { .. }) => {
                let rhs = self.constant()?;
                Ok(Predicate::Position {
                    cmp: Comparison { op, rhs },
                })
            }
            Some(TokenKind::Name(n)) if n == "last" && self.peek2() == Some(&TokenKind::LParen) => {
                self.next();
                self.expect(&TokenKind::LParen, "'('")?;
                self.expect(&TokenKind::RParen, "')'")?;
                if op == CmpOp::Eq {
                    Ok(Predicate::Last)
                } else {
                    Err(self.err("only position()=last() is supported"))
                }
            }
            _ => Err(self.err("expected a number or last() after position()")),
        }
    }

    /// The first argument of a predicate function: `text()` or `@attr`.
    fn fn_arg(&mut self) -> ParseResult<FnArg> {
        match self.peek() {
            Some(TokenKind::At) => {
                self.next();
                Ok(FnArg::Attr(self.name("attribute name")?))
            }
            Some(TokenKind::Name(n)) if n == "text" && self.peek2() == Some(&TokenKind::LParen) => {
                self.next();
                self.expect(&TokenKind::LParen, "'('")?;
                self.expect(&TokenKind::RParen, "')'")?;
                Ok(FnArg::Text)
            }
            _ => Err(self.err("expected text() or @attr as the function argument")),
        }
    }

    /// A constant: number, quoted string, or bareword (as in `[LINE%love]`).
    fn constant(&mut self) -> ParseResult<XPathValue> {
        match self.next() {
            Some(Token {
                kind: TokenKind::Number { value, raw },
                ..
            }) => Ok(XPathValue::number_raw(value, raw)),
            Some(Token {
                kind: TokenKind::Str(s),
                ..
            }) => Ok(XPathValue::Text(s)),
            Some(Token {
                kind: TokenKind::Name(n),
                ..
            }) => Ok(XPathValue::Text(n)),
            Some(t) => Err(ParseError::new(t.position, "expected a constant")),
            None => Err(ParseError::new(self.input_len, "expected a constant")),
        }
    }

    fn maybe_comparison(&mut self) -> ParseResult<Option<Comparison>> {
        let op = match self.peek() {
            Some(TokenKind::Op(op)) => {
                let op = *op;
                self.next();
                op
            }
            Some(TokenKind::Name(n)) if n == "contains" => {
                self.next();
                CmpOp::Contains
            }
            _ => return Ok(None),
        };
        let rhs = self.constant()?;
        Ok(Some(Comparison { op, rhs }))
    }
}

/// Resolve an explicit `axis::` prefix. `child::` keeps the axis implied
/// by the preceding slash; reverse axes replace it.
fn resolve_axis(spelled: &str, slash_axis: Axis) -> Option<Axis> {
    match spelled {
        "child" => Some(slash_axis),
        "parent" => Some(Axis::Parent),
        "ancestor" => Some(Axis::Ancestor),
        "preceding-sibling" => Some(Axis::PrecedingSibling),
        _ => None,
    }
}

/// Function names recognized at the head of a predicate.
fn is_predicate_function(name: &str) -> bool {
    matches!(
        name,
        "position" | "last" | "contains" | "starts-with" | "string-length" | "number"
    )
}

fn output_function(name: &str) -> Option<Output> {
    match name {
        "text" => Some(Output::Text),
        "count" => Some(Output::Aggregate(AggFunc::Count)),
        "sum" => Some(Output::Aggregate(AggFunc::Sum)),
        "avg" => Some(Output::Aggregate(AggFunc::Avg)),
        "min" => Some(Output::Aggregate(AggFunc::Min)),
        "max" => Some(Output::Aggregate(AggFunc::Max)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_papers_headline_query() {
        let q = parse_query("//book[year>2000]/name/text()").unwrap();
        assert_eq!(q.steps.len(), 2);
        assert_eq!(q.steps[0].axis, Axis::Closure);
        assert_eq!(
            q.steps[0].predicate,
            Some(Predicate::ChildText {
                child: "year".into(),
                cmp: Comparison {
                    op: CmpOp::Gt,
                    rhs: XPathValue::number_raw(2000.0, "2000"),
                },
            })
        );
        assert_eq!(q.output, Output::Text);
    }

    #[test]
    fn parses_example_1_query() {
        let q = parse_query("/pub[year=2002]/book[price<11]/author").unwrap();
        assert_eq!(q.steps.len(), 3);
        assert_eq!(q.output, Output::Element);
        assert!(!q.has_closure());
    }

    #[test]
    fn parses_example_2_query() {
        let q = parse_query("//pub[year=2002]//book[author]//name").unwrap();
        assert!(q.has_closure());
        assert_eq!(
            q.steps[1].predicate,
            Some(Predicate::Child {
                name: "author".into()
            })
        );
    }

    #[test]
    fn parses_all_five_predicate_categories() {
        let cases = [
            ("/book[@id]", "Attr exists"),
            ("/book[@id<=10]", "Attr cmp"),
            ("/year[text()=2000]", "Text cmp"),
            ("/book[author]", "Child"),
            ("/pub[book@id<=10]", "ChildAttr cmp"),
            ("/book[year<=2000]", "ChildText"),
        ];
        for (q, what) in cases {
            assert!(parse_query(q).is_ok(), "failed to parse {what}: {q}");
        }
    }

    #[test]
    fn parses_output_expressions() {
        assert_eq!(
            parse_query("/a/b/@id").unwrap().output,
            Output::Attr("id".into())
        );
        assert_eq!(
            parse_query("/a/b/count()").unwrap().output,
            Output::Aggregate(AggFunc::Count)
        );
        assert_eq!(
            parse_query("/a/b/sum()").unwrap().output,
            Output::Aggregate(AggFunc::Sum)
        );
        assert_eq!(parse_query("/a/b").unwrap().output, Output::Element);
    }

    #[test]
    fn element_named_like_a_function_is_a_step() {
        // `text` without parens is an ordinary tag.
        let q = parse_query("/a/text").unwrap();
        assert_eq!(q.steps.len(), 2);
        assert_eq!(q.steps[1].test, NodeTest::Name("text".into()));
    }

    #[test]
    fn contains_via_percent_and_word() {
        let q1 = parse_query("/SPEECH[LINE%love]/SPEAKER/text()").unwrap();
        let q2 = parse_query("/SPEECH[LINE contains 'love']/SPEAKER/text()").unwrap();
        assert_eq!(q1.steps[0].predicate, q2.steps[0].predicate);
    }

    #[test]
    fn wildcard_step() {
        let q = parse_query("/*/name/text()").unwrap();
        assert_eq!(q.steps[0].test, NodeTest::Wildcard);
        assert!(q.has_wildcard());
    }

    #[test]
    fn quoted_string_constants() {
        let q = parse_query("/book[name=\"First\"]").unwrap();
        assert_eq!(
            q.steps[0].predicate,
            Some(Predicate::ChildText {
                child: "name".into(),
                cmp: Comparison {
                    op: CmpOp::Eq,
                    rhs: XPathValue::text("First"),
                },
            })
        );
    }

    #[test]
    fn double_equals_is_accepted() {
        let q = parse_query("/year[text()==2000]").unwrap();
        assert!(matches!(
            q.steps[0].predicate,
            Some(Predicate::Text { cmp: Some(_) })
        ));
    }

    #[test]
    fn rejects_malformed_queries() {
        for bad in [
            "",
            "book",
            "/",
            "//",
            "/a[",
            "/a[]",
            "/a[@]",
            "/a[b<]",
            "/a/text()/b",
            "/a/@id/b",
            "/a/count()/text()",
            "//@id",
            "//text()",
            "/a[b=]",
            "/a]",
        ] {
            assert!(parse_query(bad).is_err(), "should reject: {bad}");
        }
    }

    #[test]
    fn display_then_reparse_is_identity() {
        let queries = [
            "/pub[year=2002]/book[price<11]/author",
            "//pub[year>2000]//book[author]//name/text()",
            "/a/*[b%c]/d/@id",
            "/dblp/article/title/text()",
            "//ACT//SPEAKER/count()",
            "/a[@id!=3]/b[text()%x]",
        ];
        for q in queries {
            let parsed = parse_query(q).unwrap();
            let shown = parsed.to_string();
            let reparsed = parse_query(&shown).unwrap();
            assert_eq!(
                parsed, reparsed,
                "roundtrip failed for {q} (shown as {shown})"
            );
        }
    }

    #[test]
    fn steps_carry_source_spans() {
        let text = "/pub[year=2002]/book[price<11]/author/text()";
        let q = parse_query(text).unwrap();
        assert_eq!(q.steps[0].span, Span::new(0, 15));
        assert_eq!(
            &text[q.steps[0].span.start..q.steps[0].span.end],
            "/pub[year=2002]"
        );
        assert_eq!(
            &text[q.steps[1].span.start..q.steps[1].span.end],
            "/book[price<11]"
        );
        assert_eq!(&text[q.steps[2].span.start..q.steps[2].span.end], "/author");
    }

    #[test]
    fn error_positions_point_into_the_query() {
        let err = parse_query("/a[b<]").unwrap_err();
        assert_eq!(err.position, 5); // the ']' where a constant was expected
    }

    #[test]
    fn parses_the_streaming_safe_function_surface() {
        let q = parse_query("/a[contains(text(),\"x\")]").unwrap();
        assert_eq!(
            q.steps[0].predicate,
            Some(Predicate::Func {
                arg: FnArg::Text,
                test: FnTest::Contains(XPathValue::text("x")),
            })
        );
        let q = parse_query("/a[starts-with(@id,'b')]").unwrap();
        assert!(matches!(
            q.steps[0].predicate,
            Some(Predicate::Func {
                arg: FnArg::Attr(_),
                test: FnTest::StartsWith(_),
            })
        ));
        let q = parse_query("/a[string-length(text())>5]").unwrap();
        assert!(matches!(
            q.steps[0].predicate,
            Some(Predicate::Func {
                test: FnTest::StringLength(_),
                ..
            })
        ));
        let q = parse_query("/a[number(@n)<=10]").unwrap();
        assert!(matches!(
            q.steps[0].predicate,
            Some(Predicate::Func {
                test: FnTest::Number(_),
                ..
            })
        ));
    }

    #[test]
    fn parses_position_and_last() {
        let q = parse_query("/a/b[position()=2]").unwrap();
        assert!(matches!(
            q.steps[1].predicate,
            Some(Predicate::Position { .. })
        ));
        // `[2]` is shorthand for `[position()=2]`.
        let q2 = parse_query("/a/b[2]").unwrap();
        assert_eq!(q.steps[1].predicate, q2.steps[1].predicate);
        assert_eq!(
            parse_query("/a/b[last()]").unwrap().steps[1].predicate,
            Some(Predicate::Last)
        );
        assert_eq!(
            parse_query("/a/b[position()=last()]").unwrap().steps[1].predicate,
            Some(Predicate::Last)
        );
        assert!(matches!(
            parse_query("/a/b[position()>=3]").unwrap().steps[1].predicate,
            Some(Predicate::Position {
                cmp: Comparison { op: CmpOp::Ge, .. }
            })
        ));
    }

    #[test]
    fn parses_reverse_axes() {
        let q = parse_query("/a/parent::b").unwrap();
        assert_eq!(q.steps[1].axis, Axis::Parent);
        assert_eq!(q.steps[1].test, NodeTest::Name("b".into()));
        let q = parse_query("/a/ancestor::*").unwrap();
        assert_eq!(q.steps[1].axis, Axis::Ancestor);
        assert_eq!(q.steps[1].test, NodeTest::Wildcard);
        let q = parse_query("/a/preceding-sibling::b").unwrap();
        assert_eq!(q.steps[1].axis, Axis::PrecedingSibling);
        // `child::` keeps the axis implied by the slash.
        assert_eq!(parse_query("/child::a").unwrap().steps[0].axis, Axis::Child);
        assert_eq!(
            parse_query("//child::a").unwrap().steps[0].axis,
            Axis::Closure
        );
        // Namespaced names still lex as plain tags.
        assert_eq!(
            parse_query("/ns:tag").unwrap().steps[0].test,
            NodeTest::Name("ns:tag".into())
        );
    }

    #[test]
    fn rejects_malformed_extended_queries() {
        for bad in [
            "/a[position()]",
            "/a[position()=b]",
            "/a[last()>2]",
            "/a[contains(text())]",
            "/a[contains(b,'x')]",
            "/a[string-length(text())]",
            "/a/following::b",
            "//parent::b",
            "/a/parent::b::c",
            "/a[position()!=last()]",
        ] {
            assert!(parse_query(bad).is_err(), "should reject: {bad}");
        }
    }

    #[test]
    fn extended_display_reparses_to_identity() {
        for q in [
            "/a[contains(text(),\"x y\")]/b",
            "/a[starts-with(@id,\"b\")]",
            "/a[string-length(text())>5]",
            "/a[number(@n)<=10]/b[position()=2]",
            "/a/b[last()]",
            "/a/parent::b",
            "/a/ancestor::*",
            "/a/preceding-sibling::b[@id]",
        ] {
            let parsed = parse_query(q).unwrap();
            let reparsed = parse_query(&parsed.to_string()).unwrap();
            assert_eq!(parsed, reparsed, "roundtrip failed for {q}");
        }
    }
}
