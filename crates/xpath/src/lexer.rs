//! Tokenizer for the Fig. 3 query grammar.

use crate::error::{ParseError, ParseResult};

/// A lexical token with its character offset.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    pub kind: TokenKind,
    pub position: usize,
}

/// Token kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// `/`
    Slash,
    /// `//`
    DoubleSlash,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `@`
    At,
    /// `*` used as a node test (wildcard).
    Star,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,` — separates function arguments (`contains(text(),"x")`).
    Comma,
    /// A name: tag, attribute, or function identifier.
    Name(String),
    /// A numeric literal; the raw spelling is preserved.
    Number { value: f64, raw: String },
    /// A quoted string literal (quotes removed).
    Str(String),
    /// A comparison operator. `%` and the word `contains` both lex to
    /// `Op("%")` at the parser level via [`crate::ast::CmpOp::Contains`].
    Op(crate::ast::CmpOp),
}

/// Tokenize a query string.
pub fn tokenize(input: &str) -> ParseResult<Vec<Token>> {
    let bytes = input.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let start = i;
        let b = bytes[i];
        let kind = match b {
            b' ' | b'\t' | b'\n' | b'\r' => {
                i += 1;
                continue;
            }
            b'/' => {
                if bytes.get(i + 1) == Some(&b'/') {
                    i += 2;
                    TokenKind::DoubleSlash
                } else {
                    i += 1;
                    TokenKind::Slash
                }
            }
            b'[' => {
                i += 1;
                TokenKind::LBracket
            }
            b']' => {
                i += 1;
                TokenKind::RBracket
            }
            b'@' => {
                i += 1;
                TokenKind::At
            }
            b'*' => {
                i += 1;
                TokenKind::Star
            }
            b'(' => {
                i += 1;
                TokenKind::LParen
            }
            b')' => {
                i += 1;
                TokenKind::RParen
            }
            b',' => {
                i += 1;
                TokenKind::Comma
            }
            b'%' => {
                i += 1;
                TokenKind::Op(crate::ast::CmpOp::Contains)
            }
            b'=' => {
                i += 1;
                // Accept both `=` and `==` (the figures use `==`).
                if bytes.get(i) == Some(&b'=') {
                    i += 1;
                }
                TokenKind::Op(crate::ast::CmpOp::Eq)
            }
            b'!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    i += 2;
                    TokenKind::Op(crate::ast::CmpOp::Ne)
                } else {
                    return Err(ParseError::new(start, "expected '=' after '!'"));
                }
            }
            b'<' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    i += 2;
                    TokenKind::Op(crate::ast::CmpOp::Le)
                } else {
                    i += 1;
                    TokenKind::Op(crate::ast::CmpOp::Lt)
                }
            }
            b'>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    i += 2;
                    TokenKind::Op(crate::ast::CmpOp::Ge)
                } else {
                    i += 1;
                    TokenKind::Op(crate::ast::CmpOp::Gt)
                }
            }
            b'"' | b'\'' => {
                let quote = b;
                i += 1;
                let lit_start = i;
                while i < bytes.len() && bytes[i] != quote {
                    i += 1;
                }
                if i >= bytes.len() {
                    return Err(ParseError::new(start, "unterminated string literal"));
                }
                let s = input[lit_start..i].to_string();
                i += 1;
                TokenKind::Str(s)
            }
            b'0'..=b'9' => lex_number(input, bytes, &mut i, start)?,
            b'.' if bytes.get(i + 1).is_some_and(u8::is_ascii_digit) => {
                lex_number(input, bytes, &mut i, start)?
            }
            b'-' if bytes.get(i + 1).is_some_and(u8::is_ascii_digit)
                || (bytes.get(i + 1) == Some(&b'.')
                    && bytes.get(i + 2).is_some_and(u8::is_ascii_digit)) =>
            {
                i += 1;
                lex_number(input, bytes, &mut i, start)?
            }
            _ if is_name_start(b) => {
                while i < bytes.len() && is_name_byte(bytes[i]) {
                    i += 1;
                }
                TokenKind::Name(input[start..i].to_string())
            }
            _ => {
                return Err(ParseError::new(
                    start,
                    format!(
                        "unexpected character '{}'",
                        input[start..].chars().next().unwrap()
                    ),
                ))
            }
        };
        tokens.push(Token {
            kind,
            position: start,
        });
    }
    Ok(tokens)
}

/// Lex a numeric literal per XPath 1.0: `Digits ('.' Digits?)? | '.' Digits`.
/// `*i` sits on the first digit (or the leading `.`); any `-` sign was
/// already consumed, and `start` covers it so `raw` keeps the spelling.
/// A second `.` gets a positioned error instead of being swallowed into
/// a string `f64::parse` can only reject generically.
fn lex_number(input: &str, bytes: &[u8], i: &mut usize, start: usize) -> ParseResult<TokenKind> {
    let mut seen_dot = false;
    while let Some(&b) = bytes.get(*i) {
        match b {
            b'0'..=b'9' => *i += 1,
            b'.' if !seen_dot => {
                seen_dot = true;
                *i += 1;
            }
            b'.' => {
                return Err(ParseError::new(
                    *i,
                    format!("unexpected second '.' in number '{}'", &input[start..*i]),
                ))
            }
            _ => break,
        }
    }
    let raw = &input[start..*i];
    let value = raw
        .parse::<f64>()
        .map_err(|_| ParseError::new(start, format!("bad number '{raw}'")))?;
    Ok(TokenKind::Number {
        value,
        raw: raw.to_string(),
    })
}

fn is_name_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_'
}

fn is_name_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || matches!(b, b'_' | b'-' | b'.' | b':')
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::CmpOp;

    fn kinds(q: &str) -> Vec<TokenKind> {
        tokenize(q).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_a_full_query() {
        let ks = kinds("//pub[year>2000]//book[author]//name/text()");
        assert_eq!(ks[0], TokenKind::DoubleSlash);
        assert_eq!(ks[1], TokenKind::Name("pub".into()));
        assert_eq!(ks[2], TokenKind::LBracket);
        assert_eq!(ks[3], TokenKind::Name("year".into()));
        assert_eq!(ks[4], TokenKind::Op(CmpOp::Gt));
        assert!(matches!(&ks[5], TokenKind::Number { value, .. } if *value == 2000.0));
        assert_eq!(*ks.last().unwrap(), TokenKind::RParen);
    }

    #[test]
    fn lexes_all_operators() {
        let ks = kinds("< <= = == >= > != %");
        assert_eq!(
            ks,
            vec![
                TokenKind::Op(CmpOp::Lt),
                TokenKind::Op(CmpOp::Le),
                TokenKind::Op(CmpOp::Eq),
                TokenKind::Op(CmpOp::Eq),
                TokenKind::Op(CmpOp::Ge),
                TokenKind::Op(CmpOp::Gt),
                TokenKind::Op(CmpOp::Ne),
                TokenKind::Op(CmpOp::Contains),
            ]
        );
    }

    #[test]
    fn number_keeps_raw_spelling() {
        let ks = kinds("10.00");
        assert!(matches!(&ks[0], TokenKind::Number { raw, .. } if raw == "10.00"));
    }

    #[test]
    fn negative_number() {
        let ks = kinds("[x=-5]");
        assert!(matches!(&ks[3], TokenKind::Number { value, .. } if *value == -5.0));
    }

    #[test]
    fn string_literals_both_quote_styles() {
        assert_eq!(kinds("'abc'")[0], TokenKind::Str("abc".into()));
        assert_eq!(kinds("\"a b\"")[0], TokenKind::Str("a b".into()));
    }

    #[test]
    fn names_allow_xml_chars() {
        assert_eq!(
            kinds("ns:tag-name_1.x")[0],
            TokenKind::Name("ns:tag-name_1.x".into())
        );
    }

    #[test]
    fn leading_dot_numbers_lex() {
        assert!(
            matches!(&kinds(".5")[0], TokenKind::Number { value, raw } if *value == 0.5 && raw == ".5")
        );
        assert!(matches!(&kinds("[x=.25]")[3], TokenKind::Number { value, .. } if *value == 0.25));
        assert!(
            matches!(&kinds("[x=-.5]")[3], TokenKind::Number { value, raw } if *value == -0.5 && raw == "-.5")
        );
    }

    #[test]
    fn trailing_dot_number_lexes() {
        assert!(
            matches!(&kinds("1.")[0], TokenKind::Number { value, raw } if *value == 1.0 && raw == "1.")
        );
    }

    #[test]
    fn multi_dot_number_is_a_positioned_error() {
        let err = tokenize("1.2.3").unwrap_err();
        assert_eq!(err.position, 3, "error should sit on the second dot");
        assert!(err.message.contains("second '.'"), "got: {}", err.message);
        let err = tokenize("[x=10.0.1]").unwrap_err();
        assert_eq!(err.position, 7);
        assert!(tokenize("-1.2.3").is_err());
    }

    #[test]
    fn bare_dot_is_still_rejected() {
        assert!(tokenize(".").is_err());
        assert!(tokenize("/a[. = 1]").is_err());
    }

    #[test]
    fn errors_on_junk() {
        assert!(tokenize("#").is_err());
        assert!(tokenize("'unterminated").is_err());
        assert!(tokenize("!x").is_err());
    }

    #[test]
    fn positions_are_recorded() {
        let ts = tokenize("/a[b]").unwrap();
        let positions: Vec<usize> = ts.iter().map(|t| t.position).collect();
        assert_eq!(positions, vec![0, 1, 2, 3, 4]);
    }
}
