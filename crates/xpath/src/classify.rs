//! Classification of location steps into the five BPDT template
//! categories of §3.2.
//!
//! The paper derives one pushdown-transducer template per category, based
//! on *when* the predicate can be evaluated:
//!
//! 1. attribute of the element — at its **begin** event;
//! 2. text of the element — at its **text** event (false at **end**);
//! 3. existence of a child — at the child's **begin** event (false at end);
//! 4. attribute of a child — at the child's **begin** event (false at end);
//! 5. text of a child — at the child's **text** event (false at end).

use crate::ast::{Predicate, Step};

/// The template category a step compiles to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepCategory {
    /// No predicate: the step is satisfied by structure alone, at the
    /// element's begin event.
    NoPredicate,
    /// Category 1 (Fig. 5): `/tag[@attr…]`.
    AttrOfSelf,
    /// Category 2 (Fig. 6): `/tag[text()…]`.
    TextOfSelf,
    /// Category 3 (Fig. 8): `/tag[child]`.
    ChildExists,
    /// Category 4 (Fig. 7): `/tag[child@attr…]`.
    AttrOfChild,
    /// Category 5 (Fig. 9): `/tag[child op v]`.
    TextOfChild,
}

impl StepCategory {
    /// Can the predicate still be *undecided* after the begin event of the
    /// element? (Categories whose BPDTs have an NA state.)
    ///
    /// Category 1 is decided instantly at the begin event, so its BPDT has
    /// no NA state — which in turn means the HPDT generation of §4.2 sets
    /// its right child to `NULL`.
    pub fn has_na_state(&self) -> bool {
        !matches!(self, StepCategory::NoPredicate | StepCategory::AttrOfSelf)
    }

    /// Human-readable name used in diagnostics and the HPDT dump.
    pub fn name(&self) -> &'static str {
        match self {
            StepCategory::NoPredicate => "no-predicate",
            StepCategory::AttrOfSelf => "attr-of-self (Fig. 5)",
            StepCategory::TextOfSelf => "text-of-self (Fig. 6)",
            StepCategory::ChildExists => "child-exists (Fig. 8)",
            StepCategory::AttrOfChild => "attr-of-child (Fig. 7)",
            StepCategory::TextOfChild => "text-of-child (Fig. 9)",
        }
    }
}

/// Classify a step.
pub fn classify(step: &Step) -> StepCategory {
    match &step.predicate {
        None => StepCategory::NoPredicate,
        Some(Predicate::Attr { .. }) => StepCategory::AttrOfSelf,
        Some(Predicate::Text { .. }) => StepCategory::TextOfSelf,
        Some(Predicate::Child { .. }) => StepCategory::ChildExists,
        Some(Predicate::ChildAttr { .. }) => StepCategory::AttrOfChild,
        Some(Predicate::ChildText { .. }) => StepCategory::TextOfChild,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_query;

    fn category_of(q: &str) -> StepCategory {
        let query = parse_query(q).unwrap();
        classify(&query.steps[0])
    }

    #[test]
    fn each_category_is_detected() {
        assert_eq!(category_of("/book"), StepCategory::NoPredicate);
        assert_eq!(category_of("/book[@id]"), StepCategory::AttrOfSelf);
        assert_eq!(category_of("/year[text()=2000]"), StepCategory::TextOfSelf);
        assert_eq!(category_of("/book[author]"), StepCategory::ChildExists);
        assert_eq!(category_of("/pub[book@id<=10]"), StepCategory::AttrOfChild);
        assert_eq!(category_of("/book[year<=2000]"), StepCategory::TextOfChild);
    }

    #[test]
    fn na_states_match_the_paper() {
        // Attribute-of-self predicates are decided at the begin event and
        // have no NA state; everything else can stay undecided.
        assert!(!StepCategory::NoPredicate.has_na_state());
        assert!(!StepCategory::AttrOfSelf.has_na_state());
        assert!(StepCategory::TextOfSelf.has_na_state());
        assert!(StepCategory::ChildExists.has_na_state());
        assert!(StepCategory::AttrOfChild.has_na_state());
        assert!(StepCategory::TextOfChild.has_na_state());
    }

    #[test]
    fn names_are_distinct() {
        use std::collections::HashSet;
        let names: HashSet<&str> = [
            StepCategory::NoPredicate,
            StepCategory::AttrOfSelf,
            StepCategory::TextOfSelf,
            StepCategory::ChildExists,
            StepCategory::AttrOfChild,
            StepCategory::TextOfChild,
        ]
        .iter()
        .map(|c| c.name())
        .collect();
        assert_eq!(names.len(), 6);
    }
}
