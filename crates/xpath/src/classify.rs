//! Classification of location steps into BPDT template categories, and
//! the streamability analysis for the extended surface.
//!
//! The paper derives one pushdown-transducer template per predicate
//! category of §3.2, based on *when* the predicate can be evaluated:
//!
//! 1. attribute of the element — at its **begin** event;
//! 2. text of the element — at its **text** event (false at **end**);
//! 3. existence of a child — at the child's **begin** event (false at end);
//! 4. attribute of a child — at the child's **begin** event (false at end);
//! 5. text of a child — at the child's **text** event (false at end).
//!
//! The extended surface adds function tests over the same two value
//! sources (same timing as categories 1 and 2), plus `position()` (decided
//! at begin from a sibling counter) and `last()` (decided at the *next*
//! matching sibling's begin or the parent's end). [`streamability`] proves
//! which expressions can run in one forward pass and says why the rest
//! cannot.

use crate::ast::{FnArg, Predicate, Query, Span, Step};

/// The template category a step compiles to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepCategory {
    /// No predicate: the step is satisfied by structure alone, at the
    /// element's begin event.
    NoPredicate,
    /// Category 1 (Fig. 5): `/tag[@attr…]`.
    AttrOfSelf,
    /// Category 2 (Fig. 6): `/tag[text()…]`.
    TextOfSelf,
    /// Category 3 (Fig. 8): `/tag[child]`.
    ChildExists,
    /// Category 4 (Fig. 7): `/tag[child@attr…]`.
    AttrOfChild,
    /// Category 5 (Fig. 9): `/tag[child op v]`.
    TextOfChild,
    /// Function test on an attribute: category-1 timing.
    FnAttrOfSelf,
    /// Function test on the element's own text: category-2 timing.
    FnTextOfSelf,
    /// `[position() op n]`: decided at begin from a sibling counter.
    PositionOfSelf,
    /// `[last()]`: decided only after the element — at the next matching
    /// sibling's begin event (false) or the parent's end event (true).
    LastOfSelf,
}

impl StepCategory {
    /// Can the predicate still be *undecided* after the begin event of the
    /// element? (Categories whose BPDTs have an NA state.)
    ///
    /// Category 1 is decided instantly at the begin event, so its BPDT has
    /// no NA state — which in turn means the HPDT generation of §4.2 sets
    /// its right child to `NULL`. Function tests on attributes and
    /// `position()` share that property.
    pub fn has_na_state(&self) -> bool {
        !matches!(
            self,
            StepCategory::NoPredicate
                | StepCategory::AttrOfSelf
                | StepCategory::FnAttrOfSelf
                | StepCategory::PositionOfSelf
        )
    }

    /// Human-readable name used in diagnostics and the HPDT dump.
    pub fn name(&self) -> &'static str {
        match self {
            StepCategory::NoPredicate => "no-predicate",
            StepCategory::AttrOfSelf => "attr-of-self (Fig. 5)",
            StepCategory::TextOfSelf => "text-of-self (Fig. 6)",
            StepCategory::ChildExists => "child-exists (Fig. 8)",
            StepCategory::AttrOfChild => "attr-of-child (Fig. 7)",
            StepCategory::TextOfChild => "text-of-child (Fig. 9)",
            StepCategory::FnAttrOfSelf => "fn-attr-of-self (category-1 timing)",
            StepCategory::FnTextOfSelf => "fn-text-of-self (category-2 timing)",
            StepCategory::PositionOfSelf => "position-of-self (sibling counter)",
            StepCategory::LastOfSelf => "last-of-self (parent-end timing)",
        }
    }
}

/// Classify a step.
pub fn classify(step: &Step) -> StepCategory {
    match &step.predicate {
        None => StepCategory::NoPredicate,
        Some(Predicate::Attr { .. }) => StepCategory::AttrOfSelf,
        Some(Predicate::Text { .. }) => StepCategory::TextOfSelf,
        Some(Predicate::Child { .. }) => StepCategory::ChildExists,
        Some(Predicate::ChildAttr { .. }) => StepCategory::AttrOfChild,
        Some(Predicate::ChildText { .. }) => StepCategory::TextOfChild,
        Some(Predicate::Func {
            arg: FnArg::Attr(_),
            ..
        }) => StepCategory::FnAttrOfSelf,
        Some(Predicate::Func {
            arg: FnArg::Text, ..
        }) => StepCategory::FnTextOfSelf,
        Some(Predicate::Position { .. }) => StepCategory::PositionOfSelf,
        Some(Predicate::Last) => StepCategory::LastOfSelf,
    }
}

/// How a streamability issue affects evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IssueKind {
    /// No single forward pass can evaluate the expression at all.
    NonStreamable,
    /// Streamable with sibling counters / bounded hold-back, which only
    /// the transformation engine implements; the HPDT selection engines
    /// report it as unsupported.
    TransformOnly,
}

/// One streamability finding, anchored to a step's source span.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamIssue {
    /// Zero-based step index.
    pub step: usize,
    /// Byte range of the step in the query string.
    pub span: Span,
    pub kind: IssueKind,
    pub message: String,
}

/// The streamability verdict for a whole query.
#[derive(Debug, Clone, Default)]
pub struct StreamReport {
    pub issues: Vec<StreamIssue>,
}

impl StreamReport {
    /// Can *some* one-pass engine evaluate the query?
    pub fn is_streamable(&self) -> bool {
        !self
            .issues
            .iter()
            .any(|i| i.kind == IssueKind::NonStreamable)
    }

    /// Can the HPDT selection engines evaluate the query? (No issues of
    /// either kind.)
    pub fn hpdt_supported(&self) -> bool {
        self.issues.is_empty()
    }
}

/// Prove which parts of a query are streamable. Every issue carries the
/// step span so diagnostics can point back into the query text.
pub fn streamability(query: &Query) -> StreamReport {
    let mut issues = Vec::new();
    for (i, step) in query.steps.iter().enumerate() {
        if !step.axis.is_forward() {
            issues.push(StreamIssue {
                step: i,
                span: step.span,
                kind: IssueKind::NonStreamable,
                message: format!(
                    "reverse axis `{}` looks backward in the document; \
                     a single forward pass over the event stream cannot evaluate it",
                    step.axis.prefix(),
                ),
            });
        }
        match classify(step) {
            StepCategory::PositionOfSelf | StepCategory::LastOfSelf
                if step.axis == crate::ast::Axis::Closure =>
            {
                let what = if classify(step) == StepCategory::LastOfSelf {
                    "last()"
                } else {
                    "position()"
                };
                issues.push(StreamIssue {
                    step: i,
                    span: step.span,
                    kind: IssueKind::NonStreamable,
                    message: format!(
                        "`{what}` on a descendant step has an unbounded candidate set \
                         under recursive nesting; use a child step (`/`) instead",
                    ),
                });
            }
            StepCategory::PositionOfSelf => {
                issues.push(StreamIssue {
                    step: i,
                    span: step.span,
                    kind: IssueKind::TransformOnly,
                    message: "`position()` is decided from sibling counters; supported in \
                              transform match patterns, not by the HPDT selection engines"
                        .into(),
                });
            }
            StepCategory::LastOfSelf => {
                issues.push(StreamIssue {
                    step: i,
                    span: step.span,
                    kind: IssueKind::TransformOnly,
                    message: "`last()` is decided at the parent's end event; supported in \
                              transform match patterns, not by the HPDT selection engines"
                        .into(),
                });
            }
            _ => {}
        }
    }
    StreamReport { issues }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_query;

    fn category_of(q: &str) -> StepCategory {
        let query = parse_query(q).unwrap();
        classify(&query.steps[0])
    }

    #[test]
    fn each_category_is_detected() {
        assert_eq!(category_of("/book"), StepCategory::NoPredicate);
        assert_eq!(category_of("/book[@id]"), StepCategory::AttrOfSelf);
        assert_eq!(category_of("/year[text()=2000]"), StepCategory::TextOfSelf);
        assert_eq!(category_of("/book[author]"), StepCategory::ChildExists);
        assert_eq!(category_of("/pub[book@id<=10]"), StepCategory::AttrOfChild);
        assert_eq!(category_of("/book[year<=2000]"), StepCategory::TextOfChild);
        assert_eq!(
            category_of("/book[contains(@id,\"x\")]"),
            StepCategory::FnAttrOfSelf
        );
        assert_eq!(
            category_of("/book[starts-with(text(),\"A\")]"),
            StepCategory::FnTextOfSelf
        );
        assert_eq!(
            category_of("/book[position()=2]"),
            StepCategory::PositionOfSelf
        );
        assert_eq!(category_of("/book[2]"), StepCategory::PositionOfSelf);
        assert_eq!(category_of("/book[last()]"), StepCategory::LastOfSelf);
    }

    #[test]
    fn na_states_match_the_paper() {
        // Attribute-of-self predicates are decided at the begin event and
        // have no NA state; everything else can stay undecided.
        assert!(!StepCategory::NoPredicate.has_na_state());
        assert!(!StepCategory::AttrOfSelf.has_na_state());
        assert!(StepCategory::TextOfSelf.has_na_state());
        assert!(StepCategory::ChildExists.has_na_state());
        assert!(StepCategory::AttrOfChild.has_na_state());
        assert!(StepCategory::TextOfChild.has_na_state());
        assert!(!StepCategory::FnAttrOfSelf.has_na_state());
        assert!(StepCategory::FnTextOfSelf.has_na_state());
        assert!(!StepCategory::PositionOfSelf.has_na_state());
        assert!(StepCategory::LastOfSelf.has_na_state());
    }

    #[test]
    fn names_are_distinct() {
        use std::collections::HashSet;
        let names: HashSet<&str> = [
            StepCategory::NoPredicate,
            StepCategory::AttrOfSelf,
            StepCategory::TextOfSelf,
            StepCategory::ChildExists,
            StepCategory::AttrOfChild,
            StepCategory::TextOfChild,
            StepCategory::FnAttrOfSelf,
            StepCategory::FnTextOfSelf,
            StepCategory::PositionOfSelf,
            StepCategory::LastOfSelf,
        ]
        .iter()
        .map(|c| c.name())
        .collect();
        assert_eq!(names.len(), 10);
    }

    #[test]
    fn classic_subset_is_fully_streamable() {
        let q = parse_query("//pub[year>2000]//book[author]/name/text()").unwrap();
        let r = streamability(&q);
        assert!(r.is_streamable() && r.hpdt_supported());
    }

    #[test]
    fn functions_are_hpdt_supported() {
        let q = parse_query("/a[contains(text(),'x')]/b[number(@n)>3]").unwrap();
        assert!(streamability(&q).hpdt_supported());
    }

    #[test]
    fn position_on_child_step_is_transform_only() {
        let q = parse_query("/a/b[position()=2]").unwrap();
        let r = streamability(&q);
        assert!(r.is_streamable());
        assert!(!r.hpdt_supported());
        assert_eq!(r.issues[0].kind, IssueKind::TransformOnly);
        assert_eq!(r.issues[0].step, 1);
    }

    #[test]
    fn last_on_descendant_step_is_non_streamable() {
        let q = parse_query("//b[last()]").unwrap();
        let r = streamability(&q);
        assert!(!r.is_streamable());
        assert!(r.issues[0].message.contains("last()"));
        // The span points at the offending step.
        assert_eq!(r.issues[0].span.start, 0);
    }

    #[test]
    fn reverse_axes_are_non_streamable_with_spans() {
        let text = "/a/parent::b";
        let q = parse_query(text).unwrap();
        let r = streamability(&q);
        assert!(!r.is_streamable());
        let issue = &r.issues[0];
        assert_eq!(issue.step, 1);
        assert_eq!(&text[issue.span.start..issue.span.end], "/parent::b");
        assert!(issue.message.contains("parent::"), "{}", issue.message);
    }
}
