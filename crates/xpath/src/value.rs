//! XPath 1.0 value semantics for predicate comparisons.
//!
//! A predicate's right-hand side is a constant: a number (`[year>2000]`) or
//! a string (`[name="First"]`, `[LINE%love]`). The left-hand side always
//! arrives from the stream as a string (attribute value or text content).
//! Following XPath 1.0:
//!
//! * if the constant is a **number**, the stream value is converted to a
//!   number; a failed conversion yields NaN, and NaN makes every
//!   comparison false except `!=`, which is true (IEEE semantics);
//! * if the constant is a **string**, `=`/`!=`/`contains` compare as
//!   strings, while the relational operators `<`/`<=`/`>`/`>=` convert
//!   *both* sides to numbers (XPath 1.0 relational operators are numeric).

use std::fmt;

use crate::ast::CmpOp;

/// A typed constant in a query.
#[derive(Debug, Clone, PartialEq)]
pub enum XPathValue {
    /// Numeric constant; the original spelling is kept for display.
    Number { value: f64, raw: String },
    /// String constant.
    Text(String),
}

impl XPathValue {
    /// A numeric constant with canonical spelling.
    pub fn number(value: f64) -> Self {
        XPathValue::Number {
            value,
            raw: canonical_number(value),
        }
    }

    /// A numeric constant that remembers how it was written (`10.00`).
    pub fn number_raw(value: f64, raw: impl Into<String>) -> Self {
        XPathValue::Number {
            value,
            raw: raw.into(),
        }
    }

    /// A string constant.
    pub fn text(s: impl Into<String>) -> Self {
        XPathValue::Text(s.into())
    }

    /// The value as a number (strings convert per XPath `number()`:
    /// trimmed, else NaN).
    pub fn as_number(&self) -> f64 {
        match self {
            XPathValue::Number { value, .. } => *value,
            XPathValue::Text(s) => str_to_number(s),
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> &str {
        match self {
            XPathValue::Number { raw, .. } => raw,
            XPathValue::Text(s) => s,
        }
    }
}

impl fmt::Display for XPathValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            XPathValue::Number { raw, .. } => f.write_str(raw),
            XPathValue::Text(s) => write!(f, "\"{s}\""),
        }
    }
}

/// XPath 1.0 `number()` on a string: trim whitespace, parse, NaN on failure.
pub fn str_to_number(s: &str) -> f64 {
    s.trim().parse::<f64>().unwrap_or(f64::NAN)
}

/// Render a number the way XPath's `string()` would for the common cases:
/// integers without a fractional part, others in shortest `f64` form.
pub fn canonical_number(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

/// Evaluate `lhs OP rhs` where `lhs` is a raw string from the stream.
pub fn compare(lhs: &str, op: CmpOp, rhs: &XPathValue) -> bool {
    match (op, rhs) {
        (CmpOp::Contains, rhs) => lhs.contains(rhs.as_str()),
        (CmpOp::Eq, XPathValue::Text(s)) => lhs == s,
        (CmpOp::Ne, XPathValue::Text(s)) => lhs != s,
        (CmpOp::Eq, XPathValue::Number { value, .. }) => {
            num_cmp(str_to_number(lhs), CmpOp::Eq, *value)
        }
        (CmpOp::Ne, XPathValue::Number { value, .. }) => {
            num_cmp(str_to_number(lhs), CmpOp::Ne, *value)
        }
        // Relational: always numeric in XPath 1.0.
        (op, rhs) => num_cmp(str_to_number(lhs), op, rhs.as_number()),
    }
}

/// Numeric comparison with XPath 1.0 NaN semantics. `Contains` against
/// numbers compares the canonical spellings (substring on strings).
pub fn num_compare(l: f64, op: CmpOp, r: f64) -> bool {
    match op {
        CmpOp::Lt => l < r,
        CmpOp::Le => l <= r,
        CmpOp::Eq => l == r,
        CmpOp::Ge => l >= r,
        CmpOp::Gt => l > r,
        CmpOp::Ne => l != r,
        CmpOp::Contains => canonical_number(l).contains(&canonical_number(r)),
    }
}

use self::num_compare as num_cmp;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numeric_comparisons() {
        let n = XPathValue::number(2000.0);
        assert!(compare("2002", CmpOp::Gt, &n));
        assert!(compare(" 2002 ", CmpOp::Gt, &n)); // paper data has padding
        assert!(!compare("1999", CmpOp::Gt, &n));
        assert!(compare("2000", CmpOp::Ge, &n));
        assert!(compare("2000.0", CmpOp::Eq, &n));
        assert!(compare("1999", CmpOp::Ne, &n));
    }

    #[test]
    fn nan_semantics() {
        let n = XPathValue::number(10.0);
        assert!(!compare("abc", CmpOp::Lt, &n));
        assert!(!compare("abc", CmpOp::Gt, &n));
        assert!(!compare("abc", CmpOp::Eq, &n));
        assert!(compare("abc", CmpOp::Ne, &n)); // NaN != 10 is true
    }

    #[test]
    fn string_equality_is_exact() {
        let s = XPathValue::text("First");
        assert!(compare("First", CmpOp::Eq, &s));
        assert!(!compare("first", CmpOp::Eq, &s));
        assert!(compare("Second", CmpOp::Ne, &s));
    }

    #[test]
    fn relational_on_string_constant_is_numeric() {
        let s = XPathValue::text("11");
        assert!(compare("10.00", CmpOp::Lt, &s));
        assert!(!compare("12.00", CmpOp::Lt, &s));
        assert!(!compare("abc", CmpOp::Lt, &s)); // NaN
    }

    #[test]
    fn contains_is_substring() {
        let s = XPathValue::text("love");
        assert!(compare("my love is", CmpOp::Contains, &s));
        assert!(!compare("LOVE", CmpOp::Contains, &s));
        // Contains against a number constant uses its spelling.
        let n = XPathValue::number_raw(10.0, "10");
        assert!(compare("costs 10 dollars", CmpOp::Contains, &n));
    }

    #[test]
    fn canonical_number_forms() {
        assert_eq!(canonical_number(2000.0), "2000");
        assert_eq!(canonical_number(10.5), "10.5");
        assert_eq!(canonical_number(-3.0), "-3");
    }

    #[test]
    fn value_accessors() {
        let n = XPathValue::number_raw(10.0, "10.00");
        assert_eq!(n.as_number(), 10.0);
        assert_eq!(n.as_str(), "10.00");
        assert_eq!(n.to_string(), "10.00");
        let t = XPathValue::text("12");
        assert_eq!(t.as_number(), 12.0);
        assert_eq!(t.to_string(), "\"12\"");
        assert!(XPathValue::text("x").as_number().is_nan());
    }
}
