//! The `.xfm` transformation rule language.
//!
//! A rules file is a list of lines, each `PATTERN => ACTION…`:
//!
//! ```text
//! # drop prices, rename authors, tag matched books
//! /catalog/book[price>100]        => drop
//! //author                        => rename(creator)
//! /catalog/book[position()=1]     => copy +@featured="yes"
//! //isbn                          => wrap(identifier) -@deprecated
//! ```
//!
//! `PATTERN` is a query in the streaming-safe surface subset (it must
//! select elements — no trailing `/text()` or aggregation). `ACTION` is
//! at most one *shape* action — `copy` (default), `drop`, `rename(tag)`,
//! `wrap(tag)` — plus any number of attribute operations `+@name="value"`
//! and `-@name`. `drop` admits no other action. Rules apply first-match-
//! wins in file order. Blank lines and `#` comments are ignored.
//!
//! [`RuleSet::parse`] rejects non-streamable patterns (reverse axes,
//! `position()`/`last()` on descendant steps) with the spanned
//! [`crate::classify::streamability`] diagnostics mapped to line/column —
//! an error, never a panic.

use std::fmt;

use crate::ast::{Output, Query};
use crate::classify::{streamability, IssueKind};
use crate::parser::parse_query;

/// The shape action of a rule: what becomes of the matched element.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Shape {
    /// Emit the element unchanged (modulo attribute operations).
    Copy,
    /// Omit the element and its entire subtree from the output.
    Drop,
    /// Emit the element under a different tag name.
    Rename(String),
    /// Emit a new element around the matched element.
    Wrap(String),
}

/// An attribute operation applied to the matched element's begin tag.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AttrOp {
    /// `+@name="value"` — set (add or replace) an attribute.
    Set(String, String),
    /// `-@name` — remove an attribute if present.
    Remove(String),
}

/// The full action of a rule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RuleAction {
    pub shape: Shape,
    pub attr_ops: Vec<AttrOp>,
}

impl RuleAction {
    /// Apply this action's attribute operations to an attribute list.
    ///
    /// This function *is* the semantics of `+@`/`-@`, shared by the
    /// streaming rewriter and the DOM reference transformer so the two
    /// cannot drift: operations apply in rule order; `+@name="v"` on an
    /// existing attribute replaces its value in place (keeping its
    /// position), on a missing one appends; `-@name` removes if present.
    pub fn apply_attrs(&self, attrs: &[(String, String)]) -> Vec<(String, String)> {
        let mut out: Vec<(String, String)> = attrs.to_vec();
        for op in &self.attr_ops {
            match op {
                AttrOp::Set(name, value) => match out.iter_mut().find(|(n, _)| n == name) {
                    Some(slot) => slot.1 = value.clone(),
                    None => out.push((name.clone(), value.clone())),
                },
                AttrOp::Remove(name) => out.retain(|(n, _)| n != name),
            }
        }
        out
    }
}

/// One rule: a match pattern plus an action.
#[derive(Debug, Clone, PartialEq)]
pub struct Rule {
    pub pattern: Query,
    pub action: RuleAction,
    /// 1-based source line, for diagnostics.
    pub line: usize,
}

/// A parsed rules file. Rule order is priority order (first match wins).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RuleSet {
    pub rules: Vec<Rule>,
}

/// A spanned error in a rules file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RuleError {
    /// 1-based line number.
    pub line: usize,
    /// 1-based column (byte offset into the line).
    pub col: usize,
    pub message: String,
}

impl RuleError {
    fn new(line: usize, col: usize, message: impl Into<String>) -> Self {
        RuleError {
            line,
            col,
            message: message.into(),
        }
    }
}

impl fmt::Display for RuleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "line {}, column {}: {}",
            self.line, self.col, self.message
        )
    }
}

impl std::error::Error for RuleError {}

impl RuleSet {
    /// Parse a rules file.
    pub fn parse(text: &str) -> Result<RuleSet, RuleError> {
        let mut rules = Vec::new();
        for (idx, raw_line) in text.lines().enumerate() {
            let lineno = idx + 1;
            let line = raw_line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            // Byte offset of the trimmed text within the raw line, so
            // columns point into the file as written.
            let indent = raw_line.len() - raw_line.trim_start().len();
            let arrow = find_unquoted(line, "=>").ok_or_else(|| {
                RuleError::new(lineno, indent + 1, "expected `PATTERN => ACTION`")
            })?;
            let pattern_text = line[..arrow].trim_end();
            let action_text = &line[arrow + 2..];
            if pattern_text.is_empty() {
                return Err(RuleError::new(lineno, indent + 1, "rule has no pattern"));
            }

            let pattern = parse_query(pattern_text)
                .map_err(|e| RuleError::new(lineno, indent + e.position + 1, e.message))?;
            if pattern.output != Output::Element {
                return Err(RuleError::new(
                    lineno,
                    indent + 1,
                    format!(
                        "match patterns select elements; remove the trailing `{}`",
                        pattern.output
                    ),
                ));
            }
            let report = streamability(&pattern);
            if let Some(issue) = report
                .issues
                .iter()
                .find(|i| i.kind == IssueKind::NonStreamable)
            {
                return Err(RuleError::new(
                    lineno,
                    indent + issue.span.start + 1,
                    format!("pattern is not streamable: {}", issue.message),
                ));
            }

            let action_col = indent + arrow + 2 + 1;
            let action = parse_action(action_text, lineno, action_col)?;
            rules.push(Rule {
                pattern,
                action,
                line: lineno,
            });
        }
        if rules.is_empty() {
            return Err(RuleError::new(1, 1, "rules file contains no rules"));
        }
        Ok(RuleSet { rules })
    }
}

/// Find the byte offset of `needle` outside quoted strings.
fn find_unquoted(s: &str, needle: &str) -> Option<usize> {
    let bytes = s.as_bytes();
    let mut quote: Option<u8> = None;
    let mut i = 0;
    while i < bytes.len() {
        let b = bytes[i];
        match quote {
            Some(q) if b == q => quote = None,
            Some(_) => {}
            None if b == b'"' || b == b'\'' => quote = Some(b),
            None if s[i..].starts_with(needle) => return Some(i),
            None => {}
        }
        i += 1;
    }
    None
}

/// Parse the action list after `=>`.
fn parse_action(text: &str, line: usize, base_col: usize) -> Result<RuleAction, RuleError> {
    let mut shape: Option<Shape> = None;
    let mut attr_ops = Vec::new();
    let mut any = false;
    for (tok, off) in action_tokens(text) {
        any = true;
        let col = base_col + off;
        let err = |msg: String| RuleError::new(line, col, msg);
        let set_shape = |shape: &mut Option<Shape>, s: Shape| {
            if shape.is_some() {
                Err(err(format!("conflicting shape action `{tok}`")))
            } else {
                *shape = Some(s);
                Ok(())
            }
        };
        match tok.as_str() {
            "copy" => set_shape(&mut shape, Shape::Copy)?,
            "drop" => set_shape(&mut shape, Shape::Drop)?,
            _ if tok.starts_with("rename(") || tok.starts_with("wrap(") => {
                let (kind, rest) = tok.split_once('(').expect("checked");
                let name = rest
                    .strip_suffix(')')
                    .ok_or_else(|| RuleError::new(line, col, format!("expected `{kind}(NAME)`")))?;
                check_name(name, line, col)?;
                let s = if kind == "rename" {
                    Shape::Rename(name.to_string())
                } else {
                    Shape::Wrap(name.to_string())
                };
                set_shape(&mut shape, s)?;
            }
            _ if tok.starts_with("+@") => {
                let rest = &tok[2..];
                let (name, value) = rest
                    .split_once('=')
                    .ok_or_else(|| RuleError::new(line, col, "expected `+@name=\"value\"`"))?;
                check_name(name, line, col)?;
                let value = unquote(value)
                    .ok_or_else(|| RuleError::new(line, col, "attribute value must be quoted"))?;
                attr_ops.push(AttrOp::Set(name.to_string(), value));
            }
            _ if tok.starts_with("-@") => {
                let name = &tok[2..];
                check_name(name, line, col)?;
                attr_ops.push(AttrOp::Remove(name.to_string()));
            }
            other => {
                return Err(RuleError::new(
                    line,
                    col,
                    format!(
                        "unknown action `{other}` (expected copy, drop, rename(tag), \
                         wrap(tag), +@name=\"value\", or -@name)"
                    ),
                ))
            }
        }
    }
    if !any {
        return Err(RuleError::new(line, base_col, "rule has no action"));
    }
    let shape = shape.unwrap_or(Shape::Copy);
    if shape == Shape::Drop && !attr_ops.is_empty() {
        return Err(RuleError::new(
            line,
            base_col,
            "`drop` emits nothing; attribute operations make no sense with it",
        ));
    }
    Ok(RuleAction { shape, attr_ops })
}

/// Split the action text on whitespace, keeping quoted spans intact.
/// Returns each token with its byte offset into `text`.
fn action_tokens(text: &str) -> Vec<(String, usize)> {
    let bytes = text.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i].is_ascii_whitespace() {
            i += 1;
            continue;
        }
        let start = i;
        let mut quote: Option<u8> = None;
        while i < bytes.len() {
            let b = bytes[i];
            match quote {
                Some(q) if b == q => quote = None,
                Some(_) => {}
                None if b == b'"' || b == b'\'' => quote = Some(b),
                None if b.is_ascii_whitespace() => break,
                None => {}
            }
            i += 1;
        }
        tokens.push((text[start..i].to_string(), start));
    }
    tokens
}

/// Strip matching quotes from an action value.
fn unquote(s: &str) -> Option<String> {
    let bytes = s.as_bytes();
    if bytes.len() >= 2
        && (bytes[0] == b'"' || bytes[0] == b'\'')
        && bytes[bytes.len() - 1] == bytes[0]
    {
        Some(s[1..s.len() - 1].to_string())
    } else {
        None
    }
}

/// Validate an XML name used in `rename`/`wrap`/attribute operations.
fn check_name(name: &str, line: usize, col: usize) -> Result<(), RuleError> {
    let bytes = name.as_bytes();
    let ok = !bytes.is_empty()
        && (bytes[0].is_ascii_alphabetic() || bytes[0] == b'_')
        && bytes
            .iter()
            .all(|&b| b.is_ascii_alphanumeric() || matches!(b, b'_' | b'-' | b'.' | b':'))
        && !name.contains("::");
    if ok {
        Ok(())
    } else {
        Err(RuleError::new(
            line,
            col,
            format!("`{name}` is not a valid XML name"),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_full_rules_file() {
        let text = "\
# a comment
/catalog/book[price>100] => drop

//author => rename(creator)
/catalog/book[position()=1] => copy +@featured=\"yes\"
//isbn => wrap(identifier) -@deprecated
//note => +@seen='1'
";
        let rs = RuleSet::parse(text).unwrap();
        assert_eq!(rs.rules.len(), 5);
        assert_eq!(rs.rules[0].action.shape, Shape::Drop);
        assert_eq!(rs.rules[1].action.shape, Shape::Rename("creator".into()));
        assert_eq!(
            rs.rules[2].action.attr_ops,
            vec![AttrOp::Set("featured".into(), "yes".into())]
        );
        assert_eq!(rs.rules[3].action.shape, Shape::Wrap("identifier".into()));
        assert_eq!(
            rs.rules[3].action.attr_ops,
            vec![AttrOp::Remove("deprecated".into())]
        );
        // Attribute ops alone imply copy.
        assert_eq!(rs.rules[4].action.shape, Shape::Copy);
        assert_eq!(rs.rules[4].line, 7);
    }

    #[test]
    fn quoted_values_keep_spaces_and_arrows() {
        let rs = RuleSet::parse("/a => +@note=\"x => y\"").unwrap();
        assert_eq!(
            rs.rules[0].action.attr_ops,
            vec![AttrOp::Set("note".into(), "x => y".into())]
        );
    }

    #[test]
    fn error_positions_are_spanned() {
        // Pattern parse error: column points into the pattern.
        let e = RuleSet::parse("/a[ => copy").unwrap_err();
        assert_eq!(e.line, 1);
        assert!(e.col >= 4, "col {} should be inside the predicate", e.col);

        // Non-streamable pattern: column points at the offending step.
        let e = RuleSet::parse("  /a/parent::b => copy").unwrap_err();
        assert_eq!(e.line, 1);
        assert_eq!(e.col, 5); // after two indent bytes + "/a"
        assert!(e.message.contains("not streamable"), "{}", e.message);

        let e = RuleSet::parse("//b[last()] => copy").unwrap_err();
        assert!(e.message.contains("descendant"), "{}", e.message);
    }

    #[test]
    fn rejects_bad_actions() {
        for (bad, needle) in [
            ("/a => ", "no action"),
            ("/a => copy drop", "conflicting"),
            ("/a => drop -@x", "drop"),
            ("/a => explode", "unknown action"),
            ("/a => rename(", "rename(NAME)"),
            ("/a => rename(1x)", "not a valid XML name"),
            ("/a => +@x=unquoted", "quoted"),
            ("/a/text() => copy", "select elements"),
            ("no arrow here", "=>"),
        ] {
            let e = RuleSet::parse(bad).unwrap_err();
            assert!(
                e.message.contains(needle),
                "for `{bad}` expected `{needle}` in: {}",
                e.message
            );
        }
    }

    #[test]
    fn empty_file_is_an_error() {
        assert!(RuleSet::parse("# only comments\n").is_err());
    }

    #[test]
    fn attr_ops_apply_in_order_preserving_positions() {
        let rs = RuleSet::parse("/a => -@old +@id=\"9\" +@new=\"n\"").unwrap();
        let action = &rs.rules[0].action;
        let attrs = [
            ("id".to_string(), "1".to_string()),
            ("old".to_string(), "x".to_string()),
        ];
        assert_eq!(
            action.apply_attrs(&attrs),
            vec![
                ("id".to_string(), "9".to_string()),
                ("new".to_string(), "n".to_string()),
            ]
        );
    }

    #[test]
    fn position_and_last_on_child_steps_are_accepted() {
        let rs = RuleSet::parse("/a/b[last()] => rename(tail)").unwrap();
        assert_eq!(rs.rules.len(), 1);
    }
}
