//! Parse errors for the XPath front end.

use std::fmt;

/// Result alias for query parsing.
pub type ParseResult<T> = std::result::Result<T, ParseError>;

/// An error encountered while lexing or parsing a query string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Character offset into the query string.
    pub position: usize,
    /// Human-readable description.
    pub message: String,
}

impl ParseError {
    pub fn new(position: usize, message: impl Into<String>) -> Self {
        ParseError {
            position,
            message: message.into(),
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "XPath parse error at position {}: {}",
            self.position, self.message
        )
    }
}

impl std::error::Error for ParseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_position_and_message() {
        let e = ParseError::new(3, "expected a tag name");
        let s = e.to_string();
        assert!(s.contains('3') && s.contains("tag name"));
    }
}
