//! Workload-level tests for the filtering baselines: a YFilter-style
//! subscription set over generated documents, checked against per-query
//! XFilter runs and against XSQ-derived ground truth.

use xsq_baselines::{XFilterLike, YFilterLike};

fn subscription_workload() -> Vec<String> {
    // 60 path subscriptions over the DBLP vocabulary, with shared
    // prefixes (the case YFilter's combined automaton exists for).
    let mut qs = Vec::new();
    for record in ["article", "inproceedings"] {
        for field in ["title", "author", "year", "pages", "booktitle"] {
            qs.push(format!("/dblp/{record}/{field}"));
            qs.push(format!("//{record}/{field}"));
            qs.push(format!("//{record}//{field}"));
        }
    }
    qs
}

#[test]
fn yfilter_matches_xfilter_on_a_generated_corpus() {
    let queries = subscription_workload();
    let refs: Vec<&str> = queries.iter().map(String::as_str).collect();
    let y = YFilterLike::compile(&refs).unwrap();
    // Prefix sharing must actually collapse states: 60 queries of ≤3
    // steps each would be ≤181 isolated nodes; shared, far fewer.
    assert!(
        y.node_count() < 100,
        "expected prefix sharing, got {} nodes",
        y.node_count()
    );
    for seed in [1, 2, 3] {
        let doc = xsq_datagen::dblp::generate(seed, 20_000);
        let ym = y.run(doc.as_bytes(), refs.len()).unwrap();
        for (i, q) in refs.iter().enumerate() {
            let x = XFilterLike::compile(q)
                .unwrap()
                .matches(doc.as_bytes())
                .unwrap();
            assert_eq!(x, ym[i], "seed {seed}, query {q}");
        }
    }
}

#[test]
fn filter_verdicts_agree_with_the_query_engine() {
    // A document matches a filter iff the query (as element output)
    // returns at least one result.
    let doc = xsq_datagen::nasa::generate(7, 15_000);
    for q in [
        "/datasets/dataset/title",
        "//reference//author",
        "//tableHead/field/name",
        "//nonexistent",
        "/wrongroot/dataset",
    ] {
        let filter = XFilterLike::compile(q)
            .unwrap()
            .matches(doc.as_bytes())
            .unwrap();
        let results = xsq_core::evaluate(q, doc.as_bytes()).unwrap();
        assert_eq!(filter, !results.is_empty(), "{q}");
    }
}

#[test]
fn document_routing_scenario() {
    // Route each feed document to the subscribers it matches.
    let queries = ["//book", "//journal", "//thesis"];
    let y = YFilterLike::compile(&queries).unwrap();
    let feed = [
        "<lib><book/></lib>",
        "<lib><journal/><book/></lib>",
        "<lib><thesis/></lib>",
        "<lib><report/></lib>",
    ];
    let routed: Vec<Vec<bool>> = feed
        .iter()
        .map(|d| y.run(d.as_bytes(), queries.len()).unwrap())
        .collect();
    assert_eq!(routed[0], [true, false, false]);
    assert_eq!(routed[1], [true, true, false]);
    assert_eq!(routed[2], [false, false, true]);
    assert_eq!(routed[3], [false, false, false]);
}
