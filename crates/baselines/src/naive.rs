//! The naive streaming evaluator of §3.1 — the design XSQ argues against.
//!
//! The paper: "A direct solution is to remember the current results for
//! every predicate, and mark every item with a flag that indicates which
//! predicates are satisfied and which are not yet. Such methods
//! significantly degrade the performance. For instance, every time we
//! evaluate a predicate, such a method would need to go through the whole
//! buffer to check if some items are affected by its result."
//!
//! This module implements exactly that strawman, honestly: structural
//! path matching like the HPDT's, but per-element predicate flags in a
//! table and — the defining cost — a **full buffer rescan after every
//! predicate-affecting event**. Results are identical to XSQ's (the
//! equivalence tests demand it); the `micro` bench shows the quadratic
//! behavior the paper predicts on buffering-heavy data.
//!
//! Supported output: `text()` (sufficient for the ablation).

use std::collections::HashMap;
use std::time::Instant;

use xsq_core::{Capabilities, MemoryStats, PhaseTimings, RunReport, Unsupported, XPathEngine};
use xsq_xml::{SaxEvent, StreamParser, Sym};
use xsq_xpath::{parse_query, Axis, Output, Predicate, Query};

/// Unique id of an open (or closed) element instance.
type ElemId = u64;

/// A buffered potential result.
struct BufferedItem {
    value: String,
    /// Every structural match chain that could justify this item: one
    /// element id per location step.
    chains: Vec<Vec<ElemId>>,
    emitted: bool,
    dropped: bool,
}

struct OpenElem {
    id: ElemId,
    name: Sym,
    /// Steps this element structurally matches.
    matched_steps: Vec<usize>,
}

/// Per-(element, step) predicate status: `None` = undecided.
type FlagTable = HashMap<(ElemId, usize), Option<bool>>;

struct NaiveRun<'q> {
    query: &'q Query,
    stack: Vec<OpenElem>,
    next_id: ElemId,
    flags: FlagTable,
    buffer: Vec<BufferedItem>,
    emit_cursor: usize,
    results: Vec<String>,
    /// Count of buffer-entry visits during rescans (the cost the paper
    /// points at; exposed for the ablation).
    pub rescan_work: u64,
    peak_buffer: usize,
}

impl<'q> NaiveRun<'q> {
    fn new(query: &'q Query) -> Self {
        NaiveRun {
            query,
            stack: Vec::new(),
            next_id: 0,
            flags: HashMap::new(),
            buffer: Vec::new(),
            emit_cursor: 0,
            results: Vec::new(),
            rescan_work: 0,
            peak_buffer: 0,
        }
    }

    fn on_begin(&mut self, ev: &SaxEvent) {
        let SaxEvent::Begin { name, depth, .. } = ev else {
            unreachable!()
        };
        let id = self.next_id;
        self.next_id += 1;
        let mut matched_steps = Vec::new();
        for (i, step) in self.query.steps.iter().enumerate() {
            if !step.test.matches(name.as_str()) {
                continue;
            }
            let structurally = if i == 0 {
                match step.axis {
                    Axis::Child => *depth == 1,
                    Axis::Closure => true,
                    _ => false, // reverse axes are rejected at run entry
                }
            } else {
                match step.axis {
                    Axis::Child => self
                        .stack
                        .last()
                        .is_some_and(|p| p.matched_steps.contains(&(i - 1))),
                    Axis::Closure => self
                        .stack
                        .iter()
                        .any(|f| f.matched_steps.contains(&(i - 1))),
                    _ => false, // reverse axes are rejected at run entry
                }
            };
            if !structurally {
                continue;
            }
            matched_steps.push(i);
            // Initialize this element's own predicate flag.
            let initial = match &step.predicate {
                None => Some(true),
                Some(Predicate::Attr { name: a, cmp }) => Some(match ev.attribute(a) {
                    None => false,
                    Some(v) => cmp.as_ref().is_none_or(|c| c.eval(v)),
                }),
                _ => None,
            };
            self.flags.insert((id, i), initial);
        }

        // This begin event may witness child-based predicates on every
        // open ancestor that matched a step (the naive method keeps all
        // of these flags by hand, as the paper describes).
        let witnesses: Vec<(ElemId, usize)> = self
            .stack
            .iter()
            .flat_map(|f| f.matched_steps.iter().map(move |&s| (f.id, s)))
            .filter(|&(_, s)| match &self.query.steps[s].predicate {
                Some(Predicate::Child { name: c }) => c == name,
                Some(Predicate::ChildAttr { child, attr, cmp }) => {
                    child == name
                        && match ev.attribute(attr) {
                            None => false,
                            Some(v) => cmp.as_ref().is_none_or(|c| c.eval(v)),
                        }
                }
                _ => false,
            })
            .collect();
        // Only the direct parent's children count.
        let parent_id = self.stack.last().map(|f| f.id);
        let mut dirty = false;
        for (eid, s) in witnesses {
            if Some(eid) == parent_id {
                if let Some(f @ None) = self.flags.get_mut(&(eid, s)) {
                    *f = Some(true);
                    dirty = true;
                }
            }
        }
        self.stack.push(OpenElem {
            id,
            name: *name,
            matched_steps,
        });
        if dirty {
            self.rescan();
        }
    }

    fn on_text(&mut self, ev: &SaxEvent) {
        let SaxEvent::Text { text, .. } = ev else {
            unreachable!()
        };
        let top_idx = self.stack.len() - 1;
        let mut dirty = false;
        // Own-text and child-text witnesses.
        for fi in [Some(top_idx), top_idx.checked_sub(1)]
            .into_iter()
            .flatten()
        {
            let (eid, steps): (ElemId, Vec<usize>) = {
                let f = &self.stack[fi];
                (f.id, f.matched_steps.clone())
            };
            for s in steps {
                let sat = match (&self.query.steps[s].predicate, fi == top_idx) {
                    (Some(Predicate::Text { cmp }), true) => {
                        cmp.as_ref().is_none_or(|c| c.eval(text))
                    }
                    (Some(Predicate::ChildText { child, cmp }), false) => {
                        child == &self.stack[top_idx].name && cmp.eval(text)
                    }
                    _ => false,
                };
                if sat {
                    if let Some(f @ None) = self.flags.get_mut(&(eid, s)) {
                        *f = Some(true);
                        dirty = true;
                    }
                }
            }
        }

        // Buffer a potential result: the top element matches the final
        // step along at least one chain.
        let n = self.query.steps.len();
        if self.stack[top_idx].matched_steps.contains(&(n - 1)) {
            let chains = self.collect_chains(top_idx, n - 1);
            if !chains.is_empty() {
                self.buffer.push(BufferedItem {
                    value: text.clone(),
                    chains,
                    emitted: false,
                    dropped: false,
                });
                self.peak_buffer = self
                    .peak_buffer
                    .max(self.buffer.len() - self.emit_cursor.min(self.buffer.len()));
            }
        }
        if dirty {
            self.rescan();
        }
    }

    /// All structural chains (element ids per step) ending with the
    /// element at stack index `fi` matching step `s`.
    fn collect_chains(&self, fi: usize, s: usize) -> Vec<Vec<ElemId>> {
        if !self.stack[fi].matched_steps.contains(&s) {
            return Vec::new();
        }
        if s == 0 {
            return vec![vec![self.stack[fi].id]];
        }
        let mut out = Vec::new();
        let parents: Vec<usize> = match self.query.steps[s].axis {
            Axis::Child => fi.checked_sub(1).into_iter().collect(),
            Axis::Closure => (0..fi).collect(),
            _ => Vec::new(), // reverse axes are rejected at run entry
        };
        for p in parents {
            for mut chain in self.collect_chains(p, s - 1) {
                chain.push(self.stack[fi].id);
                out.push(chain);
            }
        }
        out
    }

    fn on_end(&mut self) {
        // Undecided predicates on the closing element become false —
        // and the naive method rescans the buffer to apply it.
        let closed = self.stack.pop().expect("balanced");
        let mut dirty = false;
        for &s in &closed.matched_steps {
            if let Some(f @ None) = self.flags.get_mut(&(closed.id, s)) {
                *f = Some(false);
                dirty = true;
            }
        }
        if dirty || !closed.matched_steps.is_empty() {
            self.rescan();
        }
    }

    /// The §3.1 cost: walk the *entire* buffer re-evaluating every item's
    /// chains against the flag table.
    fn rescan(&mut self) {
        for item in &mut self.buffer[self.emit_cursor..] {
            self.rescan_work += 1;
            if item.emitted || item.dropped {
                continue;
            }
            let mut any_possible = false;
            let mut any_true = false;
            for chain in &item.chains {
                let mut all_true = true;
                let mut possible = true;
                for (s, &eid) in chain.iter().enumerate() {
                    match self.flags.get(&(eid, s)).copied().flatten() {
                        Some(true) => {}
                        Some(false) => {
                            all_true = false;
                            possible = false;
                            break;
                        }
                        None => all_true = false,
                    }
                }
                any_true |= all_true;
                any_possible |= possible;
            }
            if any_true {
                item.emitted = true;
            } else if !any_possible {
                item.dropped = true;
            }
        }
        // Emit in document order from the front.
        while let Some(item) = self.buffer.get_mut(self.emit_cursor) {
            if item.emitted {
                self.results.push(std::mem::take(&mut item.value));
                self.emit_cursor += 1;
            } else if item.dropped {
                self.emit_cursor += 1;
            } else {
                break;
            }
        }
    }
}

/// The §3.1 naive engine as a study participant (ablation baseline).
#[derive(Debug, Default)]
pub struct NaiveFlags;

impl NaiveFlags {
    /// Run and also report the rescan work counter (ablation metric).
    pub fn run_counting(
        &self,
        query: &str,
        document: &[u8],
    ) -> Result<(Vec<String>, u64), Box<dyn std::error::Error>> {
        let q = parse_query(query)?;
        if q.output != Output::Text {
            return Err(Box::new(Unsupported(
                "naive baseline supports text() output only".into(),
            )));
        }
        if let Some(feature) = q.extended_feature() {
            return Err(Box::new(Unsupported(format!(
                "naive baseline implements the Fig. 3 subset only (query uses {feature})"
            ))));
        }
        let mut run = NaiveRun::new(&q);
        let mut parser = StreamParser::new(document);
        while let Some(ev) = parser.next_event()? {
            match &ev {
                SaxEvent::Begin { .. } => run.on_begin(&ev),
                SaxEvent::Text { .. } => run.on_text(&ev),
                SaxEvent::End { .. } => run.on_end(),
                _ => {}
            }
        }
        run.rescan();
        Ok((run.results, run.rescan_work))
    }
}

impl XPathEngine for NaiveFlags {
    fn name(&self) -> &'static str {
        "Naive-flags"
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            language: "XPath",
            streaming: true,
            multiple_predicates: true,
            closures: true,
            aggregation: false,
            buffered_predicate_eval: true,
        }
    }

    fn run(&self, query: &str, document: &[u8]) -> Result<RunReport, Box<dyn std::error::Error>> {
        let t0 = Instant::now();
        let (results, work) = self.run_counting(query, document)?;
        Ok(RunReport {
            results,
            timings: PhaseTimings {
                compile: std::time::Duration::ZERO,
                preprocess: std::time::Duration::ZERO,
                query: t0.elapsed(),
            },
            memory: MemoryStats {
                peak_items: work,
                ..Default::default()
            },
            events: 0,
            engine: self.name().to_string(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn both(q: &str, doc: &str) -> (Vec<String>, Vec<String>) {
        let naive = NaiveFlags.run(q, doc.as_bytes()).unwrap().results;
        let xsq = xsq_core::evaluate(q, doc.as_bytes()).unwrap();
        (naive, xsq)
    }

    #[test]
    fn agrees_with_xsq_on_buffered_predicates() {
        let doc = "<pub><book><name>First</name><price>10</price></book>\
                   <book><name>Second</name><price>14</price></book>\
                   <year>2002</year></pub>";
        for q in [
            "/pub[year=2002]/book[price<11]/name/text()",
            "/pub/book/name/text()",
            "//book[price<11]/name/text()",
        ] {
            let (naive, xsq) = both(q, doc);
            assert_eq!(naive, xsq, "{q}");
        }
    }

    #[test]
    fn agrees_on_recursive_closures() {
        let doc = "<root><pub><book><name>X</name><author>A</author></book>\
                   <book><name>Y</name><pub><book><name>Z</name><author>B</author></book>\
                   <year>1999</year></pub></book><year>2002</year></pub></root>";
        let (naive, xsq) = both("//pub[year=2002]//book[author]//name/text()", doc);
        assert_eq!(naive, xsq);
        assert_eq!(naive, ["X", "Z"]);
    }

    #[test]
    fn rescan_work_grows_superlinearly_with_buffered_items() {
        // Buffering N items with the deciding element at the end: the
        // naive method's rescan work is Ω(N²) while XSQ touches each item
        // O(1) times.
        let mk = |n: usize| {
            let mut doc = String::from("<r><g>");
            for i in 0..n {
                doc.push_str(&format!("<v>{i}</v>"));
            }
            doc.push_str("<k>1</k></g></r>");
            doc
        };
        let q = "/r/g[k=1]/v/text()";
        let (_, w1) = NaiveFlags.run_counting(q, mk(50).as_bytes()).unwrap();
        let (_, w2) = NaiveFlags.run_counting(q, mk(200).as_bytes()).unwrap();
        // 4× items → ≳10× work (quadratic-ish).
        assert!(w2 > w1 * 8, "work {w1} -> {w2}");
        // And the results are still right.
        let (results, _) = NaiveFlags.run_counting(q, mk(5).as_bytes()).unwrap();
        assert_eq!(results, ["0", "1", "2", "3", "4"]);
    }

    #[test]
    fn rejects_unsupported_outputs() {
        assert!(NaiveFlags.run("/a/b", b"<a/>").is_err());
        assert!(NaiveFlags.run("/a/b/count()", b"<a/>").is_err());
    }

    #[test]
    fn order_sensitivity_matches_xsq() {
        let early = "<r><g><k>1</k><v>x</v></g></r>";
        let late = "<r><g><v>x</v><k>1</k></g></r>";
        for doc in [early, late] {
            let (naive, xsq) = both("/r/g[k=1]/v/text()", doc);
            assert_eq!(naive, xsq);
            assert_eq!(naive, ["x"]);
        }
    }
}
