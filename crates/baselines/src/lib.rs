//! # xsq-baselines — the comparison systems of the XSQ study
//!
//! Clean-room reimplementations of the *evaluation strategies* of the
//! systems the paper benchmarks against (§5, Fig. 14):
//!
//! | Module | Stands in for | Strategy |
//! |---|---|---|
//! | [`dom::SaxonLike`] | Saxon (XSLT) | DOM materialization + set-at-a-time evaluation |
//! | [`dom::GalaxLike`] | Galax (XQuery) | DOM materialization + direct-semantics backtracking |
//! | [`xqengine::XqEngineLike`] | XQEngine | full-text/tag index preprocessing, 32K-element limit |
//! | [`lazydfa::XmltkLike`] | XMLTK | lazy DFA, paths without predicates |
//! | [`stx::JoostLike`] | Joost (STX) | one pass, forward-only predicate flags, no buffering |
//! | [`naive::NaiveFlags`] | the §3.1 strawman | per-item predicate flags + whole-buffer rescans (ablation) |
//! | [`filter::XFilterLike`] / [`filter::YFilterLike`] | XFilter / YFilter | NFA document filtering (ids only) |
//!
//! All engines implement [`xsq_core::XPathEngine`] (except the filters,
//! which answer a different question), report Fig. 18-style phase
//! timings, and account their memory the way Figs. 19–20 need: resident
//! structure for DOM/index engines, transient automaton/buffer state for
//! the streaming ones.
//!
//! The DOM evaluators double as the **differential oracle** for XSQ: they
//! consume the same SAX events, implement the same XPath subset
//! semantics, and return results in the same (document) order.

pub mod dom;
pub mod filter;
pub mod lazydfa;
pub mod naive;
pub mod stx;
pub mod xqengine;

pub use dom::{GalaxLike, SaxonLike};
pub use filter::{XFilterLike, YFilterLike};
pub use lazydfa::XmltkLike;
pub use naive::NaiveFlags;
pub use stx::JoostLike;
pub use xqengine::XqEngineLike;

/// Every study participant that implements the uniform engine interface,
/// in the paper's Fig. 14 order.
pub fn all_engines() -> Vec<Box<dyn xsq_core::XPathEngine>> {
    vec![
        Box::new(xsq_core::XsqF),
        Box::new(xsq_core::XsqNc),
        Box::new(XmltkLike),
        Box::new(SaxonLike),
        Box::new(XqEngineLike),
        Box::new(GalaxLike),
        Box::new(JoostLike),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_engines_lists_seven_systems() {
        let engines = all_engines();
        assert_eq!(engines.len(), 7);
        let names: Vec<&str> = engines.iter().map(|e| e.name()).collect();
        assert_eq!(
            names,
            ["XSQ-F", "XSQ-NC", "XMLTK", "Saxon", "XQEngine", "Galax", "Joost"]
        );
    }

    #[test]
    fn capable_engines_agree_on_a_simple_path() {
        let doc = b"<a><b>one</b><c><b>nope</b></c><b>two</b></a>";
        let expected = ["one", "two"];
        for engine in all_engines() {
            let r = engine.run("/a/b/text()", doc).unwrap();
            assert_eq!(r.results, expected, "{} disagrees", engine.name());
        }
    }
}
