//! XMLTK-like engine: lazily determinized finite automaton over tag
//! symbols (Green et al., "Processing XML streams with Deterministic
//! Automata"; the study's XMLTK).
//!
//! The location path (no predicates!) is an NFA whose state `i` means "i
//! steps matched"; closure steps add self-loops. At runtime the engine
//! runs the *determinized* automaton, constructing DFA states lazily as
//! tag combinations actually occur — the paper's trade-off: higher
//! throughput from determinism, more memory for the growing DFA. A stack
//! of DFA states mirrors the element stack (push on begin, pop on end).
//!
//! Predicates are not supported, exactly as in the study (Fig. 19's
//! XMLTK query drops the `[author]` predicate).

use std::collections::HashMap;
use std::time::Instant;

use xsq_core::{Capabilities, MemoryStats, PhaseTimings, RunReport, Unsupported, XPathEngine};
use xsq_xml::{SaxEvent, StreamParser};
use xsq_xpath::{parse_query, AggFunc, Axis, NodeTest, Output, Query};

/// A lazily built DFA for one location path.
struct LazyDfa {
    /// Step tests, in order. `None` = wildcard.
    tests: Vec<(Option<String>, Axis)>,
    /// NFA state sets per DFA state (bit `i` = "i steps matched").
    states: Vec<u64>,
    /// Interning map for DFA states.
    index: HashMap<u64, usize>,
    /// Lazy transition cache: (DFA state, tag) → DFA state.
    transitions: HashMap<(usize, String), usize>,
}

impl LazyDfa {
    fn new(query: &Query) -> Result<Self, Unsupported> {
        if query.has_predicates() {
            return Err(Unsupported(
                "XMLTK evaluates location paths without predicates".into(),
            ));
        }
        if query.steps.len() > 62 {
            return Err(Unsupported("paths longer than 62 steps".into()));
        }
        if query.has_reverse_axis() {
            return Err(Unsupported(
                "XMLTK evaluates forward paths only (no reverse axes)".into(),
            ));
        }
        let tests = query
            .steps
            .iter()
            .map(|s| {
                let name = match &s.test {
                    NodeTest::Name(n) => Some(n.clone()),
                    NodeTest::Wildcard => None,
                };
                (name, s.axis)
            })
            .collect();
        let mut dfa = LazyDfa {
            tests,
            states: Vec::new(),
            index: HashMap::new(),
            transitions: HashMap::new(),
        };
        dfa.intern(1); // {0}: nothing matched yet
        Ok(dfa)
    }

    fn intern(&mut self, set: u64) -> usize {
        if let Some(&i) = self.index.get(&set) {
            return i;
        }
        let i = self.states.len();
        self.states.push(set);
        self.index.insert(set, i);
        i
    }

    /// Lazy transition: from DFA state `s` on tag `tag`.
    fn step(&mut self, s: usize, tag: &str) -> usize {
        if let Some(&t) = self.transitions.get(&(s, tag.to_string())) {
            return t;
        }
        let set = self.states[s];
        let mut next = 0u64;
        let n = self.tests.len();
        for i in 0..n {
            if set & (1 << i) == 0 {
                continue;
            }
            let (name, axis) = &self.tests[i];
            if name.as_deref().is_none_or(|t| t == tag) {
                next |= 1 << (i + 1);
            }
            // A pending closure step keeps searching below any element.
            if *axis == Axis::Closure {
                next |= 1 << i;
            }
        }
        // A full match keeps propagating below only through trailing
        // closure semantics; matched-state bit does not survive descent
        // (a result element's descendants are not results unless the NFA
        // re-derives them, which closure self-loops above already do).
        let t = self.intern(next);
        self.transitions.insert((s, tag.to_string()), t);
        t
    }

    fn accepting(&self, s: usize) -> bool {
        self.states[s] & (1 << self.tests.len()) != 0
    }

    /// Memory held by the lazily built automaton: interned state sets
    /// plus the transition cache (the XMLTK trade-off of §5).
    fn memory_bytes(&self) -> u64 {
        let per_state = std::mem::size_of::<u64>() + 32;
        let per_transition: usize = 48;
        (self.states.len() * per_state + self.transitions.len() * per_transition) as u64
    }
}

/// The XMLTK-like study participant.
#[derive(Debug, Default)]
pub struct XmltkLike;

impl XPathEngine for XmltkLike {
    fn name(&self) -> &'static str {
        "XMLTK"
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            language: "XPath",
            streaming: true,
            multiple_predicates: false,
            closures: true,
            aggregation: false,
            buffered_predicate_eval: false,
        }
    }

    fn run(&self, query: &str, document: &[u8]) -> Result<RunReport, Box<dyn std::error::Error>> {
        let t0 = Instant::now();
        let q = parse_query(query)?;
        if matches!(
            q.output,
            Output::Aggregate(AggFunc::Sum)
                | Output::Aggregate(AggFunc::Avg)
                | Output::Aggregate(AggFunc::Min)
                | Output::Aggregate(AggFunc::Max)
        ) {
            return Err(Box::new(Unsupported("XMLTK has no aggregation".into())));
        }
        let mut dfa = LazyDfa::new(&q)?;
        let compile = t0.elapsed();

        let t1 = Instant::now();
        let mut parser = StreamParser::new(document);
        let mut results: Vec<String> = Vec::new();
        let mut count: u64 = 0;
        // Stack of DFA states; parallel stack of "accepting" flags.
        let mut stack: Vec<usize> = vec![0];
        let mut accept_stack: Vec<bool> = vec![false];
        // Open whole-element captures: (start depth, buffer).
        let mut captures: Vec<(u32, String)> = Vec::new();
        let mut events = 0u64;
        let mut peak_capture_bytes = 0u64;
        while let Some(ev) = parser.next_event()? {
            events += 1;
            // Feed open captures first (they include everything until
            // their end tag).
            if !captures.is_empty() {
                for (_, buf) in captures.iter_mut() {
                    xsq_xml::writer::write_event_into(&ev, buf);
                }
                peak_capture_bytes =
                    peak_capture_bytes.max(captures.iter().map(|(_, b)| b.len() as u64).sum());
            }
            match &ev {
                SaxEvent::Begin { name, depth, .. } => {
                    let s = *stack.last().expect("stack never empty");
                    let t = dfa.step(s, name.as_str());
                    let acc = dfa.accepting(t);
                    stack.push(t);
                    accept_stack.push(acc);
                    if acc {
                        match &q.output {
                            Output::Attr(a) => {
                                if let Some(v) = ev.attribute(a) {
                                    results.push(v.to_string());
                                }
                            }
                            Output::Aggregate(AggFunc::Count) => count += 1,
                            Output::Element => {
                                let mut buf = String::new();
                                xsq_xml::writer::write_event_into(&ev, &mut buf);
                                captures.push((*depth, buf));
                            }
                            _ => {}
                        }
                    }
                }
                SaxEvent::End { depth, .. } => {
                    stack.pop();
                    accept_stack.pop();
                    // Close captures opened at this depth.
                    while let Some(&(d, _)) = captures.last() {
                        if d == *depth {
                            let (_, buf) = captures.pop().expect("checked");
                            results.push(buf);
                        } else {
                            break;
                        }
                    }
                }
                SaxEvent::Text { text, .. }
                    if q.output == Output::Text && *accept_stack.last().expect("nonempty") =>
                {
                    results.push(text.clone());
                }
                _ => {}
            }
        }
        if q.output == Output::Aggregate(AggFunc::Count) {
            results.push(count.to_string());
        }
        let query_time = t1.elapsed();
        Ok(RunReport {
            results,
            timings: PhaseTimings {
                compile,
                preprocess: std::time::Duration::ZERO,
                query: query_time,
            },
            memory: MemoryStats {
                peak_bytes: dfa.memory_bytes() + peak_capture_bytes,
                ..Default::default()
            },
            events,
            engine: self.name().to_string(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_path() {
        let r = XmltkLike
            .run("/a/b/text()", b"<a><b>x</b><c><b>no</b></c></a>")
            .unwrap();
        assert_eq!(r.results, ["x"]);
    }

    #[test]
    fn closure_path_matches_xsq() {
        let doc = b"<a><b>1</b><c><b>2</b><d><b>3</b></d></c></a>";
        let r = XmltkLike.run("//b/text()", doc).unwrap();
        let xsq = xsq_core::evaluate("//b/text()", doc).unwrap();
        assert_eq!(r.results, xsq);
    }

    #[test]
    fn nested_closure_matches() {
        let doc = b"<a><b><b>x</b></b></a>";
        let r = XmltkLike.run("//b/text()", doc).unwrap();
        assert_eq!(r.results, ["x"]); // only inner b has direct text
        let r = XmltkLike.run("//b", doc).unwrap();
        assert_eq!(r.results, ["<b>x</b>", "<b><b>x</b></b>"]);
    }

    #[test]
    fn rejects_predicates() {
        assert!(XmltkLike.run("/a[b]/c/text()", b"<a/>").is_err());
    }

    #[test]
    fn count_output() {
        let r = XmltkLike
            .run("//b/count()", b"<a><b/><c><b/></c></a>")
            .unwrap();
        assert_eq!(r.results, ["2"]);
    }

    #[test]
    fn attribute_output() {
        let r = XmltkLike
            .run("//b/@id", br#"<a><b id="1"/><b/><b id="2"/></a>"#)
            .unwrap();
        assert_eq!(r.results, ["1", "2"]);
    }

    #[test]
    fn dfa_grows_lazily() {
        let doc = b"<a><b/><c/><d/></a>";
        let r = XmltkLike.run("/a/b/text()", doc).unwrap();
        assert!(r.memory.peak_bytes > 0);
    }

    #[test]
    fn wildcard_path() {
        let r = XmltkLike
            .run("/a/*/text()", b"<a><x>1</x><y>2</y></a>")
            .unwrap();
        assert_eq!(r.results, ["1", "2"]);
    }
}
