//! XQEngine-like engine: full-text-indexed, collection-oriented querying.
//!
//! The study's XQEngine "must preprocess a document collection to create a
//! full-text index that is used in query processing" and "currently
//! supports only 32K elements per document" (Fig. 19, note 2). This
//! stand-in reproduces both characteristics: preprocessing builds a DOM
//! plus a tag index and an inverted term index (that is where its time
//! and memory go — Figs. 18 and 19), evaluation then starts from the
//! index instead of scanning, and documents beyond 32 768 elements are
//! rejected.

use std::collections::{BTreeSet, HashMap};
use std::time::Instant;

use xsq_core::{Capabilities, MemoryStats, PhaseTimings, RunReport, Unsupported, XPathEngine};
use xsq_xpath::{parse_query, Axis, NodeTest, Query};

use crate::dom::eval::{apply_output, predicate_holds};
use crate::dom::tree::{Document, NodeId, NodeKind};

/// The 32K-elements-per-document limit of the real system.
pub const MAX_ELEMENTS: usize = 32 * 1024;

/// Preprocessed document: tree plus indexes.
pub struct IndexedDocument {
    pub doc: Document,
    /// tag → element node ids (document order).
    pub tag_index: HashMap<String, Vec<NodeId>>,
    /// term → element ids whose direct text contains the term (the
    /// full-text index the real system queries keywords against).
    pub term_index: HashMap<String, Vec<NodeId>>,
    pub index_bytes: u64,
}

impl IndexedDocument {
    pub fn build(input: &[u8]) -> Result<IndexedDocument, Box<dyn std::error::Error>> {
        let doc = Document::parse(input)?;
        if doc.element_count > MAX_ELEMENTS {
            return Err(Box::new(Unsupported(format!(
                "XQEngine supports only {MAX_ELEMENTS} elements per document ({} found)",
                doc.element_count
            ))));
        }
        let mut tag_index: HashMap<String, Vec<NodeId>> = HashMap::new();
        let mut term_index: HashMap<String, Vec<NodeId>> = HashMap::new();
        for (id, node) in doc.nodes.iter().enumerate() {
            match &node.kind {
                NodeKind::Element { name, .. } => {
                    tag_index.entry(name.clone()).or_default().push(id);
                }
                NodeKind::Text(t) => {
                    if let Some(parent) = node.parent {
                        for term in t.split_whitespace().take(32) {
                            let term = term.to_lowercase();
                            let postings = term_index.entry(term).or_default();
                            if postings.last() != Some(&parent) {
                                postings.push(parent);
                            }
                        }
                    }
                }
            }
        }
        let index_bytes: u64 = tag_index
            .iter()
            .chain(term_index.iter())
            .map(|(k, v)| (k.len() + v.len() * std::mem::size_of::<NodeId>() + 48) as u64)
            .sum();
        Ok(IndexedDocument {
            doc,
            tag_index,
            term_index,
            index_bytes,
        })
    }

    /// Evaluate by candidate generation from the tag index: fetch the
    /// last step's candidates, then verify the remaining path upward.
    pub fn evaluate(&self, query: &Query) -> Vec<String> {
        let last = query.steps.last().expect("nonempty query");
        let candidates: Vec<NodeId> = match &last.test {
            NodeTest::Name(n) => self.tag_index.get(n).cloned().unwrap_or_default(),
            NodeTest::Wildcard => self.tag_index.values().flatten().copied().collect(),
        };
        let mut matched: BTreeSet<NodeId> = BTreeSet::new();
        for c in candidates {
            if self.verify(c, query, query.steps.len() - 1) {
                matched.insert(c);
            }
        }
        apply_output(&self.doc, &matched, &query.output)
    }

    fn verify(&self, e: NodeId, query: &Query, i: usize) -> bool {
        let step = &query.steps[i];
        let node = self.doc.node(e);
        if !step.test.matches(node.name().expect("element")) || !predicate_holds(&self.doc, e, step)
        {
            return false;
        }
        match (i, step.axis) {
            (0, Axis::Child) => node.parent.is_none(),
            (0, Axis::Closure) => true,
            (_, Axis::Parent | Axis::Ancestor | Axis::PrecedingSibling) => false,
            (_, Axis::Child) => node.parent.is_some_and(|p| self.verify(p, query, i - 1)),
            (_, Axis::Closure) => {
                let mut a = node.parent;
                while let Some(p) = a {
                    if self.verify(p, query, i - 1) {
                        return true;
                    }
                    a = self.doc.node(p).parent;
                }
                false
            }
        }
    }

    /// Keyword lookup against the full-text index (the real system's
    /// primary mode). Returns element ids whose text contains `term`.
    pub fn keyword(&self, term: &str) -> &[NodeId] {
        self.term_index
            .get(&term.to_lowercase())
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }
}

/// The XQEngine-like study participant.
#[derive(Debug, Default)]
pub struct XqEngineLike;

impl XPathEngine for XqEngineLike {
    fn name(&self) -> &'static str {
        "XQEngine"
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            language: "XQuery",
            streaming: false,
            multiple_predicates: true,
            closures: true,
            aggregation: true,
            buffered_predicate_eval: true,
        }
    }

    fn run(&self, query: &str, document: &[u8]) -> Result<RunReport, Box<dyn std::error::Error>> {
        let t0 = Instant::now();
        let q = parse_query(query)?;
        let compile = t0.elapsed();
        let t1 = Instant::now();
        let indexed = IndexedDocument::build(document)?;
        let preprocess = t1.elapsed();
        let t2 = Instant::now();
        let results = indexed.evaluate(&q);
        let query_time = t2.elapsed();
        Ok(RunReport {
            results,
            timings: PhaseTimings {
                compile,
                preprocess,
                query: query_time,
            },
            memory: MemoryStats {
                resident_structure_bytes: indexed.doc.estimated_bytes + indexed.index_bytes,
                ..Default::default()
            },
            events: 0,
            engine: self.name().to_string(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DOC: &[u8] = br#"<pub><book><name>Alpha Beta</name><author>A</author></book>
        <book><name>Gamma</name></book><year>2002</year></pub>"#;

    #[test]
    fn index_eval_matches_xsq() {
        let q = "/pub[year=2002]/book[author]/name/text()";
        let r = XqEngineLike.run(q, DOC).unwrap();
        let xsq = xsq_core::evaluate(q, DOC).unwrap();
        assert_eq!(r.results, xsq);
    }

    #[test]
    fn preprocessing_builds_indexes_with_cost() {
        let r = XqEngineLike.run("/pub/book/name/text()", DOC).unwrap();
        assert!(r.timings.preprocess > std::time::Duration::ZERO);
        assert!(r.memory.resident_structure_bytes > DOC.len() as u64);
    }

    #[test]
    fn keyword_index_finds_terms() {
        let indexed = IndexedDocument::build(DOC).unwrap();
        assert_eq!(indexed.keyword("alpha").len(), 1);
        assert_eq!(indexed.keyword("gamma").len(), 1);
        assert!(indexed.keyword("absent").is_empty());
    }

    #[test]
    fn element_limit_is_enforced() {
        let mut doc = String::from("<r>");
        for _ in 0..(MAX_ELEMENTS + 1) {
            doc.push_str("<e/>");
        }
        doc.push_str("</r>");
        let err = XqEngineLike.run("/r/e/count()", doc.as_bytes());
        assert!(err.is_err());
    }

    #[test]
    fn missing_tag_returns_immediately_empty() {
        // The paper notes XQEngine returns the empty set immediately when
        // a queried tag is absent — candidate generation from the tag
        // index reproduces that.
        let r = XqEngineLike.run("/pub/missing/text()", DOC).unwrap();
        assert!(r.results.is_empty());
    }
}
