//! Joost-like engine: Simple Transformations for XML (STX).
//!
//! STX "uses boolean program variables to store the results of each
//! predicate … For any element in an XML stream, only the data that
//! *precedes* it can be used to determine the actions on the element"
//! (paper, §5). This stand-in reproduces that design point faithfully:
//!
//! * one forward pass, no buffering of potential results;
//! * per-open-element predicate flags, set the moment a witness arrives;
//! * a value is emitted iff, **at the instant it appears**, some match
//!   chain has every predicate flag already true.
//!
//! Consequently it agrees with XSQ on documents where predicates are
//! satisfied before the data they gate (e.g. `<year>` first), and misses
//! results otherwise — the simplification the paper contrasts against
//! Examples 1 and 2. The ordering experiment (Fig. 21) exercises exactly
//! this.

use std::time::Instant;

use xsq_core::{Capabilities, MemoryStats, PhaseTimings, RunReport, XPathEngine};
use xsq_xml::{SaxEvent, StreamParser, Sym};
use xsq_xpath::{parse_query, AggFunc, Axis, Output, Predicate, Query};

/// One open element on the stack.
struct Frame {
    name: Sym,
    /// `matched[i]` = Some(flag): this element matches steps `0..=i` of
    /// the location path structurally; `flag` = predicate of step `i`
    /// known satisfied (from preceding data only).
    matched: Vec<Option<bool>>,
    /// Open whole-element capture (only if the chain was true at begin).
    capture: Option<String>,
}

/// The Joost-like study participant.
#[derive(Debug, Default)]
pub struct JoostLike;

struct StxRun<'q> {
    query: &'q Query,
    stack: Vec<Frame>,
    results: Vec<String>,
    count: u64,
    sum: f64,
    peak_stack: usize,
}

impl<'q> StxRun<'q> {
    fn new(query: &'q Query) -> Self {
        StxRun {
            query,
            stack: Vec::new(),
            results: Vec::new(),
            count: 0,
            sum: 0.0,
            peak_stack: 0,
        }
    }

    /// Is there a chain `f0 … fk` of stack frames ending at `frame_idx`
    /// with all structural matches and all predicate flags true up to
    /// step `step`?
    fn chain_true(&self, frame_idx: usize, step: usize) -> bool {
        let frame = &self.stack[frame_idx];
        match frame.matched[step] {
            Some(true) => {}
            _ => return false,
        }
        if step == 0 {
            return true;
        }
        match self.query.steps[step].axis {
            Axis::Child => frame_idx > 0 && self.chain_true(frame_idx - 1, step - 1),
            Axis::Closure => (0..frame_idx).any(|j| self.chain_true(j, step - 1)),
            _ => false, // reverse axes are rejected at run entry
        }
    }

    fn on_begin(&mut self, ev: &SaxEvent) {
        let SaxEvent::Begin { name, depth, .. } = ev else {
            unreachable!()
        };
        let (name, depth) = (*name, *depth);
        let n = self.query.steps.len();
        let mut matched = vec![None; n];
        for (i, step) in self.query.steps.iter().enumerate() {
            if !step.test.matches(name.as_str()) {
                continue;
            }
            let structurally = if i == 0 {
                match step.axis {
                    Axis::Child => depth == 1,
                    Axis::Closure => true,
                    _ => false, // reverse axes are rejected at run entry
                }
            } else {
                match step.axis {
                    Axis::Child => self
                        .stack
                        .last()
                        .is_some_and(|p| p.matched[i - 1].is_some()),
                    Axis::Closure => self.stack.iter().any(|f| f.matched[i - 1].is_some()),
                    _ => false, // reverse axes are rejected at run entry
                }
            };
            if !structurally {
                continue;
            }
            // Predicate flags decidable at begin time: attribute tests
            // and "no predicate".
            let flag = match &step.predicate {
                None => true,
                Some(Predicate::Attr { name: a, cmp }) => match ev.attribute(a) {
                    None => false,
                    Some(v) => cmp.as_ref().is_none_or(|c| c.eval(v)),
                },
                _ => false, // awaits a witness from later (preceding the use)
            };
            matched[i] = Some(flag);
        }

        // This begin event may *witness* predicates on the parent frame
        // (child-existence and child-attribute categories) — forward-only:
        // it benefits later values, never earlier ones.
        if let Some(parent) = self.stack.last_mut() {
            for (i, step) in self.query.steps.iter().enumerate() {
                let witness = match &step.predicate {
                    Some(Predicate::Child { name: c }) => c == &name,
                    Some(Predicate::ChildAttr { child, attr, cmp }) => {
                        child == &name
                            && match ev.attribute(attr) {
                                None => false,
                                Some(v) => cmp.as_ref().is_none_or(|c| c.eval(v)),
                            }
                    }
                    _ => false,
                };
                if witness {
                    if let Some(flag) = &mut parent.matched[i] {
                        *flag = true;
                    }
                }
            }
        }

        self.stack.push(Frame {
            name,
            matched,
            capture: None,
        });
        self.peak_stack = self.peak_stack.max(self.stack.len());

        // Value productions anchored at begin events.
        let last = self.stack.len() - 1;
        let final_step = n - 1;
        if self.stack[last].matched[final_step].is_some() && self.chain_true(last, final_step) {
            match &self.query.output {
                Output::Attr(a) => {
                    if let Some(v) = ev.attribute(a) {
                        self.results.push(v.to_string());
                    }
                }
                Output::Aggregate(AggFunc::Count) => self.count += 1,
                Output::Element => {
                    let mut buf = String::new();
                    xsq_xml::writer::write_event_into(ev, &mut buf);
                    self.stack[last].capture = Some(buf);
                }
                _ => {}
            }
        }
    }

    fn on_text(&mut self, ev: &SaxEvent) {
        let SaxEvent::Text { text, .. } = ev else {
            unreachable!()
        };
        let n = self.query.steps.len();
        // Witness text predicates: the top frame's own-text test and the
        // parent frame's child-text test.
        let top = self.stack.len() - 1;
        for (i, step) in self.query.steps.iter().enumerate() {
            if let Some(Predicate::Text { cmp }) = &step.predicate {
                if cmp.as_ref().is_none_or(|c| c.eval(text)) {
                    if let Some(flag) = &mut self.stack[top].matched[i] {
                        *flag = true;
                    }
                }
            }
            if top > 0 {
                if let Some(Predicate::ChildText { child, cmp }) = &step.predicate {
                    if child == &self.stack[top].name && cmp.eval(text) {
                        if let Some(flag) = &mut self.stack[top - 1].matched[i] {
                            *flag = true;
                        }
                    }
                }
            }
        }
        // Value productions anchored at text events.
        if self.stack[top].matched[n - 1].is_some() && self.chain_true(top, n - 1) {
            match &self.query.output {
                Output::Text => self.results.push(text.clone()),
                Output::Aggregate(AggFunc::Sum) => {
                    self.sum += xsq_xpath::value::str_to_number(text);
                }
                _ => {}
            }
        }
        // Feed open captures.
        self.append_captures(ev);
    }

    fn append_captures(&mut self, ev: &SaxEvent) {
        let skip_top_begin = ev.is_begin();
        let len = self.stack.len();
        for (i, f) in self.stack.iter_mut().enumerate() {
            // The newly pushed frame already serialized its own begin tag.
            if skip_top_begin && i == len - 1 {
                continue;
            }
            if let Some(buf) = &mut f.capture {
                xsq_xml::writer::write_event_into(ev, buf);
            }
        }
    }

    fn on_end(&mut self, ev: &SaxEvent) {
        self.append_captures(ev);
        if let Some(frame) = self.stack.pop() {
            if let Some(buf) = frame.capture {
                self.results.push(buf);
            }
        }
    }

    fn finish(mut self) -> (Vec<String>, u64) {
        match self.query.output {
            Output::Aggregate(AggFunc::Count) => self.results.push(self.count.to_string()),
            Output::Aggregate(AggFunc::Sum) => self
                .results
                .push(xsq_xpath::value::canonical_number(self.sum)),
            _ => {}
        }
        (self.results, self.peak_stack as u64)
    }
}

impl XPathEngine for JoostLike {
    fn name(&self) -> &'static str {
        "Joost"
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            language: "STX",
            streaming: true,
            multiple_predicates: true,
            closures: true,
            aggregation: true,
            // The defining restriction: predicates use preceding data only.
            buffered_predicate_eval: false,
        }
    }

    fn run(&self, query: &str, document: &[u8]) -> Result<RunReport, Box<dyn std::error::Error>> {
        let t0 = Instant::now();
        let q = parse_query(query)?;
        if matches!(
            q.output,
            Output::Aggregate(AggFunc::Avg)
                | Output::Aggregate(AggFunc::Min)
                | Output::Aggregate(AggFunc::Max)
        ) {
            return Err(Box::new(xsq_core::report::Unsupported(
                "STX stand-in supports count() and sum() only".into(),
            )));
        }
        if let Some(feature) = q.extended_feature() {
            return Err(Box::new(xsq_core::report::Unsupported(format!(
                "STX stand-in implements the Fig. 3 subset only (query uses {feature})"
            ))));
        }
        let compile = t0.elapsed();
        let t1 = Instant::now();
        let mut run = StxRun::new(&q);
        let mut parser = StreamParser::new(document);
        let mut events = 0u64;
        while let Some(ev) = parser.next_event()? {
            events += 1;
            match &ev {
                SaxEvent::Begin { .. } => {
                    run.on_begin(&ev);
                    // Captures of *enclosing* frames receive this begin.
                    run.append_captures(&ev);
                }
                SaxEvent::Text { .. } => run.on_text(&ev),
                SaxEvent::End { .. } => run.on_end(&ev),
                _ => {}
            }
        }
        let (results, peak_stack) = run.finish();
        let query_time = t1.elapsed();
        Ok(RunReport {
            results,
            timings: PhaseTimings {
                compile,
                preprocess: std::time::Duration::ZERO,
                query: query_time,
            },
            memory: MemoryStats {
                peak_bytes: peak_stack * 64,
                ..Default::default()
            },
            events,
            engine: self.name().to_string(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn agrees_with_xsq_when_predicates_precede_values() {
        // year comes first: forward-only evaluation suffices.
        let doc = b"<pub><year>2002</year><book><author>A</author>\
                    <name>N</name></book></pub>";
        let q = "/pub[year=2002]/book[author]/name/text()";
        let stx = JoostLike.run(q, doc).unwrap().results;
        let xsq = xsq_core::evaluate(q, doc).unwrap();
        assert_eq!(stx, xsq);
        assert_eq!(stx, ["N"]);
    }

    #[test]
    fn misses_results_gated_by_later_data() {
        // year comes last: STX cannot retroactively release the name.
        let doc = b"<pub><book><author>A</author><name>N</name></book>\
                    <year>2002</year></pub>";
        let q = "/pub[year=2002]/book/name/text()";
        let stx = JoostLike.run(q, doc).unwrap().results;
        assert!(stx.is_empty(), "STX is forward-only");
        let xsq = xsq_core::evaluate(q, doc).unwrap();
        assert_eq!(xsq, ["N"]); // XSQ buffers and gets it right
    }

    #[test]
    fn closures_work() {
        let doc = b"<a><x><b>1</b></x><b>2</b></a>";
        let r = JoostLike.run("//b/text()", doc).unwrap();
        assert_eq!(r.results, ["1", "2"]);
    }

    #[test]
    fn attribute_predicates_are_immediate() {
        let doc = br#"<a><b id="1"><c>x</c></b><b><c>y</c></b></a>"#;
        let r = JoostLike.run("/a/b[@id]/c/text()", doc).unwrap();
        assert_eq!(r.results, ["x"]);
    }

    #[test]
    fn count_aggregation() {
        let r = JoostLike.run("//b/count()", b"<a><b/><b/></a>").unwrap();
        assert_eq!(r.results, ["2"]);
    }

    #[test]
    fn element_capture_when_chain_true_at_begin() {
        let doc = b"<a><ok/><b><c>x</c></b></a>";
        let r = JoostLike.run("/a[ok]/b", doc).unwrap();
        assert_eq!(r.results, ["<b><c>x</c></b>"]);
    }
}
