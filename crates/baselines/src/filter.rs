//! XFilter / YFilter-like document filters (§5 related work).
//!
//! Filtering systems answer a weaker question than XSQ: *does this
//! document match the expression at all?* — returning document
//! identifiers, never element contents, so they need no result buffering.
//!
//! * [`XFilterLike`] — one NFA per query, run independently.
//! * [`YFilterLike`] — many queries combined into a single prefix-sharing
//!   NFA (a trie over location steps), evaluated once per document; this
//!   is the YFilter idea of amortizing shared path prefixes across a
//!   workload of subscriptions.
//!
//! Like the originals, only structure is matched: predicates are not
//! supported ("such systems typically either do not handle predicates or
//! handle only predicates restricted to structural matching").

use std::collections::HashMap;

use xsq_core::report::Unsupported;
use xsq_xml::{SaxEvent, StreamParser};
use xsq_xpath::{parse_query, Axis, NodeTest, Query};

fn path_symbols(query: &Query) -> Result<Vec<(Option<String>, Axis)>, Unsupported> {
    if query.has_predicates() {
        return Err(Unsupported(
            "filtering systems match structure only (no predicates)".into(),
        ));
    }
    if query.has_reverse_axis() {
        return Err(Unsupported(
            "filtering systems match forward paths only (no reverse axes)".into(),
        ));
    }
    Ok(query
        .steps
        .iter()
        .map(|s| {
            let name = match &s.test {
                NodeTest::Name(n) => Some(n.clone()),
                NodeTest::Wildcard => None,
            };
            (name, s.axis)
        })
        .collect())
}

/// A single-query NFA filter (XFilter-like).
pub struct XFilterLike {
    steps: Vec<(Option<String>, Axis)>,
}

impl XFilterLike {
    pub fn compile(query: &str) -> Result<Self, Box<dyn std::error::Error>> {
        let q = parse_query(query)?;
        Ok(XFilterLike {
            steps: path_symbols(&q)?,
        })
    }

    /// Does the document contain at least one element matching the path?
    pub fn matches(&self, document: &[u8]) -> Result<bool, xsq_xml::Error> {
        let n = self.steps.len();
        let mut parser = StreamParser::new(document);
        // Stack of NFA state sets (bitmask over 0..=n).
        let mut stack: Vec<u64> = vec![1];
        while let Some(ev) = parser.next_event()? {
            match ev {
                SaxEvent::Begin { name, .. } => {
                    let set = *stack.last().expect("nonempty");
                    let mut next = 0u64;
                    for i in 0..n {
                        if set & (1 << i) == 0 {
                            continue;
                        }
                        let (pat, axis) = &self.steps[i];
                        if pat.as_deref().is_none_or(|p| p == name) {
                            next |= 1 << (i + 1);
                        }
                        if *axis == Axis::Closure {
                            next |= 1 << i;
                        }
                    }
                    if next & (1 << n) != 0 {
                        return Ok(true); // early exit on first match
                    }
                    stack.push(next);
                }
                SaxEvent::End { .. } => {
                    stack.pop();
                }
                _ => {}
            }
        }
        Ok(false)
    }
}

/// A shared NFA over many queries (YFilter-like): a trie whose edges are
/// location steps; each query's final step carries its id.
pub struct YFilterLike {
    /// Trie nodes: edges (symbol → node), closure flag of the *outgoing*
    /// step, and accepting query ids.
    nodes: Vec<TrieNode>,
}

#[derive(Default)]
struct TrieNode {
    /// (tag or None for `*`, closure?) → child node.
    edges: HashMap<(Option<String>, bool), usize>,
    /// Queries accepted when this node is reached.
    accepts: Vec<usize>,
}

impl YFilterLike {
    /// Combine a workload of path queries into one automaton.
    pub fn compile(queries: &[&str]) -> Result<Self, Box<dyn std::error::Error>> {
        let mut nodes = vec![TrieNode::default()];
        for (qid, q) in queries.iter().enumerate() {
            let parsed = parse_query(q)?;
            let steps = path_symbols(&parsed)?;
            let mut at = 0usize;
            for (name, axis) in steps {
                let key = (name, axis == Axis::Closure);
                at = match nodes[at].edges.get(&key) {
                    Some(&next) => next,
                    None => {
                        let next = nodes.len();
                        nodes.push(TrieNode::default());
                        nodes[at].edges.insert(key, next);
                        next
                    }
                };
            }
            nodes[at].accepts.push(qid);
        }
        Ok(YFilterLike { nodes })
    }

    /// Number of shared trie nodes (prefix sharing metric).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Run once over the document; returns, per query, whether it matched.
    pub fn run(&self, document: &[u8], query_count: usize) -> Result<Vec<bool>, xsq_xml::Error> {
        let mut matched = vec![false; query_count];
        let mut parser = StreamParser::new(document);
        // Stack of active trie-node sets.
        let mut stack: Vec<Vec<usize>> = vec![vec![0]];
        while let Some(ev) = parser.next_event()? {
            match ev {
                SaxEvent::Begin { name, .. } => {
                    let active = stack.last().expect("nonempty").clone();
                    let mut next: Vec<usize> = Vec::new();
                    for &node in &active {
                        for ((pat, closure), &child) in &self.nodes[node].edges {
                            if pat.as_deref().is_none_or(|p| p == name) {
                                if !next.contains(&child) {
                                    next.push(child);
                                }
                                for &q in &self.nodes[child].accepts {
                                    matched[q] = true;
                                }
                            }
                            // A closure edge keeps its source active below.
                            if *closure && !next.contains(&node) {
                                next.push(node);
                            }
                        }
                    }
                    stack.push(next);
                }
                SaxEvent::End { .. } => {
                    stack.pop();
                }
                _ => {}
            }
        }
        Ok(matched)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DOC: &[u8] = b"<pub><book><name>X</name></book><journal/></pub>";

    #[test]
    fn xfilter_matches_present_paths() {
        assert!(XFilterLike::compile("/pub/book/name")
            .unwrap()
            .matches(DOC)
            .unwrap());
        assert!(XFilterLike::compile("//name")
            .unwrap()
            .matches(DOC)
            .unwrap());
        assert!(!XFilterLike::compile("/pub/article")
            .unwrap()
            .matches(DOC)
            .unwrap());
    }

    #[test]
    fn xfilter_rejects_predicates() {
        assert!(XFilterLike::compile("/pub[year]/book").is_err());
    }

    #[test]
    fn yfilter_answers_many_queries_in_one_pass() {
        let queries = ["/pub/book/name", "/pub/journal", "/pub/article", "//name"];
        let y = YFilterLike::compile(&queries).unwrap();
        let m = y.run(DOC, queries.len()).unwrap();
        assert_eq!(m, [true, true, false, true]);
    }

    #[test]
    fn yfilter_shares_prefixes() {
        let shared = YFilterLike::compile(&["/a/b/c", "/a/b/d", "/a/b/e"]).unwrap();
        let unshared = YFilterLike::compile(&["/a/b/c", "/x/y/d", "/p/q/e"]).unwrap();
        assert!(shared.node_count() < unshared.node_count());
    }

    #[test]
    fn yfilter_agrees_with_xfilter() {
        let queries = ["//book//name", "/pub/book", "//missing"];
        let y = YFilterLike::compile(&queries).unwrap();
        let ym = y.run(DOC, queries.len()).unwrap();
        for (i, q) in queries.iter().enumerate() {
            let x = XFilterLike::compile(q).unwrap().matches(DOC).unwrap();
            assert_eq!(x, ym[i], "disagreement on {q}");
        }
    }
}
