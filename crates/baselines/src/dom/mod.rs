//! DOM substrate and the DOM-based baseline engines.

pub mod engines;
pub mod eval;
pub mod transform;
pub mod tree;

pub use engines::{GalaxLike, SaxonLike};
pub use eval::{apply_output, eval_pathcheck, eval_stepwise, predicate_holds, select_nodes};
pub use transform::{transform_bytes, transform_document};
pub use tree::{Document, Node, NodeId, NodeKind};
