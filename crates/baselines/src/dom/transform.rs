//! DOM-based reference transformer — the correctness oracle for the
//! streaming transformation engine (`xsq-transform`).
//!
//! Materializes the whole document, selects each rule's match set with
//! the stepwise DOM evaluator, then serializes the tree top-down applying
//! the first matching rule per element. This is deliberately the naive
//! two-pass formulation: no verdict deferral, no buffering — just the
//! specification, against which the one-pass streaming engine must be
//! byte-identical.
//!
//! The serialization policy (attribute quoting, `<a></a>` never
//! self-closed, entity escaping) and the attribute-operation semantics
//! ([`RuleAction::apply_attrs`]) are shared with the streaming engine so
//! that every divergence a differential test finds is a real semantic
//! bug, not a formatting artifact.

use std::collections::BTreeSet;

use xsq_xml::entities::{escape_attr_into, escape_text_into};
use xsq_xpath::{RuleAction, RuleSet, Shape};

use super::eval::select_nodes;
use super::tree::{Document, NodeId, NodeKind};

/// Transform a parsed document under `rules`, returning the output XML.
pub fn transform_document(doc: &Document, rules: &RuleSet) -> String {
    // Match sets, one per rule; first-match-wins resolves per element.
    let sets: Vec<BTreeSet<NodeId>> = rules
        .rules
        .iter()
        .map(|r| select_nodes(doc, &r.pattern))
        .collect();
    let mut out = String::new();
    render(doc, doc.root, &sets, rules, &mut out);
    out
}

/// Parse and transform a serialized document.
pub fn transform_bytes(input: &[u8], rules: &RuleSet) -> Result<String, xsq_xml::Error> {
    let doc = Document::parse(input)?;
    Ok(transform_document(&doc, rules))
}

fn render(
    doc: &Document,
    id: NodeId,
    sets: &[BTreeSet<NodeId>],
    rules: &RuleSet,
    out: &mut String,
) {
    match &doc.node(id).kind {
        NodeKind::Text(t) => escape_text_into(t, out),
        NodeKind::Element {
            name,
            attributes,
            children,
        } => {
            let action: Option<&RuleAction> = sets
                .iter()
                .position(|s| s.contains(&id))
                .map(|i| &rules.rules[i].action);
            // A dropped subtree vanishes wholesale; rules matching inside
            // it never fire (the streaming engine suppresses them too).
            if matches!(action.map(|a| &a.shape), Some(Shape::Drop)) {
                return;
            }
            let emit_name: &str = match action.map(|a| &a.shape) {
                Some(Shape::Rename(n)) => n,
                _ => name,
            };
            let wrapper: Option<&str> = match action.map(|a| &a.shape) {
                Some(Shape::Wrap(w)) => Some(w),
                _ => None,
            };
            let pairs: Vec<(String, String)> = attributes
                .iter()
                .map(|a| (a.name.as_str().to_string(), a.value.clone()))
                .collect();
            let pairs = match action {
                Some(a) if !a.attr_ops.is_empty() => a.apply_attrs(&pairs),
                _ => pairs,
            };
            if let Some(w) = wrapper {
                out.push('<');
                out.push_str(w);
                out.push('>');
            }
            out.push('<');
            out.push_str(emit_name);
            for (n, v) in &pairs {
                out.push(' ');
                out.push_str(n);
                out.push_str("=\"");
                escape_attr_into(v, out);
                out.push('"');
            }
            out.push('>');
            for &c in children {
                render(doc, c, sets, rules, out);
            }
            out.push_str("</");
            out.push_str(emit_name);
            out.push('>');
            if let Some(w) = wrapper {
                out.push_str("</");
                out.push_str(w);
                out.push('>');
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(rules: &str, doc: &str) -> String {
        let rules = RuleSet::parse(rules).unwrap();
        transform_bytes(doc.as_bytes(), &rules).unwrap()
    }

    #[test]
    fn identity_without_matches() {
        assert_eq!(
            run("/nope => drop", "<a x=\"1\"><b>t &amp; u</b></a>"),
            "<a x=\"1\"><b>t &amp; u</b></a>"
        );
    }

    #[test]
    fn drop_suppresses_nested_matches() {
        let out = run("//b => drop\n//c => wrap(w)", "<a><b><c/></b><c/></a>");
        assert_eq!(out, "<a><w><c></c></w></a>");
    }

    #[test]
    fn rename_wrap_and_attr_ops() {
        let out = run(
            "//b => rename(x) -@old\n//c => wrap(w) +@seen=\"1\"",
            "<a><b old=\"v\" keep=\"k\">t</b><c/></a>",
        );
        assert_eq!(out, "<a><x keep=\"k\">t</x><w><c seen=\"1\"></c></w></a>");
    }

    #[test]
    fn first_match_wins_in_file_order() {
        let out = run(
            "//b[@keep] => copy\n//b => drop",
            "<a><b keep=\"1\">x</b><b>y</b></a>",
        );
        assert_eq!(out, "<a><b keep=\"1\">x</b></a>");
    }

    #[test]
    fn positional_predicates_select_by_sibling_index() {
        let out = run(
            "/a/b[2] => rename(second)",
            "<a><b>1</b><b>2</b><b>3</b></a>",
        );
        assert_eq!(out, "<a><b>1</b><second>2</second><b>3</b></a>");
    }

    #[test]
    fn last_predicate_selects_final_sibling() {
        let out = run("/a/b[last()] => drop", "<a><b>1</b><b>2</b><c/></a>");
        assert_eq!(out, "<a><b>1</b><c></c></a>");
    }
}
