//! In-memory document tree — the substrate of the DOM-based baselines
//! (Saxon- and Galax-like engines, §5/§6 of the paper).
//!
//! The tree is built from the *same* SAX event stream the streaming
//! engines consume, so text-run boundaries and attribute decoding are
//! identical — a prerequisite for using DOM evaluation as a differential
//! oracle for XSQ. Every node records the ordinal of the SAX event that
//! created it, which lets evaluators report results in exact document
//! (event) order.

use xsq_xml::{Attribute, SaxEvent, StreamParser};

/// Index of a node in the document arena.
pub type NodeId = usize;

/// Node payload.
#[derive(Debug, Clone)]
pub enum NodeKind {
    /// An element with its tag, attributes, and children in order.
    Element {
        name: String,
        attributes: Vec<Attribute>,
        children: Vec<NodeId>,
    },
    /// One run of character data (the parser's text-event granularity).
    Text(String),
}

/// One node.
#[derive(Debug, Clone)]
pub struct Node {
    pub kind: NodeKind,
    pub parent: Option<NodeId>,
    /// Ordinal of the SAX event that produced this node (begin event for
    /// elements, text event for text runs); defines document order.
    pub ordinal: u64,
    /// Depth of the element (or of the text run's parent element).
    pub depth: u32,
}

impl Node {
    pub fn name(&self) -> Option<&str> {
        match &self.kind {
            NodeKind::Element { name, .. } => Some(name),
            NodeKind::Text(_) => None,
        }
    }

    pub fn text(&self) -> Option<&str> {
        match &self.kind {
            NodeKind::Text(t) => Some(t),
            NodeKind::Element { .. } => None,
        }
    }

    pub fn attribute(&self, name: &str) -> Option<&str> {
        match &self.kind {
            NodeKind::Element { attributes, .. } => attributes
                .iter()
                .find(|a| a.name == name)
                .map(|a| a.value.as_str()),
            NodeKind::Text(_) => None,
        }
    }

    pub fn children(&self) -> &[NodeId] {
        match &self.kind {
            NodeKind::Element { children, .. } => children,
            NodeKind::Text(_) => &[],
        }
    }
}

/// An in-memory document.
#[derive(Debug)]
pub struct Document {
    pub nodes: Vec<Node>,
    /// The document element.
    pub root: NodeId,
    /// Total elements (Fig. 19's XQEngine limit check).
    pub element_count: usize,
    /// Estimated heap footprint of the materialized tree. The paper
    /// observes DOM engines use ≈4–5× the file size; this estimate counts
    /// string payloads plus per-node structural overhead.
    pub estimated_bytes: u64,
}

impl Document {
    /// Build a tree from a serialized document.
    pub fn parse(input: &[u8]) -> Result<Document, xsq_xml::Error> {
        let mut parser = StreamParser::new(input);
        let mut nodes: Vec<Node> = Vec::new();
        let mut stack: Vec<NodeId> = Vec::new();
        let mut root: Option<NodeId> = None;
        let mut ordinal: u64 = 0;
        let mut element_count = 0usize;
        let mut payload_bytes = 0u64;
        while let Some(ev) = parser.next_event()? {
            ordinal += 1;
            match ev {
                SaxEvent::Begin {
                    name,
                    attributes,
                    depth,
                } => {
                    payload_bytes += name.as_str().len() as u64
                        + attributes
                            .iter()
                            .map(|a| (a.name.as_str().len() + a.value.len()) as u64)
                            .sum::<u64>();
                    let id = nodes.len();
                    nodes.push(Node {
                        kind: NodeKind::Element {
                            // A DOM materializes every tag name as its
                            // own string object; model that cost.
                            name: name.as_str().to_string(),
                            attributes,
                            children: Vec::new(),
                        },
                        parent: stack.last().copied(),
                        ordinal,
                        depth,
                    });
                    element_count += 1;
                    if let Some(&p) = stack.last() {
                        if let NodeKind::Element { children, .. } = &mut nodes[p].kind {
                            children.push(id);
                        }
                    } else {
                        root = Some(id);
                    }
                    stack.push(id);
                }
                SaxEvent::End { .. } => {
                    stack.pop();
                }
                SaxEvent::Text { text, depth, .. } => {
                    payload_bytes += text.len() as u64;
                    let id = nodes.len();
                    let parent = stack.last().copied();
                    nodes.push(Node {
                        kind: NodeKind::Text(text),
                        parent,
                        ordinal,
                        depth,
                    });
                    if let Some(p) = parent {
                        if let NodeKind::Element { children, .. } = &mut nodes[p].kind {
                            children.push(id);
                        }
                    }
                }
                SaxEvent::StartDocument | SaxEvent::EndDocument => {}
            }
        }
        // Structural overhead: the Node struct, child vectors, string and
        // attribute headers. sizeof(Node) plus ~2 words per child edge and
        // per string header is a fair model of a Java DOM's object
        // overhead (the paper's 4–5× observation).
        let overhead = nodes.len() as u64 * (std::mem::size_of::<Node>() as u64 + 48);
        let root = root.expect("parser guarantees a document element");
        Ok(Document {
            element_count,
            estimated_bytes: payload_bytes + overhead,
            nodes,
            root,
        })
    }

    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id]
    }

    /// Child *elements* of a node.
    pub fn child_elements<'a>(&'a self, id: NodeId) -> impl Iterator<Item = NodeId> + 'a {
        self.node(id)
            .children()
            .iter()
            .copied()
            .filter(|&c| matches!(self.nodes[c].kind, NodeKind::Element { .. }))
    }

    /// Direct text runs of an element, in order.
    pub fn text_runs<'a>(&'a self, id: NodeId) -> impl Iterator<Item = (&'a str, u64)> + 'a {
        self.node(id).children().iter().filter_map(move |&c| {
            let n = &self.nodes[c];
            n.text().map(|t| (t, n.ordinal))
        })
    }

    /// All descendant elements of `id` (strictly below), preorder.
    pub fn descendant_elements(&self, id: NodeId) -> Vec<NodeId> {
        let mut out = Vec::new();
        let mut work: Vec<NodeId> = self.child_elements(id).collect();
        work.reverse();
        while let Some(n) = work.pop() {
            out.push(n);
            let mut kids: Vec<NodeId> = self.child_elements(n).collect();
            kids.reverse();
            work.extend(kids);
        }
        out
    }

    /// Serialize an element subtree (for whole-element output). Matches
    /// the streaming engines' serializer byte-for-byte.
    pub fn serialize(&self, id: NodeId) -> String {
        let mut out = String::new();
        self.serialize_into(id, &mut out);
        out
    }

    fn serialize_into(&self, id: NodeId, out: &mut String) {
        match &self.nodes[id].kind {
            NodeKind::Text(t) => xsq_xml::entities::escape_text_into(t, out),
            NodeKind::Element {
                name,
                attributes,
                children,
            } => {
                out.push('<');
                out.push_str(name);
                for a in attributes {
                    out.push(' ');
                    out.push_str(a.name.as_str());
                    out.push_str("=\"");
                    xsq_xml::entities::escape_attr_into(&a.value, out);
                    out.push('"');
                }
                out.push('>');
                for &c in children {
                    self.serialize_into(c, out);
                }
                out.push_str("</");
                out.push_str(name);
                out.push('>');
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_tree_with_ordinals() {
        let d = Document::parse(b"<a><b>x</b><b>y</b></a>").unwrap();
        assert_eq!(d.element_count, 3);
        let root = d.node(d.root);
        assert_eq!(root.name(), Some("a"));
        let kids: Vec<NodeId> = d.child_elements(d.root).collect();
        assert_eq!(kids.len(), 2);
        assert!(d.node(kids[0]).ordinal < d.node(kids[1]).ordinal);
    }

    #[test]
    fn text_runs_follow_parser_granularity() {
        let d = Document::parse(b"<a>one<b/>two</a>").unwrap();
        let runs: Vec<&str> = d.text_runs(d.root).map(|(t, _)| t).collect();
        assert_eq!(runs, ["one", "two"]);
    }

    #[test]
    fn descendants_are_preorder() {
        let d = Document::parse(b"<a><b><c/></b><d/></a>").unwrap();
        let names: Vec<&str> = d
            .descendant_elements(d.root)
            .into_iter()
            .filter_map(|n| d.node(n).name())
            .collect();
        assert_eq!(names, ["b", "c", "d"]);
    }

    #[test]
    fn serialization_roundtrips() {
        let src = r#"<a id="1"><b>x &amp; y</b><c/></a>"#;
        let d = Document::parse(src.as_bytes()).unwrap();
        assert_eq!(
            d.serialize(d.root),
            r#"<a id="1"><b>x &amp; y</b><c></c></a>"#
        );
    }

    #[test]
    fn memory_estimate_exceeds_payload() {
        let src = b"<a><b>hello</b></a>";
        let d = Document::parse(src).unwrap();
        assert!(d.estimated_bytes > src.len() as u64);
    }

    #[test]
    fn attribute_lookup() {
        let d = Document::parse(br#"<a x="1"/>"#).unwrap();
        assert_eq!(d.node(d.root).attribute("x"), Some("1"));
        assert_eq!(d.node(d.root).attribute("y"), None);
    }
}
