//! The DOM-based study participants: Saxon-like and Galax-like engines.
//!
//! Both materialize the whole document before evaluating — which is what
//! gives them the linear, ≈4–5× memory footprint of Fig. 19 and the
//! preprocessing bar of Fig. 18 — and differ in evaluation strategy
//! (see [`super::eval`]).

use std::time::Instant;

use xsq_core::{Capabilities, MemoryStats, PhaseTimings, RunReport, XPathEngine};
use xsq_xpath::parse_query;

use super::eval::{eval_pathcheck, eval_stepwise};
use super::tree::Document;

/// Which evaluation strategy a DOM engine uses.
#[derive(Debug, Clone, Copy)]
enum Strategy {
    Stepwise,
    Pathcheck,
}

fn run_dom(
    strategy: Strategy,
    query: &str,
    document: &[u8],
) -> Result<RunReport, Box<dyn std::error::Error>> {
    let t0 = Instant::now();
    let q = parse_query(query)?;
    let compile = t0.elapsed();
    let t1 = Instant::now();
    let doc = Document::parse(document)?;
    let preprocess = t1.elapsed();
    let t2 = Instant::now();
    let results = match strategy {
        Strategy::Stepwise => eval_stepwise(&doc, &q),
        Strategy::Pathcheck => eval_pathcheck(&doc, &q),
    };
    let query_time = t2.elapsed();
    Ok(RunReport {
        results,
        timings: PhaseTimings {
            compile,
            preprocess,
            query: query_time,
        },
        memory: MemoryStats {
            resident_structure_bytes: doc.estimated_bytes,
            ..Default::default()
        },
        events: 0,
        engine: match strategy {
            Strategy::Stepwise => "Saxon",
            Strategy::Pathcheck => "Galax",
        }
        .to_string(),
    })
}

/// Saxon-like engine: DOM materialization + optimized set-at-a-time
/// evaluation. (The study's Saxon is an XSLT processor that "needs to
/// build a DOM tree of the entire XML document in main memory".)
#[derive(Debug, Default)]
pub struct SaxonLike;

impl XPathEngine for SaxonLike {
    fn name(&self) -> &'static str {
        "Saxon"
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            language: "XSLT",
            streaming: false,
            multiple_predicates: true,
            closures: true,
            aggregation: true,
            buffered_predicate_eval: true,
        }
    }

    fn run(&self, query: &str, document: &[u8]) -> Result<RunReport, Box<dyn std::error::Error>> {
        run_dom(Strategy::Stepwise, query, document)
    }
}

/// Galax-like engine: DOM materialization + direct-semantics
/// backtracking evaluation ("a full-fledged implementation of the XQuery
/// language, with static typing guarantees … based on a DOM
/// materialization").
#[derive(Debug, Default)]
pub struct GalaxLike;

impl XPathEngine for GalaxLike {
    fn name(&self) -> &'static str {
        "Galax"
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            language: "XQuery",
            streaming: false,
            multiple_predicates: true,
            closures: true,
            aggregation: true,
            buffered_predicate_eval: true,
        }
    }

    fn run(&self, query: &str, document: &[u8]) -> Result<RunReport, Box<dyn std::error::Error>> {
        run_dom(Strategy::Pathcheck, query, document)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DOC: &[u8] = br#"<pub><book><name>A</name><author>x</author></book>
        <book><name>B</name></book><year>2002</year></pub>"#;

    #[test]
    fn saxon_and_galax_agree() {
        let q = "/pub[year=2002]/book[author]/name/text()";
        let a = SaxonLike.run(q, DOC).unwrap();
        let b = GalaxLike.run(q, DOC).unwrap();
        assert_eq!(a.results, b.results);
        assert_eq!(a.results, ["A"]);
    }

    #[test]
    fn dom_engines_report_resident_memory() {
        let r = SaxonLike.run("/pub/book/name/text()", DOC).unwrap();
        assert!(r.memory.resident_structure_bytes > DOC.len() as u64);
        assert!(r.timings.preprocess > std::time::Duration::ZERO);
    }

    #[test]
    fn dom_engines_match_xsq() {
        let q = "//book[author]/name/text()";
        let dom = SaxonLike.run(q, DOC).unwrap().results;
        let xsq = xsq_core::evaluate(q, DOC).unwrap();
        assert_eq!(dom, xsq);
    }
}
