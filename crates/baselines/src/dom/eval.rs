//! XPath evaluation over the in-memory tree — two strategies.
//!
//! * [`eval_stepwise`] — forward, set-at-a-time evaluation (one node set
//!   per location step), the style of an optimized in-memory XSLT engine
//!   (the study's Saxon).
//! * [`eval_pathcheck`] — enumerate every element and check the location
//!   path against its ancestor chain by backtracking, the style of a
//!   direct implementation of the formal semantics (the study's Galax, a
//!   semantics-first XQuery engine). Asymptotically heavier; results are
//!   identical.
//!
//! Both return exactly what the streaming engines return, in exact
//! document (event) order — they serve as the differential oracle for
//! XSQ in the property tests.

use std::collections::BTreeSet;

use xsq_core::aggregate::Aggregator;
use xsq_xpath::value::num_compare;
use xsq_xpath::{Axis, FnArg, NodeTest, Output, Predicate, Query, Step};

use super::tree::{Document, NodeId};

/// Forward set-at-a-time evaluation (Saxon-like).
pub fn eval_stepwise(doc: &Document, query: &Query) -> Vec<String> {
    let matched = select_nodes(doc, query);
    apply_output(doc, &matched, &query.output)
}

/// The node set a query's location path selects — the step-at-a-time
/// core of [`eval_stepwise`], exposed for consumers that need the nodes
/// themselves (the DOM reference transformer matches elements, not
/// output strings).
pub fn select_nodes(doc: &Document, query: &Query) -> BTreeSet<NodeId> {
    // Context starts at the (virtual) document node.
    let mut ctx: BTreeSet<Option<NodeId>> = BTreeSet::new();
    ctx.insert(None);
    for step in &query.steps {
        let mut next: BTreeSet<Option<NodeId>> = BTreeSet::new();
        for c in &ctx {
            let candidates: Vec<NodeId> = match (step.axis, c) {
                (Axis::Child, None) => vec![doc.root],
                (Axis::Child, Some(id)) => doc.child_elements(*id).collect(),
                (Axis::Closure, None) => {
                    let mut v = vec![doc.root];
                    v.extend(doc.descendant_elements(doc.root));
                    v
                }
                (Axis::Closure, Some(id)) => doc.descendant_elements(*id),
                // Reverse axes: only the DOM (which holds the whole
                // document) can afford them — the streaming engines
                // reject them with a streamability diagnostic.
                (Axis::Parent | Axis::Ancestor | Axis::PrecedingSibling, None) => Vec::new(),
                (Axis::Parent, Some(id)) => doc.node(*id).parent.into_iter().collect(),
                (Axis::Ancestor, Some(id)) => {
                    let mut v = Vec::new();
                    let mut a = doc.node(*id).parent;
                    while let Some(p) = a {
                        v.push(p);
                        a = doc.node(p).parent;
                    }
                    v
                }
                (Axis::PrecedingSibling, Some(id)) => match doc.node(*id).parent {
                    None => Vec::new(),
                    Some(p) => doc.child_elements(p).take_while(|&s| s != *id).collect(),
                },
            };
            for n in candidates {
                if step_matches(doc, n, step) {
                    next.insert(Some(n));
                }
            }
        }
        ctx = next;
    }
    ctx.into_iter().flatten().collect()
}

/// Per-element backtracking evaluation (Galax-like). Deliberately naive:
/// no memoization, repeated predicate evaluation — a faithful stand-in
/// for a direct-semantics engine.
pub fn eval_pathcheck(doc: &Document, query: &Query) -> Vec<String> {
    let mut matched: BTreeSet<NodeId> = BTreeSet::new();
    let mut all = vec![doc.root];
    all.extend(doc.descendant_elements(doc.root));
    for e in all {
        if matches_suffix(doc, e, query, query.steps.len() - 1) {
            matched.insert(e);
        }
    }
    apply_output(doc, &matched, &query.output)
}

fn matches_suffix(doc: &Document, e: NodeId, query: &Query, i: usize) -> bool {
    let step = &query.steps[i];
    let node = doc.node(e);
    if !step_matches(doc, e, step) {
        return false;
    }
    match (i, step.axis) {
        // First step anchors at the document node: `/tag` must be the
        // document element, `//tag` may be anywhere; reverse axes from
        // the document node have nothing to reach.
        (0, Axis::Child) => node.parent.is_none(),
        (0, Axis::Closure) => true,
        (0, _) => false,
        (_, Axis::Child) => node
            .parent
            .is_some_and(|p| matches_suffix(doc, p, query, i - 1)),
        (_, Axis::Closure) => {
            let mut a = node.parent;
            while let Some(p) = a {
                if matches_suffix(doc, p, query, i - 1) {
                    return true;
                }
                a = doc.node(p).parent;
            }
            false
        }
        // Reverse axes invert the relation: `e` is reached *from* a node
        // deeper or later in the document, so the previous step must
        // match a child / descendant / following sibling of `e`.
        (_, Axis::Parent) => doc
            .child_elements(e)
            .any(|c| matches_suffix(doc, c, query, i - 1)),
        (_, Axis::Ancestor) => doc
            .descendant_elements(e)
            .into_iter()
            .any(|d| matches_suffix(doc, d, query, i - 1)),
        (_, Axis::PrecedingSibling) => match node.parent {
            None => false,
            Some(p) => doc
                .child_elements(p)
                .skip_while(|&s| s != e)
                .skip(1)
                .any(|s| matches_suffix(doc, s, query, i - 1)),
        },
    }
}

/// Does the element pass the step's node test *and* predicate?
pub fn step_matches(doc: &Document, e: NodeId, step: &Step) -> bool {
    step.test.matches(doc.node(e).name().expect("element")) && predicate_holds(doc, e, step)
}

/// `position()` and size of `e` within its matching siblings: the
/// element children of `e`'s parent that pass `test`, in document order.
/// The document element counts as position 1 of 1.
fn sibling_position(doc: &Document, e: NodeId, test: &NodeTest) -> (usize, usize) {
    match doc.node(e).parent {
        None => (1, 1),
        Some(p) => {
            let (mut pos, mut count) = (0, 0);
            for c in doc.child_elements(p) {
                if test.matches(doc.node(c).name().expect("element")) {
                    count += 1;
                    if c == e {
                        pos = count;
                    }
                }
            }
            (pos, count)
        }
    }
}

/// Does the step's predicate hold on element `e`? Semantics exactly match
/// the BPDT templates and the transform matcher: existential over
/// children / text runs / attributes, positions counted among siblings
/// passing the step's node test.
pub fn predicate_holds(doc: &Document, e: NodeId, step: &Step) -> bool {
    let Some(pred) = step.predicate.as_ref() else {
        return true;
    };
    let node = doc.node(e);
    match pred {
        Predicate::Attr { name, cmp } => match node.attribute(name) {
            None => false,
            Some(v) => cmp.as_ref().is_none_or(|c| c.eval(v)),
        },
        Predicate::Text { cmp } => doc
            .text_runs(e)
            .any(|(t, _)| cmp.as_ref().is_none_or(|c| c.eval(t))),
        Predicate::Child { name } => doc
            .child_elements(e)
            .any(|c| doc.node(c).name() == Some(name.as_str())),
        Predicate::ChildAttr { child, attr, cmp } => doc.child_elements(e).any(|c| {
            let n = doc.node(c);
            n.name() == Some(child.as_str())
                && match n.attribute(attr) {
                    None => false,
                    Some(v) => cmp.as_ref().is_none_or(|cm| cm.eval(v)),
                }
        }),
        Predicate::ChildText { child, cmp } => doc.child_elements(e).any(|c| {
            doc.node(c).name() == Some(child.as_str()) && doc.text_runs(c).any(|(t, _)| cmp.eval(t))
        }),
        Predicate::Position { cmp } => {
            let (pos, _) = sibling_position(doc, e, &step.test);
            num_compare(pos as f64, cmp.op, cmp.rhs.as_number())
        }
        Predicate::Last => {
            let (pos, count) = sibling_position(doc, e, &step.test);
            pos == count
        }
        Predicate::Func { arg, test } => match arg {
            FnArg::Attr(name) => node.attribute(name).is_some_and(|v| test.eval(v)),
            FnArg::Text => doc.text_runs(e).any(|(t, _)| test.eval(t)),
        },
    }
}

/// Apply the output expression to a matched element set, in document
/// (event-ordinal) order.
pub fn apply_output(doc: &Document, matched: &BTreeSet<NodeId>, output: &Output) -> Vec<String> {
    match output {
        Output::Text => {
            let mut vals: Vec<(u64, String)> = matched
                .iter()
                .flat_map(|&e| doc.text_runs(e).map(|(t, o)| (o, t.to_string())))
                .collect();
            vals.sort_by_key(|(o, _)| *o);
            vals.into_iter().map(|(_, v)| v).collect()
        }
        Output::Attr(a) => {
            let mut vals: Vec<(u64, String)> = matched
                .iter()
                .filter_map(|&e| {
                    let n = doc.node(e);
                    n.attribute(a).map(|v| (n.ordinal, v.to_string()))
                })
                .collect();
            vals.sort_by_key(|(o, _)| *o);
            vals.into_iter().map(|(_, v)| v).collect()
        }
        Output::Element => {
            let mut vals: Vec<(u64, String)> = matched
                .iter()
                .map(|&e| (doc.node(e).ordinal, doc.serialize(e)))
                .collect();
            vals.sort_by_key(|(o, _)| *o);
            vals.into_iter().map(|(_, v)| v).collect()
        }
        Output::Aggregate(func) => {
            // Identical folding semantics to the streaming stat buffer.
            let mut agg = Aggregator::new(*func);
            match func {
                xsq_xpath::AggFunc::Count => {
                    for _ in matched {
                        agg.add("1");
                    }
                }
                _ => {
                    let mut vals: Vec<(u64, String)> = matched
                        .iter()
                        .flat_map(|&e| doc.text_runs(e).map(|(t, o)| (o, t.to_string())))
                        .collect();
                    vals.sort_by_key(|(o, _)| *o);
                    for (_, v) in vals {
                        agg.add(&v);
                    }
                }
            }
            vec![agg.render()]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xsq_xpath::parse_query;

    fn both(query: &str, doc: &str) -> (Vec<String>, Vec<String>) {
        let d = Document::parse(doc.as_bytes()).unwrap();
        let q = parse_query(query).unwrap();
        (eval_stepwise(&d, &q), eval_pathcheck(&d, &q))
    }

    fn check(query: &str, doc: &str, expected: &[&str]) {
        let (a, b) = both(query, doc);
        assert_eq!(a, expected, "stepwise mismatch for {query}");
        assert_eq!(b, expected, "pathcheck mismatch for {query}");
    }

    #[test]
    fn simple_child_path() {
        check(
            "/a/b/text()",
            "<a><b>x</b><c><b>no</b></c><b>y</b></a>",
            &["x", "y"],
        );
    }

    #[test]
    fn closure_finds_all_depths() {
        check("//b/text()", "<a><b>1</b><c><b>2</b></c></a>", &["1", "2"]);
    }

    #[test]
    fn predicates_all_categories() {
        let doc = r#"<pub><book id="1"><name>N1</name><author>A</author>
            <price>12</price></book><book id="2"><name>N2</name></book>
            <year>2002</year></pub>"#;
        check("/pub/book[@id=1]/name/text()", doc, &["N1"]);
        check("/pub/book[author]/name/text()", doc, &["N1"]);
        check("/pub/book[price<13]/name/text()", doc, &["N1"]);
        check("/pub[year=2002]/book/name/text()", doc, &["N1", "N2"]);
        check("/pub[book@id=2]/year/text()", doc, &["2002"]);
        check("/pub/book/name[text()=\"N2\"]", doc, &["<name>N2</name>"]);
    }

    #[test]
    fn nested_matches_in_event_order() {
        // Text of an outer match interleaves with an inner match.
        check(
            "//x/text()",
            "<a><x>pre<x>inner</x>post</x></a>",
            &["pre", "inner", "post"],
        );
    }

    #[test]
    fn aggregates() {
        let doc = "<a><p>1</p><p>2.5</p><q><p>3</p></q></a>";
        check("//p/count()", doc, &["3"]);
        check("//p/sum()", doc, &["6.5"]);
        check("//p/min()", doc, &["1"]);
        check("//p/max()", doc, &["3"]);
        check("/a/p/avg()", doc, &["1.75"]);
    }

    #[test]
    fn wildcard_steps() {
        check("/a/*/text()", "<a><b>1</b><c>2</c></a>", &["1", "2"]);
    }

    #[test]
    fn recursive_data_no_duplicates() {
        // The same name matches along several closure paths; it must
        // appear once.
        check("//b//c/text()", "<a><b><b><c>x</c></b></b></a>", &["x"]);
    }

    #[test]
    fn example_2_from_the_paper() {
        let doc = r#"<root><pub><book><name>X</name><author>A</author></book>
            <book><name>Y</name><pub><book><name>Z</name><author>B</author></book>
            <year>1999</year></pub></book><year>2002</year></pub></root>"#;
        // Only the match via pub(line 2), book(line 10) satisfies both
        // predicates — Z is a result; X matches too (book line 3 has an
        // author and pub line 2 has year 2002). Y's book has no author.
        check(
            "//pub[year=2002]//book[author]//name/text()",
            doc,
            &["X", "Z"],
        );
    }
}
