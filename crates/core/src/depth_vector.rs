//! Depth vectors (§4.3), as bitmaps.
//!
//! With closures and recursive data, several paths through the HPDT can
//! lead to the same state. Each runtime configuration carries a *depth
//! vector*: the depths of the begin events that triggered the transitions
//! on its path. Because ancestors of the current stream position have
//! strictly increasing depths, the depth uniquely identifies which open
//! element anchored each step — the depth vector "simulates the stack
//! operations for every possible path" (paper, §4.3).
//!
//! Buffer operations are *scoped* by depth vector: an operation performed
//! by a configuration on the queue of `bpdt(l, k)` affects exactly the
//! buffered items whose depth vector agrees with the configuration's on
//! the first `l + 1` entries (the anchors of layers `0..=l`). This is the
//! paper's "only operate the items with the depth vector that is equal to
//! the depth vector of the current state", generalized to buffers that
//! hold items uploaded from deeper layers.
//!
//! **Representation.** The paper: "the operations on depth vector are
//! implemented using bitmap vectors. All the operations and comparisons
//! are done using integer and bit operations." The entries of a depth
//! vector are strictly increasing (each transition anchors strictly
//! deeper), so the vector *is* a set of depths: bit `d` set ⇔ depth `d`
//! present, and the stack order is the numeric order. For depths ≤ 63 a
//! single `u64` gives O(1) push (set bit), pop (clear the highest bit),
//! top (highest bit), and prefix comparison (XOR + trailing-zeros);
//! deeper documents fall back to an explicit vector. Representations are
//! canonical: any vector whose depths all fit 0..=63 is stored as bits,
//! so equality and ordering are representation-independent.

use std::fmt;
use std::sync::Arc;

const BITS_MAX_DEPTH: u32 = 63;

/// A depth vector: a strictly increasing stack of event depths.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
enum Repr {
    /// Depths ≤ 63 as a bitmask (the common case; the paper's bitmaps).
    Bits(u64),
    /// Documents nested deeper than 64 levels. Copy-on-write: cloning a
    /// configuration (forking on a nondeterministic arc, tagging a
    /// buffered item) shares the vector; `push_mut`/`pop_mut` only copy
    /// when the storage is actually shared (`Arc::make_mut`).
    Wide(Arc<Vec<u32>>),
}

/// See module docs.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DepthVector(Repr);

impl Default for DepthVector {
    fn default() -> Self {
        DepthVector(Repr::Bits(0))
    }
}

impl DepthVector {
    /// The empty vector (every state's vector is initialized empty).
    pub fn new() -> Self {
        Self::default()
    }

    /// Build from explicit depths (must be strictly increasing).
    pub fn from_depths(depths: &[u32]) -> Self {
        debug_assert!(
            depths.windows(2).all(|w| w[0] < w[1]),
            "strictly increasing"
        );
        if depths.last().copied().unwrap_or(0) <= BITS_MAX_DEPTH {
            let mut bits = 0u64;
            for &d in depths {
                bits |= 1 << d;
            }
            DepthVector(Repr::Bits(bits))
        } else {
            DepthVector(Repr::Wide(Arc::new(depths.to_vec())))
        }
    }

    /// `s'.dv = s.dv + e.d` — append the depth of a begin event.
    pub fn push(&self, depth: u32) -> Self {
        let mut v = self.clone();
        v.push_mut(depth);
        v
    }

    /// `s'.dv = s.dv − e.d` — remove the last depth at an end event.
    pub fn pop(&self) -> Self {
        let mut v = self.clone();
        v.pop_mut();
        v
    }

    /// In-place push (hot path: a configuration moving, not forking).
    pub fn push_mut(&mut self, depth: u32) {
        debug_assert!(
            self.is_empty() || depth > self.top(),
            "depth-vector entries are strictly increasing: push {depth} on top {}",
            self.top()
        );
        match &mut self.0 {
            Repr::Bits(bits) if depth <= BITS_MAX_DEPTH => *bits |= 1 << depth,
            Repr::Bits(bits) => {
                // Overflow into the wide representation.
                let mut v = depths_of(*bits);
                v.push(depth);
                self.0 = Repr::Wide(Arc::new(v));
            }
            Repr::Wide(v) => Arc::make_mut(v).push(depth),
        }
    }

    /// In-place pop. Falls back to the canonical bitmap when a wide
    /// vector shrinks into range again.
    pub fn pop_mut(&mut self) {
        match &mut self.0 {
            Repr::Bits(bits) => {
                if *bits != 0 {
                    let top = 63 - bits.leading_zeros();
                    *bits &= !(1u64 << top);
                }
            }
            Repr::Wide(v) => {
                let v = Arc::make_mut(v);
                v.pop();
                if v.last().copied().unwrap_or(0) <= BITS_MAX_DEPTH {
                    *self = DepthVector::from_depths(v);
                }
            }
        }
    }

    /// The last depth in the vector (`top` in the paper); 0 when empty so
    /// that the document element (depth 1) satisfies `e.d == top + 1`.
    pub fn top(&self) -> u32 {
        match &self.0 {
            Repr::Bits(0) => 0,
            Repr::Bits(bits) => 63 - bits.leading_zeros(),
            Repr::Wide(v) => v.last().copied().unwrap_or(0),
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        match &self.0 {
            Repr::Bits(bits) => bits.count_ones() as usize,
            Repr::Wide(v) => v.len(),
        }
    }

    /// True when no transition has pushed yet.
    pub fn is_empty(&self) -> bool {
        match &self.0 {
            Repr::Bits(bits) => *bits == 0,
            Repr::Wide(v) => v.is_empty(),
        }
    }

    /// True when the vector is stored as the inline `u64` bitmap. In this
    /// representation `clone()` is a register copy and never touches the
    /// allocator — the guarantee the buffer enqueue path (which takes
    /// `&DepthVector` and clones internally) relies on to keep the
    /// matching steady state allocation-free. Wide vectors (documents
    /// nested deeper than 64 levels) clone by bumping an `Arc` refcount,
    /// which is also allocation-free; only *mutating* a shared wide
    /// vector copies.
    pub fn is_inline(&self) -> bool {
        matches!(self.0, Repr::Bits(_))
    }

    /// Do the first `n` entries agree? Both vectors must have at least `n`
    /// entries for a scoped buffer operation to apply.
    pub fn prefix_matches(&self, other: &DepthVector, n: usize) -> bool {
        match (&self.0, &other.0) {
            (Repr::Bits(a), Repr::Bits(b)) => {
                // The n smallest set bits must coincide. Below the lowest
                // differing bit the masks agree, so it suffices that each
                // side has ≥ n bits below that point (or the masks are
                // identical with ≥ n bits).
                let x = a ^ b;
                if x == 0 {
                    return a.count_ones() as usize >= n;
                }
                let low_mask = (1u64 << x.trailing_zeros()) - 1;
                (a & low_mask).count_ones() as usize >= n
                    && (b & low_mask).count_ones() as usize >= n
            }
            _ => {
                // Mixed or wide: compare explicit prefixes.
                let a = self.to_depths();
                let b = other.to_depths();
                a.len() >= n && b.len() >= n && a[..n] == b[..n]
            }
        }
    }

    /// Explicit depths, in stack order (diagnostics, wide-path compares).
    pub fn to_depths(&self) -> Vec<u32> {
        match &self.0 {
            Repr::Bits(bits) => depths_of(*bits),
            Repr::Wide(v) => v.as_ref().clone(),
        }
    }

    /// Raw access for diagnostics (allocates; prefer `to_depths`).
    pub fn as_slice(&self) -> Vec<u32> {
        self.to_depths()
    }
}

fn depths_of(mut bits: u64) -> Vec<u32> {
    let mut v = Vec::with_capacity(bits.count_ones() as usize);
    while bits != 0 {
        let d = bits.trailing_zeros();
        v.push(d);
        bits &= bits - 1;
    }
    v
}

impl fmt::Display for DepthVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, d) in self.to_depths().iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_pop_top() {
        let dv = DepthVector::new();
        assert_eq!(dv.top(), 0);
        assert!(dv.is_empty());
        let dv = dv.push(0).push(1).push(4);
        assert_eq!(dv.top(), 4);
        assert_eq!(dv.len(), 3);
        let dv = dv.pop();
        assert_eq!(dv.top(), 1);
        assert_eq!(dv.as_slice(), &[0, 1]);
    }

    #[test]
    fn push_does_not_mutate_original() {
        let a = DepthVector::from_depths(&[0, 1]);
        let b = a.push(2);
        assert_eq!(a.len(), 2);
        assert_eq!(b.len(), 3);
    }

    #[test]
    fn prefix_matching_scopes_operations() {
        // Example 6 of the paper: clearing with configuration vector
        // (1,9) must not delete an item tagged (1,2,…).
        let config = DepthVector::from_depths(&[1, 9]);
        let item_wrong_pub = DepthVector::from_depths(&[1, 9, 10, 11]);
        let item_right_pub = DepthVector::from_depths(&[1, 2, 10, 11]);
        assert!(config.prefix_matches(&item_wrong_pub, 2));
        assert!(!config.prefix_matches(&item_right_pub, 2));
    }

    #[test]
    fn prefix_requires_enough_entries() {
        let short = DepthVector::from_depths(&[1]);
        let long = DepthVector::from_depths(&[1, 2]);
        assert!(!short.prefix_matches(&long, 2));
        assert!(long.prefix_matches(&long, 2));
    }

    #[test]
    fn display_is_parenthesized() {
        assert_eq!(DepthVector::from_depths(&[1, 2]).to_string(), "(1,2)");
        assert_eq!(DepthVector::new().to_string(), "()");
    }

    #[test]
    fn inline_representation_covers_realistic_depths() {
        let dv = DepthVector::from_depths(&[1, 2, 30, 63]);
        assert!(dv.is_inline(), "depths ≤ 63 stay in the u64 bitmap");
        let mut deep = dv.clone();
        deep.push_mut(64);
        assert!(!deep.is_inline(), "depth 64 overflows into the wide repr");
        deep.pop_mut();
        assert!(deep.is_inline(), "popping back renormalizes to inline");
    }

    #[test]
    fn deep_documents_overflow_into_wide_and_back() {
        let mut dv = DepthVector::new();
        for d in 0..=70 {
            dv.push_mut(d);
        }
        assert_eq!(dv.len(), 71);
        assert_eq!(dv.top(), 70);
        // Pop back below 64: must renormalize to bits and equal a fresh
        // bitmap vector (canonical representation).
        for _ in 0..8 {
            dv.pop_mut();
        }
        assert_eq!(dv.top(), 62);
        let fresh = DepthVector::from_depths(&(0..=62).collect::<Vec<_>>());
        assert_eq!(dv, fresh);
    }

    #[test]
    fn wide_vectors_share_storage_until_mutation() {
        let mut dv = DepthVector::new();
        for d in 0..=70 {
            dv.push_mut(d);
        }
        let copy = dv.clone();
        let (Repr::Wide(a), Repr::Wide(b)) = (&dv.0, &copy.0) else {
            panic!("expected wide representation");
        };
        assert!(Arc::ptr_eq(a, b), "clone must share, not copy");
        // Mutating one side must not disturb the other.
        let mut fork = copy.clone();
        fork.push_mut(71);
        assert_eq!(dv.len(), 71);
        assert_eq!(copy.len(), 71);
        assert_eq!(fork.len(), 72);
        assert_eq!(fork.top(), 71);
    }

    #[test]
    fn prefix_across_representations() {
        let mut deep = DepthVector::new();
        for d in [1, 2, 100] {
            deep.push_mut(d);
        }
        let shallow = DepthVector::from_depths(&[1, 2]);
        assert!(shallow.prefix_matches(&deep, 2));
        assert!(deep.prefix_matches(&shallow, 2));
        assert!(!deep.prefix_matches(&shallow, 3));
    }

    /// Model-based check: the bitmap implementation behaves exactly like
    /// a plain vector under arbitrary push/pop sequences, including
    /// around the 64-depth boundary. Opt-in (`RUSTFLAGS="--cfg xsq_proptest"`):
    /// the dependency needs network access.
    #[cfg(xsq_proptest)]
    mod props {
        use super::super::*;
        use proptest::prelude::*;

        #[derive(Debug, Clone)]
        enum Op {
            Push(u32),
            Pop,
        }

        fn ops() -> impl Strategy<Value = Vec<Op>> {
            prop::collection::vec(
                prop_oneof![(1u32..10).prop_map(Op::Push), Just(Op::Pop)],
                0..120,
            )
        }

        proptest! {
            #[test]
            fn matches_the_vec_model(ops in ops(), probe_n in 0usize..6) {
                let mut dv = DepthVector::new();
                let mut model: Vec<u32> = Vec::new();
                let mut snapshots: Vec<(DepthVector, Vec<u32>)> = Vec::new();
                for op in ops {
                    match op {
                        Op::Push(step) => {
                            // Keep entries strictly increasing like real runs.
                            let d = model.last().copied().unwrap_or(0) + step;
                            if d > 200 { continue; }
                            dv.push_mut(d);
                            model.push(d);
                        }
                        Op::Pop => {
                            dv.pop_mut();
                            model.pop();
                        }
                    }
                    prop_assert_eq!(dv.len(), model.len());
                    prop_assert_eq!(dv.top(), model.last().copied().unwrap_or(0));
                    prop_assert_eq!(dv.to_depths(), model.clone());
                    snapshots.push((dv.clone(), model.clone()));
                }
                // Cross-compare prefix_matches on saved states against the
                // model definition.
                for (dva, ma) in snapshots.iter().rev().take(8) {
                    for (dvb, mb) in snapshots.iter().take(8) {
                        let expect = ma.len() >= probe_n
                            && mb.len() >= probe_n
                            && ma[..probe_n] == mb[..probe_n];
                        prop_assert_eq!(
                            dva.prefix_matches(dvb, probe_n),
                            expect,
                            "prefix {} of {:?} vs {:?}", probe_n, ma, mb
                        );
                    }
                }
            }
        }
    }
}
