//! The query index: many standing queries, one streaming interface.
//!
//! The paper evaluates XSQ one query at a time; real deployments (stock
//! feeds, pub/sub over document streams) hold hundreds of standing
//! queries against the same stream. Running N independent
//! [`crate::runtime::Runner`]s works — [`crate::multi::MultiRunner`]
//! does exactly that — but costs O(N) automaton steps per SAX event
//! even when almost no query could possibly react.
//!
//! This module makes the query set a first-class, indexed object:
//!
//! - [`dispatch`] — an inverted index from (event kind, element name)
//!   to the groups whose *current* frontier states have a matching arc,
//!   maintained incrementally as runners move. Events touch interested
//!   runners only.
//! - [`prefix`] — compile-time prefix sharing: queries with a common
//!   leading location step merge into one HPDT whose step trie shares
//!   the common chain and fans out at the divergence point, with
//!   per-query tags keeping results attributed.
//! - [`subscribe`] — the dynamic subscription API: [`QueryIndex`] with
//!   stable [`QueryId`]s, per-subscriber sinks or a shared
//!   id-tagging [`QuerySink`], and `unsubscribe` that mutes without
//!   recompiling.
//!
//! The index is behaviour-preserving by construction: every dispatch
//! skip is a feed that could not have fired an arc, and the merged
//! HPDT runs each member query over the same BPDT chain it would get
//! alone. The differential test suite checks both against per-query
//! [`crate::engine::XsqEngine`] runs.

pub mod dispatch;
pub mod prefix;
pub mod subscribe;

pub use dispatch::DispatchIndex;
pub use prefix::{plan_groups, QueryGroup};
pub use subscribe::{QueryId, QueryIndex, QuerySink, VecQuerySink};
