//! The inverted dispatch index: event name → interested runners.
//!
//! `MultiRunner::feed_all` steps every query's HPDT on every event, so
//! per-event cost is O(N queries) even when almost no query cares about
//! the element name — the exact failure mode Koch et al.'s schema-based
//! scheduling work identifies for structured-stream engines at scale.
//! This index inverts the question: for each (event kind, element name)
//! it keeps the set of runner groups whose *current* frontier states
//! have an arc that could accept such an event. A `Begin`/`End`/`Text`
//! event then touches only the groups in its bucket (plus the wildcard
//! bucket for closure self-loops, `*` tests, and catchalls), instead of
//! all N.
//!
//! Names are the global [`xsq_xml::Sym`] symbols the parser already interned, so
//! the per-event lookup is a dense `Vec` index — no hashing, no string
//! comparison. The index is maintained incrementally: a runner's
//! interest only changes when one of its arcs fires (its configuration
//! set moves), so the common skipped event costs one array index total.
//! Interest is a deliberate *over*-approximation — it ignores the depth
//! discipline and guards that [`crate::arcs::Arc::label_matches`]
//! enforces — so a dispatched group may still match nothing; skipping a
//! group is safe precisely because a no-match feed is a no-op.
//!
//! All structures are sorted `Vec`s, not tree sets: bucket membership
//! changes are rare (and absent entirely for static-interest groups, see
//! [`super::subscribe`]), while candidate collection runs per event — so
//! the per-event path is dense sequential reads with no node chasing,
//! and a reindex reuses the index's scratch key buffer instead of
//! building fresh sets.

use xsq_xml::RawEvent;

use crate::arcs::{event_key, ArcLabel, NamePat, StateId, KIND_BEGIN, KIND_END, KIND_TEXT};
use crate::build::Hpdt;

fn key_parts(k: u64) -> (usize, usize) {
    ((k >> 32) as usize, (k & u32::MAX as u64) as usize)
}

fn insert_sorted(v: &mut Vec<u32>, x: u32) {
    if let Err(i) = v.binary_search(&x) {
        v.insert(i, x);
    }
}

fn remove_sorted(v: &mut Vec<u32>, x: u32) {
    if let Ok(i) = v.binary_search(&x) {
        v.remove(i);
    }
}

/// What events one HPDT state could react to, precomputed from its arcs.
#[derive(Debug, Clone, Default)]
pub(crate) struct StateInterest {
    keys: Vec<u64>,
    wild: [bool; 3],
}

/// A runner group's currently registered interest (union over its
/// frontier states). `keys` is sorted and deduplicated.
#[derive(Debug, Clone, Default)]
pub(crate) struct GroupInterest {
    keys: Vec<u64>,
    wild: [bool; 3],
}

impl GroupInterest {
    /// Number of named (kind, tag) keys registered.
    pub(crate) fn named_keys(&self) -> usize {
        self.keys.len()
    }
}

/// The inverted index over all registered groups. Buckets are sorted
/// group-id vectors.
#[derive(Debug, Default)]
pub struct DispatchIndex {
    /// Interested groups per symbol, indexed by [`Sym::index`]; one list
    /// per event kind. Grown on demand as arcs mention new names.
    by_sym: Vec<[Vec<u32>; 3]>,
    wildcard: [Vec<u32>; 3],
    /// Every registered group: document brackets go to all of them, and
    /// candidate iteration for unnamed events starts here.
    all: Vec<u32>,
    /// Reusable key buffer for reindex diffs.
    scratch_keys: Vec<u64>,
}

impl DispatchIndex {
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of named buckets currently populated (diagnostics).
    pub fn named_buckets(&self) -> usize {
        self.by_sym
            .iter()
            .flat_map(|kinds| kinds.iter())
            .filter(|s| !s.is_empty())
            .count()
    }

    fn bucket_mut(&mut self, sym_index: usize, kind: usize) -> &mut Vec<u32> {
        if self.by_sym.len() <= sym_index {
            self.by_sym.resize_with(sym_index + 1, Default::default);
        }
        &mut self.by_sym[sym_index][kind]
    }

    /// Compute one state's interest from its outgoing arcs.
    fn state_interest(hpdt: &Hpdt, state: StateId) -> StateInterest {
        let mut si = StateInterest::default();
        for arc in &hpdt.arcs[state as usize] {
            match &arc.label {
                // Document brackets reach every group unconditionally.
                ArcLabel::StartDoc | ArcLabel::EndDoc => {}
                ArcLabel::BeginChild(pat) | ArcLabel::BeginAnyDepth(pat) => match pat {
                    NamePat::Name(n) => si.keys.push(event_key(KIND_BEGIN, *n)),
                    NamePat::Any => si.wild[KIND_BEGIN as usize] = true,
                },
                ArcLabel::ClosureSelfLoop => si.wild[KIND_BEGIN as usize] = true,
                ArcLabel::End(pat) => match pat {
                    NamePat::Name(n) => si.keys.push(event_key(KIND_END, *n)),
                    NamePat::Any => si.wild[KIND_END as usize] = true,
                },
                ArcLabel::TextSelf(pat) | ArcLabel::TextChild(pat) => match pat {
                    NamePat::Name(n) => si.keys.push(event_key(KIND_TEXT, *n)),
                    NamePat::Any => si.wild[KIND_TEXT as usize] = true,
                },
                // The catchall accepts begin, end, and text events alike.
                ArcLabel::Catchall => si.wild = [true, true, true],
            }
        }
        si.keys.sort_unstable();
        si.keys.dedup();
        si
    }

    /// (Re)register a group's interest for its current frontier states,
    /// diffing against what is currently in the index so only changed
    /// buckets are touched. `cache` memoizes per-state interest for the
    /// group's HPDT (states never change interest once compiled);
    /// `current` is updated in place to the new interest. After warmup
    /// (cache filled, bucket capacities grown) a reindex allocates
    /// nothing: the next-key set builds in the index's scratch buffer and
    /// is swapped into `current`.
    pub(crate) fn reindex(
        &mut self,
        group: u32,
        hpdt: &Hpdt,
        frontier: &[StateId],
        cache: &mut Vec<Option<StateInterest>>,
        current: &mut GroupInterest,
    ) {
        if cache.len() < hpdt.arcs.len() {
            cache.resize(hpdt.arcs.len(), None);
        }
        let mut next_keys = std::mem::take(&mut self.scratch_keys);
        next_keys.clear();
        let mut next_wild = [false; 3];
        for &s in frontier {
            let slot = &mut cache[s as usize];
            if slot.is_none() {
                *slot = Some(Self::state_interest(hpdt, s));
            }
            let si = slot.as_ref().unwrap();
            next_keys.extend_from_slice(&si.keys);
            for (w, &sw) in next_wild.iter_mut().zip(&si.wild) {
                *w |= sw;
            }
        }
        next_keys.sort_unstable();
        next_keys.dedup();

        // Apply the diff of two sorted key lists with one merge walk.
        let (mut i, mut j) = (0, 0);
        while i < next_keys.len() || j < current.keys.len() {
            let added = match (next_keys.get(i), current.keys.get(j)) {
                (Some(&n), Some(&c)) if n == c => {
                    i += 1;
                    j += 1;
                    continue;
                }
                (Some(&n), Some(&c)) => n < c,
                (Some(_), None) => true,
                (None, _) => false,
            };
            if added {
                let (kind, sym) = key_parts(next_keys[i]);
                insert_sorted(self.bucket_mut(sym, kind), group);
                i += 1;
            } else {
                let (kind, sym) = key_parts(current.keys[j]);
                if let Some(kinds) = self.by_sym.get_mut(sym) {
                    remove_sorted(&mut kinds[kind], group);
                }
                j += 1;
            }
        }
        for (bucket, (&next, &cur)) in self
            .wildcard
            .iter_mut()
            .zip(next_wild.iter().zip(&current.wild))
        {
            if next && !cur {
                insert_sorted(bucket, group);
            } else if !next && cur {
                remove_sorted(bucket, group);
            }
        }
        insert_sorted(&mut self.all, group);
        std::mem::swap(&mut current.keys, &mut next_keys);
        current.wild = next_wild;
        self.scratch_keys = next_keys;
    }

    /// Remove a group entirely (unsubscription of its last member).
    pub(crate) fn remove_group(&mut self, group: u32, current: &GroupInterest) {
        for &k in &current.keys {
            let (kind, sym) = key_parts(k);
            if let Some(kinds) = self.by_sym.get_mut(sym) {
                remove_sorted(&mut kinds[kind], group);
            }
        }
        for k in 0..3 {
            remove_sorted(&mut self.wildcard[k], group);
        }
        remove_sorted(&mut self.all, group);
    }

    /// Collect the groups that might react to `event`, in ascending group
    /// order (deterministic feed order ⇒ deterministic result
    /// interleaving in shared sinks).
    pub fn candidates(&self, event: &RawEvent<'_>, out: &mut Vec<u32>) {
        out.clear();
        let (kind, sym) = match event {
            RawEvent::StartDocument | RawEvent::EndDocument => {
                out.extend_from_slice(&self.all);
                return;
            }
            RawEvent::Begin { name, .. } => (KIND_BEGIN as usize, *name),
            RawEvent::End { name, .. } => (KIND_END as usize, *name),
            RawEvent::Text { element, .. } => (KIND_TEXT as usize, *element),
        };
        if let Some(kinds) = self.by_sym.get(sym.index() as usize) {
            out.extend_from_slice(&kinds[kind]);
        }
        if !self.wildcard[kind].is_empty() {
            out.extend_from_slice(&self.wildcard[kind]);
            out.sort_unstable();
            out.dedup();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::build_hpdt;
    use xsq_xml::SaxEvent;
    use xsq_xpath::parse_query;

    fn begin(name: &str, depth: u32) -> SaxEvent {
        SaxEvent::Begin {
            name: name.into(),
            attributes: vec![],
            depth,
        }
    }

    fn candidates(idx: &DispatchIndex, ev: &SaxEvent, out: &mut Vec<u32>) {
        idx.candidates(&ev.as_raw(), out);
    }

    #[test]
    fn start_state_interest_routes_only_matching_names() {
        let hpdt = build_hpdt(&parse_query("/a/b/text()").unwrap()).unwrap();
        let mut idx = DispatchIndex::new();
        let mut cache = Vec::new();
        let mut cur = GroupInterest::default();
        idx.reindex(0, &hpdt, &[hpdt.start], &mut cache, &mut cur);

        let mut out = Vec::new();
        candidates(&idx, &begin("a", 1), &mut out);
        // The start state only has the StartDoc arc: no element interest
        // yet, but document brackets always dispatch.
        assert!(out.is_empty());
        candidates(&idx, &SaxEvent::StartDocument, &mut out);
        assert_eq!(out, [0]);
    }

    #[test]
    fn frontier_moves_change_the_buckets() {
        let hpdt = build_hpdt(&parse_query("/a/b/text()").unwrap()).unwrap();
        let mut idx = DispatchIndex::new();
        let mut cache = Vec::new();
        let mut cur = GroupInterest::default();
        // Frontier at the root TRUE state (after StartDocument): the
        // entry arc on `a` is live.
        let root_true = hpdt.arcs[hpdt.start as usize][0].target;
        idx.reindex(0, &hpdt, &[root_true], &mut cache, &mut cur);
        let mut out = Vec::new();
        candidates(&idx, &begin("a", 1), &mut out);
        assert_eq!(out, [0]);
        candidates(&idx, &begin("zzz", 1), &mut out);
        assert!(out.is_empty());

        // Move the frontier somewhere with no `a` interest: bucket empties.
        idx.reindex(0, &hpdt, &[hpdt.start], &mut cache, &mut cur);
        candidates(&idx, &begin("a", 1), &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn closures_and_wildcards_land_in_the_wildcard_bucket() {
        let hpdt = build_hpdt(&parse_query("//b/text()").unwrap()).unwrap();
        let mut idx = DispatchIndex::new();
        let mut cache = Vec::new();
        let mut cur = GroupInterest::default();
        let root_true = hpdt.arcs[hpdt.start as usize][0].target;
        idx.reindex(0, &hpdt, &[root_true], &mut cache, &mut cur);
        let mut out = Vec::new();
        // The closure self-loop accepts any begin event.
        candidates(&idx, &begin("anything", 3), &mut out);
        assert_eq!(out, [0]);
    }

    #[test]
    fn remove_group_clears_every_bucket() {
        let hpdt = build_hpdt(&parse_query("//b/text()").unwrap()).unwrap();
        let mut idx = DispatchIndex::new();
        let mut cache = Vec::new();
        let mut cur = GroupInterest::default();
        let root_true = hpdt.arcs[hpdt.start as usize][0].target;
        idx.reindex(0, &hpdt, &[root_true], &mut cache, &mut cur);
        idx.remove_group(0, &cur);
        let mut out = Vec::new();
        candidates(&idx, &begin("b", 1), &mut out);
        assert!(out.is_empty());
        candidates(&idx, &SaxEvent::StartDocument, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn reindex_diff_handles_partial_overlap() {
        // Two frontiers with overlapping interest: the diff must add the
        // new keys, drop the stale ones, and keep the shared ones intact.
        let hpdt = build_hpdt(&parse_query("/pub[year=2002]/book/name/text()").unwrap()).unwrap();
        let mut idx = DispatchIndex::new();
        let mut cache = Vec::new();
        let mut cur = GroupInterest::default();
        // Index every state in turn; after arbitrary reindex churn the
        // registered interest must equal the last frontier's interest.
        let states: Vec<StateId> = (0..hpdt.arcs.len() as StateId).collect();
        for w in states.windows(3) {
            idx.reindex(0, &hpdt, w, &mut cache, &mut cur);
        }
        let last = &states[states.len() - 3..];
        let mut fresh_idx = DispatchIndex::new();
        let mut fresh_cur = GroupInterest::default();
        let mut fresh_cache = Vec::new();
        fresh_idx.reindex(0, &hpdt, last, &mut fresh_cache, &mut fresh_cur);
        assert_eq!(cur.keys, fresh_cur.keys);
        assert_eq!(cur.wild, fresh_cur.wild);
        assert_eq!(idx.named_buckets(), fresh_idx.named_buckets());
    }
}
