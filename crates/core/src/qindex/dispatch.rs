//! The inverted dispatch index: event name → interested runners.
//!
//! `MultiRunner::feed_all` steps every query's HPDT on every event, so
//! per-event cost is O(N queries) even when almost no query cares about
//! the element name — the exact failure mode Koch et al.'s schema-based
//! scheduling work identifies for structured-stream engines at scale.
//! This index inverts the question: for each (event kind, element name)
//! it keeps the set of runner groups whose *current* frontier states
//! have an arc that could accept such an event. A `Begin`/`End`/`Text`
//! event then touches only the groups in its bucket (plus the wildcard
//! bucket for closure self-loops, `*` tests, and catchalls), instead of
//! all N.
//!
//! Names are the global [`Sym`] symbols the parser already interned, so
//! the per-event lookup is a dense `Vec` index — no hashing, no string
//! comparison. The index is maintained incrementally: a runner's
//! interest only changes when one of its arcs fires (its configuration
//! set moves), so the common skipped event costs one array index total.
//! Interest is a deliberate *over*-approximation — it ignores the depth
//! discipline and guards that [`crate::arcs::Arc::label_matches`]
//! enforces — so a dispatched group may still match nothing; skipping a
//! group is safe precisely because a no-match feed is a no-op.

use std::collections::BTreeSet;

use xsq_xml::{RawEvent, Sym};

use crate::arcs::{ArcLabel, NamePat, StateId};
use crate::build::Hpdt;

/// Event-kind component of a dispatch key.
const KIND_BEGIN: usize = 0;
const KIND_END: usize = 1;
const KIND_TEXT: usize = 2;

fn key(kind: usize, sym: Sym) -> u64 {
    ((kind as u64) << 32) | sym.index() as u64
}

fn key_parts(k: u64) -> (usize, usize) {
    ((k >> 32) as usize, (k & u32::MAX as u64) as usize)
}

/// What events one HPDT state could react to, precomputed from its arcs.
#[derive(Debug, Clone, Default)]
pub(crate) struct StateInterest {
    keys: Vec<u64>,
    wild: [bool; 3],
}

/// A runner group's currently registered interest (union over its
/// frontier states).
#[derive(Debug, Clone, Default)]
pub(crate) struct GroupInterest {
    keys: BTreeSet<u64>,
    wild: [bool; 3],
}

/// The inverted index over all registered groups.
#[derive(Debug, Default)]
pub struct DispatchIndex {
    /// Interested groups per symbol, indexed by [`Sym::index`]; one set
    /// per event kind. Grown on demand as arcs mention new names.
    by_sym: Vec<[BTreeSet<u32>; 3]>,
    wildcard: [BTreeSet<u32>; 3],
    /// Every registered group: document brackets go to all of them, and
    /// candidate iteration for unnamed events starts here.
    all: BTreeSet<u32>,
}

impl DispatchIndex {
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of named buckets currently populated (diagnostics).
    pub fn named_buckets(&self) -> usize {
        self.by_sym
            .iter()
            .flat_map(|kinds| kinds.iter())
            .filter(|s| !s.is_empty())
            .count()
    }

    fn bucket_mut(&mut self, sym_index: usize, kind: usize) -> &mut BTreeSet<u32> {
        if self.by_sym.len() <= sym_index {
            self.by_sym.resize_with(sym_index + 1, Default::default);
        }
        &mut self.by_sym[sym_index][kind]
    }

    /// Compute one state's interest from its outgoing arcs.
    fn state_interest(hpdt: &Hpdt, state: StateId) -> StateInterest {
        let mut si = StateInterest::default();
        for arc in &hpdt.arcs[state as usize] {
            match &arc.label {
                // Document brackets reach every group unconditionally.
                ArcLabel::StartDoc | ArcLabel::EndDoc => {}
                ArcLabel::BeginChild(pat) | ArcLabel::BeginAnyDepth(pat) => match pat {
                    NamePat::Name(n) => si.keys.push(key(KIND_BEGIN, *n)),
                    NamePat::Any => si.wild[KIND_BEGIN] = true,
                },
                ArcLabel::ClosureSelfLoop => si.wild[KIND_BEGIN] = true,
                ArcLabel::End(pat) => match pat {
                    NamePat::Name(n) => si.keys.push(key(KIND_END, *n)),
                    NamePat::Any => si.wild[KIND_END] = true,
                },
                ArcLabel::TextSelf(pat) | ArcLabel::TextChild(pat) => match pat {
                    NamePat::Name(n) => si.keys.push(key(KIND_TEXT, *n)),
                    NamePat::Any => si.wild[KIND_TEXT] = true,
                },
                // The catchall accepts begin, end, and text events alike.
                ArcLabel::Catchall => si.wild = [true, true, true],
            }
        }
        si.keys.sort_unstable();
        si.keys.dedup();
        si
    }

    /// (Re)register a group's interest for its current frontier states,
    /// diffing against what is currently in the index so only changed
    /// buckets are touched. `cache` memoizes per-state interest for the
    /// group's HPDT (states never change interest once compiled);
    /// `current` is updated in place to the new interest.
    pub(crate) fn reindex(
        &mut self,
        group: u32,
        hpdt: &Hpdt,
        frontier: &[StateId],
        cache: &mut Vec<Option<StateInterest>>,
        current: &mut GroupInterest,
    ) {
        if cache.len() < hpdt.arcs.len() {
            cache.resize(hpdt.arcs.len(), None);
        }
        let mut next = GroupInterest::default();
        for &s in frontier {
            let slot = &mut cache[s as usize];
            if slot.is_none() {
                let si = Self::state_interest(hpdt, s);
                *slot = Some(si);
            }
            let si = slot.as_ref().unwrap();
            next.keys.extend(si.keys.iter().copied());
            for k in 0..3 {
                next.wild[k] |= si.wild[k];
            }
        }

        // Apply the diff.
        for &k in next.keys.difference(&current.keys) {
            let (kind, sym) = key_parts(k);
            self.bucket_mut(sym, kind).insert(group);
        }
        for &k in current.keys.difference(&next.keys) {
            let (kind, sym) = key_parts(k);
            if let Some(kinds) = self.by_sym.get_mut(sym) {
                kinds[kind].remove(&group);
            }
        }
        for k in 0..3 {
            if next.wild[k] && !current.wild[k] {
                self.wildcard[k].insert(group);
            } else if !next.wild[k] && current.wild[k] {
                self.wildcard[k].remove(&group);
            }
        }
        self.all.insert(group);
        *current = next;
    }

    /// Remove a group entirely (unsubscription of its last member).
    pub(crate) fn remove_group(&mut self, group: u32, current: &GroupInterest) {
        for &k in &current.keys {
            let (kind, sym) = key_parts(k);
            if let Some(kinds) = self.by_sym.get_mut(sym) {
                kinds[kind].remove(&group);
            }
        }
        for k in 0..3 {
            self.wildcard[k].remove(&group);
        }
        self.all.remove(&group);
    }

    /// Collect the groups that might react to `event`, in ascending group
    /// order (deterministic feed order ⇒ deterministic result
    /// interleaving in shared sinks).
    pub fn candidates(&self, event: &RawEvent<'_>, out: &mut Vec<u32>) {
        out.clear();
        let (kind, sym) = match event {
            RawEvent::StartDocument | RawEvent::EndDocument => {
                out.extend(self.all.iter().copied());
                return;
            }
            RawEvent::Begin { name, .. } => (KIND_BEGIN, *name),
            RawEvent::End { name, .. } => (KIND_END, *name),
            RawEvent::Text { element, .. } => (KIND_TEXT, *element),
        };
        if let Some(kinds) = self.by_sym.get(sym.index() as usize) {
            out.extend(kinds[kind].iter().copied());
        }
        if !self.wildcard[kind].is_empty() {
            out.extend(self.wildcard[kind].iter().copied());
            out.sort_unstable();
            out.dedup();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::build_hpdt;
    use xsq_xml::SaxEvent;
    use xsq_xpath::parse_query;

    fn begin(name: &str, depth: u32) -> SaxEvent {
        SaxEvent::Begin {
            name: name.into(),
            attributes: vec![],
            depth,
        }
    }

    fn candidates(idx: &DispatchIndex, ev: &SaxEvent, out: &mut Vec<u32>) {
        idx.candidates(&ev.as_raw(), out);
    }

    #[test]
    fn start_state_interest_routes_only_matching_names() {
        let hpdt = build_hpdt(&parse_query("/a/b/text()").unwrap()).unwrap();
        let mut idx = DispatchIndex::new();
        let mut cache = Vec::new();
        let mut cur = GroupInterest::default();
        idx.reindex(0, &hpdt, &[hpdt.start], &mut cache, &mut cur);

        let mut out = Vec::new();
        candidates(&idx, &begin("a", 1), &mut out);
        // The start state only has the StartDoc arc: no element interest
        // yet, but document brackets always dispatch.
        assert!(out.is_empty());
        candidates(&idx, &SaxEvent::StartDocument, &mut out);
        assert_eq!(out, [0]);
    }

    #[test]
    fn frontier_moves_change_the_buckets() {
        let hpdt = build_hpdt(&parse_query("/a/b/text()").unwrap()).unwrap();
        let mut idx = DispatchIndex::new();
        let mut cache = Vec::new();
        let mut cur = GroupInterest::default();
        // Frontier at the root TRUE state (after StartDocument): the
        // entry arc on `a` is live.
        let root_true = hpdt.arcs[hpdt.start as usize][0].target;
        idx.reindex(0, &hpdt, &[root_true], &mut cache, &mut cur);
        let mut out = Vec::new();
        candidates(&idx, &begin("a", 1), &mut out);
        assert_eq!(out, [0]);
        candidates(&idx, &begin("zzz", 1), &mut out);
        assert!(out.is_empty());

        // Move the frontier somewhere with no `a` interest: bucket empties.
        idx.reindex(0, &hpdt, &[hpdt.start], &mut cache, &mut cur);
        candidates(&idx, &begin("a", 1), &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn closures_and_wildcards_land_in_the_wildcard_bucket() {
        let hpdt = build_hpdt(&parse_query("//b/text()").unwrap()).unwrap();
        let mut idx = DispatchIndex::new();
        let mut cache = Vec::new();
        let mut cur = GroupInterest::default();
        let root_true = hpdt.arcs[hpdt.start as usize][0].target;
        idx.reindex(0, &hpdt, &[root_true], &mut cache, &mut cur);
        let mut out = Vec::new();
        // The closure self-loop accepts any begin event.
        candidates(&idx, &begin("anything", 3), &mut out);
        assert_eq!(out, [0]);
    }

    #[test]
    fn remove_group_clears_every_bucket() {
        let hpdt = build_hpdt(&parse_query("//b/text()").unwrap()).unwrap();
        let mut idx = DispatchIndex::new();
        let mut cache = Vec::new();
        let mut cur = GroupInterest::default();
        let root_true = hpdt.arcs[hpdt.start as usize][0].target;
        idx.reindex(0, &hpdt, &[root_true], &mut cache, &mut cur);
        idx.remove_group(0, &cur);
        let mut out = Vec::new();
        candidates(&idx, &begin("b", 1), &mut out);
        assert!(out.is_empty());
        candidates(&idx, &SaxEvent::StartDocument, &mut out);
        assert!(out.is_empty());
    }
}
