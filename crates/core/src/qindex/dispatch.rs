//! The inverted dispatch index: event name → interested runners.
//!
//! `MultiRunner::feed_all` steps every query's HPDT on every event, so
//! per-event cost is O(N queries) even when almost no query cares about
//! the element name — the exact failure mode Koch et al.'s schema-based
//! scheduling work identifies for structured-stream engines at scale.
//! This index inverts the question: for each (event kind, element name)
//! it keeps the set of runner groups whose *current* frontier states
//! have an arc that could accept such an event. A `Begin`/`End`/`Text`
//! event then touches only the groups in its bucket (plus the wildcard
//! bucket for closure self-loops, `*` tests, and catchalls), instead of
//! all N.
//!
//! The index is maintained incrementally: a runner's interest only
//! changes when one of its arcs fires (its configuration set moves), so
//! the common skipped event costs one hash lookup total. Interest is a
//! deliberate *over*-approximation — it ignores the depth discipline and
//! guards that [`crate::arcs::Arc::label_matches`] enforces — so a
//! dispatched group may still match nothing; skipping a group is safe
//! precisely because a no-match feed is a no-op.

use std::collections::{BTreeSet, HashMap};

use xsq_xml::SaxEvent;

use crate::arcs::{ArcLabel, NamePat, StateId};
use crate::build::Hpdt;

/// Event-kind component of a dispatch key.
const KIND_BEGIN: usize = 0;
const KIND_END: usize = 1;
const KIND_TEXT: usize = 2;

/// Interns element/attribute names to dense symbols so dispatch keys are
/// integer comparisons, not string hashing per arc.
#[derive(Debug, Default)]
struct Interner {
    map: HashMap<String, u32>,
    count: u32,
}

impl Interner {
    fn intern(&mut self, name: &str) -> u32 {
        if let Some(&s) = self.map.get(name) {
            return s;
        }
        let s = self.count;
        self.map.insert(name.to_string(), s);
        self.count += 1;
        s
    }

    fn get(&self, name: &str) -> Option<u32> {
        self.map.get(name).copied()
    }
}

fn key(kind: usize, symbol: u32) -> u64 {
    ((kind as u64) << 32) | symbol as u64
}

/// What events one HPDT state could react to, precomputed from its arcs.
#[derive(Debug, Clone, Default)]
pub(crate) struct StateInterest {
    keys: Vec<u64>,
    wild: [bool; 3],
}

/// A runner group's currently registered interest (union over its
/// frontier states).
#[derive(Debug, Clone, Default)]
pub(crate) struct GroupInterest {
    keys: BTreeSet<u64>,
    wild: [bool; 3],
}

/// The inverted index over all registered groups.
#[derive(Debug, Default)]
pub struct DispatchIndex {
    interner: Interner,
    by_key: HashMap<u64, BTreeSet<u32>>,
    wildcard: [BTreeSet<u32>; 3],
    /// Every registered group: document brackets go to all of them, and
    /// candidate iteration for unnamed events starts here.
    all: BTreeSet<u32>,
}

impl DispatchIndex {
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of named buckets currently populated (diagnostics).
    pub fn named_buckets(&self) -> usize {
        self.by_key.values().filter(|s| !s.is_empty()).count()
    }

    /// Compute one state's interest from its outgoing arcs.
    fn state_interest(&mut self, hpdt: &Hpdt, state: StateId) -> StateInterest {
        let mut si = StateInterest::default();
        for arc in &hpdt.arcs[state as usize] {
            match &arc.label {
                // Document brackets reach every group unconditionally.
                ArcLabel::StartDoc | ArcLabel::EndDoc => {}
                ArcLabel::BeginChild(pat) | ArcLabel::BeginAnyDepth(pat) => match pat {
                    NamePat::Name(n) => si.keys.push(key(KIND_BEGIN, self.interner.intern(n))),
                    NamePat::Any => si.wild[KIND_BEGIN] = true,
                },
                ArcLabel::ClosureSelfLoop => si.wild[KIND_BEGIN] = true,
                ArcLabel::End(pat) => match pat {
                    NamePat::Name(n) => si.keys.push(key(KIND_END, self.interner.intern(n))),
                    NamePat::Any => si.wild[KIND_END] = true,
                },
                ArcLabel::TextSelf(pat) | ArcLabel::TextChild(pat) => match pat {
                    NamePat::Name(n) => si.keys.push(key(KIND_TEXT, self.interner.intern(n))),
                    NamePat::Any => si.wild[KIND_TEXT] = true,
                },
                // The catchall accepts begin, end, and text events alike.
                ArcLabel::Catchall => si.wild = [true, true, true],
            }
        }
        si.keys.sort_unstable();
        si.keys.dedup();
        si
    }

    /// (Re)register a group's interest for its current frontier states,
    /// diffing against what is currently in the index so only changed
    /// buckets are touched. `cache` memoizes per-state interest for the
    /// group's HPDT (states never change interest once compiled);
    /// `current` is updated in place to the new interest.
    pub(crate) fn reindex(
        &mut self,
        group: u32,
        hpdt: &Hpdt,
        frontier: &[StateId],
        cache: &mut Vec<Option<StateInterest>>,
        current: &mut GroupInterest,
    ) {
        if cache.len() < hpdt.arcs.len() {
            cache.resize(hpdt.arcs.len(), None);
        }
        let mut next = GroupInterest::default();
        for &s in frontier {
            let slot = &mut cache[s as usize];
            if slot.is_none() {
                let si = self.state_interest(hpdt, s);
                *slot = Some(si);
            }
            let si = slot.as_ref().unwrap();
            next.keys.extend(si.keys.iter().copied());
            for k in 0..3 {
                next.wild[k] |= si.wild[k];
            }
        }

        // Apply the diff.
        for &k in next.keys.difference(&current.keys) {
            self.by_key.entry(k).or_default().insert(group);
        }
        for &k in current.keys.difference(&next.keys) {
            if let Some(set) = self.by_key.get_mut(&k) {
                set.remove(&group);
            }
        }
        for k in 0..3 {
            if next.wild[k] && !current.wild[k] {
                self.wildcard[k].insert(group);
            } else if !next.wild[k] && current.wild[k] {
                self.wildcard[k].remove(&group);
            }
        }
        self.all.insert(group);
        *current = next;
    }

    /// Remove a group entirely (unsubscription of its last member).
    pub(crate) fn remove_group(&mut self, group: u32, current: &GroupInterest) {
        for &k in &current.keys {
            if let Some(set) = self.by_key.get_mut(&k) {
                set.remove(&group);
            }
        }
        for k in 0..3 {
            self.wildcard[k].remove(&group);
        }
        self.all.remove(&group);
    }

    /// Collect the groups that might react to `event`, in ascending group
    /// order (deterministic feed order ⇒ deterministic result
    /// interleaving in shared sinks).
    pub fn candidates(&self, event: &SaxEvent, out: &mut Vec<u32>) {
        out.clear();
        let (kind, name) = match event {
            SaxEvent::StartDocument | SaxEvent::EndDocument => {
                out.extend(self.all.iter().copied());
                return;
            }
            SaxEvent::Begin { name, .. } => (KIND_BEGIN, name.as_str()),
            SaxEvent::End { name, .. } => (KIND_END, name.as_str()),
            SaxEvent::Text { element, .. } => (KIND_TEXT, element.as_str()),
        };
        if let Some(sym) = self.interner.get(name) {
            if let Some(set) = self.by_key.get(&key(kind, sym)) {
                out.extend(set.iter().copied());
            }
        }
        if !self.wildcard[kind].is_empty() {
            out.extend(self.wildcard[kind].iter().copied());
            out.sort_unstable();
            out.dedup();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::build_hpdt;
    use xsq_xpath::parse_query;

    fn begin(name: &str, depth: u32) -> SaxEvent {
        SaxEvent::Begin {
            name: name.into(),
            attributes: vec![],
            depth,
        }
    }

    #[test]
    fn start_state_interest_routes_only_matching_names() {
        let hpdt = build_hpdt(&parse_query("/a/b/text()").unwrap()).unwrap();
        let mut idx = DispatchIndex::new();
        let mut cache = Vec::new();
        let mut cur = GroupInterest::default();
        idx.reindex(0, &hpdt, &[hpdt.start], &mut cache, &mut cur);

        let mut out = Vec::new();
        idx.candidates(&begin("a", 1), &mut out);
        // The start state only has the StartDoc arc: no element interest
        // yet, but document brackets always dispatch.
        assert!(out.is_empty());
        idx.candidates(&SaxEvent::StartDocument, &mut out);
        assert_eq!(out, [0]);
    }

    #[test]
    fn frontier_moves_change_the_buckets() {
        let hpdt = build_hpdt(&parse_query("/a/b/text()").unwrap()).unwrap();
        let mut idx = DispatchIndex::new();
        let mut cache = Vec::new();
        let mut cur = GroupInterest::default();
        // Frontier at the root TRUE state (after StartDocument): the
        // entry arc on `a` is live.
        let root_true = hpdt.arcs[hpdt.start as usize][0].target;
        idx.reindex(0, &hpdt, &[root_true], &mut cache, &mut cur);
        let mut out = Vec::new();
        idx.candidates(&begin("a", 1), &mut out);
        assert_eq!(out, [0]);
        idx.candidates(&begin("zzz", 1), &mut out);
        assert!(out.is_empty());

        // Move the frontier somewhere with no `a` interest: bucket empties.
        idx.reindex(0, &hpdt, &[hpdt.start], &mut cache, &mut cur);
        idx.candidates(&begin("a", 1), &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn closures_and_wildcards_land_in_the_wildcard_bucket() {
        let hpdt = build_hpdt(&parse_query("//b/text()").unwrap()).unwrap();
        let mut idx = DispatchIndex::new();
        let mut cache = Vec::new();
        let mut cur = GroupInterest::default();
        let root_true = hpdt.arcs[hpdt.start as usize][0].target;
        idx.reindex(0, &hpdt, &[root_true], &mut cache, &mut cur);
        let mut out = Vec::new();
        // The closure self-loop accepts any begin event.
        idx.candidates(&begin("anything", 3), &mut out);
        assert_eq!(out, [0]);
    }

    #[test]
    fn remove_group_clears_every_bucket() {
        let hpdt = build_hpdt(&parse_query("//b/text()").unwrap()).unwrap();
        let mut idx = DispatchIndex::new();
        let mut cache = Vec::new();
        let mut cur = GroupInterest::default();
        let root_true = hpdt.arcs[hpdt.start as usize][0].target;
        idx.reindex(0, &hpdt, &[root_true], &mut cache, &mut cur);
        idx.remove_group(0, &cur);
        let mut out = Vec::new();
        idx.candidates(&begin("b", 1), &mut out);
        assert!(out.is_empty());
        idx.candidates(&SaxEvent::StartDocument, &mut out);
        assert!(out.is_empty());
    }
}
