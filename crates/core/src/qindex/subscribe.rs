//! The query index proper: dynamic subscriptions over grouped runners.
//!
//! [`QueryIndex`] is the streaming facade over any number of standing
//! XPath queries. It owns the compiled groups ([`super::prefix`]), their
//! runtime state, and the inverted dispatch index
//! ([`super::dispatch`]); callers interact only in terms of
//! [`QueryId`]s:
//!
//! - [`QueryIndex::subscribe`] / [`QueryIndex::subscribe_group`] add
//!   queries (a batch compiles with prefix sharing),
//! - [`QueryIndex::feed`] pushes one SAX event to every *interested*
//!   runner,
//! - results land either in a per-subscriber [`Sink`] or in the shared
//!   [`QuerySink`], tagged with the originating `QueryId`,
//! - [`QueryIndex::unsubscribe`] mutes a query immediately, without
//!   recompiling anything.
//!
//! A subscription made mid-document stays silent until the next
//! document: its runner starts at the HPDT start state, whose only arc
//! consumes the document-start event. [`QueryIndex::finish`] emits
//! pending aggregates, then resets every runner so the same index can
//! process the next document in the stream.

use std::io::BufRead;
use std::sync::Arc;

use xsq_xml::{RawEvent, SaxEvent, StreamParser};
use xsq_xpath::Query;

use crate::arcs::StateId;
use crate::build::Hpdt;
use crate::engine::{XsqEngine, XsqMode};
use crate::error::{CompileError, EngineError};
use crate::report::MemoryStats;
use crate::runtime::{RunStats, RunnerCore};
use crate::sink::{Sink, TaggedSink};

use super::dispatch::{DispatchIndex, GroupInterest, StateInterest};
use super::prefix::plan_groups;

/// Stable handle for one subscribed query. Ids are never reused, so a
/// stale handle after `unsubscribe` is harmless.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct QueryId(pub u32);

/// Where shared-mode results go: like [`Sink`], but every callback says
/// which query produced the value.
pub trait QuerySink {
    fn result(&mut self, id: QueryId, value: &str);
    /// Running aggregate update (count/sum/… queries only).
    fn aggregate_update(&mut self, _id: QueryId, _value: f64) {}
}

/// Shared sink that collects `(id, value)` pairs in arrival order.
#[derive(Debug, Default)]
pub struct VecQuerySink {
    pub results: Vec<(QueryId, String)>,
    pub updates: Vec<(QueryId, f64)>,
}

impl VecQuerySink {
    pub fn new() -> Self {
        Self::default()
    }

    /// The values one query produced, in document order.
    pub fn of(&self, id: QueryId) -> Vec<&str> {
        self.results
            .iter()
            .filter(|(i, _)| *i == id)
            .map(|(_, v)| v.as_str())
            .collect()
    }
}

impl QuerySink for VecQuerySink {
    fn result(&mut self, id: QueryId, value: &str) {
        self.results.push((id, value.to_string()));
    }

    fn aggregate_update(&mut self, id: QueryId, value: f64) {
        self.updates.push((id, value));
    }
}

/// One subscription.
struct Sub {
    text: String,
    group: u32,
    /// This query's tag inside its group's (possibly merged) HPDT.
    tag: u32,
    active: bool,
    sink: Option<Box<dyn Sink>>,
}

/// One compiled group and its runtime state.
struct Group {
    hpdt: Arc<Hpdt>,
    core: RunnerCore,
    /// `members[tag]` = the QueryId whose results carry that tag.
    members: Vec<QueryId>,
    interest: GroupInterest,
    state_cache: Vec<Option<StateInterest>>,
    /// Frontier as of the last reindex. Closure states report "fired" on
    /// every descent they track, but their frontier (and therefore the
    /// dispatch buckets) usually hasn't moved — comparing against this
    /// cache keeps the steady-state loop free of interest rebuilds (and
    /// their allocations).
    last_frontier: Vec<StateId>,
    /// When true, the group's registered interest is the union over *all*
    /// its states, fixed at subscribe time, and per-event reindexing is
    /// skipped entirely. Chosen for broad groups (merged frontiers with
    /// many named keys) where the frontier oscillates on every record and
    /// per-record diffing costs more than the over-dispatch it avoids —
    /// the N=512 cliff's second half. Safe because interest is an
    /// over-approximation: an over-dispatched no-match feed is a no-op.
    static_interest: bool,
    /// Active member count; at 0 the group leaves the dispatch index.
    live: usize,
}

/// Named-key count at which a group switches to static interest. Below
/// it, frontier-diff reindexing keeps dispatch sharp (the skip win); at
/// or above it, the reindex traffic itself is the bottleneck.
const STATIC_INTEREST_CUTOFF: usize = 32;

/// Routes a group's tagged results to the owning subscription's private
/// sink, or to the shared [`QuerySink`] with the `QueryId` attached.
struct RouteSink<'a> {
    members: &'a [QueryId],
    subs: &'a mut [Sub],
    shared: &'a mut dyn QuerySink,
}

impl TaggedSink for RouteSink<'_> {
    fn result(&mut self, tag: u32, value: &str) {
        let id = self.members[tag as usize];
        let sub = &mut self.subs[id.0 as usize];
        if !sub.active {
            return;
        }
        match &mut sub.sink {
            Some(s) => s.result(value),
            None => self.shared.result(id, value),
        }
    }

    fn aggregate_update(&mut self, tag: u32, value: f64) {
        let id = self.members[tag as usize];
        let sub = &mut self.subs[id.0 as usize];
        if !sub.active {
            return;
        }
        match &mut sub.sink {
            Some(s) => s.aggregate_update(value),
            None => self.shared.aggregate_update(id, value),
        }
    }
}

/// A set of standing queries behind one streaming interface.
pub struct QueryIndex {
    engine: XsqEngine,
    groups: Vec<Group>,
    subs: Vec<Sub>,
    dispatch: DispatchIndex,
    scratch_candidates: Vec<u32>,
    scratch_states: Vec<StateId>,
    events: u64,
    touches: u64,
}

impl QueryIndex {
    /// An empty index for the given engine variant (XSQ-F or XSQ-NC).
    pub fn new(engine: XsqEngine) -> Self {
        QueryIndex {
            engine,
            groups: Vec::new(),
            subs: Vec::new(),
            dispatch: DispatchIndex::new(),
            scratch_candidates: Vec::new(),
            scratch_states: Vec::new(),
            events: 0,
            touches: 0,
        }
    }

    fn scan_all_mode(&self) -> bool {
        self.engine.mode() == XsqMode::Full
    }

    /// Build an index from an already-compiled plan — the
    /// [`crate::multi::QuerySet`] grouped path, which plans once at
    /// compile time and instantiates fresh runtime state per run.
    /// `plan[g].members` index into `texts`.
    pub(crate) fn from_plan(
        engine: XsqEngine,
        texts: &[String],
        plan: &[super::prefix::QueryGroup],
    ) -> Self {
        let mut index = QueryIndex::new(engine);
        for t in texts {
            index.subs.push(Sub {
                text: t.clone(),
                group: 0,
                tag: 0,
                active: true,
                sink: None,
            });
        }
        for g in plan {
            let members = g.members.iter().map(|&i| QueryId(i as u32)).collect();
            index.add_group(Arc::clone(&g.hpdt), members);
        }
        index
    }

    /// Register `hpdt` as a new group answering `members` (already
    /// appended to `subs`, in tag order) and index its start frontier.
    fn add_group(&mut self, hpdt: Arc<Hpdt>, members: Vec<QueryId>) {
        let gi = self.groups.len() as u32;
        for (tag, &id) in members.iter().enumerate() {
            let sub = &mut self.subs[id.0 as usize];
            sub.group = gi;
            sub.tag = tag as u32;
        }
        let core = RunnerCore::new(&hpdt, self.scan_all_mode());
        let mut group = Group {
            live: members.len(),
            hpdt,
            core,
            members,
            interest: GroupInterest::default(),
            state_cache: Vec::new(),
            last_frontier: Vec::new(),
            static_interest: false,
        };
        // Probe the group's *full* interest (union over every state). A
        // broad group registers it permanently and never reindexes; a
        // narrow one re-registers just its start frontier and tracks the
        // frontier dynamically.
        self.scratch_states.clear();
        self.scratch_states
            .extend(0..group.hpdt.arcs.len() as StateId);
        self.dispatch.reindex(
            gi,
            &group.hpdt,
            &self.scratch_states,
            &mut group.state_cache,
            &mut group.interest,
        );
        if group.interest.named_keys() >= STATIC_INTEREST_CUTOFF {
            group.static_interest = true;
        } else {
            group.core.frontier_states(&mut self.scratch_states);
            self.dispatch.reindex(
                gi,
                &group.hpdt,
                &self.scratch_states,
                &mut group.state_cache,
                &mut group.interest,
            );
            group.last_frontier.clone_from(&self.scratch_states);
        }
        self.groups.push(group);
    }

    /// Subscribe one query; results go to the shared sink passed to
    /// [`QueryIndex::feed`]. Compiles a private HPDT — use
    /// [`QueryIndex::subscribe_group`] to share prefixes across a batch.
    pub fn subscribe(&mut self, query: &str) -> Result<QueryId, CompileError> {
        let compiled = self.engine.compile_str(query)?;
        let id = QueryId(self.subs.len() as u32);
        self.subs.push(Sub {
            text: query.to_string(),
            group: 0,
            tag: 0,
            active: true,
            sink: None,
        });
        self.add_group(compiled.hpdt_arc(), vec![id]);
        Ok(id)
    }

    /// Subscribe one query with a private sink: its results bypass the
    /// shared sink entirely.
    pub fn subscribe_with_sink(
        &mut self,
        query: &str,
        sink: Box<dyn Sink>,
    ) -> Result<QueryId, CompileError> {
        let id = self.subscribe(query)?;
        self.subs[id.0 as usize].sink = Some(sink);
        Ok(id)
    }

    /// Subscribe a batch at once: queries sharing a leading location-step
    /// prefix compile into one merged HPDT, sharing states and buffers up
    /// to the divergence point. Returns one id per query, in input order.
    /// On error nothing is registered.
    pub fn subscribe_group(&mut self, queries: &[&str]) -> Result<Vec<QueryId>, CompileError> {
        let parsed: Vec<Query> = queries
            .iter()
            .map(|q| {
                let query = xsq_xpath::parse_query(q)?;
                if self.engine.mode() == XsqMode::NoClosure && query.has_closure() {
                    return Err(CompileError::Unsupported {
                        feature: "the closure axis //".into(),
                        engine: "XSQ-NC".into(),
                    });
                }
                Ok(query)
            })
            .collect::<Result<_, CompileError>>()?;
        let plan = plan_groups(&parsed)?;

        let base = self.subs.len() as u32;
        for q in queries {
            self.subs.push(Sub {
                text: q.to_string(),
                group: 0,
                tag: 0,
                active: true,
                sink: None,
            });
        }
        for g in plan {
            let members = g
                .members
                .iter()
                .map(|&i| QueryId(base + i as u32))
                .collect();
            self.add_group(g.hpdt, members);
        }
        Ok((0..queries.len())
            .map(|i| QueryId(base + i as u32))
            .collect())
    }

    /// Subscribe a batch from an already-compiled, already-verified
    /// [`crate::plancache::CachedPlan`] — pure runtime-state
    /// instantiation, no parsing or HPDT construction. The plan's
    /// groups were verified and pruned when the cache built them
    /// ([`super::prefix::plan_groups`]), so re-verification here would
    /// only re-prove the same artifact on every subscriber. Returns one
    /// id per query, in input order, exactly like
    /// [`QueryIndex::subscribe_group`] on the same batch.
    pub fn subscribe_plan(&mut self, plan: &crate::plancache::CachedPlan) -> Vec<QueryId> {
        assert_eq!(
            plan.mode(),
            self.engine.mode(),
            "cached plan compiled for a different engine mode"
        );
        let base = self.subs.len() as u32;
        for t in plan.texts() {
            self.subs.push(Sub {
                text: t.clone(),
                group: 0,
                tag: 0,
                active: true,
                sink: None,
            });
        }
        for g in plan.groups() {
            let members = g
                .members
                .iter()
                .map(|&i| QueryId(base + i as u32))
                .collect();
            self.add_group(Arc::clone(&g.hpdt), members);
        }
        (0..plan.len() as u32).map(|i| QueryId(base + i)).collect()
    }

    /// Subscribe an externally compiled (possibly merged) HPDT. The
    /// transducer is re-verified before registration: a malformed
    /// artifact — hand-built, corrupted in transit, or produced by a
    /// buggy external compiler — is rejected with
    /// [`CompileError::Malformed`] instead of panicking mid-stream.
    /// Returns one id per merged query, in tag order.
    pub fn subscribe_compiled(&mut self, hpdt: Arc<Hpdt>) -> Result<Vec<QueryId>, CompileError> {
        crate::analyze::reject_malformed(&crate::analyze::verify(&hpdt))?;
        if self.engine.mode() == XsqMode::NoClosure && !hpdt.deterministic {
            return Err(CompileError::Unsupported {
                feature: "the closure axis //".into(),
                engine: "XSQ-NC".into(),
            });
        }
        let base = self.subs.len() as u32;
        let ids: Vec<QueryId> = (0..hpdt.merged.len())
            .map(|i| QueryId(base + i as u32))
            .collect();
        for q in &hpdt.merged {
            self.subs.push(Sub {
                text: q.to_string(),
                group: 0,
                tag: 0,
                active: true,
                sink: None,
            });
        }
        self.add_group(hpdt, ids.clone());
        Ok(ids)
    }

    /// Attach (or replace) a private sink on an existing subscription.
    pub fn attach_sink(&mut self, id: QueryId, sink: Box<dyn Sink>) {
        self.subs[id.0 as usize].sink = Some(sink);
    }

    /// Detach a private sink, returning it; the query reverts to the
    /// shared sink.
    pub fn detach_sink(&mut self, id: QueryId) -> Option<Box<dyn Sink>> {
        self.subs[id.0 as usize].sink.take()
    }

    /// Mute a query immediately. Its group keeps running while other
    /// members need it; once the last member unsubscribes the group is
    /// dropped from the dispatch index and costs nothing per event.
    /// Returns false if the id was already unsubscribed.
    pub fn unsubscribe(&mut self, id: QueryId) -> bool {
        let sub = &mut self.subs[id.0 as usize];
        if !sub.active {
            return false;
        }
        sub.active = false;
        let gi = sub.group;
        let group = &mut self.groups[gi as usize];
        group.live -= 1;
        if group.live == 0 {
            self.dispatch.remove_group(gi, &group.interest);
        }
        true
    }

    /// Push one owned event — convenience wrapper over
    /// [`QueryIndex::feed_raw`].
    pub fn feed(&mut self, event: &SaxEvent, shared: &mut dyn QuerySink) {
        self.feed_raw(&event.as_raw(), shared);
    }

    /// Push one borrowed event. Only runners whose dispatch buckets match
    /// the event are stepped; everyone else pays nothing — a skipped
    /// event costs one dense symbol-indexed lookup and zero allocations.
    pub fn feed_raw(&mut self, event: &RawEvent<'_>, shared: &mut dyn QuerySink) {
        self.events += 1;
        let Self {
            groups,
            subs,
            dispatch,
            scratch_candidates,
            scratch_states,
            touches,
            ..
        } = self;
        dispatch.candidates(event, scratch_candidates);
        for &gi in scratch_candidates.iter() {
            let Group {
                hpdt,
                core,
                members,
                interest,
                state_cache,
                last_frontier,
                static_interest,
                ..
            } = &mut groups[gi as usize];
            *touches += 1;
            let mut route = RouteSink {
                members,
                subs,
                shared: &mut *shared,
            };
            let fired = core.feed_raw(hpdt, event, &mut route);
            if fired && !*static_interest {
                // The configuration set moved: re-derive what this group
                // can react to next and update the buckets by diff — but
                // only if the frontier actually changed. Closure states
                // fire on every tracked descent with the same frontier;
                // skipping the rebuild keeps that loop allocation-free.
                // Static-interest groups never reindex: their buckets
                // already cover every state.
                core.frontier_states(scratch_states);
                if scratch_states.as_slice() != last_frontier.as_slice() {
                    last_frontier.clear();
                    last_frontier.extend_from_slice(scratch_states);
                    dispatch.reindex(gi, hpdt, scratch_states, state_cache, interest);
                }
            }
        }
    }

    /// End of document: emit pending aggregates, then reset every runner
    /// (and its dispatch interest) so the index is ready for the next
    /// document. Stats aggregate over all live groups.
    pub fn finish(&mut self, shared: &mut dyn QuerySink) -> RunStats {
        let mut total = RunStats {
            events: self.events,
            results: 0,
            memory: MemoryStats::default(),
        };
        let Self {
            groups,
            subs,
            dispatch,
            scratch_states,
            ..
        } = self;
        for (gi, group) in groups.iter_mut().enumerate() {
            if group.live == 0 {
                continue;
            }
            let Group {
                hpdt,
                core,
                members,
                interest,
                state_cache,
                last_frontier,
                static_interest,
                ..
            } = group;
            let mut route = RouteSink {
                members,
                subs,
                shared: &mut *shared,
            };
            let stats = core.finish(&mut route);
            total.results += stats.results;
            total.memory.peak_bytes += stats.memory.peak_bytes;
            total.memory.peak_items += stats.memory.peak_items;
            total.memory.peak_buffered_items += stats.memory.peak_buffered_items;
            total.memory.peak_configs += stats.memory.peak_configs;
            core.reset(hpdt);
            if !*static_interest {
                core.frontier_states(scratch_states);
                last_frontier.clear();
                last_frontier.extend_from_slice(scratch_states);
                dispatch.reindex(gi as u32, hpdt, scratch_states, state_cache, interest);
            }
        }
        total
    }

    /// Run one complete serialized document through the index.
    pub fn run_document(
        &mut self,
        document: &[u8],
        shared: &mut dyn QuerySink,
    ) -> Result<RunStats, EngineError> {
        self.run_reader(document, shared)
    }

    /// Run one complete document from any buffered reader.
    pub fn run_reader<R: BufRead>(
        &mut self,
        reader: R,
        shared: &mut dyn QuerySink,
    ) -> Result<RunStats, EngineError> {
        let mut parser = StreamParser::new(reader);
        while let Some(ev) = parser.next_raw()? {
            self.feed_raw(&ev, shared);
        }
        Ok(self.finish(shared))
    }

    /// Total subscriptions ever made (including unsubscribed ones).
    pub fn len(&self) -> usize {
        self.subs.len()
    }

    pub fn is_empty(&self) -> bool {
        self.subs.is_empty()
    }

    /// Active (unmuted) subscriptions.
    pub fn active_len(&self) -> usize {
        self.subs.iter().filter(|s| s.active).count()
    }

    /// Number of compiled runner groups (≤ number of subscriptions when
    /// prefix sharing merged some).
    pub fn group_count(&self) -> usize {
        self.groups.len()
    }

    /// The query text behind an id.
    pub fn text(&self, id: QueryId) -> &str {
        &self.subs[id.0 as usize].text
    }

    pub fn is_active(&self, id: QueryId) -> bool {
        self.subs[id.0 as usize].active
    }

    /// Events fed so far (cumulative across documents).
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Runner-group feeds performed so far. `feed_all` over N separate
    /// queries would accumulate `events × N`; the dispatch index keeps
    /// this close to the number of events that actually matter.
    pub fn touches(&self) -> u64 {
        self.touches
    }
}

impl std::fmt::Debug for QueryIndex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QueryIndex")
            .field("subscriptions", &self.subs.len())
            .field("groups", &self.groups.len())
            .field("events", &self.events)
            .field("touches", &self.touches)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::evaluate;
    use std::cell::RefCell;
    use std::rc::Rc;

    const DOC: &[u8] = b"<pub><book id=\"1\"><name>First</name><author>A</author>\
                         <price>10</price></book><book id=\"2\"><name>Second</name>\
                         <price>14</price></book><year>2002</year></pub>";

    #[test]
    fn shared_sink_results_match_individual_engines() {
        let queries = [
            "/pub/book/name/text()",
            "/pub/book/@id",
            "/pub/book[author]/name/text()",
            "/pub/year/text()",
        ];
        let mut index = QueryIndex::new(XsqEngine::full());
        let ids = index.subscribe_group(&queries).unwrap();
        let mut sink = VecQuerySink::new();
        index.run_document(DOC, &mut sink).unwrap();
        for (q, &id) in queries.iter().zip(&ids) {
            let expected = evaluate(q, DOC).unwrap();
            assert_eq!(index.text(id), *q);
            assert_eq!(sink.of(id), expected, "mismatch for {q}");
        }
    }

    #[test]
    fn prefix_sharing_reduces_group_count() {
        let mut index = QueryIndex::new(XsqEngine::full());
        index
            .subscribe_group(&[
                "/pub/book/name/text()",
                "/pub/book/price/text()",
                "/pub/year/text()",
            ])
            .unwrap();
        assert_eq!(index.len(), 3);
        assert_eq!(index.group_count(), 1);
    }

    #[test]
    fn private_sinks_bypass_the_shared_sink() {
        #[derive(Default)]
        struct Shared(Rc<RefCell<Vec<String>>>);
        impl Sink for Shared {
            fn result(&mut self, value: &str) {
                self.0.borrow_mut().push(value.to_string());
            }
        }

        let mut index = QueryIndex::new(XsqEngine::full());
        let private = Rc::new(RefCell::new(Vec::new()));
        index
            .subscribe_with_sink(
                "/pub/book/name/text()",
                Box::new(Shared(Rc::clone(&private))),
            )
            .unwrap();
        let years = index.subscribe("/pub/year/text()").unwrap();
        let mut shared = VecQuerySink::new();
        index.run_document(DOC, &mut shared).unwrap();
        assert_eq!(*private.borrow(), ["First", "Second"]);
        assert_eq!(shared.results, [(years, "2002".to_string())]);
    }

    #[test]
    fn unsubscribe_mutes_immediately_and_forever() {
        let mut index = QueryIndex::new(XsqEngine::full());
        let names = index.subscribe("/pub/book/name/text()").unwrap();
        let years = index.subscribe("/pub/year/text()").unwrap();
        assert!(index.unsubscribe(names));
        assert!(!index.unsubscribe(names));
        let mut sink = VecQuerySink::new();
        index.run_document(DOC, &mut sink).unwrap();
        assert_eq!(sink.of(names), Vec::<&str>::new());
        assert_eq!(sink.of(years), ["2002"]);
        assert_eq!(index.active_len(), 1);
    }

    #[test]
    fn the_index_survives_multiple_documents() {
        let mut index = QueryIndex::new(XsqEngine::full());
        let id = index.subscribe("/a/b/text()").unwrap();
        let mut sink = VecQuerySink::new();
        index.run_document(b"<a><b>one</b></a>", &mut sink).unwrap();
        index.run_document(b"<a><b>two</b></a>", &mut sink).unwrap();
        assert_eq!(sink.of(id), ["one", "two"]);
    }

    #[test]
    fn aggregation_queries_report_through_the_index() {
        let mut index = QueryIndex::new(XsqEngine::full());
        let total = index.subscribe("/pub/book/price/sum()").unwrap();
        let mut sink = VecQuerySink::new();
        index.run_document(DOC, &mut sink).unwrap();
        assert_eq!(sink.of(total), ["24"]);
        assert!(!sink.updates.is_empty());
    }

    #[test]
    fn dispatch_skips_uninterested_runners() {
        let mut index = QueryIndex::new(XsqEngine::full());
        // 8 standing queries on tags that never appear in the document.
        for i in 0..8 {
            index.subscribe(&format!("/pub/ghost{i}/text()")).unwrap();
        }
        let watched = index.subscribe("/pub/year/text()").unwrap();
        let mut sink = VecQuerySink::new();
        index.run_document(DOC, &mut sink).unwrap();
        assert_eq!(sink.of(watched), ["2002"]);
        // feed_all would touch 9 runners per event; dispatch must do far
        // better. Brackets and `pub` begin/end touch everyone, but inner
        // book/name/... events only the matching bucket.
        assert!(
            index.touches() < index.events() * 9 / 2,
            "touches {} not < half of events*N {}",
            index.touches(),
            index.events() * 9
        );
    }

    #[test]
    fn closure_queries_stay_reachable_through_the_wildcard_bucket() {
        let mut index = QueryIndex::new(XsqEngine::full());
        let deep = index.subscribe("//name/text()").unwrap();
        let mut sink = VecQuerySink::new();
        index.run_document(DOC, &mut sink).unwrap();
        assert_eq!(sink.of(deep), ["First", "Second"]);
    }

    #[test]
    fn nc_mode_rejects_closures_in_groups() {
        let mut index = QueryIndex::new(XsqEngine::no_closure());
        let err = index
            .subscribe_group(&["/a/b/text()", "//c/text()"])
            .unwrap_err();
        assert!(matches!(err, CompileError::Unsupported { .. }));
        // The failed batch registered nothing.
        assert_eq!(index.len(), 0);
    }

    #[test]
    fn subscribe_compiled_accepts_verified_hpdts() {
        let mut index = QueryIndex::new(XsqEngine::full());
        let compiled = XsqEngine::full()
            .compile_str("/pub/book/name/text()")
            .unwrap();
        let ids = index.subscribe_compiled(compiled.hpdt_arc()).unwrap();
        assert_eq!(ids.len(), 1);
        let mut sink = VecQuerySink::new();
        index.run_document(DOC, &mut sink).unwrap();
        assert_eq!(sink.of(ids[0]), ["First", "Second"]);
        assert_eq!(index.text(ids[0]), "/pub/book/name/text()");
    }

    #[test]
    fn subscribe_compiled_rejects_corrupted_hpdts() {
        let mut index = QueryIndex::new(XsqEngine::full());
        let compiled = XsqEngine::full().compile_str("/a[b]/c/text()").unwrap();
        let mut hpdt =
            crate::build::build_hpdt(&xsq_xpath::parse_query("/a[b]/c/text()").unwrap()).unwrap();
        // Drop a queue slot the runtime would `expect` on: the verifier
        // must catch this before any event is fed.
        let victim = *hpdt.queue_index.keys().max_by_key(|id| id.layer).unwrap();
        hpdt.queue_index.remove(&victim);
        let err = index.subscribe_compiled(Arc::new(hpdt)).unwrap_err();
        assert!(
            matches!(&err, CompileError::Malformed { diagnostic } if diagnostic.contains("queue")),
            "unexpected error: {err}"
        );
        // The clean twin still subscribes fine.
        assert!(index.subscribe_compiled(compiled.hpdt_arc()).is_ok());
        assert_eq!(index.len(), 1);
    }

    #[test]
    fn mid_stream_subscription_waits_for_the_next_document() {
        let mut index = QueryIndex::new(XsqEngine::full());
        let first = index.subscribe("/a/b/text()").unwrap();
        let mut sink = VecQuerySink::new();
        index.feed(&SaxEvent::StartDocument, &mut sink);
        index.feed(
            &SaxEvent::Begin {
                name: "a".into(),
                attributes: vec![],
                depth: 1,
            },
            &mut sink,
        );
        // Late subscriber: misses this document entirely.
        let late = index.subscribe("/a/b/text()").unwrap();
        index.feed(
            &SaxEvent::Begin {
                name: "b".into(),
                attributes: vec![],
                depth: 2,
            },
            &mut sink,
        );
        index.feed(
            &SaxEvent::Text {
                element: "b".into(),
                text: "x".into(),
                depth: 2,
            },
            &mut sink,
        );
        index.feed(
            &SaxEvent::End {
                name: "b".into(),
                depth: 2,
            },
            &mut sink,
        );
        index.feed(
            &SaxEvent::End {
                name: "a".into(),
                depth: 1,
            },
            &mut sink,
        );
        index.feed(&SaxEvent::EndDocument, &mut sink);
        index.finish(&mut sink);
        assert_eq!(sink.of(first), ["x"]);
        assert_eq!(sink.of(late), Vec::<&str>::new());

        // The next document reaches both.
        index.run_document(b"<a><b>y</b></a>", &mut sink).unwrap();
        assert_eq!(sink.of(first), ["x", "y"]);
        assert_eq!(sink.of(late), ["y"]);
    }
}
