//! Prefix-sharing group planner.
//!
//! Standing query sets are usually templated — hundreds of subscriptions
//! differing only in a trailing step or predicate constant. Compiling
//! each one to a private HPDT repeats the shared prefix N times: N
//! copies of the same BPDT chain, N buffer queues holding the same
//! items, N arcs scanned per event. [`plan_groups`] instead partitions
//! the set so queries that share a leading location step compile into
//! one merged HPDT (see [`crate::build::build_merged_hpdt`]): the trie
//! underneath shares every common step prefix, fanning out only at the
//! divergence point, and tags each query's leaves so results stay
//! attributed.
//!
//! Element-output queries get singleton groups — their catchall
//! serialization machinery assumes sole ownership of a config's item
//! slot, so they never merge (and lose nothing: sharing only pays when
//! a prefix repeats).

use std::sync::Arc;

use xsq_xpath::{Output, Query};

use crate::build::{build_hpdt, build_merged_hpdt, Hpdt};
use crate::error::CompileError;

/// One compiled group: a (possibly merged) HPDT plus the indices of the
/// queries it answers, in tag order — `members[t]` is the original
/// index of the query whose results carry tag `t`.
#[derive(Debug, Clone)]
pub struct QueryGroup {
    pub hpdt: Arc<Hpdt>,
    pub members: Vec<usize>,
}

/// Partition `queries` into prefix-sharing groups and compile each.
///
/// Grouping is by equality of the first location step (axis, node test,
/// predicate): queries that don't even agree on step one share no
/// prefix worth merging, and separate groups keep the dispatch index's
/// buckets fine-grained. Group order follows first appearance, and
/// members keep their input order inside a group, so result attribution
/// is stable across runs.
pub fn plan_groups(queries: &[Query]) -> Result<Vec<QueryGroup>, CompileError> {
    // (representative first step, member indices) in first-seen order.
    let mut buckets: Vec<(usize, Vec<usize>)> = Vec::new();
    let mut singles: Vec<usize> = Vec::new();
    for (i, q) in queries.iter().enumerate() {
        if q.output == Output::Element || q.is_empty() {
            singles.push(i);
            continue;
        }
        match buckets
            .iter_mut()
            .find(|(rep, _)| queries[*rep].steps[0] == q.steps[0])
        {
            Some((_, members)) => members.push(i),
            None => buckets.push((i, vec![i])),
        }
    }

    let mut groups = Vec::with_capacity(buckets.len() + singles.len());
    for (_, members) in buckets {
        let hpdt = if members.len() == 1 {
            // A lone query compiles on the classic single-query path,
            // bit-identical to what `XsqEngine::compile` produces.
            build_hpdt(&queries[members[0]])?
        } else {
            let group: Vec<Query> = members.iter().map(|&i| queries[i].clone()).collect();
            build_merged_hpdt(&group)?
        };
        groups.push(QueryGroup {
            hpdt: Arc::new(checked(hpdt)?),
            members,
        });
    }
    for i in singles {
        groups.push(QueryGroup {
            hpdt: Arc::new(checked(build_hpdt(&queries[i])?)?),
            members: vec![i],
        });
    }
    Ok(groups)
}

/// Verify a freshly built group HPDT and prune dead structure — merged
/// transducers accumulate duplicate closure self-loops (one per trie
/// child expanding a shared state) that pruning folds back to one.
fn checked(hpdt: Hpdt) -> Result<Hpdt, CompileError> {
    crate::analyze::reject_malformed(&crate::analyze::verify(&hpdt))?;
    let (pruned, _) = crate::analyze::prune(&hpdt);
    Ok(pruned)
}

#[cfg(test)]
mod tests {
    use super::*;
    use xsq_xpath::parse_query;

    fn queries(texts: &[&str]) -> Vec<Query> {
        texts.iter().map(|t| parse_query(t).unwrap()).collect()
    }

    #[test]
    fn shared_first_step_merges_into_one_group() {
        let qs = queries(&["/a/b/text()", "/a/c/text()", "/a/b/@id"]);
        let groups = plan_groups(&qs).unwrap();
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0].members, [0, 1, 2]);
        assert_eq!(groups[0].hpdt.merged.len(), 3);
    }

    #[test]
    fn distinct_first_steps_stay_separate() {
        let qs = queries(&["/a/b/text()", "/x/y/text()"]);
        let groups = plan_groups(&qs).unwrap();
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[0].members, [0]);
        assert_eq!(groups[1].members, [1]);
    }

    #[test]
    fn predicate_differences_on_step_one_split_groups() {
        let qs = queries(&["/a[b]/c/text()", "/a/c/text()"]);
        let groups = plan_groups(&qs).unwrap();
        assert_eq!(groups.len(), 2);
    }

    #[test]
    fn element_output_queries_get_singleton_groups() {
        let qs = queries(&["/a/b", "/a/b/text()", "/a/c"]);
        let groups = plan_groups(&qs).unwrap();
        // text() query groups alone (nothing shares its category), the
        // two element queries each stand alone at the end.
        assert_eq!(groups.len(), 3);
        assert_eq!(groups[0].members, [1]);
        assert_eq!(groups[1].members, [0]);
        assert_eq!(groups[2].members, [2]);
    }

    #[test]
    fn lone_member_compiles_on_the_single_query_path() {
        let qs = queries(&["/a/b/text()"]);
        let groups = plan_groups(&qs).unwrap();
        let direct = build_hpdt(&qs[0]).unwrap();
        assert_eq!(groups[0].hpdt.states.len(), direct.states.len());
        assert_eq!(groups[0].hpdt.bpdt_count, direct.bpdt_count);
    }
}
