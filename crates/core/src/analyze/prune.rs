//! Reachability + dead-arc elimination over a compiled HPDT.
//!
//! Three behavior-preserving reductions, applied in order:
//!
//! 1. **Unsatisfiable-guard arcs** are deleted. XPath 1.0 relational
//!    comparisons are always numeric, so a guard like `@price < "abc"`
//!    (NaN right-hand side) rejects every event; the arc can never fire.
//! 2. **Exact duplicate arcs with no actions** are deduplicated. The
//!    merged multi-query builder adds one closure self-loop per trie
//!    child expanding a shared state; firing N identical action-free
//!    arcs derives N identical successor configurations that the runtime
//!    dedups anyway — one arc suffices. (Duplicates *with* actions are
//!    kept: collapsing them would drop repeated effects.)
//! 3. **States unreachable from the start state** are removed, with
//!    state ids remapped and the queue index re-densified over the
//!    buffers still referenced.
//!
//! The result is a smaller configuration set for the nondeterministic
//! runtime to scan and smaller dispatch buckets in the multi-query index.

use std::collections::HashMap;

use crate::arcs::{compute_arc_tables, Action, Arc, Disposition, StateId};
use crate::build::{compute_scan_all, uses_buffers, Hpdt};
use crate::ids::BpdtId;

use super::{comparison_unsatisfiable, prove_deterministic};

/// Before/after sizes of one pruning pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PruneStats {
    pub states_before: usize,
    pub states_after: usize,
    pub arcs_before: usize,
    pub arcs_after: usize,
}

impl PruneStats {
    /// Did the pass remove anything?
    pub fn changed(&self) -> bool {
        self.states_before != self.states_after || self.arcs_before != self.arcs_after
    }
}

/// Is the arc's guard statically unsatisfiable?
fn guard_unsatisfiable(arc: &Arc) -> bool {
    use crate::arcs::Guard;
    match &arc.guard {
        Some(Guard::Attr { cmp: Some(c), .. }) | Some(Guard::Text { cmp: Some(c) }) => {
            comparison_unsatisfiable(c)
        }
        _ => false,
    }
}

/// Prune one compiled HPDT, returning the reduced transducer and the
/// before/after sizes. Pruning is the identity on transducers with no
/// dead structure — the common case for well-formed queries.
pub fn prune(hpdt: &Hpdt) -> (Hpdt, PruneStats) {
    let states_before = hpdt.states.len();
    let arcs_before = hpdt.arc_count();

    // Step 1 + 2: per-state arc filtering (dead guards, exact duplicates
    // of action-free arcs already kept for this state).
    let mut kept_arcs: Vec<Vec<Arc>> = hpdt
        .arcs
        .iter()
        .map(|outgoing| {
            let mut kept: Vec<Arc> = Vec::with_capacity(outgoing.len());
            for arc in outgoing {
                if guard_unsatisfiable(arc) {
                    continue;
                }
                // Owner is ignored for action-free arcs: it only addresses
                // queues, which only actions touch. The merged builder's
                // per-query closure self-loops differ in nothing else.
                if arc.actions.is_empty()
                    && kept.iter().any(|k| {
                        k.actions.is_empty()
                            && k.label == arc.label
                            && k.guard == arc.guard
                            && k.target == arc.target
                    })
                {
                    continue;
                }
                kept.push(arc.clone());
            }
            kept
        })
        .collect();

    // Step 3: reachability over the reduced arc set, then remap.
    let n = hpdt.states.len();
    let mut reachable = vec![false; n];
    let mut stack = vec![hpdt.start as usize];
    reachable[hpdt.start as usize] = true;
    while let Some(s) = stack.pop() {
        for arc in &kept_arcs[s] {
            let t = arc.target as usize;
            if t < n && !reachable[t] {
                reachable[t] = true;
                stack.push(t);
            }
        }
    }

    let mut remap: Vec<Option<StateId>> = vec![None; n];
    let mut states = Vec::new();
    for s in 0..n {
        if reachable[s] {
            remap[s] = Some(states.len() as StateId);
            states.push(hpdt.states[s].clone());
        }
    }
    let mut arcs: Vec<Vec<Arc>> = Vec::with_capacity(states.len());
    for s in 0..n {
        if !reachable[s] {
            continue;
        }
        let mut outgoing = std::mem::take(&mut kept_arcs[s]);
        for arc in &mut outgoing {
            arc.target = remap[arc.target as usize].expect("kept arcs target reachable states");
        }
        arcs.push(outgoing);
    }

    // Re-densify the queue index over the buffers still referenced: arc
    // owners (the runtime resolves every acting arc's own queue), upload
    // targets, and enqueue destinations — plus the root, which anchors
    // the id tree.
    let mut referenced: Vec<BpdtId> = vec![BpdtId::ROOT];
    for arc in arcs.iter().flatten() {
        referenced.push(arc.owner);
        for action in &arc.actions {
            match action {
                Action::UploadSelf(t) => referenced.push(*t),
                Action::Emit {
                    to: Disposition::Queue(id),
                    ..
                }
                | Action::ElementStart {
                    to: Disposition::Queue(id),
                    ..
                } => referenced.push(*id),
                _ => {}
            }
        }
    }
    // Preserve the original slot order so single-query HPDTs keep their
    // layer-major queue layout.
    let mut old_order: Vec<(usize, BpdtId)> = hpdt
        .queue_index
        .iter()
        .map(|(&id, &slot)| (slot, id))
        .collect();
    old_order.sort_unstable();
    let mut queue_index: HashMap<BpdtId, usize> = HashMap::new();
    for (_, id) in old_order {
        if referenced.contains(&id) {
            let next = queue_index.len();
            queue_index.entry(id).or_insert(next);
        }
    }

    let scan_all = compute_scan_all(&arcs);
    let arc_tables = compute_arc_tables(&arcs);
    let buffered = uses_buffers(&arcs);
    let start = remap[hpdt.start as usize].expect("start state is always reachable");
    let mut pruned = Hpdt {
        bpdt_count: queue_index.len(),
        start,
        scan_all,
        arc_tables,
        buffered,
        states,
        arcs,
        queue_index,
        layers: hpdt.layers,
        deterministic: hpdt.deterministic,
        query: hpdt.query.clone(),
        merged: hpdt.merged.clone(),
    };
    // Pruning can delete every closure arc of a query that textually
    // uses `//` (an unsatisfiable guard upstream of the closure); the
    // artifact is then deterministic even though the query is not.
    pruned.deterministic = pruned.deterministic || prove_deterministic(&pruned);

    let stats = PruneStats {
        states_before,
        states_after: pruned.states.len(),
        arcs_before,
        arcs_after: pruned.arc_count(),
    };
    (pruned, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::{build_hpdt, build_merged_hpdt};
    use xsq_xpath::parse_query;

    fn built(q: &str) -> Hpdt {
        build_hpdt(&parse_query(q).unwrap()).unwrap()
    }

    #[test]
    fn pruning_clean_queries_is_identity() {
        for q in [
            "/a/b/text()",
            "/pub[year=2002]/book[price<11]/author",
            "//pub[year>2000]//book[author]//name/text()",
            "/a[@id]/b/text()",
            "//b/count()",
        ] {
            let h = built(q);
            let (p, stats) = prune(&h);
            assert!(!stats.changed(), "{q}: {stats:?}");
            assert_eq!(p.states.len(), h.states.len());
            assert_eq!(p.arc_count(), h.arc_count());
            assert_eq!(p.bpdt_count, h.bpdt_count);
            assert_eq!(p.queue_index, h.queue_index);
            assert_eq!(p.scan_all, h.scan_all);
            assert_eq!(p.buffered, h.buffered);
        }
    }

    #[test]
    fn unsatisfiable_attr_guard_prunes_the_subtree() {
        // `@sev > "critical"` is numeric-vs-NaN: never true. The guarded
        // entry arc dies, and everything below the step with it.
        let h = built("/feed/t[@sev>critical]/f/text()");
        let (p, stats) = prune(&h);
        assert!(stats.changed());
        assert!(stats.states_after < stats.states_before, "{stats:?}");
        // The surviving transducer still verifies clean.
        let diags = crate::analyze::verify(&p);
        assert!(!crate::analyze::has_errors(&diags), "{diags:?}");
    }

    #[test]
    fn unsatisfiable_text_guard_prunes_witness_states() {
        let h = built("/a[b<xyz]/c/text()");
        let (p, stats) = prune(&h);
        assert!(stats.states_after < stats.states_before, "{stats:?}");
        let diags = crate::analyze::verify(&p);
        assert!(!crate::analyze::has_errors(&diags), "{diags:?}");
    }

    #[test]
    fn duplicate_closure_self_loops_are_deduplicated() {
        // Two closure queries share the /feed prefix; each adds its own
        // self-loop on the shared TRUE state.
        let queries: Vec<_> = ["/feed//a/text()", "/feed//b/text()"]
            .iter()
            .map(|q| parse_query(q).unwrap())
            .collect();
        let h = build_merged_hpdt(&queries).unwrap();
        let dup_loops = h
            .arcs
            .iter()
            .map(|arcs| {
                arcs.iter()
                    .filter(|a| a.label == crate::arcs::ArcLabel::ClosureSelfLoop)
                    .count()
            })
            .max()
            .unwrap();
        assert!(
            dup_loops >= 2,
            "expected duplicated self-loops, got {dup_loops}"
        );
        let (p, stats) = prune(&h);
        let max_loops = p
            .arcs
            .iter()
            .map(|arcs| {
                arcs.iter()
                    .filter(|a| a.label == crate::arcs::ArcLabel::ClosureSelfLoop)
                    .count()
            })
            .max()
            .unwrap();
        assert_eq!(max_loops, 1);
        assert!(stats.arcs_after < stats.arcs_before);
    }

    #[test]
    fn fully_pruned_closure_becomes_deterministic() {
        // The closure lives below an unsatisfiable guard: pruning deletes
        // it, and the artifact is provably deterministic even though the
        // query text says `//`.
        let h = built("/a[@x>nope]//b/text()");
        assert!(!h.deterministic);
        let (p, _) = prune(&h);
        assert!(p.deterministic);
        assert!(prove_deterministic(&p));
    }
}
