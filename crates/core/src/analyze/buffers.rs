//! Buffer-necessity analysis (§3.2's templates, read off the artifact).
//!
//! Each BPDT owns one queue. Whether that queue can ever hold anything
//! is statically determined by the arcs: a queue only fills through an
//! `Emit`/`ElementStart` routed `OwnQueue` or `Queue(id)`, or through an
//! upload from a descendant. Classifying every queue tells us which §3.2
//! template actually *needs* its buffer for this query:
//!
//! * a query with no predicates (or only attribute-of-self predicates,
//!   category 1) resolves every step at the begin event — **no buffering
//!   at all**, results are emitted directly and the runner skips queue
//!   allocation entirely;
//! * categories 2–5 hold values in the owner's queue until the witness
//!   event ([`BufferClass::OwnPredicate`]);
//! * below an undecided ancestor, values go to the nearest such
//!   ancestor's queue instead ([`BufferClass::UpstreamPredicate`]).

use crate::arcs::{Action, Disposition};
use crate::build::Hpdt;
use crate::ids::BpdtId;

/// Why one BPDT's queue can (or cannot) hold entries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BufferClass {
    /// Nothing ever enqueues here: the queue is statically elided.
    Unused,
    /// Holds this BPDT's own pending values until its predicate resolves
    /// (the §3.2 category 2–5 templates on an all-ancestors-true path).
    OwnPredicate,
    /// Holds values (its own or uploaded) pending an *ancestor*
    /// predicate: some descendant routes into this queue.
    UpstreamPredicate,
}

impl BufferClass {
    pub fn label(&self) -> &'static str {
        match self {
            BufferClass::Unused => "unused",
            BufferClass::OwnPredicate => "own-predicate",
            BufferClass::UpstreamPredicate => "upstream-predicate",
        }
    }
}

/// Classification of one queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BufferInfo {
    pub bpdt: BpdtId,
    pub class: BufferClass,
}

/// The full buffer plan of one HPDT.
#[derive(Debug, Clone)]
pub struct BufferPlan {
    /// One entry per BPDT, in queue-slot order.
    pub buffers: Vec<BufferInfo>,
    /// False when every buffer is [`BufferClass::Unused`]: the runner
    /// allocates no queues and every result is emitted directly.
    pub buffered: bool,
}

impl BufferPlan {
    /// Number of queues that can actually hold entries.
    pub fn live_buffers(&self) -> usize {
        self.buffers
            .iter()
            .filter(|b| b.class != BufferClass::Unused)
            .count()
    }
}

/// Classify every queue of a compiled HPDT.
pub fn analyze_buffers(hpdt: &Hpdt) -> BufferPlan {
    let mut order: Vec<(usize, BpdtId)> = hpdt
        .queue_index
        .iter()
        .map(|(&id, &slot)| (slot, id))
        .collect();
    order.sort_unstable();

    let mut buffers: Vec<BufferInfo> = order
        .iter()
        .map(|&(_, bpdt)| BufferInfo {
            bpdt,
            class: BufferClass::Unused,
        })
        .collect();
    let slot_of = |id: BpdtId| hpdt.queue_index.get(&id).copied();

    // `UpstreamPredicate` (someone routes *into* this queue from below)
    // dominates `OwnPredicate` (the queue holds only its owner's pending
    // values), so apply own-queue routing first and upgrades second.
    for arcs in &hpdt.arcs {
        for arc in arcs {
            for action in &arc.actions {
                if let Action::Emit {
                    to: Disposition::OwnQueue,
                    ..
                }
                | Action::ElementStart {
                    to: Disposition::OwnQueue,
                    ..
                } = action
                {
                    if let Some(slot) = slot_of(arc.owner) {
                        if buffers[slot].class == BufferClass::Unused {
                            buffers[slot].class = BufferClass::OwnPredicate;
                        }
                    }
                }
            }
        }
    }
    for arcs in &hpdt.arcs {
        for arc in arcs {
            for action in &arc.actions {
                let upstream = match action {
                    Action::UploadSelf(t) => Some(*t),
                    Action::Emit {
                        to: Disposition::Queue(id),
                        ..
                    }
                    | Action::ElementStart {
                        to: Disposition::Queue(id),
                        ..
                    } => Some(*id),
                    _ => None,
                };
                if let Some(id) = upstream {
                    if let Some(slot) = slot_of(id) {
                        buffers[slot].class = BufferClass::UpstreamPredicate;
                    }
                }
            }
        }
    }

    let buffered = buffers.iter().any(|b| b.class != BufferClass::Unused);
    BufferPlan { buffers, buffered }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::build_hpdt;
    use xsq_xpath::parse_query;

    fn plan(q: &str) -> BufferPlan {
        let h = build_hpdt(&parse_query(q).unwrap()).unwrap();
        let p = analyze_buffers(&h);
        assert_eq!(
            p.buffered, h.buffered,
            "plan and builder disagree on buffering for {q}"
        );
        p
    }

    #[test]
    fn predicate_free_queries_elide_all_buffers() {
        let p = plan("/a/b/c/text()");
        assert!(!p.buffered);
        assert_eq!(p.live_buffers(), 0);
    }

    #[test]
    fn attr_of_self_predicates_still_elide() {
        // Category 1 resolves at the begin event itself: direct emission.
        let p = plan("/a[@id]/b/text()");
        assert!(!p.buffered);
    }

    #[test]
    fn own_text_predicate_buffers_in_own_queue() {
        let p = plan("/a[text()=x]/@id");
        assert!(p.buffered);
        assert!(p
            .buffers
            .iter()
            .any(|b| b.class == BufferClass::OwnPredicate));
    }

    #[test]
    fn child_predicate_buffers_upstream() {
        // The leaf below the undecided [b] routes into bpdt(1,1)'s queue.
        let p = plan("/a[b]/c/text()");
        assert!(p.buffered);
        let slot11 = p
            .buffers
            .iter()
            .find(|b| b.bpdt == BpdtId::new(1, 1))
            .unwrap();
        assert_eq!(slot11.class, BufferClass::UpstreamPredicate);
    }
}
