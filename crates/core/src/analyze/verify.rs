//! Structural verification of a compiled HPDT ("HPDT lint").
//!
//! The builder maintains a web of invariants the runtime silently relies
//! on — arc targets in bounds, every buffer-addressing action backed by a
//! registered queue, depth-vector slots written before they are read,
//! BPDT tree positions matching the predicate templates. A bug in the
//! builder (or a hand-corrupted transducer) violates them and the runtime
//! panics deep inside `execute`. The verifier checks them all up front
//! and returns machine-readable diagnostics instead.

use std::collections::HashMap;

use xsq_xpath::classify::{classify, StepCategory};

use crate::arcs::{Action, Arc, ArcLabel, Disposition};
use crate::build::{compute_scan_all, Hpdt};
use crate::ids::BpdtId;

use super::Diagnostic;

/// Run every structural check over one compiled HPDT. An empty result (or
/// one with only warnings/info) means the transducer is safe to execute.
pub fn verify(hpdt: &Hpdt) -> Vec<Diagnostic> {
    let mut out = Vec::new();

    // Shape: the three per-state tables must agree. Everything else
    // indexes by state, so a mismatch aborts verification immediately.
    let n = hpdt.states.len();
    if hpdt.arcs.len() != n || hpdt.scan_all.len() != n {
        out.push(Diagnostic::error(
            "table-shape",
            format!(
                "per-state tables disagree: {} states, {} arc lists, {} scan-all flags",
                n,
                hpdt.arcs.len(),
                hpdt.scan_all.len()
            ),
        ));
        return out;
    }
    if (hpdt.start as usize) >= n {
        out.push(Diagnostic::error(
            "start-out-of-bounds",
            format!("start state ${} but only {n} states exist", hpdt.start),
        ));
        return out;
    }

    check_arc_targets(hpdt, &mut out);
    check_queue_index(hpdt, &mut out);
    check_reachability(hpdt, &mut out);
    check_buffer_release(hpdt, &mut out);
    check_depth_discipline(hpdt, &mut out);
    check_scan_all(hpdt, &mut out);
    check_deterministic_flag(hpdt, &mut out);
    if hpdt.merged.len() == 1 {
        check_tree_positions(hpdt, &mut out);
    }
    out
}

fn check_arc_targets(hpdt: &Hpdt, out: &mut Vec<Diagnostic>) {
    let n = hpdt.states.len();
    for (s, arcs) in hpdt.arcs.iter().enumerate() {
        for arc in arcs {
            if (arc.target as usize) >= n {
                out.push(
                    Diagnostic::error(
                        "arc-target-out-of-bounds",
                        format!(
                            "arc {:?} from state ${s} targets ${} but only {n} states exist",
                            arc.label, arc.target
                        ),
                    )
                    .at_state(s as u32),
                );
            }
            if arc.owner_layer != arc.owner.layer {
                out.push(
                    Diagnostic::error(
                        "owner-layer-mismatch",
                        format!(
                            "arc {:?} from state ${s} caches owner layer {} but its owner is {}",
                            arc.label, arc.owner_layer, arc.owner
                        ),
                    )
                    .at_state(s as u32),
                );
            }
        }
    }
}

/// Every buffer-addressing id the runtime will look up must be in the
/// dense queue index — this is exactly the `queue_idx` lookup that
/// `expect`s at runtime, surfaced as a diagnostic instead.
fn check_queue_index(hpdt: &Hpdt, out: &mut Vec<Diagnostic>) {
    let require = |id: BpdtId, what: &str, state: usize, out: &mut Vec<Diagnostic>| {
        if !hpdt.queue_index.contains_key(&id) {
            out.push(
                Diagnostic::error(
                    "queue-index-missing",
                    format!("{what} addresses {id}, which has no queue slot"),
                )
                .at_state(state as u32)
                .at_bpdt(id),
            );
        }
    };
    for (s, arcs) in hpdt.arcs.iter().enumerate() {
        for arc in arcs {
            if !arc.actions.is_empty() {
                require(arc.owner, "an arc with actions", s, out);
            }
            for action in &arc.actions {
                match action {
                    Action::UploadSelf(target) => require(*target, "an upload", s, out),
                    Action::Emit {
                        to: Disposition::Queue(id),
                        ..
                    }
                    | Action::ElementStart {
                        to: Disposition::Queue(id),
                        ..
                    } => require(*id, "an enqueue", s, out),
                    _ => {}
                }
            }
        }
    }
    // Density: the queue index maps BPDTs to slots 0..bpdt_count with no
    // gaps or duplicates (queues are stored in a dense Vec).
    if hpdt.queue_index.len() != hpdt.bpdt_count {
        out.push(Diagnostic::error(
            "queue-index-dense",
            format!(
                "bpdt_count is {} but the queue index has {} entries",
                hpdt.bpdt_count,
                hpdt.queue_index.len()
            ),
        ));
    }
    let mut slots: Vec<usize> = hpdt.queue_index.values().copied().collect();
    slots.sort_unstable();
    if slots.iter().enumerate().any(|(i, &v)| i != v) {
        out.push(Diagnostic::error(
            "queue-index-dense",
            "queue slots are not the dense range 0..bpdt_count".to_string(),
        ));
    }
}

/// States the start state cannot reach are dead weight: they can never
/// hold a configuration, but they still cost dispatch-index space. The
/// pruner removes them; here they are a warning.
fn check_reachability(hpdt: &Hpdt, out: &mut Vec<Diagnostic>) {
    let reachable = reachable_states(hpdt);
    let dead: Vec<usize> = (0..hpdt.states.len()).filter(|&s| !reachable[s]).collect();
    if let Some(&first) = dead.first() {
        out.push(
            Diagnostic::warning(
                "unreachable-state",
                format!(
                    "{} state(s) unreachable from the start state (first: ${first}, \
                     owned by {}); run the pruner",
                    dead.len(),
                    hpdt.states[first].owner
                ),
            )
            .at_state(first as u32)
            .at_bpdt(hpdt.states[first].owner),
        );
    }
}

pub(crate) fn reachable_states(hpdt: &Hpdt) -> Vec<bool> {
    let mut reachable = vec![false; hpdt.states.len()];
    let mut stack = vec![hpdt.start as usize];
    reachable[hpdt.start as usize] = true;
    while let Some(s) = stack.pop() {
        for arc in &hpdt.arcs[s] {
            let t = arc.target as usize;
            if t < reachable.len() && !reachable[t] {
                reachable[t] = true;
                stack.push(t);
            }
        }
    }
    reachable
}

/// §3.3's buffer lifecycle: a queue that can receive entries must be
/// cleared by the end of its owner's scope (else entries leak across
/// elements), and normally also released (flushed or uploaded) on the
/// predicate-true witness. A receiving queue with no clear arc is an
/// error; one with no release arc merely means its results are provably
/// unreachable (this legitimately happens after pruning an unsatisfiable
/// witness), so it is a warning.
fn check_buffer_release(hpdt: &Hpdt, out: &mut Vec<Diagnostic>) {
    let mut receives: HashMap<BpdtId, ()> = HashMap::new();
    for arcs in &hpdt.arcs {
        for arc in arcs {
            for action in &arc.actions {
                match action {
                    Action::Emit { to, .. } | Action::ElementStart { to, .. } => match to {
                        Disposition::OwnQueue => {
                            receives.insert(arc.owner, ());
                        }
                        Disposition::Queue(id) => {
                            receives.insert(*id, ());
                        }
                        Disposition::Direct => {}
                    },
                    Action::UploadSelf(target) => {
                        receives.insert(*target, ());
                    }
                    _ => {}
                }
            }
        }
    }
    for (&id, _) in receives.iter() {
        let mut has_clear = false;
        let mut has_release = false;
        for arcs in &hpdt.arcs {
            for arc in arcs.iter().filter(|a| a.owner == id) {
                for action in &arc.actions {
                    match action {
                        Action::ClearSelf => has_clear = true,
                        Action::FlushSelf | Action::UploadSelf(_) => has_release = true,
                        _ => {}
                    }
                }
            }
        }
        if !has_clear {
            out.push(
                Diagnostic::error(
                    "buffer-never-cleared",
                    format!(
                        "queue of {id} receives entries but no arc it owns clears it: \
                         entries would leak across elements"
                    ),
                )
                .at_bpdt(id),
            );
        }
        if !has_release {
            out.push(
                Diagnostic::warning(
                    "buffer-never-released",
                    format!(
                        "queue of {id} receives entries but no arc it owns flushes or \
                         uploads: its results are unreachable"
                    ),
                )
                .at_bpdt(id),
            );
        }
    }
}

/// Classify an arc label by the event kinds it can accept, for the
/// depth-vector model: `Some(+1)` pushes, `Some(-1)` pops, `Some(0)` is
/// depth-neutral, `None` is ambiguous (catchall).
fn depth_effect(label: &ArcLabel) -> Option<i32> {
    match label {
        ArcLabel::StartDoc | ArcLabel::BeginChild(_) | ArcLabel::BeginAnyDepth(_) => Some(1),
        ArcLabel::End(_) | ArcLabel::EndDoc => Some(-1),
        ArcLabel::TextSelf(_) | ArcLabel::TextChild(_) => Some(0),
        // A closure self-loop accepts begin events but never changes
        // state, so it neither pushes nor pops (the runtime pushes only
        // on state-changing transitions). If corrupted into a non-loop it
        // would push; `check_depth_discipline` handles both cases.
        ArcLabel::ClosureSelfLoop => Some(1),
        ArcLabel::Catchall => None,
    }
}

/// Walk the state graph assigning each state its depth-vector length and
/// check the discipline of §4.3: the runtime pushes on state-changing
/// begin transitions and pops on state-changing end transitions, and
/// every buffer operation of a layer-`l` BPDT reads the first `l+1` depth
/// slots. Two paths assigning one state different lengths, a pop of an
/// empty vector, or a buffer op before its slots are written are all
/// builder bugs that corrupt matching silently.
fn check_depth_discipline(hpdt: &Hpdt, out: &mut Vec<Diagnostic>) {
    let n = hpdt.states.len();
    let mut depth: Vec<Option<i64>> = vec![None; n];
    depth[hpdt.start as usize] = Some(0);
    let mut stack = vec![hpdt.start as usize];
    while let Some(s) = stack.pop() {
        let len = depth[s].expect("pushed states have depth");
        for arc in &hpdt.arcs[s] {
            if (arc.target as usize) >= n {
                continue; // already reported by check_arc_targets
            }
            let changes = arc.target != s as u32;
            let effect = match depth_effect(&arc.label) {
                Some(e) => e,
                None => {
                    if changes {
                        out.push(
                            Diagnostic::warning(
                                "ambiguous-depth-effect",
                                format!(
                                    "catchall arc from ${s} changes state; its depth \
                                     effect depends on the event kind"
                                ),
                            )
                            .at_state(s as u32),
                        );
                    }
                    continue;
                }
            };
            let inside = if changes && effect > 0 { len + 1 } else { len };
            // Buffer operations of a layer-l owner read depth slots 0..=l.
            let needs = buffer_op_depth(arc);
            if let Some(layer) = needs {
                if inside < layer as i64 + 1 {
                    out.push(
                        Diagnostic::error(
                            "depth-slot-unwritten",
                            format!(
                                "buffer operation of layer-{layer} BPDT {} runs with only \
                                 {inside} depth slot(s) written (needs {})",
                                arc.owner,
                                layer + 1
                            ),
                        )
                        .at_state(s as u32)
                        .at_bpdt(arc.owner),
                    );
                }
            }
            let after = if changes {
                let a = len + effect as i64;
                if a < 0 {
                    out.push(
                        Diagnostic::error(
                            "depth-underflow",
                            format!("arc {:?} from ${s} pops an empty depth vector", arc.label),
                        )
                        .at_state(s as u32),
                    );
                    continue;
                }
                a
            } else {
                len
            };
            let t = arc.target as usize;
            match depth[t] {
                None => {
                    depth[t] = Some(after);
                    stack.push(t);
                }
                Some(prev) if prev != after => {
                    out.push(
                        Diagnostic::error(
                            "depth-inconsistent",
                            format!(
                                "state ${t} is reached with depth-vector lengths {prev} \
                                 and {after} on different paths"
                            ),
                        )
                        .at_state(t as u32),
                    );
                }
                Some(_) => {}
            }
        }
    }
}

/// The highest layer whose depth slots an arc's actions read, if any.
fn buffer_op_depth(arc: &Arc) -> Option<u16> {
    arc.actions
        .iter()
        .any(|a| {
            matches!(
                a,
                Action::FlushSelf | Action::UploadSelf(_) | Action::ClearSelf
            )
        })
        .then_some(arc.owner.layer)
}

/// The stored per-state `scan_all` flags must match a fresh conservative
/// recomputation. A state stored as first-match-safe that actually has
/// overlapping arcs makes XSQ-NC drop matches (unsound); the converse is
/// merely pessimistic.
fn check_scan_all(hpdt: &Hpdt, out: &mut Vec<Diagnostic>) {
    let fresh = compute_scan_all(&hpdt.arcs);
    for (s, (&stored, &computed)) in hpdt.scan_all.iter().zip(fresh.iter()).enumerate() {
        if !stored && computed {
            out.push(
                Diagnostic::error(
                    "scan-all-unsound",
                    format!(
                        "state ${s} is marked first-match-safe but has overlapping arcs: \
                         XSQ-NC would drop matches"
                    ),
                )
                .at_state(s as u32),
            );
        } else if stored && !computed {
            out.push(
                Diagnostic::info(
                    "scan-all-pessimistic",
                    format!("state ${s} is marked scan-all but its arcs are disjoint"),
                )
                .at_state(s as u32),
            );
        }
    }
}

fn check_deterministic_flag(hpdt: &Hpdt, out: &mut Vec<Diagnostic>) {
    let has_closure_arcs = hpdt.arcs.iter().flatten().any(|a| {
        matches!(
            a.label,
            ArcLabel::ClosureSelfLoop | ArcLabel::BeginAnyDepth(_)
        )
    });
    if hpdt.deterministic && has_closure_arcs {
        out.push(Diagnostic::error(
            "deterministic-flag-unsound",
            "HPDT is flagged deterministic but contains closure arcs".to_string(),
        ));
    }
}

/// For a single-query HPDT the BPDT ids follow the binary-tree encoding
/// of §4.2: every non-root id's parent must exist, the all-true left
/// spine must be complete, and right children (even sequence numbers)
/// may only hang off steps whose predicate category has an NA state.
/// Merged HPDTs use fresh per-layer sequence numbers, where the encoding
/// intentionally does not apply.
fn check_tree_positions(hpdt: &Hpdt, out: &mut Vec<Diagnostic>) {
    for &id in hpdt.queue_index.keys() {
        if id == BpdtId::ROOT {
            continue;
        }
        if id.layer > hpdt.layers {
            out.push(
                Diagnostic::error(
                    "bpdt-layer-out-of-range",
                    format!("{id} is deeper than the query's {} steps", hpdt.layers),
                )
                .at_bpdt(id),
            );
            continue;
        }
        match id.parent() {
            Some(p) if p == BpdtId::ROOT || hpdt.queue_index.contains_key(&p) => {}
            _ => {
                out.push(
                    Diagnostic::error(
                        "bpdt-orphan",
                        format!("{id} has no parent BPDT in the tree"),
                    )
                    .at_bpdt(id),
                );
            }
        }
        // A right child exists iff the *parent's* step has an NA state.
        if id.layer >= 2 && !id.is_left_child() {
            let parent_step = &hpdt.query.steps[id.layer as usize - 2];
            let has_na = !matches!(
                classify(parent_step),
                StepCategory::NoPredicate | StepCategory::AttrOfSelf
            );
            if !has_na {
                out.push(
                    Diagnostic::error(
                        "bpdt-position-mismatch",
                        format!(
                            "{id} is a right (NA-side) child but step {} ({}) has no \
                             NA state",
                            id.layer - 1,
                            parent_step
                        ),
                    )
                    .at_bpdt(id),
                );
            }
        }
    }
    // The all-true left spine bpdt(l, 2^l - 1) is complete in every
    // freshly built HPDT, but pruning an unsatisfiable guard legitimately
    // severs it (the steps below the dead predicate vanish) — so a gap is
    // a warning, not an error.
    for l in 1..=hpdt.layers {
        let spine = BpdtId::new(l, (1u64 << l) - 1);
        if !hpdt.queue_index.contains_key(&spine) {
            out.push(
                Diagnostic::warning(
                    "bpdt-spine-missing",
                    format!("the all-ancestors-true BPDT {spine} is missing"),
                )
                .at_bpdt(spine),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze::has_errors;
    use crate::build::build_hpdt;
    use xsq_xpath::parse_query;

    fn built(q: &str) -> Hpdt {
        build_hpdt(&parse_query(q).unwrap()).unwrap()
    }

    #[test]
    fn builder_output_verifies_clean() {
        for q in [
            "/a/b/text()",
            "/pub[year=2002]/book[price<11]/author",
            "//pub[year>2000]//book[author]//name/text()",
            "/a[@id]/b/text()",
            "/a[text()=x]/b/@id",
            "//b/count()",
        ] {
            let h = built(q);
            let diags = verify(&h);
            assert!(!has_errors(&diags), "{q}: {diags:?}");
        }
    }

    #[test]
    fn merged_builder_output_verifies_clean() {
        let queries: Vec<_> = ["/a/b/text()", "/a/b/@id", "/a[b]/c/text()", "//a/d/text()"]
            .iter()
            .map(|q| parse_query(q).unwrap())
            .collect();
        let h = crate::build::build_merged_hpdt(&queries).unwrap();
        let diags = verify(&h);
        assert!(!has_errors(&diags), "{diags:?}");
    }

    #[test]
    fn missing_queue_slot_is_caught() {
        let mut h = built("/a[b]/c/text()");
        // Corrupt the transducer the way a builder bug would: drop the
        // queue registration the runtime's `queue_idx` would panic on.
        let id = BpdtId::new(1, 1);
        h.queue_index.remove(&id);
        h.bpdt_count -= 1;
        let diags = verify(&h);
        assert!(
            diags
                .iter()
                .any(|d| d.is_error() && d.code == "queue-index-missing"),
            "{diags:?}"
        );
    }

    #[test]
    fn out_of_bounds_arc_target_is_caught() {
        let mut h = built("/a/b/text()");
        h.arcs[h.start as usize][0].target = 999;
        let diags = verify(&h);
        assert!(
            diags
                .iter()
                .any(|d| d.is_error() && d.code == "arc-target-out-of-bounds"),
            "{diags:?}"
        );
    }

    #[test]
    fn unsound_scan_all_flag_is_caught() {
        let mut h = built("//a/text()");
        // The closure state genuinely needs scan-all; lie about it.
        if let Some(flag) = h.scan_all.iter_mut().find(|f| **f) {
            *flag = false;
        } else {
            panic!("closure query must have a scan-all state");
        }
        let diags = verify(&h);
        assert!(
            diags
                .iter()
                .any(|d| d.is_error() && d.code == "scan-all-unsound"),
            "{diags:?}"
        );
    }

    #[test]
    fn depth_discipline_violation_is_caught() {
        let mut h = built("/a/b/text()");
        // Retarget the deepest End arc all the way to the start state:
        // the path now pops once where it pushed three times, so the two
        // routes into the start state disagree on depth-vector length.
        let deep = h.states.len() - 1;
        let start = h.start;
        let end_idx = h.arcs[deep]
            .iter()
            .position(|a| matches!(a.label, ArcLabel::End(_)))
            .expect("state has an end arc");
        h.arcs[deep][end_idx].target = start;
        let diags = verify(&h);
        assert!(
            diags
                .iter()
                .any(|d| d.is_error() && d.code == "depth-inconsistent"),
            "{diags:?}"
        );
    }
}
