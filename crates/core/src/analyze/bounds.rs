//! Static per-query memory bounds from schema knowledge (the FluX idea:
//! Koch et al., "Schema-based Scheduling of Event Processors and Buffer
//! Minimization", applied to the XSQ buffering model).
//!
//! §3.2's runtime buffers exactly the *potential* result items whose
//! predicates are still undecided. This pass bounds how many such items
//! can be pending at once, by abstract interpretation over DTD content
//! models composed with the buffer-necessity pass:
//!
//! * no buffering-capable predicate ⇒ [`MemoryBound::Zero`];
//! * otherwise an undecided predicate instance is always *open* (its
//!   element's end event decides every §3.2 template), so simultaneous
//!   undecided instances of the outermost NA-state step form an ancestor
//!   chain. If the DTD proves that step's candidate tags cannot nest
//!   within themselves, at most **one** instance is pending at a time,
//!   and the items below it are counted by multiplying per-level maximum
//!   occurrence counts ⇒ [`MemoryBound::Items`];
//! * self-nesting candidates cap the chain at the document's nesting
//!   depth instead ⇒ [`MemoryBound::PerDepth`] (K items per open level);
//! * a `*`/`+`/`ANY`/mixed multiplicity on the path, or no DTD at all,
//!   leaves the count open ⇒ [`MemoryBound::Unbounded`] with the reason
//!   and the offending step's source span.
//!
//! Bounds count buffered *items* (queue entries — what
//! `MemoryStats::peak_buffered_items` observes), not bytes: an `Element`
//! output buffers one item per match however large the subtree. Every
//! claim assumes input valid against the DTD; invalid documents void the
//! bound (which is why admission control pairs a claimed bound with the
//! schema it came from). The derivation is recorded step by step in
//! [`BoundAnalysis::trace`] for `xsq analyze --json` and server
//! diagnostics.

use std::collections::{BTreeMap, BTreeSet};

use xsq_xml::dtd::{Dtd, Occurs};
use xsq_xpath::{classify, Axis, Output, Predicate, Query, Span};

use super::buffers::BufferPlan;
use crate::schema;

/// The bound lattice: `Zero < Items(K) < PerDepth(K) < Unbounded`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MemoryBound {
    /// No queue can ever hold an entry: buffering statically elided.
    Zero,
    /// At most `K` items pending at any instant, document-independent.
    Items(u64),
    /// At most `K` items per open nesting level of the deciding step's
    /// tags: total ≤ K × that nesting depth. Depth-bounded deployments
    /// can multiply; admission control treats it as over-budget.
    PerDepth(u64),
    /// No static bound. `reason` says which rule failed; `span` is the
    /// byte range of the offending step in the query text (empty when
    /// the failure is not tied to one step).
    Unbounded { reason: String, span: Span },
}

impl MemoryBound {
    pub fn label(&self) -> &'static str {
        match self {
            MemoryBound::Zero => "zero",
            MemoryBound::Items(_) => "items",
            MemoryBound::PerDepth(_) => "per-depth",
            MemoryBound::Unbounded { .. } => "unbounded",
        }
    }

    /// A document-independent item count, when one exists.
    pub fn items(&self) -> Option<u64> {
        match self {
            MemoryBound::Zero => Some(0),
            MemoryBound::Items(k) => Some(*k),
            _ => None,
        }
    }

    /// Admission test: does the bound fit a per-subscription budget of
    /// `max` items? `PerDepth` and `Unbounded` never do — the budget is
    /// a guarantee, and those depend on the document.
    pub fn admits(&self, max: u64) -> bool {
        self.items().is_some_and(|k| k <= max)
    }
}

impl std::fmt::Display for MemoryBound {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MemoryBound::Zero => write!(f, "zero (no buffering)"),
            MemoryBound::Items(k) => write!(f, "≤ {k} items"),
            MemoryBound::PerDepth(k) => write!(f, "≤ {k} items per nesting level"),
            MemoryBound::Unbounded { reason, span } => {
                write!(f, "unbounded: {reason}")?;
                if !span.is_empty() {
                    write!(f, " (at {span})")?;
                }
                Ok(())
            }
        }
    }
}

/// One rule application in the derivation.
#[derive(Debug, Clone)]
pub struct BoundStep {
    /// Stable kebab-case rule name.
    pub rule: &'static str,
    pub detail: String,
}

/// The bound plus how it was derived.
#[derive(Debug, Clone)]
pub struct BoundAnalysis {
    pub bound: MemoryBound,
    pub trace: Vec<BoundStep>,
    /// 0-based indices of steps whose existence predicate the DTD proves
    /// always true on valid input — candidates for
    /// [`elide_always_true`], the earliest-flush rewrite.
    pub elidable_predicates: Vec<usize>,
}

impl BoundAnalysis {
    fn rule(mut self, rule: &'static str, detail: impl Into<String>) -> Self {
        self.trace.push(BoundStep {
            rule,
            detail: detail.into(),
        });
        self
    }

    fn finish(mut self, bound: MemoryBound) -> Self {
        self.bound = bound;
        self
    }
}

/// Compute the static memory bound of `query` given its buffer plan and
/// an optional DTD.
pub fn analyze_bounds(query: &Query, plan: &BufferPlan, dtd: Option<&Dtd>) -> BoundAnalysis {
    let mut out = BoundAnalysis {
        bound: MemoryBound::Zero,
        trace: Vec::new(),
        elidable_predicates: Vec::new(),
    };

    if !plan.buffered {
        return out
            .rule(
                "buffer-free",
                "every queue is statically unused: predicates (if any) are \
                 decided at the begin event, results emit directly",
            )
            .finish(MemoryBound::Zero);
    }

    // Steps whose BPDT has an NA state — the only ones that can hold a
    // predicate undecided past the begin event (§3.2 categories 2–5).
    let na_steps: Vec<usize> = query
        .steps
        .iter()
        .enumerate()
        .filter(|(_, s)| classify(s).has_na_state())
        .map(|(i, _)| i)
        .collect();
    if na_steps.is_empty() {
        // Defensive: the builder claimed buffering without an NA-state
        // predicate; claim nothing rather than a wrong bound.
        return out
            .rule(
                "no-na-step",
                "buffers exist but no step's predicate model explains them",
            )
            .finish(MemoryBound::Unbounded {
                reason: "buffer plan has live queues but no NA-state step to bound".into(),
                span: Span::new(0, 0),
            });
    }
    if query.steps[na_steps[0]..]
        .iter()
        .any(|s| !matches!(s.axis, Axis::Child | Axis::Closure))
    {
        return out
            .rule(
                "reverse-axis",
                "a reverse axis below the first undecided step",
            )
            .finish(MemoryBound::Unbounded {
                reason: "reverse axes are outside the bound model".into(),
                span: Span::new(0, 0),
            });
    }

    let Some(dtd) = dtd else {
        let step = &query.steps[na_steps[0]];
        return out
            .rule(
                "no-schema",
                format!(
                    "step {} ({step}) can hold its predicate undecided while \
                     arbitrarily many candidates stream past; only a schema \
                     can bound them",
                    na_steps[0] + 1,
                ),
            )
            .finish(MemoryBound::Unbounded {
                reason: format!(
                    "no DTD: step {} ({step}) buffers without a static limit",
                    na_steps[0] + 1,
                ),
                span: step.span,
            });
    };

    let sa = schema::analyze(query, dtd, &BTreeSet::new());
    if !sa.satisfiable {
        return out
            .rule(
                "schema-unsatisfiable",
                "no document valid against the DTD matches the query: \
                 nothing is ever buffered",
            )
            .finish(MemoryBound::Zero);
    }

    // Existence predicates the schema proves always true: `[c]` where
    // every candidate tag must hold ≥ 1 `c` child. Their NA state can
    // never resolve false on valid input, so the earliest-flush rewrite
    // may drop them, and this bound may ignore them.
    let mut undecided: Vec<usize> = Vec::new();
    for &i in &na_steps {
        let always_true = match &query.steps[i].predicate {
            Some(Predicate::Child { name }) => {
                !sa.step_tags[i].is_empty()
                    && sa.step_tags[i].iter().all(|t| dtd.min_count(t, name) >= 1)
            }
            _ => false,
        };
        if always_true {
            out = out.rule(
                "always-true-predicate",
                format!(
                    "step {} ({}): every candidate tag must contain a \
                     \"{}\" child, so the predicate cannot resolve false \
                     on valid input — buffering for it is removable",
                    i + 1,
                    query.steps[i],
                    match &query.steps[i].predicate {
                        Some(Predicate::Child { name }) => name.as_str(),
                        _ => unreachable!(),
                    },
                ),
            );
            out.elidable_predicates.push(i);
        } else {
            undecided.push(i);
        }
    }
    if undecided.is_empty() {
        return out
            .rule(
                "all-predicates-schema-decided",
                "every buffering predicate is always true under the DTD; \
                 with the elision rewrite applied, nothing is buffered",
            )
            .finish(MemoryBound::Zero);
    }

    // The outermost still-undecided step. Undecided instances are open
    // elements, so simultaneous ones form an ancestor chain; whether
    // that chain can exceed length 1 is a self-nesting question on the
    // step's candidate tags.
    let p = undecided[0];
    let tags_p = &sa.step_tags[p];
    let self_nesting = tags_p
        .iter()
        .any(|t| !dtd.descendants_of(t).is_disjoint(tags_p));
    out = out.rule(
        "outermost-undecided-step",
        format!(
            "step {} ({}) is the outermost step whose predicate can stay \
             undecided past its begin event; candidate tags: {{{}}}",
            p + 1,
            query.steps[p],
            tags_p.iter().cloned().collect::<Vec<_>>().join(", "),
        ),
    );

    // Items pending under ONE open instance of step p: the product of
    // per-level maximum occurrence counts down to the output step, times
    // the items one output element contributes.
    let mut k = Occurs::ONE;
    for i in p + 1..query.steps.len() {
        let (count, how) = level_count(
            dtd,
            &sa.step_tags[i - 1],
            &sa.step_tags[i],
            query.steps[i].axis,
        );
        out = out.rule(
            "level-count",
            format!(
                "step {} ({}): ≤ {count} matches per instance of step {} ({how})",
                i + 1,
                query.steps[i],
                i,
            ),
        );
        if let Occurs::Bounded(0) = count {
            // Satisfiable overall but this transition contributes zero —
            // defensive; schema::analyze would have emptied the tag set.
            return out
                .rule("zero-transition", "a transition admits no matches")
                .finish(MemoryBound::Zero);
        }
        k = k.times(count);
        if !k.is_bounded() {
            let step = &query.steps[i];
            return out.finish(MemoryBound::Unbounded {
                reason: format!(
                    "step {} ({step}): the DTD admits unboundedly many \
                     matches per parent instance",
                    i + 1,
                ),
                span: step.span,
            });
        }
    }

    let last = query.steps.len() - 1;
    let mult = match &query.output {
        Output::Element | Output::Attr(_) => {
            out = out.rule(
                "output-multiplier",
                "element/attribute output: one buffered item per match \
                 (element items grow with subtree bytes; the bound counts \
                 items, not bytes)",
            );
            Occurs::ONE
        }
        Output::Text | Output::Aggregate(_) => {
            // The parser coalesces character data across comments, PIs,
            // and CDATA, so one element yields at most (children + 1)
            // text events — one run per gap between child elements.
            let runs = sa.step_tags[last].iter().fold(Occurs::ZERO, |acc, t| {
                acc.join(Occurs::ONE.plus(dtd.max_child_elements(t)))
            });
            out = out.rule(
                "output-multiplier",
                format!(
                    "text output: ≤ {runs} coalesced text runs per matching \
                     element under the DTD's content models",
                ),
            );
            runs
        }
    };
    k = k.times(mult);
    let Occurs::Bounded(k) = k else {
        let step = &query.steps[last];
        return out.finish(MemoryBound::Unbounded {
            reason: format!(
                "step {} ({step}): mixed/ANY content admits unboundedly many \
                 text runs per match",
                last + 1,
            ),
            span: step.span,
        });
    };

    if self_nesting {
        out.rule(
            "recursive-nesting",
            format!(
                "candidate tags of step {} can nest within themselves, so \
                 one undecided instance may be open per nesting level: \
                 ≤ {k} items each",
                p + 1,
            ),
        )
        .finish(MemoryBound::PerDepth(k))
    } else {
        out.rule(
            "single-instance",
            format!(
                "candidate tags of step {} cannot nest within themselves, \
                 so at most one undecided instance is open: ≤ {k} items total",
                p + 1,
            ),
        )
        .finish(MemoryBound::Items(k))
    }
}

/// Maximum matches of the `next` tag set per single instance of a `ctx`
/// tag, along the given axis. Returns the count and a short explanation.
fn level_count(
    dtd: &Dtd,
    ctx: &BTreeSet<String>,
    next: &BTreeSet<String>,
    axis: Axis,
) -> (Occurs, &'static str) {
    match axis {
        Axis::Child => {
            let count = ctx.iter().fold(Occurs::ZERO, |acc, t| {
                let per_parent = next
                    .iter()
                    .fold(Occurs::ZERO, |a, c| a.plus(dtd.max_count(t, c)));
                acc.join(per_parent)
            });
            (count, "sum of child multiplicities, max over context tags")
        }
        Axis::Closure => {
            let mut memo = BTreeMap::new();
            let count = ctx.iter().fold(Occurs::ZERO, |acc, t| {
                acc.join(subtree_count(dtd, t, next, &mut memo))
            });
            (count, "subtree occurrence count, max over context tags")
        }
        // Callers guard reverse axes before getting here.
        _ => (Occurs::Unbounded, "reverse axis"),
    }
}

enum Mark {
    InProgress,
    Done(Occurs),
}

/// How many `targets` elements one `tag` subtree can contain (strictly
/// below `tag`), multiplicity-aware. A content-model cycle means the
/// subtree can repeat the path without limit: `Unbounded`.
fn subtree_count(
    dtd: &Dtd,
    tag: &str,
    targets: &BTreeSet<String>,
    memo: &mut BTreeMap<String, Mark>,
) -> Occurs {
    match memo.get(tag) {
        Some(Mark::Done(c)) => return *c,
        Some(Mark::InProgress) => return Occurs::Unbounded,
        None => {}
    }
    memo.insert(tag.to_string(), Mark::InProgress);
    let mut total = Occurs::ZERO;
    let children: Vec<String> = dtd.children_of(tag).map(str::to_string).collect();
    for c in children {
        let per_child = if targets.contains(&c) {
            Occurs::ONE
        } else {
            Occurs::ZERO
        }
        .plus(subtree_count(dtd, &c, targets, memo));
        total = total.plus(dtd.max_count(tag, &c).times(per_child));
    }
    memo.insert(tag.to_string(), Mark::Done(total));
    total
}

/// The earliest-flush rewrite: drop existence predicates the DTD proves
/// always true, so the §3.2 machinery never opens an NA state for them
/// and buffered items flush at the earliest schema-permitted point.
///
/// Changes semantics on documents *invalid* against the DTD (an element
/// missing its required child would wrongly match), so callers must gate
/// it behind the same explicit opt-in as closure elimination
/// (`--schema-optimize`). Returns the rewritten query and the 0-based
/// indices of the dropped predicates.
pub fn elide_always_true(query: &Query, dtd: &Dtd) -> (Query, Vec<usize>) {
    let sa = schema::analyze(query, dtd, &BTreeSet::new());
    let mut q = query.clone();
    let mut dropped = Vec::new();
    if !sa.satisfiable {
        return (q, dropped);
    }
    for (i, step) in q.steps.iter_mut().enumerate() {
        if let Some(Predicate::Child { name }) = &step.predicate {
            if !sa.step_tags[i].is_empty()
                && sa.step_tags[i].iter().all(|t| dtd.min_count(t, name) >= 1)
            {
                step.predicate = None;
                dropped.push(i);
            }
        }
    }
    (q, dropped)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze::{analyze_buffers, prune};
    use crate::build::build_hpdt;
    use xsq_xpath::parse_query;

    fn bound(q: &str, dtd: Option<&Dtd>) -> BoundAnalysis {
        let query = parse_query(q).unwrap();
        let hpdt = build_hpdt(&query).unwrap();
        let (pruned, _) = prune(&hpdt);
        let plan = analyze_buffers(&pruned);
        analyze_bounds(&query, &plan, dtd)
    }

    fn dblp_dtd() -> Dtd {
        Dtd::parse(
            "<!ELEMENT dblp ((article | inproceedings)*)>\
             <!ELEMENT article (author*, title, year, pages)>\
             <!ELEMENT inproceedings (author*, title, year, pages, booktitle?)>\
             <!ELEMENT author (#PCDATA)> <!ELEMENT title (#PCDATA)>\
             <!ELEMENT year (#PCDATA)> <!ELEMENT pages (#PCDATA)>\
             <!ELEMENT booktitle (#PCDATA)>",
        )
        .unwrap()
    }

    #[test]
    fn predicate_free_queries_are_zero_without_any_schema() {
        let b = bound("/a/b/c/text()", None);
        assert_eq!(b.bound, MemoryBound::Zero);
        assert_eq!(b.trace[0].rule, "buffer-free");
    }

    #[test]
    fn buffered_queries_without_schema_are_unbounded_with_a_span() {
        let b = bound("/dblp/inproceedings[author]/title/text()", None);
        match &b.bound {
            MemoryBound::Unbounded { reason, span } => {
                assert!(reason.contains("no DTD"), "{reason}");
                assert!(!span.is_empty());
            }
            other => panic!("expected Unbounded, got {other:?}"),
        }
    }

    #[test]
    fn the_dblp_dtd_tightens_a_paper_query_to_items() {
        // The showcase: [author] is undecided until an author child or
        // the record's end, but records cannot nest and each holds
        // exactly one title with pure-text content → ≤ 1 item pending.
        let b = bound(
            "/dblp/inproceedings[author]/title/text()",
            Some(&dblp_dtd()),
        );
        assert_eq!(b.bound, MemoryBound::Items(1), "trace: {:#?}", b.trace);
        assert!(b.trace.iter().any(|s| s.rule == "outermost-undecided-step"));
        assert!(b.trace.iter().any(|s| s.rule == "level-count"));
        assert!(b.trace.iter().any(|s| s.rule == "output-multiplier"));
    }

    #[test]
    fn unsatisfiable_queries_are_zero() {
        let b = bound("/pub[year=2002]/book[price<11]/author", Some(&dblp_dtd()));
        assert_eq!(b.bound, MemoryBound::Zero);
        assert_eq!(b.trace.last().unwrap().rule, "schema-unsatisfiable");
    }

    #[test]
    fn starred_children_below_the_undecided_step_stay_unbounded() {
        // author* admits unboundedly many matches per record.
        let b = bound(
            "/dblp/inproceedings[booktitle]/author/text()",
            Some(&dblp_dtd()),
        );
        assert!(
            matches!(b.bound, MemoryBound::Unbounded { .. }),
            "{:?}",
            b.bound
        );
    }

    #[test]
    fn always_true_predicates_elide_to_zero() {
        let dtd = Dtd::parse(
            "<!ELEMENT dblp (rec*)> <!ELEMENT rec (author+, title)>\
             <!ELEMENT author (#PCDATA)> <!ELEMENT title (#PCDATA)>",
        )
        .unwrap();
        let b = bound("/dblp/rec[author]/title/text()", Some(&dtd));
        assert_eq!(b.bound, MemoryBound::Zero, "trace: {:#?}", b.trace);
        assert_eq!(b.elidable_predicates, vec![1]);

        let q = parse_query("/dblp/rec[author]/title/text()").unwrap();
        let (rewritten, dropped) = elide_always_true(&q, &dtd);
        assert_eq!(dropped, vec![1]);
        assert_eq!(rewritten.to_string(), "/dblp/rec/title/text()");
    }

    #[test]
    fn recursive_candidates_give_per_depth() {
        let dtd = Dtd::parse(
            "<!ELEMENT pub (year?, book?, pub?)>\
             <!ELEMENT book (name, author?)> <!ELEMENT year (#PCDATA)>\
             <!ELEMENT name (#PCDATA)> <!ELEMENT author (#PCDATA)>",
        )
        .unwrap();
        // pub nests in pub; [year=…] is undecided until the year child.
        let b = bound("//pub[year=2002]/book/name/text()", Some(&dtd));
        assert_eq!(b.bound, MemoryBound::PerDepth(1), "trace: {:#?}", b.trace);
        assert!(b.trace.iter().any(|s| s.rule == "recursive-nesting"));
    }

    #[test]
    fn closure_below_the_undecided_step_uses_subtree_counts() {
        let dtd = Dtd::parse(
            "<!ELEMENT r (sec?)> <!ELEMENT sec (meta?, box?)>\
             <!ELEMENT box (leaf, leaf?)> <!ELEMENT meta (#PCDATA)>\
             <!ELEMENT leaf (#PCDATA)>",
        )
        .unwrap();
        // sec subtree holds ≤ 2 leaf elements (box → leaf, leaf?).
        let b = bound("/r/sec[meta]//leaf/text()", Some(&dtd));
        assert_eq!(b.bound, MemoryBound::Items(2), "trace: {:#?}", b.trace);
    }

    #[test]
    fn content_model_cycles_under_a_closure_are_unbounded() {
        let dtd = Dtd::parse(
            "<!ELEMENT r (sec?)> <!ELEMENT sec (meta?, sec?, leaf?)>\
             <!ELEMENT meta (#PCDATA)> <!ELEMENT leaf (#PCDATA)>",
        )
        .unwrap();
        let b = bound("/r/sec[meta]//leaf/text()", Some(&dtd));
        assert!(
            matches!(b.bound, MemoryBound::Unbounded { .. }),
            "{:?}",
            b.bound
        );
    }

    #[test]
    fn admission_tests_follow_the_lattice() {
        assert!(MemoryBound::Zero.admits(0));
        assert!(MemoryBound::Items(4).admits(4));
        assert!(!MemoryBound::Items(5).admits(4));
        assert!(!MemoryBound::PerDepth(1).admits(u64::MAX));
        let ub = MemoryBound::Unbounded {
            reason: "x".into(),
            span: Span::new(0, 0),
        };
        assert!(!ub.admits(u64::MAX));
    }

    #[test]
    fn element_output_counts_one_item_per_match() {
        let dtd = Dtd::parse(
            "<!ELEMENT r (item?)> <!ELEMENT item (meta?, payload)>\
             <!ELEMENT meta (#PCDATA)> <!ELEMENT payload (a?, b?)>\
             <!ELEMENT a (#PCDATA)> <!ELEMENT b (#PCDATA)>",
        )
        .unwrap();
        let b = bound("/r/item[meta]/payload", Some(&dtd));
        assert_eq!(b.bound, MemoryBound::Items(1), "trace: {:#?}", b.trace);
    }

    #[test]
    fn text_output_counts_runs_from_the_content_model() {
        let dtd = Dtd::parse(
            "<!ELEMENT r (w?)> <!ELEMENT w (meta?, mix)>\
             <!ELEMENT mix (a?, b?)> <!ELEMENT meta (#PCDATA)>\
             <!ELEMENT a (#PCDATA)> <!ELEMENT b (#PCDATA)>",
        )
        .unwrap();
        // mix can hold two child elements → up to 3 text runs.
        let b = bound("/r/w[meta]/mix/text()", Some(&dtd));
        assert_eq!(b.bound, MemoryBound::Items(3), "trace: {:#?}", b.trace);
    }
}
