//! Static analysis over compiled HPDTs.
//!
//! The paper builds one HPDT per query and leaves all reasoning about it
//! to the nondeterministic runtime. This module adds the missing
//! compile-time layer, run between `build` and execution for every HPDT
//! (including merged multi-query HPDTs from `qindex`):
//!
//! 1. **Structural verifier** ([`verify`]) — checks the invariants the
//!    builder is supposed to maintain (reachability, buffer release/clear
//!    arcs, depth-vector discipline, BPDT tree positions) and returns
//!    machine-readable [`Diagnostic`]s instead of letting the runtime
//!    panic deep inside `execute`.
//! 2. **Dead-state pruning** ([`prune`]) — removes arcs whose guards are
//!    statically unsatisfiable, deduplicates action-free arcs, and drops
//!    states unreachable from the start state, shrinking the
//!    configuration sets the runtime scans and the `qindex` dispatch
//!    buckets.
//! 3. **Determinism proof** ([`prove_deterministic`]) — detects automata
//!    with no closure arcs so `XsqEngine` can auto-route them to the
//!    XSQ-NC first-match fast path.
//! 4. **Buffer-necessity analysis** ([`analyze_buffers`]) — classifies
//!    each buffer per §3.2's predicate templates; queries whose every
//!    predicate resolves before its output node closes get direct
//!    emission with buffering statically elided.

pub mod bounds;
pub mod buffers;
pub mod prune;
pub mod verify;

pub use bounds::{analyze_bounds, elide_always_true, BoundAnalysis, BoundStep, MemoryBound};
pub use buffers::{analyze_buffers, BufferClass, BufferInfo, BufferPlan};
pub use prune::{prune, PruneStats};
pub use verify::verify;

use xsq_xpath::{streamability, CmpOp, Comparison, FnTest, IssueKind, Predicate, Query};

use crate::arcs::{ArcLabel, StateId};
use crate::build::{build_hpdt, Hpdt};
use crate::error::CompileError;
use crate::ids::BpdtId;

/// How serious a diagnostic is. `Error` means the transducer must not be
/// executed; `Warning` flags suspicious-but-sound structure (e.g. a query
/// that can never produce results); `Info` is advisory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    Info,
    Warning,
    Error,
}

impl Severity {
    pub fn label(&self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

/// One machine-readable finding from the analyzer.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    pub severity: Severity,
    /// Stable kebab-case identifier for the class of finding.
    pub code: &'static str,
    pub message: String,
    /// The state the finding anchors to, if any.
    pub state: Option<StateId>,
    /// The BPDT the finding anchors to, if any.
    pub bpdt: Option<BpdtId>,
    /// 1-based location-step index into the query, for query-level lints.
    pub step: Option<usize>,
}

impl Diagnostic {
    pub fn error(code: &'static str, message: impl Into<String>) -> Self {
        Diagnostic {
            severity: Severity::Error,
            code,
            message: message.into(),
            state: None,
            bpdt: None,
            step: None,
        }
    }

    pub fn warning(code: &'static str, message: impl Into<String>) -> Self {
        Diagnostic {
            severity: Severity::Warning,
            ..Diagnostic::error(code, message)
        }
    }

    pub fn info(code: &'static str, message: impl Into<String>) -> Self {
        Diagnostic {
            severity: Severity::Info,
            ..Diagnostic::error(code, message)
        }
    }

    pub fn at_state(mut self, state: StateId) -> Self {
        self.state = Some(state);
        self
    }

    pub fn at_bpdt(mut self, bpdt: BpdtId) -> Self {
        self.bpdt = Some(bpdt);
        self
    }

    pub fn at_step(mut self, step: usize) -> Self {
        self.step = Some(step);
        self
    }

    pub fn is_error(&self) -> bool {
        self.severity == Severity::Error
    }
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}[{}]: {}",
            self.severity.label(),
            self.code,
            self.message
        )?;
        if let Some(s) = self.state {
            write!(f, " (state ${s})")?;
        }
        if let Some(b) = self.bpdt {
            write!(f, " ({b})")?;
        }
        Ok(())
    }
}

/// Any error-severity diagnostics in the list?
pub fn has_errors(diagnostics: &[Diagnostic]) -> bool {
    diagnostics.iter().any(Diagnostic::is_error)
}

/// Convert verifier output into a [`CompileError`] if any finding is an
/// error. Used by the engine and `qindex` to reject malformed transducers
/// before they reach the runtime.
pub fn reject_malformed(diagnostics: &[Diagnostic]) -> Result<(), CompileError> {
    match diagnostics.iter().find(|d| d.is_error()) {
        Some(d) => Err(CompileError::Malformed {
            diagnostic: d.to_string(),
        }),
        None => Ok(()),
    }
}

/// Determinism proof over the compiled artifact: with no closure self-loop
/// and no any-depth entry arcs, every event matches at most one path, so
/// the per-state `scan_all` flags make first-match execution exact and the
/// query can auto-run on the XSQ-NC fast path. Strictly stronger than the
/// query-level `has_closure` test: pruning can remove every closure arc of
/// a query that *textually* uses `//`.
pub fn prove_deterministic(hpdt: &Hpdt) -> bool {
    !hpdt.arcs.iter().flatten().any(|a| {
        matches!(
            a.label,
            ArcLabel::ClosureSelfLoop | ArcLabel::BeginAnyDepth(_)
        )
    })
}

/// Is the comparison statically unsatisfiable? XPath 1.0 relational
/// operators always compare numerically, and `number()` of a non-numeric
/// constant is NaN — which every relational comparison rejects. So
/// `[price<abc]` can never hold, regardless of the stream.
pub fn comparison_unsatisfiable(cmp: &Comparison) -> bool {
    matches!(cmp.op, CmpOp::Lt | CmpOp::Le | CmpOp::Gt | CmpOp::Ge) && cmp.rhs.as_number().is_nan()
}

/// Query-level lints: predicates that can never be true. These are
/// warnings, not errors — the query is legal and runs fine, it just
/// provably emits nothing past the offending step.
pub fn lint_query(query: &Query) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for (i, step) in query.steps.iter().enumerate() {
        let cmp = match &step.predicate {
            Some(Predicate::Attr { cmp: Some(c), .. })
            | Some(Predicate::Text { cmp: Some(c) })
            | Some(Predicate::ChildAttr { cmp: Some(c), .. })
            | Some(Predicate::ChildText { cmp: c, .. }) => c,
            Some(Predicate::Func {
                test: FnTest::StringLength(c) | FnTest::Number(c),
                ..
            }) => c,
            _ => continue,
        };
        if comparison_unsatisfiable(cmp) {
            let mut d = Diagnostic::warning(
                "unsatisfiable-predicate",
                format!(
                    "predicate of step {} ({}) can never be true: relational \
                     comparison against non-numeric constant {}",
                    i + 1,
                    step,
                    cmp.rhs,
                ),
            )
            .at_step(i + 1);
            if !step.span.is_empty() {
                d.message.push_str(&format!(" (at {})", step.span));
            }
            out.push(d);
        }
    }
    out
}

/// Streamability lints: surface features the query uses that the HPDT
/// selection engines cannot evaluate in one forward pass. Reverse axes
/// and `position()`/`last()` under `//` are errors (no engine in this
/// workspace streams them); `position()`/`last()` on child steps are
/// informational — the transform matcher (`xsq transform`) handles them,
/// the selection engines do not. The mapping is pure query analysis, so
/// it runs (and the CLI reports it) even when `build_hpdt` would refuse
/// the query — diagnostics instead of a panic or a bare error string.
pub fn lint_streamability(query: &Query) -> Vec<Diagnostic> {
    let report = streamability(query);
    let mut out = Vec::new();
    for issue in &report.issues {
        let mut d = match issue.kind {
            IssueKind::NonStreamable => Diagnostic::error("non-streamable", issue.message.clone()),
            IssueKind::TransformOnly => Diagnostic::info("transform-only", issue.message.clone()),
        }
        .at_step(issue.step + 1);
        if !issue.span.is_empty() {
            d.message.push_str(&format!(" (at {})", issue.span));
        }
        out.push(d);
    }
    out
}

/// Schema-aware lints, available when a DTD is at hand: steps that can
/// never match any document valid against the schema, plus closures the
/// schema proves removable. Reuses `schema::analyze`.
pub fn lint_schema(query: &Query, dtd: &xsq_xml::dtd::Dtd) -> Vec<Diagnostic> {
    let roots = std::collections::BTreeSet::new();
    let analysis = crate::schema::analyze(query, dtd, &roots);
    let mut out = Vec::new();
    if !analysis.satisfiable {
        out.push(Diagnostic::warning(
            "schema-empty-step",
            "no document valid against the DTD can match this query: some \
             step's tag cannot occur at its position",
        ));
    }
    for (i, tags) in analysis.step_tags.iter().enumerate() {
        if tags.is_empty() {
            out.push(
                Diagnostic::warning(
                    "schema-empty-step",
                    format!(
                        "step {} ({}) matches no element allowed by the DTD",
                        i + 1,
                        query.steps[i],
                    ),
                )
                .at_step(i + 1),
            );
        }
    }
    for &i in &analysis.removable_closures {
        out.push(
            Diagnostic::info(
                "removable-closure",
                format!(
                    "the DTD proves the closure axis of step {} ({}) only ever \
                     descends one level; `xsq --schema-optimize` rewrites it to `/`",
                    i + 1,
                    query.steps[i],
                ),
            )
            .at_step(i + 1),
        );
    }
    out
}

/// Full analysis of one query: build, verify, lint, prune, classify
/// buffers, and prove (or fail to prove) determinism.
#[derive(Debug)]
pub struct Analysis {
    pub query: Query,
    pub diagnostics: Vec<Diagnostic>,
    /// The freshly built, unpruned transducer.
    pub original: Hpdt,
    /// The transducer after dead-state pruning — what the engine runs.
    pub pruned: Hpdt,
    pub stats: PruneStats,
    /// Buffer-necessity classification of the pruned transducer.
    pub plan: BufferPlan,
    /// Static memory bound from the schema (or the no-schema verdict).
    pub bound: BoundAnalysis,
    /// True when the pruned transducer has no overlapping-arc sources.
    pub proven_deterministic: bool,
    /// The engine the `XsqEngine::full` entry point would actually run.
    pub engine: &'static str,
}

/// Analyze a parsed query end to end. This is the backend of
/// `xsq analyze`; the engine itself runs the same verify/prune pipeline
/// inline in `compile`.
pub fn analyze(query: &Query) -> Result<Analysis, CompileError> {
    analyze_with_dtd(query, None)
}

/// [`analyze`], with schema knowledge when a DTD is at hand: adds the
/// schema lints and derives the static memory bound from the content
/// models instead of the conservative no-schema `Unbounded`.
pub fn analyze_with_dtd(
    query: &Query,
    dtd: Option<&xsq_xml::dtd::Dtd>,
) -> Result<Analysis, CompileError> {
    let original = build_hpdt(query)?;
    let mut diagnostics = verify(&original);
    diagnostics.extend(lint_streamability(query));
    diagnostics.extend(lint_query(query));
    if let Some(dtd) = dtd {
        diagnostics.extend(lint_schema(query, dtd));
    }
    let (pruned, stats) = prune(&original);
    let proven_deterministic = prove_deterministic(&pruned);
    let plan = analyze_buffers(&pruned);
    let bound = analyze_bounds(query, &plan, dtd);
    let engine = if proven_deterministic {
        "XSQ-NC (auto)"
    } else {
        "XSQ-F"
    };
    Ok(Analysis {
        query: query.clone(),
        diagnostics,
        original,
        pruned,
        stats,
        plan,
        bound,
        proven_deterministic,
        engine,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use xsq_xpath::parse_query;

    #[test]
    fn relational_comparison_against_text_is_unsatisfiable() {
        let q = parse_query("/a[price<abc]/b/text()").unwrap();
        let lints = lint_query(&q);
        assert_eq!(lints.len(), 1);
        assert_eq!(lints[0].code, "unsatisfiable-predicate");
        assert_eq!(lints[0].step, Some(1));
        assert!(!has_errors(&lints));
    }

    #[test]
    fn satisfiable_predicates_produce_no_lints() {
        for q in [
            "/a[price<11]/b/text()",
            "/a[name=abc]/b/text()",  // Eq on text: string comparison, fine
            "/a[line%love]/b/text()", // contains: substring, fine
            "/a[@id!=x]/b/text()",    // Ne: NaN != x is true
        ] {
            let parsed = parse_query(q).unwrap();
            assert!(lint_query(&parsed).is_empty(), "spurious lint for {q}");
        }
    }

    #[test]
    fn clean_queries_analyze_without_errors() {
        for q in [
            "/pub[year=2002]/book[price<11]/author",
            "//pub[year>2000]//book[author]//name/text()",
            "/PLAY/ACT/SCENE/SPEECH[LINE%love]/SPEAKER/text()",
        ] {
            let parsed = parse_query(q).unwrap();
            let a = analyze(&parsed).unwrap();
            assert!(!has_errors(&a.diagnostics), "{q}: {:?}", a.diagnostics);
        }
    }

    #[test]
    fn function_predicate_comparisons_are_linted() {
        let q = parse_query("/a[string-length(text())<abc]/b/text()").unwrap();
        let lints = lint_query(&q);
        assert_eq!(lints.len(), 1);
        assert_eq!(lints[0].code, "unsatisfiable-predicate");

        let q = parse_query("/a[number(@price)<10]/b/text()").unwrap();
        assert!(lint_query(&q).is_empty());
    }

    #[test]
    fn reverse_axes_lint_as_errors() {
        let q = parse_query("/a/b/parent::a/text()").unwrap();
        let lints = lint_streamability(&q);
        assert_eq!(lints.len(), 1);
        assert_eq!(lints[0].code, "non-streamable");
        assert_eq!(lints[0].step, Some(3));
        assert!(has_errors(&lints));
        // The span of the offending step is echoed into the message.
        assert!(lints[0].message.contains("(at "), "{}", lints[0].message);
    }

    #[test]
    fn child_position_lints_as_transform_only_info() {
        let q = parse_query("/a/b[2]/text()").unwrap();
        let lints = lint_streamability(&q);
        assert_eq!(lints.len(), 1);
        assert_eq!(lints[0].code, "transform-only");
        assert!(!has_errors(&lints));

        let q = parse_query("//a/b[last()]/text()").unwrap();
        // last() under a child step is transform-only; fine as info.
        assert!(!has_errors(&lint_streamability(&q)));

        let q = parse_query("//b[last()]/text()").unwrap();
        assert!(has_errors(&lint_streamability(&q)));
    }

    #[test]
    fn streamable_queries_have_no_streamability_lints() {
        for q in [
            "/a/b/text()",
            "//pub[year>2000]//name/text()",
            "/a[contains(text(),x)]/b/text()",
        ] {
            let parsed = parse_query(q).unwrap();
            assert!(lint_streamability(&parsed).is_empty(), "spurious: {q}");
        }
    }

    #[test]
    fn closure_free_queries_are_proven_deterministic() {
        let q = parse_query("/pub[year=2002]/book[price<11]/author/text()").unwrap();
        let a = analyze(&q).unwrap();
        assert!(a.proven_deterministic);
        assert_eq!(a.engine, "XSQ-NC (auto)");

        let q = parse_query("//pub[year>2000]//book[author]//name/text()").unwrap();
        let a = analyze(&q).unwrap();
        assert!(!a.proven_deterministic);
        assert_eq!(a.engine, "XSQ-F");
    }
}
