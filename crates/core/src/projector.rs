//! Stream projection: drop events a query can never observe.
//!
//! The XML Toolkit the paper benchmarks against pairs its lazy DFA with
//! *stream projection* — forwarding only the events on root-to-match
//! paths. This module implements projection for the full XSQ query
//! class (predicates included): a [`Projector`] sits between the parser
//! and any consumer and keeps exactly
//!
//! * elements that structurally match some step prefix (they may lie on
//!   a path to a result),
//! * predicate **witness children** of matched elements (the data that
//!   decides `[child]`, `[child@attr…]`, `[child op v]`),
//! * text of kept elements (own-text predicates, `text()` output,
//!   numeric aggregates), and
//! * whole subtrees of fully matched elements when the query returns
//!   elements (the catchall output needs them).
//!
//! The kept set is ancestor-closed, so depths and well-formedness are
//! preserved, and running XSQ on the projected stream yields **exactly**
//! the original results (a differential property test enforces this).
//! For selective path queries the projection discards most of the
//! stream; for `//`-rooted queries it degrades gracefully to a no-op,
//! matching the real tool's behavior.

use xsq_xml::SaxEvent;
use xsq_xpath::{Axis, Output, Predicate, Query};

/// A streaming event filter specialized to one query.
///
/// ```
/// use xsq_core::Projector;
///
/// let query = xsq_xpath::parse_query("/r/keep/v/text()").unwrap();
/// let events = xsq_xml::parse_to_events(
///     b"<r><keep><v>x</v></keep><skip><deep>y</deep></skip></r>",
/// ).unwrap();
/// let mut p = Projector::new(&query);
/// let kept: Vec<_> = events.iter().filter(|e| p.keep(e)).collect();
/// assert!(kept.len() < events.len());
/// assert!(p.dropped_events() > 0);
/// ```
#[derive(Debug)]
pub struct Projector {
    /// Node test per step.
    steps: Vec<StepSpec>,
    element_output: bool,
    /// Stack frames: (kept?, match-bit-set, inside-full-match?).
    stack: Vec<Frame>,
    kept: u64,
    dropped: u64,
}

#[derive(Debug)]
struct StepSpec {
    test: xsq_xpath::NodeTest,
    closure: bool,
    /// Tag of the predicate's witness child, if the predicate looks at
    /// children.
    witness_child: Option<String>,
}

#[derive(Debug, Clone, Copy)]
struct Frame {
    kept: bool,
    /// Bit `i` ⇔ the path to this element matches steps `1..=i`
    /// (bit 0 = "zero steps matched", always derivable at the root).
    bits: u64,
    inside_full_match: bool,
}

impl Projector {
    /// Build a projector for a query (≤ 62 steps).
    pub fn new(query: &Query) -> Self {
        debug_assert!(query.steps.len() <= 62);
        let steps = query
            .steps
            .iter()
            .map(|s| StepSpec {
                test: s.test.clone(),
                closure: s.axis == Axis::Closure,
                witness_child: match &s.predicate {
                    Some(Predicate::Child { name }) => Some(name.clone()),
                    Some(Predicate::ChildAttr { child, .. }) => Some(child.clone()),
                    Some(Predicate::ChildText { child, .. }) => Some(child.clone()),
                    _ => None,
                },
            })
            .collect();
        Projector {
            steps,
            element_output: query.output == Output::Element,
            stack: Vec::new(),
            kept: 0,
            dropped: 0,
        }
    }

    /// Should this event be forwarded to the consumer?
    pub fn keep(&mut self, event: &SaxEvent) -> bool {
        let n = self.steps.len();
        let decision = match event {
            SaxEvent::StartDocument | SaxEvent::EndDocument => true,
            SaxEvent::Begin { name, .. } => {
                let parent = self.stack.last().copied().unwrap_or(Frame {
                    kept: true,
                    bits: 1, // zero steps matched at the document node
                    inside_full_match: false,
                });
                // NFA step over the match bits.
                let mut bits = 0u64;
                for i in 0..n {
                    if parent.bits & (1 << i) == 0 {
                        continue;
                    }
                    if self.steps[i].test.matches(name.as_str()) {
                        bits |= 1 << (i + 1);
                    }
                    if self.steps[i].closure {
                        bits |= 1 << i;
                    }
                }
                // Witness child of a matched ancestor? Only direct
                // children count for the §3.2 predicate categories.
                let witness = (1..=n).any(|j| {
                    parent.bits & (1 << j) != 0
                        && self.steps[j - 1]
                            .witness_child
                            .as_deref()
                            .is_some_and(|w| *name == *w)
                });
                let inside_full_match = parent.inside_full_match
                    || (self.element_output && parent.bits & (1 << n) != 0);
                // The document element is always forwarded so the
                // projected stream stays a well-formed document even for
                // queries that match nothing.
                let is_root = self.stack.is_empty();
                let kept = parent.kept && (bits != 0 || witness || inside_full_match || is_root);
                self.stack.push(Frame {
                    kept,
                    bits,
                    inside_full_match,
                });
                kept
            }
            SaxEvent::End { .. } => self.stack.pop().map(|f| f.kept).unwrap_or(true),
            SaxEvent::Text { .. } => self.stack.last().is_some_and(|f| f.kept),
        };
        if decision {
            self.kept += 1;
        } else {
            self.dropped += 1;
        }
        decision
    }

    /// Events forwarded so far.
    pub fn kept_events(&self) -> u64 {
        self.kept
    }

    /// Events discarded so far.
    pub fn dropped_events(&self) -> u64 {
        self.dropped
    }

    /// Fraction of events discarded (0 when nothing processed yet).
    pub fn selectivity(&self) -> f64 {
        let total = self.kept + self.dropped;
        if total == 0 {
            0.0
        } else {
            self.dropped as f64 / total as f64
        }
    }
}

/// Project a whole event sequence (tests, offline pipelines).
pub fn project_events(query: &Query, events: &[SaxEvent]) -> Vec<SaxEvent> {
    let mut p = Projector::new(query);
    events.iter().filter(|e| p.keep(e)).cloned().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::XsqEngine;
    use crate::sink::VecSink;
    use xsq_xpath::parse_query;

    fn run_projected(query: &str, doc: &[u8]) -> (Vec<String>, Vec<String>, f64) {
        let q = parse_query(query).unwrap();
        let events = xsq_xml::parse_to_events(doc).unwrap();
        let mut p = Projector::new(&q);
        let projected: Vec<SaxEvent> = events.iter().filter(|e| p.keep(e)).cloned().collect();
        let compiled = XsqEngine::full().compile(&q).unwrap();
        let mut s1 = VecSink::new();
        compiled.run_events(&events, &mut s1);
        let mut s2 = VecSink::new();
        compiled.run_events(&projected, &mut s2);
        (s1.results, s2.results, p.selectivity())
    }

    #[test]
    fn selective_paths_drop_most_of_the_stream() {
        let doc = xsq_datagen_free_doc();
        let (orig, proj, selectivity) = run_projected("/r/keep/v/text()", doc.as_bytes());
        assert_eq!(orig, proj);
        assert_eq!(orig, ["x"]);
        assert!(selectivity > 0.5, "selectivity {selectivity}");
    }

    fn xsq_datagen_free_doc() -> String {
        let mut doc = String::from("<r><keep><v>x</v></keep>");
        for i in 0..50 {
            doc.push_str(&format!("<junk><deep><deeper>{i}</deeper></deep></junk>"));
        }
        doc.push_str("</r>");
        doc
    }

    #[test]
    fn witness_children_survive_projection() {
        // The author witness is not on the output path but decides the
        // predicate — it must be kept.
        let doc = b"<pub><book><title>T</title><author>A</author></book>\
                    <book><title>U</title></book></pub>";
        let (orig, proj, _) = run_projected("/pub/book[author]/title/text()", doc);
        assert_eq!(orig, proj);
        assert_eq!(orig, ["T"]);
    }

    #[test]
    fn child_text_witness_survives() {
        let doc = b"<pub><item><price>10</price><name>cheap</name></item>\
                    <item><price>99</price><name>dear</name></item></pub>";
        let (orig, proj, _) = run_projected("/pub/item[price<50]/name/text()", doc);
        assert_eq!(orig, proj);
        assert_eq!(orig, ["cheap"]);
    }

    #[test]
    fn element_output_keeps_whole_match_subtrees() {
        let doc = b"<r><e><deep><deeper>x</deeper></deep></e><other><skip/></other></r>";
        let (orig, proj, _) = run_projected("/r/e", doc);
        assert_eq!(orig, proj);
        assert_eq!(orig, ["<e><deep><deeper>x</deeper></deep></e>"]);
    }

    #[test]
    fn closure_rooted_queries_keep_everything() {
        let doc = b"<a><b><c>1</c></b></a>";
        let q = parse_query("//c/text()").unwrap();
        let events = xsq_xml::parse_to_events(doc).unwrap();
        let projected = project_events(&q, &events);
        assert_eq!(projected.len(), events.len(), "no false drops possible");
    }

    #[test]
    fn ancestor_closure_of_the_kept_set() {
        // Every kept begin's ancestors are kept: depths in the projected
        // stream are consistent, so it re-parses as a valid event stream.
        let doc = xsq_datagen_free_doc();
        let q = parse_query("/r/keep/v/text()").unwrap();
        let events = xsq_xml::parse_to_events(doc.as_bytes()).unwrap();
        let projected = project_events(&q, &events);
        assert!(xsq_xml::WellFormednessPda::accepts(&projected));
    }
}
