//! The HPDT runtime (§4.3): configurations, transitions, buffer actions.
//!
//! A *configuration* is a `(state, depth-vector)` pair plus, for
//! whole-element output, the item currently being serialized. The
//! nondeterministic runtime (XSQ-F) keeps a set of configurations: every
//! arc whose label, depth discipline, and guard accept the event fires,
//! each producing a successor; configurations that match nothing simply
//! ignore the event (the paper's rule).
//!
//! Two orderings matter:
//!
//! * Within one input event, matched arcs execute **deepest layer first**,
//!   so that an inner element's upload lands in an ancestor's queue before
//!   that ancestor's own flush/clear runs on the same event (this is why
//!   Fig. 8 resolves `[child]` on `</child>`).
//! * Result emission is globally ordered by the item store (document
//!   order), independent of when predicates resolve.
//!
//! The deterministic fast path (XSQ-NC, §6.2) runs the same machinery but
//! stops scanning a state's arcs at the first match whenever the builder
//! proved the state deterministic — the paper's "XSQ-NC can stop searching
//! after it finds one match".
//!
//! The runtime state lives in [`RunnerCore`], which borrows the compiled
//! [`Hpdt`] only for the duration of each call — that is what lets the
//! multi-query index own `Arc<Hpdt>`s and runner states side by side with
//! no self-referential borrows. [`Runner`] is the single-query facade
//! that pairs a core with one `&Hpdt` for the classic borrowed API.

use xsq_xml::{RawEvent, SaxEvent};
use xsq_xpath::Output;

use crate::aggregate::Aggregator;
use crate::arcs::{Action, Disposition, StateId, ValueSource};
use crate::buffers::QueueSet;
use crate::build::Hpdt;
use crate::depth_vector::DepthVector;
use crate::items::{ItemId, ItemStore};
use crate::report::MemoryStats;
use crate::sink::{IgnoreTags, Sink, TaggedSink};
use crate::trace::TraceStep;

/// One runtime configuration.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
struct Config {
    state: StateId,
    dv: DepthVector,
    /// Open element item being serialized (whole-element output only).
    item: Option<ItemId>,
}

/// Statistics of one completed run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunStats {
    /// SAX events processed (including the document brackets).
    pub events: u64,
    /// Results emitted (for aggregations: 1 per aggregation query, the
    /// final value).
    pub results: u64,
    /// Peak memory held by the engine.
    pub memory: MemoryStats,
}

/// The runtime state of one HPDT evaluation, decoupled from the compiled
/// automaton: every method takes the `Hpdt` as a parameter, so callers
/// decide how the automaton is owned (plain borrow in [`Runner`],
/// `Arc<Hpdt>` in the multi-query index).
///
/// Results leave through a [`TaggedSink`]; for an ordinary single-query
/// HPDT every result carries tag 0, while a merged multi-query HPDT tags
/// each result with the index of its originating query in `hpdt.merged`.
pub struct RunnerCore {
    /// When false (XSQ-NC), deterministic states stop at the first match.
    scan_all_mode: bool,
    /// Mirror of `hpdt.buffered`: when false, buffer-necessity analysis
    /// proved no action ever enqueues, so no queues are allocated and the
    /// flush/upload/clear actions (which still exist on some arcs) are
    /// statically known no-ops.
    buffered: bool,
    configs: Vec<Config>,
    items: ItemStore,
    queues: QueueSet,
    /// Per-tag aggregation state (`aggs[t]` is `Some` iff `merged[t]` is
    /// an aggregation query).
    aggs: Vec<Option<Aggregator>>,
    agg_count: usize,
    ordinal: u64,
    events: u64,
    results: u64,
    peak_configs: usize,
    /// Per-queue capacity to pre-reserve, from a static `Items(K)` bound
    /// (0 = no hint). Re-applied on every reset.
    queue_hint: usize,
    // Scratch buffers reused across events (the hot loop allocates
    // nothing on the no-match and single-match paths, and nothing on the
    // match path either once capacities have warmed up).
    scratch_matches: Vec<(usize, StateId, u32)>,
    scratch_uses: Vec<u32>,
    scratch_candidates: Vec<u32>,
    scratch_ser: String,
    spare_configs: Vec<Config>,
}

/// Ceiling on the per-queue pre-size hint: a pathological DTD can prove
/// a huge-but-finite bound, and reserving it eagerly would trade the
/// allocation win for a memory loss.
const QUEUE_HINT_CAP: usize = 1024;

fn make_aggs(hpdt: &Hpdt) -> (Vec<Option<Aggregator>>, usize) {
    let aggs: Vec<Option<Aggregator>> = hpdt
        .merged
        .iter()
        .map(|q| match &q.output {
            Output::Aggregate(f) => Some(Aggregator::new(*f)),
            _ => None,
        })
        .collect();
    let count = aggs.iter().filter(|a| a.is_some()).count();
    (aggs, count)
}

impl RunnerCore {
    /// Create runtime state for a compiled HPDT. `scan_all_mode` selects
    /// the nondeterministic (XSQ-F) arc scan; pass `false` only for
    /// closure-free queries (XSQ-NC).
    pub fn new(hpdt: &Hpdt, scan_all_mode: bool) -> Self {
        let (aggs, agg_count) = make_aggs(hpdt);
        RunnerCore {
            scan_all_mode,
            buffered: hpdt.buffered,
            configs: vec![Config {
                state: hpdt.start,
                dv: DepthVector::new(),
                item: None,
            }],
            items: ItemStore::new(),
            queues: QueueSet::new(if hpdt.buffered { hpdt.bpdt_count } else { 0 }),
            aggs,
            agg_count,
            ordinal: 0,
            events: 0,
            results: 0,
            peak_configs: 1,
            queue_hint: 0,
            scratch_matches: Vec::new(),
            scratch_uses: Vec::new(),
            scratch_candidates: Vec::new(),
            scratch_ser: String::new(),
            spare_configs: Vec::new(),
        }
    }

    /// Pre-size every queue to `per_queue` entries, now and after every
    /// [`Self::reset`] — the engine passes a statically proven `Items(K)`
    /// bound here so bounded queries never re-allocate mid-stream. A hint
    /// of 0 clears it.
    pub fn set_queue_hint(&mut self, per_queue: usize) {
        self.queue_hint = per_queue.min(QUEUE_HINT_CAP);
        self.queues.reserve(self.queue_hint);
    }

    /// Reset to the start state for a fresh document, keeping the
    /// allocated scratch buffers (multi-document feeds).
    pub fn reset(&mut self, hpdt: &Hpdt) {
        self.configs.clear();
        self.configs.push(Config {
            state: hpdt.start,
            dv: DepthVector::new(),
            item: None,
        });
        self.items.reset();
        self.buffered = hpdt.buffered;
        self.queues
            .reset(if hpdt.buffered { hpdt.bpdt_count } else { 0 });
        if self.queue_hint > 0 {
            self.queues.reserve(self.queue_hint);
        }
        // Reset the aggregators in place when the shape still matches
        // this HPDT (the usual multi-document reuse); rebuilding is only
        // needed when the caller swapped automata under the core.
        let shape_ok = self.aggs.len() == hpdt.merged.len()
            && self
                .aggs
                .iter()
                .zip(&hpdt.merged)
                .all(|(a, q)| a.is_some() == matches!(q.output, Output::Aggregate(_)));
        if shape_ok {
            for (agg, q) in self.aggs.iter_mut().zip(&hpdt.merged) {
                if let (Some(agg), Output::Aggregate(f)) = (agg, &q.output) {
                    agg.reset(*f);
                }
            }
        } else {
            let (aggs, agg_count) = make_aggs(hpdt);
            self.aggs = aggs;
            self.agg_count = agg_count;
        }
        self.ordinal = 0;
        self.results = 0;
        // The config high-water mark is per-document, like the item and
        // queue peaks the fresh stores reset above; without this a
        // reused runner reports the previous document's peak.
        self.peak_configs = 1;
    }

    /// Process one owned SAX event — convenience wrapper over
    /// [`Self::feed_raw`] for callers holding `SaxEvent`s (tests, stored
    /// event sequences).
    pub fn feed(&mut self, hpdt: &Hpdt, event: &SaxEvent, sink: &mut dyn TaggedSink) -> bool {
        self.feed_raw(hpdt, &event.as_raw(), sink)
    }

    /// Process one borrowed SAX event, pushing any newly determined
    /// results into the sink. Returns `true` when at least one arc fired
    /// — i.e. the configuration set may have moved (the dispatch index
    /// uses this to know when a runner's frontier needs re-indexing).
    /// This is the zero-copy hot path: an event no arc accepts performs
    /// no heap allocation.
    pub fn feed_raw(
        &mut self,
        hpdt: &Hpdt,
        event: &RawEvent<'_>,
        sink: &mut dyn TaggedSink,
    ) -> bool {
        self.feed_traced(hpdt, event, sink, None)
    }

    /// [`Self::feed_raw`] with an optional execution tracer (`--trace`;
    /// see [`crate::trace`]). Zero cost when `tracer` is `None`.
    pub fn feed_traced(
        &mut self,
        hpdt: &Hpdt,
        event: &RawEvent<'_>,
        sink: &mut dyn TaggedSink,
        tracer: Option<&mut dyn FnMut(TraceStep)>,
    ) -> bool {
        self.ordinal += 1;
        self.events += 1;
        self.items.begin_event(self.ordinal);

        // Phase 1: find every (configuration, arc) match. A configuration
        // sitting on a high-fanout state (a merged frontier with one named
        // arc per query) probes only the arcs filed under the event's
        // dispatch key plus the wildcard bucket, instead of scanning all
        // of them — the fix for the N=512 dispatch cliff.
        let mut matches = std::mem::take(&mut self.scratch_matches);
        let mut uses = std::mem::take(&mut self.scratch_uses);
        let mut cand = std::mem::take(&mut self.scratch_candidates);
        matches.clear();
        uses.clear();
        uses.resize(self.configs.len(), 0);
        let key = crate::arcs::raw_event_key(event);
        for (ci, cfg) in self.configs.iter().enumerate() {
            let arcs = &hpdt.arcs[cfg.state as usize];
            let stop_early = !self.scan_all_mode && !hpdt.scan_all[cfg.state as usize];
            if let Some(table) = &hpdt.arc_tables[cfg.state as usize] {
                // Keyed candidates come out in ascending arc order, so
                // stop-early sees the same first match as a linear scan.
                table.candidates(key, &mut cand);
                for &ai in &cand {
                    let arc = &arcs[ai as usize];
                    if arc.label_matches(event, &cfg.dv) && arc.guard_passes(event) {
                        matches.push((ci, cfg.state, ai));
                        uses[ci] += 1;
                        if stop_early {
                            break;
                        }
                    }
                }
            } else {
                for (ai, arc) in arcs.iter().enumerate() {
                    if arc.label_matches(event, &cfg.dv) && arc.guard_passes(event) {
                        matches.push((ci, cfg.state, ai as u32));
                        uses[ci] += 1;
                        if stop_early {
                            break;
                        }
                    }
                }
            }
        }
        self.scratch_candidates = cand;
        if matches.is_empty() {
            // Every configuration ignores the event (the common case on
            // data the query does not touch): nothing moves.
            self.scratch_matches = matches;
            self.scratch_uses = uses;
            self.drain(sink);
            if let Some(tracer) = tracer {
                self.emit_trace(event, Vec::new(), tracer);
            }
            return false;
        }

        // Phase 2: execute matches deepest-layer-first (uploads from a
        // closing inner element precede the enclosing flush/clear on the
        // same event); within a layer, value production → flush/upload →
        // clear (see `Arc::priority`). The `(ci, ai)` tail reproduces the
        // insertion order a stable sort would keep, without a stable
        // sort's temporary buffer.
        matches.sort_unstable_by_key(|&(ci, state, ai)| {
            let arc = &hpdt.arcs[state as usize][ai as usize];
            (std::cmp::Reverse(arc.owner_layer), arc.priority(), ci, ai)
        });

        // Trace steps are materialized only when a tracer is attached;
        // the untraced path never touches `FiredArc`.
        let mut fired: Option<Vec<crate::trace::FiredArc>> =
            tracer.is_some().then(|| Vec::with_capacity(matches.len()));
        let mut cur = std::mem::take(&mut self.configs);
        let mut next = std::mem::take(&mut self.spare_configs);
        next.clear();
        // Unmatched configurations survive unchanged; move them over.
        for (ci, &n) in uses.iter().enumerate() {
            if n == 0 {
                next.push(std::mem::take(&mut cur[ci]));
            }
        }
        for &(ci, state, ai) in &matches {
            let arc = &hpdt.arcs[state as usize][ai as usize];
            // Last use of this configuration moves its depth vector;
            // earlier (forking) uses clone it.
            uses[ci] -= 1;
            let (cfg_item, mut dv) = if uses[ci] == 0 {
                let c = &mut cur[ci];
                (c.item, std::mem::take(&mut c.dv))
            } else {
                let c = &cur[ci];
                (c.item, c.dv.clone())
            };
            // Depth-vector discipline (§4.3): real transitions push the
            // depth of a begin event and pop at an end event; self-loops
            // and text events leave the vector unchanged. Actions see the
            // "inside" vector — after the push, before the pop.
            let changes = arc.changes_state(state);
            if changes {
                match event {
                    RawEvent::StartDocument => dv.push_mut(0),
                    RawEvent::Begin { depth, .. } => dv.push_mut(*depth),
                    _ => {}
                }
            }
            if let Some(fired) = fired.as_mut() {
                fired.push(crate::trace::fired_arc(arc, state, &dv));
            }
            let mut new_item = cfg_item;
            for action in &arc.actions {
                self.execute(hpdt, action, arc.owner, event, &dv, cfg_item, &mut new_item);
            }
            if changes && matches!(event, RawEvent::End { .. } | RawEvent::EndDocument) {
                dv.pop_mut();
            }
            next.push(Config {
                state: arc.target,
                dv,
                item: new_item,
            });
        }
        // Deduplicate successors (closures can re-derive the same
        // (state, dv) along several arcs). Sort+dedup keeps the per-event
        // cost O(n log n) even when recursion inflates the set.
        if next.len() > 1 {
            next.sort_unstable();
            next.dedup();
        }
        self.spare_configs = cur;
        self.configs = next;
        self.peak_configs = self.peak_configs.max(self.configs.len());
        self.scratch_matches = matches;
        self.scratch_uses = uses;

        // Phase 3: emit whatever is now determined, in document order.
        self.drain(sink);

        // Quiescent-point recycling: when every item produced so far has
        // left the store (emitted or dead), no queue entry holds a
        // reference, and no configuration is mid-serialization, all
        // outstanding `ItemId`s are spent — the store's arena can be
        // reused wholesale. On per-record streams this point recurs at
        // every record boundary, which is what keeps the matching steady
        // state allocation-free.
        if self.items.recyclable() && self.configs.iter().all(|c| c.item.is_none()) {
            self.items.recycle();
        }

        if let Some(tracer) = tracer {
            self.emit_trace(event, fired.unwrap_or_default(), tracer);
        }
        true
    }

    #[cold]
    fn emit_trace(
        &mut self,
        event: &RawEvent<'_>,
        fired: Vec<crate::trace::FiredArc>,
        tracer: &mut dyn FnMut(TraceStep),
    ) {
        tracer(TraceStep {
            ordinal: self.ordinal,
            event: event.to_string(),
            fired,
            configs_after: self.configs.len(),
            buffered_after: self.queues.live_entries(),
        });
    }

    #[allow(clippy::too_many_arguments)]
    fn execute(
        &mut self,
        hpdt: &Hpdt,
        action: &Action,
        owner: crate::ids::BpdtId,
        event: &RawEvent<'_>,
        inside_dv: &DepthVector,
        current_item: Option<ItemId>,
        new_item: &mut Option<ItemId>,
    ) {
        let own = queue_idx(hpdt, owner);
        let prefix = owner.layer as usize + 1;
        match action {
            // The three pure buffer operations are no-ops when nothing
            // ever enqueues (`!self.buffered` — no queues are allocated).
            Action::FlushSelf => {
                if self.buffered {
                    self.queues
                        .flush_matching(own, inside_dv, prefix, &mut self.items);
                }
            }
            Action::UploadSelf(target) => {
                if self.buffered {
                    let dst = queue_idx(hpdt, *target);
                    self.queues.upload_matching(own, dst, inside_dv, prefix);
                }
            }
            Action::ClearSelf => {
                if self.buffered {
                    self.queues
                        .clear_matching(own, inside_dv, prefix, &mut self.items);
                }
            }
            Action::Emit { source, to, tag } => {
                let value: Option<&str> = match source {
                    ValueSource::Text => match event {
                        RawEvent::Text { text, .. } => Some(text),
                        _ => None,
                    },
                    ValueSource::Attr(a) => event.attribute_sym(*a),
                    ValueSource::Unit => Some("1"),
                };
                if let Some(v) = value {
                    let item = self.items.anchor(*tag, v, true);
                    self.route(hpdt, item, to, own, inside_dv);
                }
            }
            Action::ElementStart { to, tag } => {
                self.scratch_ser.clear();
                xsq_xml::writer::write_raw_event_into(event, &mut self.scratch_ser);
                let item = self.items.anchor(*tag, &self.scratch_ser, false);
                *new_item = Some(item);
                self.route(hpdt, item, to, own, inside_dv);
            }
            Action::ElementAppend => {
                if let Some(item) = current_item {
                    self.scratch_ser.clear();
                    xsq_xml::writer::write_raw_event_into(event, &mut self.scratch_ser);
                    self.items.append(item, &self.scratch_ser);
                }
            }
            Action::ElementEnd => {
                if let Some(item) = current_item {
                    if !self.items.is_closed(item) {
                        self.scratch_ser.clear();
                        xsq_xml::writer::write_raw_event_into(event, &mut self.scratch_ser);
                        self.items.append(item, &self.scratch_ser);
                        self.items.close(item);
                    }
                    *new_item = None;
                }
            }
        }
    }

    fn route(
        &mut self,
        hpdt: &Hpdt,
        item: ItemId,
        to: &Disposition,
        own_queue: usize,
        inside_dv: &DepthVector,
    ) {
        match to {
            Disposition::Direct => self.items.mark_output(item),
            Disposition::OwnQueue => {
                self.queues
                    .enqueue(own_queue, item, inside_dv, &mut self.items)
            }
            Disposition::Queue(id) => {
                let q = queue_idx(hpdt, *id);
                self.queues.enqueue(q, item, inside_dv, &mut self.items)
            }
        }
    }

    fn drain(&mut self, sink: &mut dyn TaggedSink) {
        let aggs = &mut self.aggs;
        let results = &mut self.results;
        self.items.drain(|tag, v| {
            if let Some(Some(agg)) = aggs.get_mut(tag as usize) {
                agg.add(v);
            } else {
                *results += 1;
                sink.result(tag, v);
            }
        });
        if self.agg_count > 0 {
            for (t, agg) in aggs.iter_mut().enumerate() {
                if let Some(agg) = agg {
                    if agg.take_dirty() {
                        sink.aggregate_update(t as u32, agg.current());
                    }
                }
            }
        }
    }

    /// Finish the stream: resolve stragglers, emit the aggregation
    /// results, and return run statistics. For complete documents
    /// (`EndDocument` was fed) there are never stragglers — the paper's
    /// invariant that all buffers resolve by the closing tag of the
    /// outermost queried element. The core stays usable (call
    /// [`Self::reset`] for the next document).
    pub fn finish(&mut self, sink: &mut dyn TaggedSink) -> RunStats {
        let aggs = &mut self.aggs;
        let results = &mut self.results;
        self.items.finish(|tag, v| {
            if let Some(Some(agg)) = aggs.get_mut(tag as usize) {
                agg.add(v);
            } else {
                *results += 1;
                sink.result(tag, v);
            }
        });
        if self.agg_count > 0 {
            for (t, agg) in self.aggs.iter().enumerate() {
                if let Some(agg) = agg {
                    sink.result(t as u32, &agg.render());
                    self.results += 1;
                }
            }
        }
        RunStats {
            events: self.events,
            results: self.results,
            memory: self.memory(),
        }
    }

    /// Current memory accounting.
    pub fn memory(&self) -> MemoryStats {
        MemoryStats {
            peak_bytes: (self.items.peak_bytes()
                + self.queues.peak_entries() * std::mem::size_of::<crate::buffers::Entry>())
                as u64,
            peak_items: self.items.peak_live_items() as u64,
            peak_buffered_items: self.queues.peak_entries() as u64,
            peak_configs: self.peak_configs as u64,
            resident_structure_bytes: 0,
        }
    }

    /// Buffered references right now (diagnostics; must be 0 after
    /// `EndDocument`).
    pub fn buffered_entries(&self) -> usize {
        self.queues.live_entries()
    }

    /// Live configurations right now.
    pub fn config_count(&self) -> usize {
        self.configs.len()
    }

    /// The states of the live configurations, deduplicated — the frontier
    /// the dispatch index derives a runner's event interest from.
    pub fn frontier_states(&self, out: &mut Vec<StateId>) {
        out.clear();
        out.extend(self.configs.iter().map(|c| c.state));
        out.sort_unstable();
        out.dedup();
    }

    /// The running aggregate value of query `tag`, if it aggregates.
    pub fn aggregate_value(&self, tag: u32) -> Option<f64> {
        self.aggs
            .get(tag as usize)
            .and_then(|a| a.as_ref())
            .map(|a| a.current())
    }

    /// Events fed so far.
    pub fn events(&self) -> u64 {
        self.events
    }
}

/// An incremental evaluator: feed it SAX events, results stream out of
/// the sink as soon as the paper's semantics allow. The single-query
/// facade over [`RunnerCore`].
pub struct Runner<'q> {
    hpdt: &'q Hpdt,
    core: RunnerCore,
    /// Optional execution tracer (`--trace`; see [`crate::trace`]).
    tracer: Option<&'q mut dyn FnMut(TraceStep)>,
}

impl<'q> Runner<'q> {
    /// Create a runner over a compiled HPDT. `scan_all_mode` selects the
    /// nondeterministic (XSQ-F) arc scan; pass `false` only for
    /// closure-free queries (XSQ-NC).
    pub fn new(hpdt: &'q Hpdt, scan_all_mode: bool) -> Self {
        Runner {
            hpdt,
            core: RunnerCore::new(hpdt, scan_all_mode),
            tracer: None,
        }
    }

    /// Reset the runner to its start state for a fresh document,
    /// keeping the allocated scratch buffers (multi-document feeds).
    pub fn reset(&mut self) {
        self.core.reset(self.hpdt);
    }

    /// Install an execution tracer: it receives one [`TraceStep`] per
    /// input event (the Example 5-style walkthrough). Zero cost when
    /// unset.
    pub fn set_tracer(&mut self, tracer: &'q mut dyn FnMut(TraceStep)) {
        self.tracer = Some(tracer);
    }

    /// Pre-size the queues from a static `Items(K)` bound (see
    /// [`RunnerCore::set_queue_hint`]).
    pub fn set_queue_hint(&mut self, per_queue: usize) {
        self.core.set_queue_hint(per_queue);
    }

    /// Process one owned SAX event, pushing any newly determined results
    /// into the sink.
    pub fn feed(&mut self, event: &SaxEvent, sink: &mut dyn Sink) {
        self.feed_raw(&event.as_raw(), sink);
    }

    /// Process one borrowed SAX event — the zero-copy hot path for
    /// callers driving [`xsq_xml::StreamParser::next_raw`].
    pub fn feed_raw(&mut self, event: &RawEvent<'_>, sink: &mut dyn Sink) {
        let mut tagged = IgnoreTags(sink);
        let tracer: Option<&mut dyn FnMut(TraceStep)> = self.tracer.as_mut().map(|t| &mut **t as _);
        self.core.feed_traced(self.hpdt, event, &mut tagged, tracer);
    }

    /// Finish the stream: resolve stragglers, emit the aggregation
    /// result, and return run statistics.
    pub fn finish(mut self, sink: &mut dyn Sink) -> RunStats {
        self.core.finish(&mut IgnoreTags(sink))
    }

    /// Current memory accounting.
    pub fn memory(&self) -> MemoryStats {
        self.core.memory()
    }

    /// Buffered references right now (diagnostics; must be 0 after
    /// `EndDocument`).
    pub fn buffered_entries(&self) -> usize {
        self.core.buffered_entries()
    }

    /// Live configurations right now.
    pub fn config_count(&self) -> usize {
        self.core.config_count()
    }

    /// The running aggregate value, if this is an aggregation query.
    pub fn aggregate_value(&self) -> Option<f64> {
        self.core.aggregate_value(0)
    }
}

fn queue_idx(hpdt: &Hpdt, id: crate::ids::BpdtId) -> usize {
    *hpdt
        .queue_index
        .get(&id)
        .expect("compiled disposition targets an existing BPDT")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::build_hpdt;
    use crate::sink::VecSink;
    use xsq_xpath::parse_query;

    fn run(query: &str, doc: &str) -> Vec<String> {
        let hpdt = build_hpdt(&parse_query(query).unwrap()).unwrap();
        let mut runner = Runner::new(&hpdt, true);
        let mut sink = VecSink::new();
        let events = xsq_xml::parse_to_events(doc.as_bytes()).unwrap();
        for e in &events {
            runner.feed(e, &mut sink);
        }
        assert_eq!(runner.buffered_entries(), 0, "buffers must drain");
        runner.finish(&mut sink);
        sink.results
    }

    #[test]
    fn simple_path_text() {
        assert_eq!(
            run("/a/b/text()", "<a><b>one</b><c><b>no</b></c><b>two</b></a>"),
            ["one", "two"]
        );
    }

    #[test]
    fn predicate_buffers_until_decided() {
        // Value arrives before the deciding year element.
        assert_eq!(
            run(
                "/pub[year=2002]/name/text()",
                "<pub><name>N</name><year>2002</year></pub>"
            ),
            ["N"]
        );
        assert_eq!(
            run(
                "/pub[year=2002]/name/text()",
                "<pub><name>N</name><year>1999</year></pub>"
            ),
            Vec::<String>::new()
        );
    }

    #[test]
    fn closure_matches_all_depths() {
        assert_eq!(
            run(
                "//b/text()",
                "<a><b>1</b><c><b>2</b><d><b>3</b></d></c></a>"
            ),
            ["1", "2", "3"]
        );
    }

    #[test]
    fn recursive_closure_no_duplicates() {
        // <b> nested in <b>: //b//c must return c once per distinct c.
        assert_eq!(run("//b//c/text()", "<a><b><b><c>x</c></b></b></a>"), ["x"]);
    }

    #[test]
    fn attribute_output() {
        assert_eq!(
            run("/a/b/@id", r#"<a><b id="1"/><b/><b id="3"/></a>"#),
            ["1", "3"]
        );
    }

    #[test]
    fn count_aggregation() {
        assert_eq!(run("//b/count()", "<a><b/><c><b/></c></a>"), ["2"]);
    }

    #[test]
    fn sum_aggregation() {
        assert_eq!(
            run(
                "//price/sum()",
                "<a><price>1.5</price><price>2.5</price></a>"
            ),
            ["4"]
        );
    }

    #[test]
    fn element_output() {
        assert_eq!(
            run("/a/b", r#"<a><b id="1"><c>x</c></b></a>"#),
            [r#"<b id="1"><c>x</c></b>"#]
        );
    }

    #[test]
    fn deterministic_mode_matches_full_mode() {
        let q = "/pub[year=2002]/book[price<11]/author/text()";
        let doc = "<pub><book><price>10</price><author>A</author></book>\
                   <book><price>14</price><author>B</author></book>\
                   <year>2002</year></pub>";
        let hpdt = build_hpdt(&parse_query(q).unwrap()).unwrap();
        assert!(hpdt.deterministic);
        let events = xsq_xml::parse_to_events(doc.as_bytes()).unwrap();
        let mut outs = Vec::new();
        for scan_all in [true, false] {
            let mut runner = Runner::new(&hpdt, scan_all);
            let mut sink = VecSink::new();
            for e in &events {
                runner.feed(e, &mut sink);
            }
            runner.finish(&mut sink);
            outs.push(sink.results);
        }
        assert_eq!(outs[0], outs[1]);
        assert_eq!(outs[0], ["A"]);
    }

    #[test]
    fn streaming_results_appear_before_document_end() {
        let hpdt = build_hpdt(&parse_query("/a/b/text()").unwrap()).unwrap();
        let mut runner = Runner::new(&hpdt, true);
        let mut sink = VecSink::new();
        let events = xsq_xml::parse_to_events(b"<a><b>early</b><c/></a>").unwrap();
        // Feed only through </b>.
        for e in &events[..5] {
            runner.feed(e, &mut sink);
        }
        assert_eq!(sink.results, ["early"]);
    }

    #[test]
    fn running_aggregate_updates_stream() {
        let hpdt = build_hpdt(&parse_query("//b/count()").unwrap()).unwrap();
        let mut runner = Runner::new(&hpdt, true);
        let mut sink = VecSink::new();
        for e in xsq_xml::parse_to_events(b"<a><b/><b/><b/></a>").unwrap() {
            runner.feed(&e, &mut sink);
        }
        runner.finish(&mut sink);
        assert_eq!(sink.updates, vec![1.0, 2.0, 3.0]);
        assert_eq!(sink.results, ["3"]);
    }

    #[test]
    fn core_feed_reports_whether_arcs_fired() {
        let hpdt = build_hpdt(&parse_query("/a/b/text()").unwrap()).unwrap();
        let mut core = RunnerCore::new(&hpdt, true);
        let mut sink = crate::sink::TaggedVecSink::new();
        let events = xsq_xml::parse_to_events(b"<a><z>skip</z><b>hit</b></a>").unwrap();
        let mut fired = Vec::new();
        for e in &events {
            fired.push(core.feed(&hpdt, e, &mut sink));
        }
        // StartDocument, <a>, <b>, text, </b>, </a>, EndDocument all move
        // configurations; <z> and its text do not.
        assert!(fired[0] && fired[1]);
        assert!(!fired[2] && !fired[3], "irrelevant element must not fire");
        assert_eq!(sink.of(0), ["hit"]);
    }

    #[test]
    fn core_reset_supports_multiple_documents() {
        let hpdt = build_hpdt(&parse_query("//b/count()").unwrap()).unwrap();
        let mut core = RunnerCore::new(&hpdt, true);
        for _ in 0..2 {
            let mut sink = crate::sink::TaggedVecSink::new();
            for e in xsq_xml::parse_to_events(b"<a><b/><b/></a>").unwrap() {
                core.feed(&hpdt, &e, &mut sink);
            }
            core.finish(&mut sink);
            assert_eq!(sink.of(0), ["2"]);
            core.reset(&hpdt);
        }
    }

    #[test]
    fn merged_hpdt_tags_results_by_query() {
        use crate::build::build_merged_hpdt;
        let queries: Vec<_> = ["/a/b/text()", "/a/b/@id", "/a/c/text()"]
            .iter()
            .map(|q| parse_query(q).unwrap())
            .collect();
        let hpdt = build_merged_hpdt(&queries).unwrap();
        let mut core = RunnerCore::new(&hpdt, true);
        let mut sink = crate::sink::TaggedVecSink::new();
        let doc = br#"<a><b id="7">x</b><c>y</c></a>"#;
        for e in xsq_xml::parse_to_events(doc).unwrap() {
            core.feed(&hpdt, &e, &mut sink);
        }
        core.finish(&mut sink);
        assert_eq!(sink.of(0), ["x"]);
        assert_eq!(sink.of(1), ["7"]);
        assert_eq!(sink.of(2), ["y"]);
    }
}
