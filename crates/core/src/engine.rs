//! The public engine API: XSQ-F (full) and XSQ-NC (no closures).
//!
//! The paper ships two versions of the system (§6): **XSQ-F** supports
//! multiple predicates, aggregations, and closures via a nondeterministic
//! HPDT; **XSQ-NC** supports everything except closures and exploits the
//! resulting determinism — one current state, first matching arc, results
//! written out as soon as they are known. Both are instances of
//! [`XsqEngine`] here and share the HPDT compiler and runtime.

use std::io::BufRead;
use std::sync::Arc;
use std::time::Instant;

use xsq_xml::{SaxEvent, StreamParser};
use xsq_xpath::{parse_query, Query};

use crate::build::{build_hpdt, Hpdt};
use crate::error::{CompileError, EngineError};
use crate::report::{Capabilities, PhaseTimings, RunReport, XPathEngine};
use crate::runtime::{RunStats, Runner};
use crate::sink::{Sink, VecSink};

/// Which XSQ variant to compile for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum XsqMode {
    /// XSQ-F: nondeterministic, supports closures.
    Full,
    /// XSQ-NC: deterministic, rejects closure axes at compile time.
    NoClosure,
}

/// The XSQ engine: compiles XPath queries into HPDTs.
#[derive(Debug, Clone, Copy)]
pub struct XsqEngine {
    mode: XsqMode,
}

impl XsqEngine {
    /// The full engine (XSQ-F).
    pub fn full() -> Self {
        XsqEngine {
            mode: XsqMode::Full,
        }
    }

    /// The deterministic engine (XSQ-NC).
    pub fn no_closure() -> Self {
        XsqEngine {
            mode: XsqMode::NoClosure,
        }
    }

    pub fn mode(&self) -> XsqMode {
        self.mode
    }

    /// Compile a query string.
    pub fn compile_str(&self, query: &str) -> Result<CompiledQuery, CompileError> {
        self.compile(&parse_query(query)?)
    }

    /// Compile a parsed query: build the HPDT, verify the builder's
    /// structural invariants, prune dead states/arcs, and prove (or fail
    /// to prove) determinism for automatic XSQ-NC routing.
    pub fn compile(&self, query: &Query) -> Result<CompiledQuery, CompileError> {
        self.compile_with_dtd(query, None)
    }

    /// [`Self::compile_str`] with schema knowledge: the DTD tightens the
    /// static memory bound and pre-sizes the runner's queues. Semantics
    /// are unchanged — schema *rewrites* stay behind the explicit
    /// `schema::optimize` / `analyze::elide_always_true` opt-ins.
    pub fn compile_str_with_dtd(
        &self,
        query: &str,
        dtd: Option<&xsq_xml::dtd::Dtd>,
    ) -> Result<CompiledQuery, CompileError> {
        self.compile_with_dtd(&parse_query(query)?, dtd)
    }

    /// [`Self::compile`] with schema knowledge (see
    /// [`Self::compile_str_with_dtd`]).
    pub fn compile_with_dtd(
        &self,
        query: &Query,
        dtd: Option<&xsq_xml::dtd::Dtd>,
    ) -> Result<CompiledQuery, CompileError> {
        if self.mode == XsqMode::NoClosure && query.has_closure() {
            return Err(CompileError::Unsupported {
                feature: "the closure axis //".into(),
                engine: "XSQ-NC".into(),
            });
        }
        let hpdt = build_hpdt(query)?;
        crate::analyze::reject_malformed(&crate::analyze::verify(&hpdt))?;
        let (hpdt, _) = crate::analyze::prune(&hpdt);
        let auto_nc = crate::analyze::prove_deterministic(&hpdt);
        let plan = crate::analyze::analyze_buffers(&hpdt);
        let bound = crate::analyze::analyze_bounds(query, &plan, dtd);
        Ok(CompiledQuery {
            hpdt: Arc::new(hpdt),
            mode: self.mode,
            auto_nc,
            bound: bound.bound,
        })
    }
}

/// A query compiled to an HPDT, ready to run over any number of streams.
#[derive(Debug)]
pub struct CompiledQuery {
    hpdt: Arc<Hpdt>,
    mode: XsqMode,
    /// The analyzer proved the pruned automaton free of closure arcs, so
    /// first-match execution is exact even under `XsqMode::Full`.
    auto_nc: bool,
    /// Static memory bound (conservative `Unbounded` when compiled
    /// without a DTD and the query buffers).
    bound: crate::analyze::MemoryBound,
}

impl CompiledQuery {
    /// The compiled automaton (dumps, invariant tests).
    pub fn hpdt(&self) -> &Hpdt {
        &self.hpdt
    }

    /// A shared handle to the compiled automaton — what the multi-query
    /// index stores next to the runtime state it drives.
    pub fn hpdt_arc(&self) -> Arc<Hpdt> {
        Arc::clone(&self.hpdt)
    }

    /// The engine variant this query was compiled for.
    pub fn mode(&self) -> XsqMode {
        self.mode
    }

    /// Did the analyzer prove this query deterministic, auto-routing it
    /// to the XSQ-NC fast path despite `XsqMode::Full`?
    pub fn auto_nc(&self) -> bool {
        self.mode == XsqMode::Full && self.auto_nc
    }

    /// The engine that actually runs this query: `"XSQ-NC"` when the
    /// caller asked for it, `"XSQ-NC (auto)"` when the determinism proof
    /// routed a full-mode query onto the fast path, `"XSQ-F"` otherwise.
    pub fn engine_label(&self) -> &'static str {
        match self.mode {
            XsqMode::NoClosure => "XSQ-NC",
            XsqMode::Full if self.auto_nc => "XSQ-NC (auto)",
            XsqMode::Full => "XSQ-F",
        }
    }

    /// The static memory bound this query was compiled with.
    pub fn bound(&self) -> &crate::analyze::MemoryBound {
        &self.bound
    }

    /// Start an incremental run — the streaming interface. Feed events as
    /// they arrive; results reach the sink as soon as the semantics
    /// permit.
    pub fn runner(&self) -> Runner<'_> {
        // XSQ-F scans every arc of a state; XSQ-NC stops at the first
        // match where the compiler proved that safe (§6.2). Full-mode
        // queries the analyzer proved deterministic take the same fast
        // path automatically.
        let mut runner = Runner::new(&self.hpdt, self.mode == XsqMode::Full && !self.auto_nc);
        // A proven Items(K) bound pre-sizes the queues: no mid-stream
        // queue growth on schema-valid input.
        if let Some(k) = self.bound.items() {
            if k > 0 {
                runner.set_queue_hint(k as usize);
            }
        }
        runner
    }

    /// Run over a complete serialized document.
    pub fn run_document(
        &self,
        document: &[u8],
        sink: &mut dyn Sink,
    ) -> Result<RunStats, EngineError> {
        self.run_reader(document, sink)
    }

    /// Run over any buffered reader (files, sockets).
    pub fn run_reader<R: BufRead>(
        &self,
        reader: R,
        sink: &mut dyn Sink,
    ) -> Result<RunStats, EngineError> {
        let mut parser = StreamParser::new(reader);
        let mut runner = self.runner();
        while let Some(ev) = parser.next_raw()? {
            runner.feed_raw(&ev, sink);
        }
        Ok(runner.finish(sink))
    }

    /// Run over pre-parsed events (benchmarks that exclude parse cost).
    pub fn run_events(&self, events: &[SaxEvent], sink: &mut dyn Sink) -> RunStats {
        let mut runner = self.runner();
        for ev in events {
            runner.feed(ev, sink);
        }
        runner.finish(sink)
    }
}

/// One-call convenience: evaluate `query` over `document` with XSQ-F.
///
/// ```
/// let results = xsq_core::evaluate(
///     "//book[year>2000]/name/text()",
///     b"<pub><book><year>2002</year><name>N</name></book></pub>",
/// ).unwrap();
/// assert_eq!(results, ["N"]);
/// ```
pub fn evaluate(query: &str, document: &[u8]) -> Result<Vec<String>, EngineError> {
    let compiled = XsqEngine::full().compile_str(query)?;
    let mut sink = VecSink::new();
    compiled.run_document(document, &mut sink)?;
    Ok(sink.results)
}

// ---- the uniform cross-engine interface for the experiment harness ----

/// XSQ-F as a study participant.
#[derive(Debug, Default)]
pub struct XsqF;

/// XSQ-NC as a study participant.
#[derive(Debug, Default)]
pub struct XsqNc;

fn run_report(
    engine: XsqEngine,
    query: &str,
    document: &[u8],
) -> Result<RunReport, Box<dyn std::error::Error>> {
    let t0 = Instant::now();
    let compiled = engine.compile_str(query)?;
    let compile = t0.elapsed();
    let t1 = Instant::now();
    let mut sink = VecSink::new();
    let stats = compiled.run_document(document, &mut sink)?;
    let query_time = t1.elapsed();
    Ok(RunReport {
        results: sink.results,
        timings: PhaseTimings {
            compile,
            preprocess: std::time::Duration::ZERO,
            query: query_time,
        },
        memory: stats.memory,
        events: stats.events,
        engine: compiled.engine_label().to_string(),
    })
}

impl XPathEngine for XsqF {
    fn name(&self) -> &'static str {
        "XSQ-F"
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            language: "XPath",
            streaming: true,
            multiple_predicates: true,
            closures: true,
            aggregation: true,
            buffered_predicate_eval: true,
        }
    }

    fn run(&self, query: &str, document: &[u8]) -> Result<RunReport, Box<dyn std::error::Error>> {
        run_report(XsqEngine::full(), query, document)
    }
}

impl XPathEngine for XsqNc {
    fn name(&self) -> &'static str {
        "XSQ-NC"
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            language: "XPath",
            streaming: true,
            multiple_predicates: true,
            closures: false,
            aggregation: true,
            buffered_predicate_eval: true,
        }
    }

    fn run(&self, query: &str, document: &[u8]) -> Result<RunReport, Box<dyn std::error::Error>> {
        run_report(XsqEngine::no_closure(), query, document)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evaluate_convenience_works() {
        let r = evaluate("/a/b/text()", b"<a><b>x</b></a>").unwrap();
        assert_eq!(r, ["x"]);
    }

    #[test]
    fn nc_rejects_closures() {
        let err = XsqEngine::no_closure()
            .compile_str("//a/text()")
            .unwrap_err();
        assert!(matches!(err, CompileError::Unsupported { .. }));
    }

    #[test]
    fn nc_and_f_agree_on_closure_free_queries() {
        let q = "/pub[year=2002]/book[author]/name/text()";
        let doc = b"<pub><book><name>First</name><author>A</author></book>\
                    <book><name>Second</name></book><year>2002</year></pub>";
        let f: &dyn XPathEngine = &XsqF;
        let nc: &dyn XPathEngine = &XsqNc;
        let rf = f.run(q, doc).unwrap();
        let rnc = nc.run(q, doc).unwrap();
        assert_eq!(rf.results, rnc.results);
        assert_eq!(rf.results, ["First"]);
    }

    #[test]
    fn run_report_carries_memory_and_events() {
        let r = XsqF.run("/a/b/text()", b"<a><b>x</b></a>").unwrap();
        assert!(r.events >= 5);
        assert!(r.memory.peak_configs >= 1);
    }

    #[test]
    fn malformed_document_is_an_error() {
        let compiled = XsqEngine::full().compile_str("/a/text()").unwrap();
        let mut sink = VecSink::new();
        assert!(compiled.run_document(b"<a><b></a>", &mut sink).is_err());
    }

    #[test]
    fn closure_free_queries_auto_route_to_nc() {
        let c = XsqEngine::full().compile_str("/a/b/text()").unwrap();
        assert!(c.auto_nc());
        assert_eq!(c.engine_label(), "XSQ-NC (auto)");
        let c = XsqEngine::full().compile_str("//a/text()").unwrap();
        assert!(!c.auto_nc());
        assert_eq!(c.engine_label(), "XSQ-F");
        let c = XsqEngine::no_closure().compile_str("/a/b/text()").unwrap();
        assert_eq!(c.engine_label(), "XSQ-NC");
    }

    #[test]
    fn run_report_names_the_engine_that_ran() {
        let r = XsqF.run("/a/b/text()", b"<a><b>x</b></a>").unwrap();
        assert_eq!(r.engine, "XSQ-NC (auto)");
        let r = XsqF.run("//b/text()", b"<a><b>x</b></a>").unwrap();
        assert_eq!(r.engine, "XSQ-F");
        let r = XsqNc.run("/a/b/text()", b"<a><b>x</b></a>").unwrap();
        assert_eq!(r.engine, "XSQ-NC");
    }

    #[test]
    fn capabilities_match_fig_14() {
        assert!(XsqF.capabilities().closures);
        assert!(!XsqNc.capabilities().closures);
        assert!(XsqF.capabilities().streaming && XsqNc.capabilities().streaming);
    }
}
