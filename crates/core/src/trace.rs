//! Execution tracing: watch the HPDT run, arc by arc.
//!
//! The paper explains its machinery through step-by-step walkthroughs
//! (Examples 5–7: which state the run is in, which arc fires, which
//! buffer operation executes). [`TraceStep`] captures exactly that for
//! every input event; the CLI's `--trace` flag prints it. Tracing is
//! opt-in and costs nothing when off (a single branch per event).

use std::fmt;

use crate::arcs::{Action, Arc, StateId};
use crate::depth_vector::DepthVector;

/// One fired transition.
#[derive(Debug, Clone)]
pub struct FiredArc {
    pub from: StateId,
    pub to: StateId,
    /// The owning BPDT, e.g. `bpdt(2,3)`.
    pub owner: String,
    /// The arc label, in the figures' notation.
    pub label: String,
    /// Buffer/output operations executed.
    pub actions: Vec<String>,
    /// The configuration's depth vector when the arc fired.
    pub dv: String,
}

/// Everything that happened while processing one input event.
#[derive(Debug, Clone)]
pub struct TraceStep {
    pub ordinal: u64,
    /// The event, in the paper's notation.
    pub event: String,
    pub fired: Vec<FiredArc>,
    /// Configurations alive after the event.
    pub configs_after: usize,
    /// Buffered references after the event.
    pub buffered_after: usize,
}

impl fmt::Display for TraceStep {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "#{:<4} {:<24} configs={} buffered={}",
            self.ordinal, self.event, self.configs_after, self.buffered_after
        )?;
        for a in &self.fired {
            write!(
                f,
                "\n      ${} --{}--> ${}  {} dv={}",
                a.from, a.label, a.to, a.owner, a.dv
            )?;
            for act in &a.actions {
                write!(f, " {{{act}}}")?;
            }
        }
        Ok(())
    }
}

/// Receives trace steps as the runner executes.
pub type Tracer<'a> = &'a mut dyn FnMut(TraceStep);

pub(crate) fn fired_arc(arc: &Arc, from: StateId, dv: &DepthVector) -> FiredArc {
    FiredArc {
        from,
        to: arc.target,
        owner: arc.owner.to_string(),
        label: label_str(arc),
        actions: arc.actions.iter().map(action_str).collect(),
        dv: dv.to_string(),
    }
}

fn label_str(arc: &Arc) -> String {
    use crate::arcs::{ArcLabel::*, NamePat};
    let name = |p: &NamePat| match p {
        NamePat::Name(n) => n.as_str().to_string(),
        NamePat::Any => "*".to_string(),
    };
    let mut s = match &arc.label {
        StartDoc => "<root>".to_string(),
        EndDoc => "</root>".to_string(),
        BeginChild(p) => format!("<{}>", name(p)),
        BeginAnyDepth(p) => format!("=<{}>", name(p)),
        ClosureSelfLoop => "//".to_string(),
        End(p) => format!("</{}>", name(p)),
        TextSelf(p) | TextChild(p) => format!("<{}.text()>", name(p)),
        Catchall => "*̄".to_string(),
    };
    if arc.guard.is_some() {
        s.push_str("[guard]");
    }
    s
}

fn action_str(a: &Action) -> String {
    match a {
        Action::FlushSelf => "queue.flush()".into(),
        Action::UploadSelf(t) => format!("queue.upload()→{t}"),
        Action::ClearSelf => "queue.clear()".into(),
        Action::Emit { .. } => "emit".into(),
        Action::ElementStart { .. } => "element.start".into(),
        Action::ElementAppend => "element.append".into(),
        Action::ElementEnd => "element.end".into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::build_hpdt;
    use crate::runtime::Runner;
    use crate::sink::VecSink;
    use xsq_xpath::parse_query;

    #[test]
    fn trace_records_every_event_and_the_fired_arcs() {
        let hpdt = build_hpdt(&parse_query("/pub[year>2000]/name/text()").unwrap()).unwrap();
        let mut steps: Vec<TraceStep> = Vec::new();
        {
            let mut tracer = |s: TraceStep| steps.push(s);
            let mut runner = Runner::new(&hpdt, true);
            runner.set_tracer(&mut tracer);
            let mut sink = VecSink::new();
            for ev in
                xsq_xml::parse_to_events(b"<pub><name>N</name><year>2002</year></pub>").unwrap()
            {
                runner.feed(&ev, &mut sink);
            }
            runner.finish(&mut sink);
        }
        // One step per event.
        assert_eq!(steps.len(), 10);
        // The walkthrough shows the flush at the year's text event.
        let year_text = &steps[6];
        assert!(year_text.event.contains("year"), "{}", year_text.event);
        assert!(
            year_text
                .fired
                .iter()
                .any(|f| f.actions.iter().any(|a| a.contains("flush"))),
            "flush expected at the witness: {year_text}"
        );
        // Rendering is stable and readable.
        let text = steps
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n");
        assert!(text.contains("--<pub>-->"));
        assert!(text.contains("dv=(0,1)"));
    }

    #[test]
    fn tracing_does_not_change_results() {
        let hpdt = build_hpdt(&parse_query("//pub[year=2002]//book[author]//name/text()").unwrap())
            .unwrap();
        let doc = b"<root><pub><book><name>X</name><author>A</author></book>\
                    <year>2002</year></pub></root>";
        let events = xsq_xml::parse_to_events(doc).unwrap();
        let plain = {
            let mut r = Runner::new(&hpdt, true);
            let mut s = VecSink::new();
            for e in &events {
                r.feed(e, &mut s);
            }
            r.finish(&mut s);
            s.results
        };
        let mut count = 0usize;
        let traced = {
            let mut tracer = |_s: TraceStep| count += 1;
            let mut r = Runner::new(&hpdt, true);
            r.set_tracer(&mut tracer);
            let mut s = VecSink::new();
            for e in &events {
                r.feed(e, &mut s);
            }
            r.finish(&mut s);
            s.results
        };
        assert_eq!(plain, traced);
        assert_eq!(count, events.len());
    }
}
