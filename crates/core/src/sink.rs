//! Output sinks: where query results go.
//!
//! A streaming engine's distinguishing feature is that results leave the
//! system as soon as their membership is determined; the sink abstraction
//! lets callers observe exactly that (the examples stream results from an
//! unbounded feed, the benches count them without allocating).

/// Receives results as the engine determines them.
pub trait Sink {
    /// One result item (text value, attribute value, serialized element,
    /// or — once, at end of stream — the final aggregation value).
    fn result(&mut self, value: &str);

    /// A running aggregation update (§4.4: the stat buffer emits a new
    /// value whenever it changes, so aggregations work over unbounded
    /// streams). Default: ignored.
    fn aggregate_update(&mut self, _value: f64) {}
}

/// Collects everything into vectors — the default for tests and small
/// result sets.
#[derive(Debug, Default)]
pub struct VecSink {
    pub results: Vec<String>,
    pub updates: Vec<f64>,
}

impl VecSink {
    pub fn new() -> Self {
        Self::default()
    }
}

impl Sink for VecSink {
    fn result(&mut self, value: &str) {
        self.results.push(value.to_string());
    }

    fn aggregate_update(&mut self, value: f64) {
        self.updates.push(value);
    }
}

/// Counts results and bytes without storing them — used by the benchmark
/// harness so sink allocation does not distort throughput.
#[derive(Debug, Default)]
pub struct CountingSink {
    pub results: u64,
    pub bytes: u64,
}

impl CountingSink {
    pub fn new() -> Self {
        Self::default()
    }
}

impl Sink for CountingSink {
    fn result(&mut self, value: &str) {
        self.results += 1;
        self.bytes += value.len() as u64;
    }
}

/// A sink that calls a closure per result (streaming consumers).
pub struct FnSink<F: FnMut(&str)>(pub F);

impl<F: FnMut(&str)> Sink for FnSink<F> {
    fn result(&mut self, value: &str) {
        (self.0)(value);
    }
}

/// Receives results together with the tag of the query that produced
/// them. This is the attribution-preserving interface the multi-query
/// machinery runs on: a merged HPDT evaluates several queries at once and
/// labels every emitted item with its originating query's tag, so a
/// shared consumer can tell the streams apart (the single-query engine
/// always uses tag 0).
pub trait TaggedSink {
    /// One result item from the query identified by `tag`.
    fn result(&mut self, tag: u32, value: &str);

    /// A running aggregation update from the query identified by `tag`.
    /// Default: ignored.
    fn aggregate_update(&mut self, _tag: u32, _value: f64) {}
}

/// Adapts a plain [`Sink`] to the tagged interface by discarding the tag
/// (correct whenever only one query feeds the sink).
pub struct IgnoreTags<'a>(pub &'a mut dyn Sink);

impl TaggedSink for IgnoreTags<'_> {
    fn result(&mut self, _tag: u32, value: &str) {
        self.0.result(value);
    }

    fn aggregate_update(&mut self, _tag: u32, value: f64) {
        self.0.aggregate_update(value);
    }
}

/// Collects tagged results in arrival order — the tagged analogue of
/// [`VecSink`], for tests and small result sets.
#[derive(Debug, Default)]
pub struct TaggedVecSink {
    pub results: Vec<(u32, String)>,
    pub updates: Vec<(u32, f64)>,
}

impl TaggedVecSink {
    pub fn new() -> Self {
        Self::default()
    }

    /// The results of one tag, in arrival (= document) order.
    pub fn of(&self, tag: u32) -> Vec<&str> {
        self.results
            .iter()
            .filter(|(t, _)| *t == tag)
            .map(|(_, v)| v.as_str())
            .collect()
    }
}

impl TaggedSink for TaggedVecSink {
    fn result(&mut self, tag: u32, value: &str) {
        self.results.push((tag, value.to_string()));
    }

    fn aggregate_update(&mut self, tag: u32, value: f64) {
        self.updates.push((tag, value));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_sink_collects() {
        let mut s = VecSink::new();
        s.result("a");
        s.aggregate_update(1.0);
        assert_eq!(s.results, ["a"]);
        assert_eq!(s.updates, [1.0]);
    }

    #[test]
    fn counting_sink_counts() {
        let mut s = CountingSink::new();
        s.result("abc");
        s.result("d");
        assert_eq!(s.results, 2);
        assert_eq!(s.bytes, 4);
    }

    #[test]
    fn fn_sink_invokes_closure() {
        let mut seen = Vec::new();
        {
            let mut s = FnSink(|v: &str| seen.push(v.to_string()));
            s.result("x");
        }
        assert_eq!(seen, ["x"]);
    }

    #[test]
    fn ignore_tags_forwards_to_plain_sink() {
        let mut inner = VecSink::new();
        {
            let mut s = IgnoreTags(&mut inner);
            s.result(3, "a");
            s.aggregate_update(7, 2.0);
        }
        assert_eq!(inner.results, ["a"]);
        assert_eq!(inner.updates, [2.0]);
    }

    #[test]
    fn tagged_vec_sink_separates_tags() {
        let mut s = TaggedVecSink::new();
        s.result(0, "a");
        s.result(1, "b");
        s.result(0, "c");
        assert_eq!(s.of(0), ["a", "c"]);
        assert_eq!(s.of(1), ["b"]);
    }
}
