//! The statistics buffer for aggregation queries (§4.4).
//!
//! Instead of emitting matched values, an aggregation query folds them
//! into a running statistic. The paper's `stat.update` emits a new value
//! whenever the statistic changes, so aggregations remain useful over
//! unbounded streams; `stat.output` reports the final value at document
//! end. Duplicate avoidance is inherited from the item machinery: a value
//! matched along several closure paths is counted exactly once, because
//! it folds in only when its shared item is first marked output.

use xsq_xpath::value::{canonical_number, str_to_number};
use xsq_xpath::AggFunc;

/// Running state of one aggregation function.
#[derive(Debug, Clone)]
pub struct Aggregator {
    func: AggFunc,
    count: u64,
    sum: f64,
    min: Option<f64>,
    max: Option<f64>,
    dirty: bool,
}

impl Aggregator {
    pub fn new(func: AggFunc) -> Self {
        Aggregator {
            func,
            count: 0,
            sum: 0.0,
            min: None,
            max: None,
            dirty: false,
        }
    }

    /// Restart the statistic in place for a fresh document (multi-doc
    /// runner reuse avoids reallocating the aggregator table).
    pub fn reset(&mut self, func: AggFunc) {
        *self = Aggregator::new(func);
    }

    /// Fold one matched value in. Numeric conversion follows XPath
    /// `number()`: non-numeric text becomes NaN, which poisons `sum` and
    /// `avg` (XPath 1.0 semantics) but is skipped by `min`/`max` (a
    /// practical choice, documented in DESIGN.md).
    pub fn add(&mut self, value: &str) {
        self.count += 1;
        self.dirty = true;
        if self.func == AggFunc::Count {
            return;
        }
        let v = str_to_number(value);
        self.sum += v;
        if !v.is_nan() {
            self.min = Some(self.min.map_or(v, |m| m.min(v)));
            self.max = Some(self.max.map_or(v, |m| m.max(v)));
        }
    }

    /// The current value of the statistic over everything seen so far.
    pub fn current(&self) -> f64 {
        match self.func {
            AggFunc::Count => self.count as f64,
            AggFunc::Sum => self.sum,
            AggFunc::Avg => {
                if self.count == 0 {
                    f64::NAN
                } else {
                    self.sum / self.count as f64
                }
            }
            AggFunc::Min => self.min.unwrap_or(f64::NAN),
            AggFunc::Max => self.max.unwrap_or(f64::NAN),
        }
    }

    /// Number of values folded in.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Take the "changed since last asked" flag (drives the running
    /// updates the paper's `stat.update` emits).
    pub fn take_dirty(&mut self) -> bool {
        std::mem::take(&mut self.dirty)
    }

    /// Final textual result, as `stat.output` would print it.
    pub fn render(&self) -> String {
        match self.func {
            AggFunc::Count => self.count.to_string(),
            _ => canonical_number(self.current()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn count_counts_everything_including_non_numeric() {
        let mut a = Aggregator::new(AggFunc::Count);
        a.add("x");
        a.add("1");
        assert_eq!(a.current(), 2.0);
        assert_eq!(a.render(), "2");
        assert_eq!(a.count(), 2);
    }

    #[test]
    fn sum_and_avg() {
        let mut a = Aggregator::new(AggFunc::Sum);
        a.add("10.5");
        a.add(" 2 "); // padded, as in real data
        assert_eq!(a.current(), 12.5);
        assert_eq!(a.render(), "12.5");
        let mut a = Aggregator::new(AggFunc::Avg);
        a.add("10");
        a.add("20");
        assert_eq!(a.current(), 15.0);
    }

    #[test]
    fn sum_is_nan_poisoned_like_xpath() {
        let mut a = Aggregator::new(AggFunc::Sum);
        a.add("10");
        a.add("not a number");
        assert!(a.current().is_nan());
    }

    #[test]
    fn min_max_skip_nan() {
        let mut a = Aggregator::new(AggFunc::Min);
        a.add("junk");
        a.add("5");
        a.add("3");
        assert_eq!(a.current(), 3.0);
        let mut a = Aggregator::new(AggFunc::Max);
        a.add("5");
        a.add("junk");
        a.add("7");
        assert_eq!(a.current(), 7.0);
        assert_eq!(a.render(), "7");
    }

    #[test]
    fn avg_is_nan_poisoned_and_renders_nan() {
        // One non-numeric value poisons the sum, hence the average —
        // XPath 1.0 number() semantics — and renders as the literal
        // string "NaN" (canonical number formatting).
        let mut a = Aggregator::new(AggFunc::Avg);
        a.add("10");
        a.add("NaN");
        a.add("30");
        assert!(a.current().is_nan());
        assert_eq!(a.render(), "NaN");
        assert_eq!(a.count(), 3);
    }

    #[test]
    fn min_max_all_nan_inputs_render_nan() {
        // If *every* input is non-numeric there is nothing to skip to:
        // min/max report NaN rather than a fabricated number.
        for func in [AggFunc::Min, AggFunc::Max] {
            let mut a = Aggregator::new(func);
            a.add("junk");
            a.add("NaN");
            assert!(a.current().is_nan(), "{func:?}");
            assert_eq!(a.render(), "NaN", "{func:?}");
        }
    }

    #[test]
    fn empty_aggregates() {
        assert_eq!(Aggregator::new(AggFunc::Count).current(), 0.0);
        assert_eq!(Aggregator::new(AggFunc::Sum).current(), 0.0);
        assert!(Aggregator::new(AggFunc::Avg).current().is_nan());
        assert!(Aggregator::new(AggFunc::Min).current().is_nan());
    }

    #[test]
    fn dirty_flag_drives_running_updates() {
        let mut a = Aggregator::new(AggFunc::Count);
        assert!(!a.take_dirty());
        a.add("x");
        assert!(a.take_dirty());
        assert!(!a.take_dirty());
    }
}
