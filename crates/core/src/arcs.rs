//! States, transition arcs, labels, guards, and actions of the HPDT.
//!
//! A transition arc stores (paper §3.4) the input-symbol pattern it
//! matches, an optional predicate guard evaluated against the event, the
//! new state, and the buffer/output operations to perform. Special labels
//! implement the closure machinery: `//` self-loops that accept any begin
//! event, closure entry arcs (the paper's `=`-marked arcs) that accept
//! their tag at any depth, and the catchall `*̄` that accepts any event
//! strictly below the current anchor (used for whole-element output).

use xsq_xml::{RawEvent, Sym};
use xsq_xpath::{Comparison, FnTest};

use crate::depth_vector::DepthVector;
use crate::ids::BpdtId;

/// Index of a state in the HPDT's state table.
pub type StateId = u32;

/// Role a state plays inside its BPDT (for dumps and invariant checks).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StateRole {
    /// The HPDT's global start state (START of the root BPDT).
    Start,
    /// A TRUE state: the BPDT's predicate is known true.
    True,
    /// An NA state: the predicate has not been evaluated yet.
    Na,
    /// Inside the predicate's witness child (between `<child>` and
    /// `</child>` of the begin-event-triggered categories).
    Witness,
}

/// Static information about a state.
#[derive(Debug, Clone)]
pub struct StateInfo {
    /// The BPDT that owns the state. (START states belong to the parent
    /// BPDT; the states listed here are the owned ones plus the root's.)
    pub owner: BpdtId,
    pub role: StateRole,
}

/// Tag pattern on begin/end/text labels. Names are interned at query
/// compile time, so matching an event tag is a single `u32` compare.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NamePat {
    Name(Sym),
    /// `*` — any tag.
    Any,
}

impl NamePat {
    #[inline]
    pub fn matches(&self, tag: Sym) -> bool {
        match self {
            NamePat::Name(n) => *n == tag,
            NamePat::Any => true,
        }
    }
}

/// What events an arc accepts, including the depth discipline of §4.3.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArcLabel {
    /// The document-start event (consumed by the root BPDT, Fig. 12).
    StartDoc,
    /// The document-end event.
    EndDoc,
    /// A begin event of a *child* of the current anchor:
    /// `e.d == dv.top() + 1`.
    BeginChild(NamePat),
    /// A closure entry arc (the paper's `=`-marked transitions): a begin
    /// event with matching tag at **any** depth below the anchor
    /// (`e.d > dv.top()`).
    BeginAnyDepth(NamePat),
    /// The `//` self-loop on a closure step's START state: any begin
    /// event, no state or depth-vector change.
    ClosureSelfLoop,
    /// An end event at the anchor depth: `e.d == dv.top()`.
    End(NamePat),
    /// A text event of the anchor element itself: `e.d == dv.top()`.
    TextSelf(NamePat),
    /// A text event of a direct child: `e.d == dv.top() + 1` with the
    /// child's tag.
    TextChild(NamePat),
    /// The catchall `*̄`: any event with `e.d > dv.top()` (strict
    /// descendants of the anchor). Used for whole-element output.
    Catchall,
}

/// A predicate guard evaluated against the matched event. A failing guard
/// means the arc does not fire (the paper: "if f evaluates to false, it
/// does nothing").
#[derive(Debug, Clone, PartialEq)]
pub enum Guard {
    /// On a begin event: the named attribute exists and (if present)
    /// satisfies the comparison.
    Attr { name: Sym, cmp: Option<Comparison> },
    /// On a text event: the content satisfies the comparison (`None`
    /// means any text, for bare `[text()]`).
    Text { cmp: Option<Comparison> },
    /// On a begin event: the named attribute exists and satisfies a
    /// function test (`contains`, `starts-with`, …). Category-1 timing.
    AttrFn { name: Sym, test: FnTest },
    /// On a text event: the content satisfies a function test.
    /// Category-2 timing.
    TextFn { test: FnTest },
}

/// Where a freshly produced result value is routed (the disposition is
/// fixed at compile time from the leaf BPDT's id, §4.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Disposition {
    /// Every predicate on this path is known true: send to output
    /// directly (mark the item as "output" immediately, §4.3).
    Direct,
    /// The leaf's own predicate is still undecided: buffer in the leaf
    /// BPDT's own queue.
    OwnQueue,
    /// The leaf's predicate is true but an ancestor's is not: buffer in
    /// the queue of the nearest undecided ancestor (the upload target).
    Queue(BpdtId),
}

/// The value extracted for a result item.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValueSource {
    /// The text of the current text event (`text()` output, `sum()`…).
    Text,
    /// An attribute of the current begin event (`@attr` output).
    Attr(Sym),
    /// The constant `1` anchored at the begin event (`count()`).
    Unit,
}

/// Buffer and output operations attached to an arc. `Self` refers to the
/// BPDT owning the arc.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Action {
    /// Predicate resolved true and every ancestor predicate is true:
    /// mark all depth-matching items in this BPDT's queue as output.
    FlushSelf,
    /// Predicate resolved true but an ancestor is undecided: move the
    /// depth-matching items to the target BPDT's queue.
    UploadSelf(BpdtId),
    /// Predicate resolved false (end event from the NA side): drop the
    /// depth-matching items from this BPDT's queue.
    ClearSelf,
    /// Produce a result value from the current event, attributed to the
    /// query `tag` (0 for single-query HPDTs; the member index in a
    /// merged multi-query HPDT, where different leaves emit for
    /// different queries).
    Emit {
        source: ValueSource,
        to: Disposition,
        tag: u32,
    },
    /// Whole-element output: open a new element item at the begin event
    /// of the matched element (serializing the begin tag into it).
    ElementStart { to: Disposition, tag: u32 },
    /// Whole-element output: append the current event to the
    /// configuration's open element item.
    ElementAppend,
    /// Whole-element output: append the end tag and close the item.
    ElementEnd,
}

/// One transition arc.
#[derive(Debug, Clone)]
pub struct Arc {
    pub label: ArcLabel,
    pub guard: Option<Guard>,
    pub target: StateId,
    /// Layer of the owning BPDT. Within one input event, matched arcs are
    /// executed deepest-layer-first so that uploads from closing inner
    /// elements arrive in an ancestor's queue *before* the ancestor's own
    /// flush/clear on the same event (cf. Fig. 8 placing the upload on
    /// `</child>`).
    pub owner_layer: u16,
    /// The BPDT owning this arc (whose queue `*Self` actions address).
    pub owner: BpdtId,
    pub actions: Vec<Action>,
}

impl Arc {
    /// Does this arc accept `event` for a configuration whose depth
    /// vector is `dv`? (Guards are evaluated separately.) Tag checks are
    /// `u32` compares on interned symbols.
    #[inline]
    pub fn label_matches(&self, event: &RawEvent<'_>, dv: &DepthVector) -> bool {
        use RawEvent as E;
        match (&self.label, event) {
            (ArcLabel::StartDoc, E::StartDocument) => true,
            (ArcLabel::EndDoc, E::EndDocument) => true,
            (ArcLabel::BeginChild(pat), E::Begin { name, depth, .. }) => {
                *depth == dv.top() + 1 && pat.matches(*name)
            }
            (ArcLabel::BeginAnyDepth(pat), E::Begin { name, depth, .. }) => {
                *depth > dv.top() && pat.matches(*name)
            }
            (ArcLabel::ClosureSelfLoop, E::Begin { depth, .. }) => *depth > dv.top(),
            (ArcLabel::End(pat), E::End { name, depth }) => {
                *depth == dv.top() && pat.matches(*name)
            }
            (ArcLabel::TextSelf(pat), E::Text { element, depth, .. }) => {
                *depth == dv.top() && pat.matches(*element)
            }
            (ArcLabel::TextChild(pat), E::Text { element, depth, .. }) => {
                *depth == dv.top() + 1 && pat.matches(*element)
            }
            (ArcLabel::Catchall, e) => e.depth() > dv.top(),
            _ => false,
        }
    }

    /// Evaluate the guard against the event (label already matched).
    #[inline]
    pub fn guard_passes(&self, event: &RawEvent<'_>) -> bool {
        match &self.guard {
            None => true,
            Some(Guard::Attr { name, cmp }) => match event.attribute_sym(*name) {
                None => false,
                Some(v) => cmp.as_ref().is_none_or(|c| c.eval(v)),
            },
            Some(Guard::Text { cmp }) => match event {
                RawEvent::Text { text, .. } => cmp.as_ref().is_none_or(|c| c.eval(text)),
                _ => false,
            },
            Some(Guard::AttrFn { name, test }) => match event.attribute_sym(*name) {
                None => false,
                Some(v) => test.eval(v),
            },
            Some(Guard::TextFn { test }) => match event {
                RawEvent::Text { text, .. } => test.eval(text),
                _ => false,
            },
        }
    }

    /// True when firing this arc changes the configuration's state (the
    /// paper's dv rules only apply to real transitions: `s' ≠ s`).
    pub fn changes_state(&self, source: StateId) -> bool {
        self.target != source
    }

    /// Execution priority among arcs of the *same layer* fired by the
    /// same input event: value production must run before the flush or
    /// upload that would release it (an event can be both the witness
    /// and the value, e.g. `//a[text()=2]/text()`), and flush/upload must
    /// run before a clear that would otherwise drop the same entries
    /// (witness-true and NA-side configurations resolving on one end
    /// event).
    pub fn priority(&self) -> u8 {
        let mut p = 1;
        for a in &self.actions {
            match a {
                Action::Emit { .. } | Action::ElementStart { .. } => return 0,
                Action::ClearSelf => p = 2,
                _ => {}
            }
        }
        p
    }
}

/// Event-kind half of a dispatch key (shared by the per-state arc tables
/// below and the query index's inverted dispatch).
pub(crate) const KIND_BEGIN: u64 = 0;
pub(crate) const KIND_END: u64 = 1;
pub(crate) const KIND_TEXT: u64 = 2;

/// Dense dispatch key for a (kind, tag) pair.
#[inline]
pub(crate) fn event_key(kind: u64, sym: Sym) -> u64 {
    (kind << 32) | sym.index() as u64
}

/// The dispatch key of an event, if it has one (document start/end do
/// not — only `rest` arcs can accept those).
#[inline]
pub(crate) fn raw_event_key(event: &RawEvent<'_>) -> Option<u64> {
    match event {
        RawEvent::Begin { name, .. } => Some(event_key(KIND_BEGIN, *name)),
        RawEvent::End { name, .. } => Some(event_key(KIND_END, *name)),
        RawEvent::Text { element, .. } => Some(event_key(KIND_TEXT, *element)),
        RawEvent::StartDocument | RawEvent::EndDocument => None,
    }
}

/// How an arc label participates in keyed dispatch: either it only ever
/// accepts events with one exact (kind, tag) key, or it must be probed
/// for every event (wildcard patterns, catchalls, document events).
pub(crate) fn label_dispatch_key(label: &ArcLabel) -> Option<u64> {
    match label {
        ArcLabel::BeginChild(NamePat::Name(s)) | ArcLabel::BeginAnyDepth(NamePat::Name(s)) => {
            Some(event_key(KIND_BEGIN, *s))
        }
        ArcLabel::End(NamePat::Name(s)) => Some(event_key(KIND_END, *s)),
        ArcLabel::TextSelf(NamePat::Name(s)) | ArcLabel::TextChild(NamePat::Name(s)) => {
            Some(event_key(KIND_TEXT, *s))
        }
        _ => None,
    }
}

/// Keyed index over one state's outgoing arcs. `label_matches` makes the
/// exact tag compare a *necessary* condition for every named label, so an
/// event only needs to probe the arcs filed under its own (kind, tag) key
/// plus the `rest` bucket — turning the per-event cost on a frontier
/// state with N named arcs (one per merged query) from O(N) into
/// O(matching + wildcards). This is what un-cliffs N=512 single-group
/// dispatch: the index's touch win finally shows up as wall-clock.
#[derive(Debug, Clone, Default)]
pub(crate) struct ArcTable {
    /// `(dispatch key, arc index)` sorted by key then index; probe with
    /// `partition_point`, entries for one key are contiguous and in
    /// ascending arc order.
    named: Vec<(u64, u32)>,
    /// Arc indices that must be probed for every event, ascending.
    rest: Vec<u32>,
}

impl ArcTable {
    /// Candidate arc indices for an event with dispatch key `key`, in
    /// ascending arc-index order (merging the key run with `rest`
    /// preserves the exact probe order of a linear scan, which the
    /// stop-early XSQ-NC mode relies on). `None` key (document events)
    /// yields `rest` alone.
    #[inline]
    pub(crate) fn candidates(&self, key: Option<u64>, out: &mut Vec<u32>) {
        out.clear();
        let run = match key {
            Some(k) => {
                let lo = self.named.partition_point(|&(nk, _)| nk < k);
                let hi = self.named[lo..].partition_point(|&(nk, _)| nk == k) + lo;
                &self.named[lo..hi]
            }
            None => &[],
        };
        // Merge two ascending sequences of arc indices.
        let (mut i, mut j) = (0, 0);
        while i < run.len() && j < self.rest.len() {
            if run[i].1 < self.rest[j] {
                out.push(run[i].1);
                i += 1;
            } else {
                out.push(self.rest[j]);
                j += 1;
            }
        }
        out.extend(run[i..].iter().map(|&(_, a)| a));
        out.extend_from_slice(&self.rest[j..]);
    }

    /// Would a linear scan be just as fast? Small states skip the table
    /// (`compute_arc_tables` applies the cutoff; this is the test hook).
    #[cfg(test)]
    pub(crate) fn worthwhile(&self) -> bool {
        self.named.len() + self.rest.len() >= ARC_TABLE_CUTOFF
    }
}

/// Below this many arcs a linear scan beats the probe+merge.
const ARC_TABLE_CUTOFF: usize = 8;

/// Build per-state arc tables for the HPDT's transition function. States
/// whose arc count is below the cutoff get `None` (linear scan).
pub(crate) fn compute_arc_tables(arcs: &[Vec<Arc>]) -> Vec<Option<ArcTable>> {
    arcs.iter()
        .map(|state_arcs| {
            if state_arcs.len() < ARC_TABLE_CUTOFF {
                return None;
            }
            let mut table = ArcTable::default();
            for (ai, arc) in state_arcs.iter().enumerate() {
                match label_dispatch_key(&arc.label) {
                    Some(key) => table.named.push((key, ai as u32)),
                    None => table.rest.push(ai as u32),
                }
            }
            table.named.sort_unstable();
            Some(table)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use xsq_xml::{Attribute, SaxEvent};
    use xsq_xpath::value::XPathValue;
    use xsq_xpath::{CmpOp, Comparison};

    fn begin(name: &str, depth: u32) -> SaxEvent {
        SaxEvent::Begin {
            name: name.into(),
            attributes: vec![Attribute::new("id", "5")],
            depth,
        }
    }

    fn text(element: &str, content: &str, depth: u32) -> SaxEvent {
        SaxEvent::Text {
            element: element.into(),
            text: content.into(),
            depth,
        }
    }

    fn end(name: &str, depth: u32) -> SaxEvent {
        SaxEvent::End {
            name: name.into(),
            depth,
        }
    }

    fn arc(label: ArcLabel) -> Arc {
        Arc {
            label,
            guard: None,
            target: 1,
            owner_layer: 0,
            owner: BpdtId::ROOT,
            actions: vec![],
        }
    }

    fn matches(a: &Arc, ev: &SaxEvent, dv: &DepthVector) -> bool {
        a.label_matches(&ev.as_raw(), dv)
    }

    fn passes(a: &Arc, ev: &SaxEvent) -> bool {
        a.guard_passes(&ev.as_raw())
    }

    #[test]
    fn begin_child_requires_exact_depth() {
        let a = arc(ArcLabel::BeginChild(NamePat::Name("book".into())));
        let dv = DepthVector::from_depths(&[0, 1]);
        assert!(matches(&a, &begin("book", 2), &dv));
        assert!(!matches(&a, &begin("book", 3), &dv));
        assert!(!matches(&a, &begin("pub", 2), &dv));
    }

    #[test]
    fn begin_any_depth_accepts_deeper_descendants() {
        let a = arc(ArcLabel::BeginAnyDepth(NamePat::Name("book".into())));
        let dv = DepthVector::from_depths(&[0, 1]);
        assert!(matches(&a, &begin("book", 2), &dv));
        assert!(matches(&a, &begin("book", 7), &dv));
        assert!(!matches(&a, &begin("book", 1), &dv));
    }

    #[test]
    fn closure_self_loop_accepts_any_begin_below() {
        let a = arc(ArcLabel::ClosureSelfLoop);
        let dv = DepthVector::from_depths(&[0, 3]);
        assert!(matches(&a, &begin("anything", 4), &dv));
        assert!(matches(&a, &begin("x", 9), &dv));
        assert!(!matches(&a, &begin("x", 3), &dv));
        assert!(!matches(&a, &text("x", "t", 5), &dv));
    }

    #[test]
    fn text_self_vs_text_child_depths() {
        let dv = DepthVector::from_depths(&[0, 2]);
        let self_arc = arc(ArcLabel::TextSelf(NamePat::Name("year".into())));
        let child_arc = arc(ArcLabel::TextChild(NamePat::Name("year".into())));
        assert!(matches(&self_arc, &text("year", "2002", 2), &dv));
        assert!(!matches(&self_arc, &text("year", "2002", 3), &dv));
        assert!(matches(&child_arc, &text("year", "2002", 3), &dv));
        assert!(!matches(&child_arc, &text("other", "2002", 3), &dv));
    }

    #[test]
    fn catchall_matches_strict_descendants_of_any_kind() {
        let a = arc(ArcLabel::Catchall);
        let dv = DepthVector::from_depths(&[0, 1]);
        assert!(matches(&a, &begin("x", 2), &dv));
        assert!(matches(&a, &text("x", "t", 2), &dv));
        assert!(matches(&a, &end("x", 2), &dv));
        // The anchor's own events are not descendants.
        assert!(!matches(&a, &text("a", "t", 1), &dv));
        assert!(!matches(&a, &end("a", 1), &dv));
    }

    #[test]
    fn attr_guard_checks_existence_and_comparison() {
        let mut a = arc(ArcLabel::BeginChild(NamePat::Any));
        a.guard = Some(Guard::Attr {
            name: "id".into(),
            cmp: None,
        });
        assert!(passes(&a, &begin("b", 1)));
        a.guard = Some(Guard::Attr {
            name: "id".into(),
            cmp: Some(Comparison {
                op: CmpOp::Le,
                rhs: XPathValue::number(10.0),
            }),
        });
        assert!(passes(&a, &begin("b", 1))); // id=5 <= 10
        a.guard = Some(Guard::Attr {
            name: "missing".into(),
            cmp: None,
        });
        assert!(!passes(&a, &begin("b", 1)));
    }

    #[test]
    fn text_guard_evaluates_content() {
        let mut a = arc(ArcLabel::TextSelf(NamePat::Any));
        a.guard = Some(Guard::Text {
            cmp: Some(Comparison {
                op: CmpOp::Gt,
                rhs: XPathValue::number(2000.0),
            }),
        });
        assert!(passes(&a, &text("year", "2002", 1)));
        assert!(!passes(&a, &text("year", "1999", 1)));
        assert!(!passes(&a, &begin("year", 1)));
    }

    #[test]
    fn end_label_matches_at_anchor_depth() {
        let a = arc(ArcLabel::End(NamePat::Name("pub".into())));
        let dv = DepthVector::from_depths(&[0, 1]);
        assert!(matches(&a, &end("pub", 1), &dv));
        assert!(!matches(&a, &end("pub", 2), &dv));
    }

    #[test]
    fn arc_table_candidates_match_linear_scan() {
        // A frontier-like state: many named begin arcs plus wildcard and
        // document arcs. The keyed candidates must be exactly the arcs a
        // linear scan could match, in the same (ascending) order.
        let mut arcs_of_state = Vec::new();
        for i in 0..10 {
            arcs_of_state.push(arc(ArcLabel::BeginChild(NamePat::Name(
                format!("t{i}").as_str().into(),
            ))));
        }
        arcs_of_state.push(arc(ArcLabel::ClosureSelfLoop));
        arcs_of_state.push(arc(ArcLabel::BeginChild(NamePat::Any)));
        arcs_of_state.push(arc(ArcLabel::End(NamePat::Name("t3".into()))));
        arcs_of_state.push(arc(ArcLabel::TextChild(NamePat::Name("t3".into()))));
        arcs_of_state.push(arc(ArcLabel::StartDoc));
        let tables = compute_arc_tables(std::slice::from_ref(&arcs_of_state));
        let table = tables[0].as_ref().expect("above cutoff");
        assert!(table.worthwhile());

        let events = [
            begin("t3", 2),
            begin("t7", 2),
            begin("unknown", 2),
            end("t3", 1),
            text("t3", "v", 2),
            SaxEvent::StartDocument,
        ];
        let dv = DepthVector::from_depths(&[0, 1]);
        let mut got = Vec::new();
        for ev in &events {
            let raw = ev.as_raw();
            table.candidates(raw_event_key(&raw), &mut got);
            // Keyed dispatch is an over-approximation of label_matches:
            // every arc the linear scan would fire must be a candidate,
            // and candidates stay in ascending arc order.
            for (ai, a) in arcs_of_state.iter().enumerate() {
                if a.label_matches(&raw, &dv) {
                    assert!(got.contains(&(ai as u32)), "missing arc {ai} for {ev:?}");
                }
            }
            assert!(got.windows(2).all(|w| w[0] < w[1]), "order for {ev:?}");
        }

        // Small states skip the table entirely.
        let small = compute_arc_tables(&[vec![arc(ArcLabel::Catchall)]]);
        assert!(small[0].is_none());
    }
}
