//! HPDT construction from an XPath query (§4.2).
//!
//! The builder generates a root BPDT (Fig. 12), then for each location
//! step `Ni` expands every BPDT of the previous layer: a **right child**
//! `bpdt(i, 2k)` grows out of the parent's NA state (if it has one) and a
//! **left child** `bpdt(i, 2k+1)` out of its TRUE state. Each BPDT is
//! instantiated from the template for its predicate category (Figs. 5–9),
//! closure steps get the `//` self-loop and `=`-marked any-depth entry
//! arcs, and the lowest layer gets the output machinery (direct output in
//! `bpdt(n, 2^n − 1)`, buffered output elsewhere — Fig. 11).
//!
//! Every buffer decision is precomputed from the BPDT id: whether a
//! predicate-true transition flushes (all ancestor bits set) or uploads
//! (to the nearest zero bit), and where produced values are routed.

use std::collections::HashMap;

use xsq_xml::Sym;
use xsq_xpath::classify::{classify, StepCategory};
use xsq_xpath::{AggFunc, Axis, FnArg, NodeTest, Output, Predicate, Query, Step};

use crate::arcs::{
    compute_arc_tables, Action, Arc, ArcLabel, ArcTable, Disposition, Guard, NamePat, StateId,
    StateInfo, StateRole, ValueSource,
};
use crate::error::CompileError;
use crate::ids::BpdtId;

/// Hard cap on generated states. The binary tree of BPDTs is exponential
/// in the number of *predicated* steps, which is tiny for real queries;
/// the cap turns pathological inputs into a clean error.
const MAX_STATES: usize = 100_000;

/// A compiled hierarchical pushdown transducer.
#[derive(Debug)]
pub struct Hpdt {
    pub states: Vec<StateInfo>,
    /// Outgoing arcs per state.
    pub arcs: Vec<Vec<Arc>>,
    /// Per state: `true` when several arcs might accept the same event,
    /// so a runtime must scan all arcs even in deterministic mode.
    pub scan_all: Vec<bool>,
    /// Per state: keyed index over the outgoing arcs, present only where
    /// the arc count makes probing cheaper than a linear scan (merged
    /// frontier states with hundreds of named arcs). Shared by every
    /// runner of this HPDT.
    pub(crate) arc_tables: Vec<Option<ArcTable>>,
    /// The global start state.
    pub start: StateId,
    /// Dense queue index for every BPDT (buffer storage at runtime).
    pub queue_index: HashMap<BpdtId, usize>,
    /// Number of BPDTs (= number of queues).
    pub bpdt_count: usize,
    /// Number of location steps (for a merged HPDT: the longest path).
    pub layers: u16,
    /// The query this HPDT answers (for a merged HPDT: the first member,
    /// kept for display purposes).
    pub query: Query,
    /// All queries this HPDT answers, in tag order: `merged[t]` is the
    /// query whose results carry tag `t`. A single-query HPDT has exactly
    /// one entry. Built by [`build_merged_hpdt`] for prefix-shared
    /// multi-query evaluation.
    pub merged: Vec<Query>,
    /// True when the query has no closure axis: the HPDT is deterministic
    /// (§3.4) and eligible for the XSQ-NC runtime.
    pub deterministic: bool,
    /// True when some action enqueues into a buffer (§3.3). When false,
    /// every predicate resolves before its output node closes, so results
    /// are emitted directly and the runner allocates no queues at all.
    pub buffered: bool,
}

impl Hpdt {
    /// Total number of transition arcs.
    pub fn arc_count(&self) -> usize {
        self.arcs.iter().map(Vec::len).sum()
    }

    /// Human-readable dump of states and arcs (debugging, tests).
    pub fn dump(&self) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        let _ = writeln!(
            s,
            "HPDT for {} — {} states, {} arcs, {} BPDTs{}",
            self.query,
            self.states.len(),
            self.arc_count(),
            self.bpdt_count,
            if self.deterministic {
                " (deterministic)"
            } else {
                ""
            }
        );
        for (i, info) in self.states.iter().enumerate() {
            let _ = writeln!(s, "  ${i} {:?} of {}", info.role, info.owner);
            for a in &self.arcs[i] {
                let _ = writeln!(
                    s,
                    "    --{:?}{}--> ${} {:?}",
                    a.label,
                    if a.guard.is_some() { " [guarded]" } else { "" },
                    a.target,
                    a.actions
                );
            }
        }
        s
    }
}

/// Build the HPDT for a parsed query.
pub fn build_hpdt(query: &Query) -> Result<Hpdt, CompileError> {
    Builder::new(query.clone()).build()
}

struct Builder {
    query: Query,
    states: Vec<StateInfo>,
    arcs: Vec<Vec<Arc>>,
    queue_index: HashMap<BpdtId, usize>,
}

/// The externally visible states of a freshly built BPDT.
struct BuiltBpdt {
    na: Option<StateId>,
    true_state: StateId,
}

/// Predicate context of a BPDT: which buffer operations its position in
/// the tree dictates (§4.2). For the binary tree of a single query this
/// is exactly what [`BpdtId::all_ancestors_true`] / [`BpdtId::upload_target`]
/// read off the id bits; carrying it explicitly lets the same templates
/// build *merged* trees whose fan-out is no longer binary (prefix-shared
/// multi-query HPDTs), where the bit encoding breaks down.
#[derive(Debug, Clone, Copy)]
struct PredCx {
    /// Every ancestor predicate on this path is known true.
    all_true: bool,
    /// Nearest ancestor whose predicate is undecided (upload target);
    /// `None` iff `all_true`.
    upload: Option<BpdtId>,
}

impl PredCx {
    const ROOT: PredCx = PredCx {
        all_true: true,
        upload: None,
    };

    /// Context of a child entered from this BPDT's TRUE state: this
    /// predicate is true, so the child inherits the context unchanged.
    fn true_side(self) -> PredCx {
        self
    }

    /// Context of a child entered from this BPDT's NA state: this BPDT
    /// becomes the nearest undecided ancestor.
    fn na_side(self, parent: BpdtId) -> PredCx {
        PredCx {
            all_true: false,
            upload: Some(parent),
        }
    }
}

impl Builder {
    fn new(query: Query) -> Self {
        Builder {
            query,
            states: Vec::new(),
            arcs: Vec::new(),
            queue_index: HashMap::new(),
        }
    }

    fn add_state(&mut self, owner: BpdtId, role: StateRole) -> Result<StateId, CompileError> {
        if self.states.len() >= MAX_STATES {
            return Err(CompileError::Unsupported {
                feature: format!("queries compiling to more than {MAX_STATES} states"),
                engine: "XSQ".into(),
            });
        }
        let id = self.states.len() as StateId;
        self.states.push(StateInfo { owner, role });
        self.arcs.push(Vec::new());
        Ok(id)
    }

    fn add_arc(
        &mut self,
        from: StateId,
        label: ArcLabel,
        guard: Option<Guard>,
        target: StateId,
        owner: BpdtId,
        actions: Vec<Action>,
    ) {
        self.arcs[from as usize].push(Arc {
            label,
            guard,
            target,
            owner_layer: owner.layer,
            owner,
            actions,
        });
    }

    fn register_queue(&mut self, id: BpdtId) {
        let next = self.queue_index.len();
        self.queue_index.entry(id).or_insert(next);
    }

    fn build(mut self) -> Result<Hpdt, CompileError> {
        let steps = self.query.steps.clone();
        let n = steps.len() as u16;
        debug_assert!(n > 0, "parser guarantees at least one step");

        // Root BPDT (Fig. 12): START --StartDoc--> TRUE; TRUE --EndDoc--> START.
        let start = self.add_state(BpdtId::ROOT, StateRole::Start)?;
        let root_true = self.add_state(BpdtId::ROOT, StateRole::True)?;
        self.add_arc(
            start,
            ArcLabel::StartDoc,
            None,
            root_true,
            BpdtId::ROOT,
            vec![],
        );
        self.add_arc(
            root_true,
            ArcLabel::EndDoc,
            None,
            start,
            BpdtId::ROOT,
            vec![],
        );
        self.register_queue(BpdtId::ROOT);

        // Layer-by-layer expansion. The root has no NA state, so its right
        // child is NULL and layer 1 contains only bpdt(1,1).
        let leaf_spec = [(0u32, self.query.output.clone())];
        let mut frontier: Vec<(BpdtId, PredCx, StateId)> =
            vec![(BpdtId::ROOT.left_child(), PredCx::ROOT, root_true)];
        for (i, step) in steps.iter().enumerate() {
            let layer = i as u16 + 1;
            let is_leaf = layer == n;
            let leaf_specs: &[(u32, Output)] = if is_leaf { &leaf_spec } else { &[] };
            let mut next = Vec::new();
            for (id, cx, start_state) in frontier {
                debug_assert_eq!(id.layer, layer);
                self.register_queue(id);
                let built = self.build_bpdt(step, id, cx, start_state, leaf_specs)?;
                if !is_leaf {
                    if let Some(na) = built.na {
                        next.push((id.right_child(), cx.na_side(id), na));
                    }
                    next.push((id.left_child(), cx.true_side(), built.true_state));
                }
            }
            frontier = next;
        }

        let scan_all = compute_scan_all(&self.arcs);
        let arc_tables = compute_arc_tables(&self.arcs);
        let deterministic = !self.query.has_closure();
        Ok(Hpdt {
            bpdt_count: self.queue_index.len(),
            start,
            scan_all,
            arc_tables,
            buffered: uses_buffers(&self.arcs),
            states: self.states,
            arcs: self.arcs,
            queue_index: self.queue_index,
            layers: n,
            deterministic,
            merged: vec![self.query.clone()],
            query: self.query,
        })
    }

    /// Instantiate the template for one location step as `bpdt(id)`,
    /// entered from `start` (the parent's TRUE or NA state). `leaf_specs`
    /// lists the queries whose *last* step this is, as `(tag, output)`
    /// pairs — empty for interior steps, one entry for a plain build, and
    /// possibly several for a merged HPDT where queries of different
    /// output kinds end at the same shared step.
    fn build_bpdt(
        &mut self,
        step: &Step,
        id: BpdtId,
        cx: PredCx,
        start: StateId,
        leaf_specs: &[(u32, Output)],
    ) -> Result<BuiltBpdt, CompileError> {
        let tag = name_pat(&step.test);
        if !step.axis.is_forward() {
            return Err(CompileError::Unsupported {
                feature: format!(
                    "reverse axis `{}` (step `{step}`): a single forward pass \
                     cannot look backward in the document",
                    step.axis.prefix()
                ),
                engine: "hpdt".into(),
            });
        }
        let closure = step.axis == Axis::Closure;
        let category = classify(step);

        // Closure steps: `//` self-loop on the START state so the search
        // keeps descending, and any-depth (`=`-marked) entry arcs.
        if closure {
            self.add_arc(start, ArcLabel::ClosureSelfLoop, None, start, id, vec![]);
        }
        let entry_label = if closure {
            ArcLabel::BeginAnyDepth(tag)
        } else {
            ArcLabel::BeginChild(tag)
        };

        // Dispositions and the predicate-true resolution action are fixed
        // by the BPDT's position (§4.2), carried in the explicit context.
        let resolution = if cx.all_true {
            Action::FlushSelf
        } else {
            Action::UploadSelf(cx.upload.expect("not all ancestors true"))
        };
        let disp_true = if cx.all_true {
            Disposition::Direct
        } else {
            Disposition::Queue(cx.upload.expect("not all ancestors true"))
        };

        // Value-producing actions for the leaf layer: attached to the
        // entry arcs (begin-anchored values) or as text self-loops.
        let entry_value = |disp: Disposition| entry_value_actions(leaf_specs, disp);

        // --- instantiate the category template --------------------------
        let built = match category {
            StepCategory::NoPredicate => {
                let t = self.add_state(id, StateRole::True)?;
                self.add_arc(start, entry_label, None, t, id, entry_value(disp_true));
                self.add_arc(t, ArcLabel::End(tag), None, start, id, vec![]);
                BuiltBpdt {
                    na: None,
                    true_state: t,
                }
            }
            StepCategory::PositionOfSelf | StepCategory::LastOfSelf => {
                // Streamable via sibling counters / parent-end hold-back,
                // which only the transformation engine implements; the
                // HPDT machinery has no per-parent counter state.
                let what = if category == StepCategory::LastOfSelf {
                    "last()"
                } else {
                    "position()"
                };
                return Err(CompileError::Unsupported {
                    feature: format!(
                        "`{what}` (step `{step}`): supported in transform match \
                         patterns (`xsq transform`), not by the HPDT selection engine"
                    ),
                    engine: "hpdt".into(),
                });
            }
            StepCategory::AttrOfSelf | StepCategory::FnAttrOfSelf => {
                let guard = match &step.predicate {
                    Some(Predicate::Attr { name, cmp }) => Guard::Attr {
                        name: Sym::intern(name),
                        cmp: cmp.clone(),
                    },
                    Some(Predicate::Func {
                        arg: FnArg::Attr(name),
                        test,
                    }) => Guard::AttrFn {
                        name: Sym::intern(name),
                        test: test.clone(),
                    },
                    _ => unreachable!("classified attr-of-self category"),
                };
                let t = self.add_state(id, StateRole::True)?;
                self.add_arc(
                    start,
                    entry_label,
                    Some(guard),
                    t,
                    id,
                    entry_value(disp_true),
                );
                self.add_arc(t, ArcLabel::End(tag), None, start, id, vec![]);
                BuiltBpdt {
                    na: None,
                    true_state: t,
                }
            }
            StepCategory::TextOfSelf | StepCategory::FnTextOfSelf => {
                let guard = match &step.predicate {
                    Some(Predicate::Text { cmp }) => Guard::Text { cmp: cmp.clone() },
                    Some(Predicate::Func {
                        arg: FnArg::Text,
                        test,
                    }) => Guard::TextFn { test: test.clone() },
                    _ => unreachable!("classified text-of-self category"),
                };
                let na = self.add_state(id, StateRole::Na)?;
                let t = self.add_state(id, StateRole::True)?;
                self.add_arc(
                    start,
                    entry_label,
                    None,
                    na,
                    id,
                    entry_value(Disposition::OwnQueue),
                );
                // Witness: the element's own text satisfying the test.
                self.add_arc(
                    na,
                    ArcLabel::TextSelf(tag),
                    Some(guard),
                    t,
                    id,
                    vec![resolution.clone()],
                );
                self.add_arc(
                    na,
                    ArcLabel::End(tag),
                    None,
                    start,
                    id,
                    vec![Action::ClearSelf],
                );
                self.add_arc(t, ArcLabel::End(tag), None, start, id, vec![]);
                BuiltBpdt {
                    na: Some(na),
                    true_state: t,
                }
            }
            StepCategory::ChildExists | StepCategory::AttrOfChild => {
                let (child, guard) = match &step.predicate {
                    Some(Predicate::Child { name }) => (Sym::intern(name), None),
                    Some(Predicate::ChildAttr { child, attr, cmp }) => (
                        Sym::intern(child),
                        Some(Guard::Attr {
                            name: Sym::intern(attr),
                            cmp: cmp.clone(),
                        }),
                    ),
                    _ => unreachable!("classified child-witness category"),
                };
                let na = self.add_state(id, StateRole::Na)?;
                let wit = self.add_state(id, StateRole::Witness)?;
                let t = self.add_state(id, StateRole::True)?;
                self.add_arc(
                    start,
                    entry_label,
                    None,
                    na,
                    id,
                    entry_value(Disposition::OwnQueue),
                );
                // Witness child: enter at its begin event (guard checks
                // the attribute for category 4), resolve at its end event
                // so that same-event uploads from the child's subtree are
                // already in this queue (Fig. 8 places the upload on
                // `</child>`).
                self.add_arc(
                    na,
                    ArcLabel::BeginChild(NamePat::Name(child)),
                    guard,
                    wit,
                    id,
                    vec![],
                );
                self.add_arc(
                    wit,
                    ArcLabel::End(NamePat::Name(child)),
                    None,
                    t,
                    id,
                    vec![resolution.clone()],
                );
                self.add_arc(
                    na,
                    ArcLabel::End(tag),
                    None,
                    start,
                    id,
                    vec![Action::ClearSelf],
                );
                self.add_arc(t, ArcLabel::End(tag), None, start, id, vec![]);
                BuiltBpdt {
                    na: Some(na),
                    true_state: t,
                }
            }
            StepCategory::TextOfChild => {
                let Some(Predicate::ChildText { child, cmp }) = &step.predicate else {
                    unreachable!("classified TextOfChild");
                };
                let child = Sym::intern(child);
                let na = self.add_state(id, StateRole::Na)?;
                let child_na = self.add_state(id, StateRole::Witness)?;
                let child_true = self.add_state(id, StateRole::Witness)?;
                let t = self.add_state(id, StateRole::True)?;
                self.add_arc(
                    start,
                    entry_label,
                    None,
                    na,
                    id,
                    entry_value(Disposition::OwnQueue),
                );
                // Fig. 9: descend into each child, test its text, come
                // back. Descending through its own states (rather than a
                // flat text-at-depth+1 arc) matters when the predicate
                // child carries the same tag as the next location step:
                // the begin event then nondeterministically both enters
                // the witness and continues the path.
                self.add_arc(
                    na,
                    ArcLabel::BeginChild(NamePat::Name(child)),
                    None,
                    child_na,
                    id,
                    vec![],
                );
                self.add_arc(
                    child_na,
                    ArcLabel::TextSelf(NamePat::Name(child)),
                    Some(Guard::Text {
                        cmp: Some(cmp.clone()),
                    }),
                    child_true,
                    id,
                    vec![resolution.clone()],
                );
                self.add_arc(
                    child_na,
                    ArcLabel::End(NamePat::Name(child)),
                    None,
                    na,
                    id,
                    vec![],
                );
                // The second resolution on `</child>` is Example 7 / the
                // Fig. 10 flush on $5→$6: it catches result items
                // enqueued *between* the witness text event and the end
                // of the witness child (mixed content, nested matches
                // under closure).
                self.add_arc(
                    child_true,
                    ArcLabel::End(NamePat::Name(child)),
                    None,
                    t,
                    id,
                    vec![resolution.clone()],
                );
                self.add_arc(
                    na,
                    ArcLabel::End(tag),
                    None,
                    start,
                    id,
                    vec![Action::ClearSelf],
                );
                self.add_arc(t, ArcLabel::End(tag), None, start, id, vec![]);
                BuiltBpdt {
                    na: Some(na),
                    true_state: t,
                }
            }
        };

        if !leaf_specs.is_empty() {
            self.attach_leaf_output(id, start, &built, &tag, disp_true, leaf_specs)?;
        }
        Ok(built)
    }

    /// Attach value-producing arcs to a BPDT that is some query's lowest
    /// layer.
    fn attach_leaf_output(
        &mut self,
        id: BpdtId,
        start: StateId,
        built: &BuiltBpdt,
        tag: &NamePat,
        disp_true: Disposition,
        leaf_specs: &[(u32, Output)],
    ) -> Result<(), CompileError> {
        // Text-anchored values (`text()`, `sum()`, …): self-loops on the
        // NA state (buffer in own queue, pending the own predicate) and
        // the TRUE state (direct or to the nearest undecided ancestor).
        let actions = text_value_actions(leaf_specs, Disposition::OwnQueue);
        if !actions.is_empty() {
            if let Some(na) = built.na {
                self.add_arc(na, ArcLabel::TextSelf(*tag), None, na, id, actions);
            }
        }
        let actions = text_value_actions(leaf_specs, disp_true);
        if !actions.is_empty() {
            let t = built.true_state;
            self.add_arc(t, ArcLabel::TextSelf(*tag), None, t, id, actions);
        }
        // Whole-element output (`*̄` catchall, Fig. 10): every event
        // strictly inside the matched element is appended, plus the
        // element's own text (which shares its depth), plus the closing
        // tag on the exit arcs. The exit from the NA side also clears —
        // the ClearSelf added by the category template already handles
        // that; here we only append/close.
        if leaf_specs.iter().any(|(_, o)| *o == Output::Element) {
            let mut exit_states = vec![built.true_state];
            if let Some(na) = built.na {
                exit_states.push(na);
            }
            for &s in &exit_states {
                self.add_arc(
                    s,
                    ArcLabel::Catchall,
                    None,
                    s,
                    id,
                    vec![Action::ElementAppend],
                );
                self.add_arc(
                    s,
                    ArcLabel::TextSelf(*tag),
                    None,
                    s,
                    id,
                    vec![Action::ElementAppend],
                );
            }
            // Close the element item on the way back to START. The
            // template's end arcs already exist; prepend the close action
            // to each end(tag) arc leaving NA or TRUE toward START.
            for &s in &exit_states {
                for arc in self.arcs[s as usize].iter_mut() {
                    if arc.target == start && matches!(arc.label, ArcLabel::End(_)) {
                        arc.actions.insert(0, Action::ElementEnd);
                    }
                }
            }
        }
        Ok(())
    }
}

/// Actions producing begin-anchored values (`@attr`, `count()`, element
/// output) on a leaf BPDT's entry arcs — one action per ending query
/// whose output is begin-anchored, each attributed to its tag.
fn entry_value_actions(leaf_specs: &[(u32, Output)], disp: Disposition) -> Vec<Action> {
    let mut actions = Vec::new();
    for (tag, output) in leaf_specs {
        match output {
            Output::Attr(a) => actions.push(Action::Emit {
                source: ValueSource::Attr(Sym::intern(a)),
                to: disp,
                tag: *tag,
            }),
            Output::Aggregate(AggFunc::Count) => actions.push(Action::Emit {
                source: ValueSource::Unit,
                to: disp,
                tag: *tag,
            }),
            Output::Element => actions.push(Action::ElementStart {
                to: disp,
                tag: *tag,
            }),
            _ => {}
        }
    }
    actions
}

/// Actions producing text-anchored values (`text()`, numeric aggregates)
/// as self-loops on a leaf BPDT's NA/TRUE states — one per ending query
/// with text-anchored output.
fn text_value_actions(leaf_specs: &[(u32, Output)], disp: Disposition) -> Vec<Action> {
    let mut actions = Vec::new();
    for (tag, output) in leaf_specs {
        match output {
            Output::Text
            | Output::Aggregate(AggFunc::Sum)
            | Output::Aggregate(AggFunc::Avg)
            | Output::Aggregate(AggFunc::Min)
            | Output::Aggregate(AggFunc::Max) => actions.push(Action::Emit {
                source: ValueSource::Text,
                to: disp,
                tag: *tag,
            }),
            _ => {}
        }
    }
    actions
}

fn name_pat(test: &NodeTest) -> NamePat {
    match test {
        NodeTest::Name(n) => NamePat::Name(Sym::intern(n)),
        NodeTest::Wildcard => NamePat::Any,
    }
}

// ---- prefix-shared multi-query construction (§5 remark) ---------------

/// One node of the location-step trie: a step shared by every query whose
/// path runs through this node.
struct TrieNode {
    step: Step,
    children: Vec<usize>,
    /// Queries whose last step this is, as `(tag, output)`.
    leaf: Vec<(u32, Output)>,
}

/// Build one HPDT answering several queries at once. Queries whose
/// location-step prefixes coincide (same axis, node test, and predicate)
/// share a single BPDT chain up to the divergence point and fan out below
/// it — the grouping the paper's §5 remark says the HPDT's "simple and
/// regular structure" makes possible. Every emitted result carries the
/// tag of its originating query (`merged[tag]`), so attribution survives
/// the merge.
///
/// Whole-element output is only supported for a singleton group: its
/// catchall serialization machinery assumes the configuration's open
/// item belongs to it alone, which sharing would violate.
pub fn build_merged_hpdt(queries: &[Query]) -> Result<Hpdt, CompileError> {
    let Some(first) = queries.first() else {
        return Err(CompileError::Unsupported {
            feature: "an empty query group".into(),
            engine: "XSQ".into(),
        });
    };
    if queries.len() > 1 && queries.iter().any(|q| q.output == Output::Element) {
        return Err(CompileError::Unsupported {
            feature: "element output inside a merged query group".into(),
            engine: "XSQ".into(),
        });
    }

    // Build the step trie. Two steps share a node iff they are equal
    // (axis + node test + predicate), which keeps the shared chain's
    // buffer semantics identical to each member's private chain.
    let mut nodes: Vec<TrieNode> = Vec::new();
    let mut roots: Vec<usize> = Vec::new();
    for (i, q) in queries.iter().enumerate() {
        let mut parent: Option<usize> = None;
        for step in &q.steps {
            let siblings = match parent {
                Some(p) => nodes[p].children.clone(),
                None => roots.clone(),
            };
            let found = siblings.iter().copied().find(|&c| nodes[c].step == *step);
            let node = match found {
                Some(c) => c,
                None => {
                    let c = nodes.len();
                    nodes.push(TrieNode {
                        step: step.clone(),
                        children: Vec::new(),
                        leaf: Vec::new(),
                    });
                    match parent {
                        Some(p) => nodes[p].children.push(c),
                        None => roots.push(c),
                    }
                    c
                }
            };
            parent = Some(node);
        }
        let leaf = parent.expect("parser guarantees at least one step");
        nodes[leaf].leaf.push((i as u32, q.output.clone()));
    }

    // Expand the trie breadth-first, exactly like the single-query
    // builder but with (a) fresh sequence numbers per layer — the binary
    // id encoding cannot describe fan-out beyond two — and (b) the
    // predicate context carried explicitly.
    let mut b = Builder::new(first.clone());
    let start = b.add_state(BpdtId::ROOT, StateRole::Start)?;
    let root_true = b.add_state(BpdtId::ROOT, StateRole::True)?;
    b.add_arc(
        start,
        ArcLabel::StartDoc,
        None,
        root_true,
        BpdtId::ROOT,
        vec![],
    );
    b.add_arc(
        root_true,
        ArcLabel::EndDoc,
        None,
        start,
        BpdtId::ROOT,
        vec![],
    );
    b.register_queue(BpdtId::ROOT);

    let mut layer: u16 = 1;
    let mut layers: u16 = 0;
    let mut frontier: Vec<(usize, PredCx, StateId)> = roots
        .iter()
        .map(|&r| (r, PredCx::ROOT, root_true))
        .collect();
    while !frontier.is_empty() {
        layers = layer;
        let mut next = Vec::new();
        for (seq, (node_idx, cx, start_state)) in frontier.into_iter().enumerate() {
            let id = BpdtId::new(layer, seq as u64);
            b.register_queue(id);
            let node = &nodes[node_idx];
            let built = b.build_bpdt(&node.step, id, cx, start_state, &node.leaf)?;
            for &child in &nodes[node_idx].children {
                if let Some(na) = built.na {
                    next.push((child, cx.na_side(id), na));
                }
                next.push((child, cx.true_side(), built.true_state));
            }
        }
        frontier = next;
        layer += 1;
    }

    let scan_all = compute_scan_all(&b.arcs);
    let arc_tables = compute_arc_tables(&b.arcs);
    let deterministic = queries.iter().all(|q| !q.has_closure());
    Ok(Hpdt {
        bpdt_count: b.queue_index.len(),
        start,
        scan_all,
        arc_tables,
        buffered: uses_buffers(&b.arcs),
        states: b.states,
        arcs: b.arcs,
        queue_index: b.queue_index,
        layers,
        deterministic,
        query: first.clone(),
        merged: queries.to_vec(),
    })
}

/// Does any action enqueue a value into a buffer? When nothing ever
/// enqueues, the flush/upload/clear machinery is provably a no-op and the
/// runner can skip allocating queues entirely (buffer-necessity analysis).
pub(crate) fn uses_buffers(arcs: &[Vec<Arc>]) -> bool {
    arcs.iter().flatten().any(|arc| {
        arc.actions.iter().any(|a| match a {
            Action::Emit { to, .. } | Action::ElementStart { to, .. } => {
                !matches!(to, Disposition::Direct)
            }
            _ => false,
        })
    })
}

/// Conservative static check: for each state, could two outgoing arcs
/// accept the same event? If not, a deterministic runtime may stop at the
/// first matching arc (the XSQ-NC fast path of §6.2).
pub(crate) fn compute_scan_all(arcs: &[Vec<Arc>]) -> Vec<bool> {
    arcs.iter()
        .map(|outgoing| {
            for (i, a) in outgoing.iter().enumerate() {
                for b in &outgoing[i + 1..] {
                    if labels_may_overlap(a, b) {
                        return true;
                    }
                }
            }
            false
        })
        .collect()
}

fn labels_may_overlap(a: &Arc, b: &Arc) -> bool {
    use ArcLabel::*;
    let names_overlap = |x: &NamePat, y: &NamePat| match (x, y) {
        (NamePat::Any, _) | (_, NamePat::Any) => true,
        (NamePat::Name(p), NamePat::Name(q)) => p == q,
    };
    match (&a.label, &b.label) {
        // Catchall overlaps everything except the document brackets and
        // anchor-depth labels… being conservative, treat it as
        // overlapping all element/text labels.
        (Catchall, l) | (l, Catchall) => !matches!(l, StartDoc | EndDoc),
        (ClosureSelfLoop, BeginChild(_) | BeginAnyDepth(_) | ClosureSelfLoop)
        | (BeginChild(_) | BeginAnyDepth(_), ClosureSelfLoop) => true,
        (BeginChild(x), BeginChild(y)) => names_overlap(x, y),
        (BeginAnyDepth(x), BeginAnyDepth(y)) => names_overlap(x, y),
        (BeginChild(x), BeginAnyDepth(y)) | (BeginAnyDepth(x), BeginChild(y)) => {
            names_overlap(x, y)
        }
        (End(x), End(y)) => names_overlap(x, y),
        (TextSelf(x), TextSelf(y)) => names_overlap(x, y),
        (TextChild(x), TextChild(y)) => names_overlap(x, y),
        // TextSelf and TextChild differ in depth: disjoint.
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xsq_xpath::parse_query;

    fn hpdt(q: &str) -> Hpdt {
        build_hpdt(&parse_query(q).unwrap()).unwrap()
    }

    #[test]
    fn fig11_structure_has_expected_bpdts() {
        let h = hpdt("//pub[year>2000]//book[author]//name/text()");
        // Fig. 11: root, (1,1), (2,2), (2,3), (3,4), (3,5), (3,6), (3,7).
        assert_eq!(h.bpdt_count, 8);
        assert!(!h.deterministic);
        assert_eq!(h.layers, 3);
        for id in [
            BpdtId::ROOT,
            BpdtId::new(1, 1),
            BpdtId::new(2, 2),
            BpdtId::new(2, 3),
            BpdtId::new(3, 4),
            BpdtId::new(3, 5),
            BpdtId::new(3, 6),
            BpdtId::new(3, 7),
        ] {
            assert!(h.queue_index.contains_key(&id), "missing {id}");
        }
    }

    #[test]
    fn no_predicate_steps_spawn_no_right_children() {
        let h = hpdt("/a/b/c/text()");
        // Root + one BPDT per layer: no predicates, so no NA states.
        assert_eq!(h.bpdt_count, 4);
        assert!(h.deterministic);
    }

    #[test]
    fn attr_predicates_have_no_na_state() {
        let h = hpdt("/a[@id]/b/text()");
        // Category 1 is decided at begin: right child of layer 1 is NULL.
        assert_eq!(h.bpdt_count, 3); // root, (1,1), (2,3)
        assert!(h.queue_index.contains_key(&BpdtId::new(2, 3)));
        assert!(!h.queue_index.contains_key(&BpdtId::new(2, 2)));
    }

    #[test]
    fn closure_adds_self_loops() {
        let h = hpdt("//a/text()");
        let self_loops = h
            .arcs
            .iter()
            .flatten()
            .filter(|a| a.label == ArcLabel::ClosureSelfLoop)
            .count();
        assert_eq!(self_loops, 1);
        assert!(!h.deterministic);
    }

    #[test]
    fn deterministic_query_mostly_avoids_scan_all() {
        let h = hpdt("/pub[year=2002]/book[price<11]/author/text()");
        // A few states may be conservatively flagged, but the majority of
        // states of a closure-free query are first-match safe.
        let flagged = h.scan_all.iter().filter(|b| **b).count();
        assert!(
            flagged * 2 <= h.states.len(),
            "too many scan-all states: {flagged}/{}",
            h.states.len()
        );
    }

    #[test]
    fn element_output_adds_catchall() {
        let h = hpdt("//book[author]");
        assert!(h
            .arcs
            .iter()
            .flatten()
            .any(|a| a.label == ArcLabel::Catchall));
        assert!(h
            .arcs
            .iter()
            .flatten()
            .any(|a| a.actions.contains(&Action::ElementEnd)));
    }

    #[test]
    fn state_count_is_modest_for_paper_queries() {
        for q in [
            "/pub[year=2002]/book[price<11]/author",
            "//pub[year>2000]//book[author]//name/text()",
            "/PLAY/ACT/SCENE/SPEECH[LINE%love]/SPEAKER/text()",
            "/dblp/inproceedings[author]/title/text()",
            "//pub[year]//book[@id]/title/text()",
        ] {
            let h = hpdt(q);
            assert!(h.states.len() < 100, "{q}: {} states", h.states.len());
        }
    }

    #[test]
    fn flush_vs_upload_follows_id_bits() {
        let h = hpdt("//pub[year>2000]//book[author]//name/text()");
        // bpdt(2,3) (all ancestors true) resolves with FlushSelf;
        // bpdt(2,2) uploads to bpdt(1,1).
        let mut saw_flush = false;
        let mut saw_upload_to_11 = false;
        for a in h.arcs.iter().flatten() {
            if a.owner == BpdtId::new(2, 3) && a.actions.contains(&Action::FlushSelf) {
                saw_flush = true;
            }
            if a.owner == BpdtId::new(2, 2)
                && a.actions.contains(&Action::UploadSelf(BpdtId::new(1, 1)))
            {
                saw_upload_to_11 = true;
            }
        }
        assert!(saw_flush && saw_upload_to_11);
    }

    #[test]
    fn dump_is_readable() {
        let h = hpdt("/a[b]/c/text()");
        let d = h.dump();
        assert!(d.contains("HPDT for /a[b]/c/text()"));
        assert!(d.contains("bpdt(1,1)"));
    }

    #[test]
    fn deep_predicate_queries_hit_the_state_cap() {
        // 20 predicated closure steps would want 2^20 BPDTs.
        let q = "//a[b]".repeat(20) + "/text()";
        let parsed = parse_query(&q).unwrap();
        assert!(matches!(
            build_hpdt(&parsed),
            Err(CompileError::Unsupported { .. })
        ));
    }
}
