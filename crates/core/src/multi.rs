//! Multi-query evaluation: many standing XPath queries over one stream.
//!
//! The paper notes (§5) that "the HPDT used by XSQ has a simple and
//! regular structure, so that multiple HPDTs can be grouped using methods
//! suggested by \[YFilter\]". This module provides that workload shape: a
//! [`QuerySet`] compiles any number of queries once, and evaluation runs
//! all of them over a single pass of the stream — one parse, N
//! evaluations, with per-query result attribution.
//!
//! Two execution paths share this interface:
//!
//! - The **grouped path** (default, used by [`QuerySet::run_document`]):
//!   the set is planned into prefix-sharing groups and driven through a
//!   [`QueryIndex`], so each event touches only the runners whose
//!   dispatch buckets match it — see [`crate::qindex`].
//! - The **loop path** ([`QuerySet::runner`] → [`MultiRunner`]): one
//!   independent runner per query, every event stepped through all of
//!   them. It is the baseline the `multi_query` ablation measures the
//!   index against, and remains available for callers that need one
//!   runner per query (e.g. per-query tracers).

use std::io::BufRead;

use xsq_xml::{RawEvent, SaxEvent};

use crate::engine::{CompiledQuery, XsqEngine};
use crate::error::{CompileError, EngineError};
use crate::qindex::prefix::{plan_groups, QueryGroup};
use crate::qindex::{QueryId, QueryIndex, QuerySink, VecQuerySink};
use crate::report::MemoryStats;
use crate::runtime::{RunStats, Runner};
use crate::sink::Sink;

/// A set of compiled queries sharing one stream pass.
///
/// ```
/// use xsq_core::{QuerySet, XsqEngine};
///
/// let set = QuerySet::compile(
///     XsqEngine::full(),
///     &["//book/name/text()", "//book/count()"],
/// ).unwrap();
/// let results = set
///     .run_document(b"<pub><book><name>N</name></book></pub>")
///     .unwrap();
/// assert_eq!(results[0], ["N"]);
/// assert_eq!(results[1], ["1"]);
/// ```
#[derive(Debug)]
pub struct QuerySet {
    engine: XsqEngine,
    queries: Vec<(String, CompiledQuery)>,
    /// Prefix-sharing group plan (compiled once, instantiated per run).
    plan: Vec<QueryGroup>,
}

impl QuerySet {
    /// Compile a set of query strings with one engine. Fails on the
    /// first malformed or unsupported query, naming it.
    pub fn compile(engine: XsqEngine, queries: &[&str]) -> Result<QuerySet, (usize, CompileError)> {
        let mut compiled = Vec::with_capacity(queries.len());
        let mut parsed = Vec::with_capacity(queries.len());
        for (i, q) in queries.iter().enumerate() {
            match xsq_xpath::parse_query(q) {
                Ok(p) => parsed.push(p),
                Err(e) => return Err((i, e.into())),
            }
            match engine.compile_str(q) {
                Ok(c) => compiled.push((q.to_string(), c)),
                Err(e) => return Err((i, e)),
            }
        }
        // Every query compiled individually, so planning can only fail on
        // pathological inputs; attribute such an error to the whole set.
        let plan = plan_groups(&parsed).map_err(|e| (0, e))?;
        Ok(QuerySet {
            engine,
            queries: compiled,
            plan,
        })
    }

    /// Number of queries.
    pub fn len(&self) -> usize {
        self.queries.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }

    /// The original query strings.
    pub fn texts(&self) -> impl Iterator<Item = &str> {
        self.queries.iter().map(|(s, _)| s.as_str())
    }

    /// Number of runner groups after prefix sharing (≤ [`Self::len`]).
    pub fn group_count(&self) -> usize {
        self.plan.len()
    }

    /// The engine variant the set compiled for.
    pub(crate) fn engine(&self) -> XsqEngine {
        self.engine
    }

    /// The compiled prefix-sharing plan — what the sharded driver hands
    /// each worker to instantiate its own runtime state from.
    pub(crate) fn plan(&self) -> &[QueryGroup] {
        &self.plan
    }

    /// Start a grouped run: fresh runtime state over the precompiled
    /// prefix-sharing plan, with dispatch-indexed event routing. This is
    /// the default execution path.
    pub fn index(&self) -> QueryIndex {
        let texts: Vec<String> = self.queries.iter().map(|(s, _)| s.clone()).collect();
        QueryIndex::from_plan(self.engine, &texts, &self.plan)
    }

    /// Start a loop-path run: one independent runner per query.
    pub fn runner(&self) -> MultiRunner<'_> {
        MultiRunner {
            runners: self.queries.iter().map(|(_, c)| c.runner()).collect(),
            events: 0,
        }
    }

    /// Evaluate the whole set over one document in a single pass,
    /// collecting per-query result vectors.
    pub fn run_document(&self, document: &[u8]) -> Result<Vec<Vec<String>>, EngineError> {
        self.run_reader(document)
    }

    /// Single-pass evaluation over any reader, through the query index.
    pub fn run_reader<R: BufRead>(&self, reader: R) -> Result<Vec<Vec<String>>, EngineError> {
        let mut index = self.index();
        let mut sink = VecQuerySink::new();
        index.run_reader(reader, &mut sink)?;
        let mut per_query: Vec<Vec<String>> = (0..self.len()).map(|_| Vec::new()).collect();
        for (id, value) in sink.results {
            per_query[id.0 as usize].push(value);
        }
        Ok(per_query)
    }
}

/// Tags one runner's output with its query id before it reaches the
/// shared [`QuerySink`] — how the loop path keeps attribution.
struct AttributeAs<'a> {
    id: QueryId,
    inner: &'a mut dyn QuerySink,
}

impl Sink for AttributeAs<'_> {
    fn result(&mut self, value: &str) {
        self.inner.result(self.id, value);
    }

    fn aggregate_update(&mut self, value: f64) {
        self.inner.aggregate_update(self.id, value);
    }
}

/// Incremental multi-query evaluation state (the loop path: every event
/// steps every runner).
pub struct MultiRunner<'q> {
    runners: Vec<Runner<'q>>,
    events: u64,
}

impl<'q> MultiRunner<'q> {
    /// Feed one owned event to every query, each with its own sink.
    pub fn feed_all<S: Sink>(&mut self, event: &SaxEvent, sinks: &mut [S]) {
        self.feed_all_raw(&event.as_raw(), sinks);
    }

    /// Feed one borrowed event to every query, each with its own sink.
    pub fn feed_all_raw<S: Sink>(&mut self, event: &RawEvent<'_>, sinks: &mut [S]) {
        debug_assert_eq!(self.runners.len(), sinks.len());
        self.events += 1;
        for (runner, sink) in self.runners.iter_mut().zip(sinks.iter_mut()) {
            runner.feed_raw(event, sink);
        }
    }

    /// Feed one owned event, routing every query's results to one shared
    /// sink, each tagged with the query's id (its index in the set).
    pub fn feed_shared(&mut self, event: &SaxEvent, sink: &mut dyn QuerySink) {
        self.feed_shared_raw(&event.as_raw(), sink);
    }

    /// Feed one borrowed event to the shared sink — the zero-copy path.
    pub fn feed_shared_raw(&mut self, event: &RawEvent<'_>, sink: &mut dyn QuerySink) {
        self.events += 1;
        for (i, runner) in self.runners.iter_mut().enumerate() {
            let mut tagged = AttributeAs {
                id: QueryId(i as u32),
                inner: &mut *sink,
            };
            runner.feed_raw(event, &mut tagged);
        }
    }

    /// Finish all runs, returning per-query stats.
    pub fn finish_all<S: Sink>(self, sinks: &mut [S]) -> Vec<RunStats> {
        self.runners
            .into_iter()
            .zip(sinks.iter_mut())
            .map(|(r, s)| r.finish(s))
            .collect()
    }

    /// Finish all runs into one shared sink, keeping attribution.
    pub fn finish_shared(self, sink: &mut dyn QuerySink) -> Vec<RunStats> {
        self.runners
            .into_iter()
            .enumerate()
            .map(|(i, r)| {
                let mut tagged = AttributeAs {
                    id: QueryId(i as u32),
                    inner: &mut *sink,
                };
                r.finish(&mut tagged)
            })
            .collect()
    }

    /// Aggregate memory across the set (the grouped system's footprint).
    pub fn memory(&self) -> MemoryStats {
        let mut total = MemoryStats::default();
        for r in &self.runners {
            let m = r.memory();
            total.peak_bytes += m.peak_bytes;
            total.peak_items += m.peak_items;
            total.peak_buffered_items += m.peak_buffered_items;
            total.peak_configs += m.peak_configs;
        }
        total
    }

    /// Events dispatched so far.
    pub fn events(&self) -> u64 {
        self.events
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DOC: &[u8] = br#"<pub>
        <book id="1"><name>First</name><author>A</author><price>10</price></book>
        <book id="2"><name>Second</name><price>14</price></book>
        <year>2002</year>
    </pub>"#;

    #[test]
    fn one_pass_many_queries() {
        let set = QuerySet::compile(
            XsqEngine::full(),
            &[
                "//book[author]/name/text()",
                "//book/@id",
                "//price/sum()",
                "/pub[year=2002]/book/name/text()",
            ],
        )
        .unwrap();
        assert_eq!(set.len(), 4);
        let results = set.run_document(DOC).unwrap();
        assert_eq!(results[0], ["First"]);
        assert_eq!(results[1], ["1", "2"]);
        assert_eq!(results[2], ["24"]);
        assert_eq!(results[3], ["First", "Second"]);
    }

    #[test]
    fn multi_matches_individual_runs() {
        let queries = [
            "//book[price<11]/name/text()",
            "//book//name",
            "//book/count()",
        ];
        let set = QuerySet::compile(XsqEngine::full(), &queries).unwrap();
        let multi = set.run_document(DOC).unwrap();
        for (i, q) in queries.iter().enumerate() {
            let single = crate::engine::evaluate(q, DOC).unwrap();
            assert_eq!(multi[i], single, "multi vs single on {q}");
        }
    }

    #[test]
    fn grouped_path_shares_prefixes() {
        let set = QuerySet::compile(
            XsqEngine::full(),
            &[
                "/pub/book/name/text()",
                "/pub/book/price/text()",
                "/pub/year/text()",
            ],
        )
        .unwrap();
        assert_eq!(set.len(), 3);
        assert_eq!(set.group_count(), 1);
        let results = set.run_document(DOC).unwrap();
        assert_eq!(results[0], ["First", "Second"]);
        assert_eq!(results[1], ["10", "14"]);
        assert_eq!(results[2], ["2002"]);
    }

    #[test]
    fn bad_query_is_reported_with_its_index() {
        let err = QuerySet::compile(XsqEngine::full(), &["/a/b", "/a[", "/c"]).unwrap_err();
        assert_eq!(err.0, 1);
    }

    #[test]
    fn nc_engine_rejects_closure_queries_in_the_set() {
        let err = QuerySet::compile(XsqEngine::no_closure(), &["/a/b", "//c"]).unwrap_err();
        assert_eq!(err.0, 1);
        assert!(matches!(err.1, CompileError::Unsupported { .. }));
    }

    #[test]
    fn incremental_multi_run_with_shared_sink() {
        let set =
            QuerySet::compile(XsqEngine::full(), &["//name/text()", "//author/text()"]).unwrap();
        let mut runner = set.runner();
        let mut sink = VecQuerySink::new();
        for ev in xsq_xml::parse_to_events(DOC).unwrap() {
            runner.feed_shared(&ev, &mut sink);
        }
        assert!(runner.events() > 0);
        assert!(runner.memory().peak_configs >= 2);
        runner.finish_shared(&mut sink);
        // Both queries' results interleave in stream order, and every
        // value says which query produced it.
        let tagged: Vec<(u32, &str)> = sink
            .results
            .iter()
            .map(|(id, v)| (id.0, v.as_str()))
            .collect();
        assert_eq!(tagged, [(0, "First"), (1, "A"), (0, "Second")]);
    }

    #[test]
    fn empty_set_is_fine() {
        let set = QuerySet::compile(XsqEngine::full(), &[]).unwrap();
        assert!(set.is_empty());
        assert!(set.run_document(DOC).unwrap().is_empty());
    }

    #[test]
    fn texts_roundtrip() {
        let set = QuerySet::compile(XsqEngine::full(), &["/a/b", "//c"]).unwrap();
        let texts: Vec<&str> = set.texts().collect();
        assert_eq!(texts, ["/a/b", "//c"]);
    }
}
