//! Multi-query evaluation: many standing XPath queries over one stream.
//!
//! The paper notes (§5) that "the HPDT used by XSQ has a simple and
//! regular structure, so that multiple HPDTs can be grouped using methods
//! suggested by \[YFilter\]". This module provides that workload shape: a
//! [`QuerySet`] compiles any number of queries once, and a
//! [`MultiRunner`] drives all of them over a single pass of the stream —
//! one parse, N evaluations, with per-query sinks and shared event
//! dispatch.
//!
//! The dominating win of grouping is parsing the stream once instead of
//! once per query (the `multi_query` ablation in the `micro` bench
//! measures ≈3× for eight standing queries); per-event work is one HPDT
//! step per query, each of which ignores irrelevant events in O(arcs of
//! one state). Full YFilter-style prefix sharing *across* HPDTs is
//! possible thanks to their regular structure (the paper's §5 remark)
//! and would compose naturally on top of this interface.

use std::io::BufRead;

use xsq_xml::{SaxEvent, StreamParser};

use crate::engine::{CompiledQuery, XsqEngine};
use crate::error::{CompileError, EngineError};
use crate::report::MemoryStats;
use crate::runtime::{RunStats, Runner};
use crate::sink::Sink;

/// A set of compiled queries sharing one stream pass.
///
/// ```
/// use xsq_core::{QuerySet, XsqEngine};
///
/// let set = QuerySet::compile(
///     XsqEngine::full(),
///     &["//book/name/text()", "//book/count()"],
/// ).unwrap();
/// let results = set
///     .run_document(b"<pub><book><name>N</name></book></pub>")
///     .unwrap();
/// assert_eq!(results[0], ["N"]);
/// assert_eq!(results[1], ["1"]);
/// ```
#[derive(Debug)]
pub struct QuerySet {
    queries: Vec<(String, CompiledQuery)>,
}

impl QuerySet {
    /// Compile a set of query strings with one engine. Fails on the
    /// first malformed or unsupported query, naming it.
    pub fn compile(engine: XsqEngine, queries: &[&str]) -> Result<QuerySet, (usize, CompileError)> {
        let mut compiled = Vec::with_capacity(queries.len());
        for (i, q) in queries.iter().enumerate() {
            match engine.compile_str(q) {
                Ok(c) => compiled.push((q.to_string(), c)),
                Err(e) => return Err((i, e)),
            }
        }
        Ok(QuerySet { queries: compiled })
    }

    /// Number of queries.
    pub fn len(&self) -> usize {
        self.queries.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }

    /// The original query strings.
    pub fn texts(&self) -> impl Iterator<Item = &str> {
        self.queries.iter().map(|(s, _)| s.as_str())
    }

    /// Start a shared run.
    pub fn runner(&self) -> MultiRunner<'_> {
        MultiRunner {
            runners: self.queries.iter().map(|(_, c)| c.runner()).collect(),
            events: 0,
        }
    }

    /// Evaluate the whole set over one document in a single pass,
    /// collecting per-query result vectors.
    pub fn run_document(&self, document: &[u8]) -> Result<Vec<Vec<String>>, EngineError> {
        self.run_reader(document)
    }

    /// Single-pass evaluation over any reader.
    pub fn run_reader<R: BufRead>(&self, reader: R) -> Result<Vec<Vec<String>>, EngineError> {
        let mut parser = StreamParser::new(reader);
        let mut runner = self.runner();
        let mut sinks: Vec<crate::sink::VecSink> = (0..self.len())
            .map(|_| crate::sink::VecSink::new())
            .collect();
        while let Some(ev) = parser.next_event()? {
            runner.feed_all(&ev, &mut sinks);
        }
        runner.finish_all(&mut sinks);
        Ok(sinks.into_iter().map(|s| s.results).collect())
    }
}

/// Incremental multi-query evaluation state.
pub struct MultiRunner<'q> {
    runners: Vec<Runner<'q>>,
    events: u64,
}

impl<'q> MultiRunner<'q> {
    /// Feed one event to every query, each with its own sink.
    pub fn feed_all<S: Sink>(&mut self, event: &SaxEvent, sinks: &mut [S]) {
        debug_assert_eq!(self.runners.len(), sinks.len());
        self.events += 1;
        for (runner, sink) in self.runners.iter_mut().zip(sinks.iter_mut()) {
            runner.feed(event, sink);
        }
    }

    /// Feed one event, routing every query's results to one shared sink.
    pub fn feed_shared(&mut self, event: &SaxEvent, sink: &mut dyn Sink) {
        self.events += 1;
        for runner in self.runners.iter_mut() {
            runner.feed(event, sink);
        }
    }

    /// Finish all runs, returning per-query stats.
    pub fn finish_all<S: Sink>(self, sinks: &mut [S]) -> Vec<RunStats> {
        self.runners
            .into_iter()
            .zip(sinks.iter_mut())
            .map(|(r, s)| r.finish(s))
            .collect()
    }

    /// Aggregate memory across the set (the grouped system's footprint).
    pub fn memory(&self) -> MemoryStats {
        let mut total = MemoryStats::default();
        for r in &self.runners {
            let m = r.memory();
            total.peak_bytes += m.peak_bytes;
            total.peak_items += m.peak_items;
            total.peak_configs += m.peak_configs;
        }
        total
    }

    /// Events dispatched so far.
    pub fn events(&self) -> u64 {
        self.events
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DOC: &[u8] = br#"<pub>
        <book id="1"><name>First</name><author>A</author><price>10</price></book>
        <book id="2"><name>Second</name><price>14</price></book>
        <year>2002</year>
    </pub>"#;

    #[test]
    fn one_pass_many_queries() {
        let set = QuerySet::compile(
            XsqEngine::full(),
            &[
                "//book[author]/name/text()",
                "//book/@id",
                "//price/sum()",
                "/pub[year=2002]/book/name/text()",
            ],
        )
        .unwrap();
        assert_eq!(set.len(), 4);
        let results = set.run_document(DOC).unwrap();
        assert_eq!(results[0], ["First"]);
        assert_eq!(results[1], ["1", "2"]);
        assert_eq!(results[2], ["24"]);
        assert_eq!(results[3], ["First", "Second"]);
    }

    #[test]
    fn multi_matches_individual_runs() {
        let queries = [
            "//book[price<11]/name/text()",
            "//book//name",
            "//book/count()",
        ];
        let set = QuerySet::compile(XsqEngine::full(), &queries).unwrap();
        let multi = set.run_document(DOC).unwrap();
        for (i, q) in queries.iter().enumerate() {
            let single = crate::engine::evaluate(q, DOC).unwrap();
            assert_eq!(multi[i], single, "multi vs single on {q}");
        }
    }

    #[test]
    fn bad_query_is_reported_with_its_index() {
        let err = QuerySet::compile(XsqEngine::full(), &["/a/b", "/a[", "/c"]).unwrap_err();
        assert_eq!(err.0, 1);
    }

    #[test]
    fn nc_engine_rejects_closure_queries_in_the_set() {
        let err = QuerySet::compile(XsqEngine::no_closure(), &["/a/b", "//c"]).unwrap_err();
        assert_eq!(err.0, 1);
        assert!(matches!(err.1, CompileError::Unsupported { .. }));
    }

    #[test]
    fn incremental_multi_run_with_shared_sink() {
        let set =
            QuerySet::compile(XsqEngine::full(), &["//name/text()", "//author/text()"]).unwrap();
        let mut runner = set.runner();
        let mut sink = crate::sink::VecSink::new();
        for ev in xsq_xml::parse_to_events(DOC).unwrap() {
            runner.feed_shared(&ev, &mut sink);
        }
        assert!(runner.events() > 0);
        assert!(runner.memory().peak_configs >= 2);
        // Both queries' results interleave in stream order.
        assert_eq!(sink.results, ["First", "A", "Second"]);
    }

    #[test]
    fn empty_set_is_fine() {
        let set = QuerySet::compile(XsqEngine::full(), &[]).unwrap();
        assert!(set.is_empty());
        assert!(set.run_document(DOC).unwrap().is_empty());
    }

    #[test]
    fn texts_roundtrip() {
        let set = QuerySet::compile(XsqEngine::full(), &["/a/b", "//c"]).unwrap();
        let texts: Vec<&str> = set.texts().collect();
        assert_eq!(texts, ["/a/b", "//c"]);
    }
}
