//! Uniform reporting types and the cross-engine trait used by the
//! experiment harness (Figs. 14 and 16–22).
//!
//! Every system in the paper's study — XSQ-F, XSQ-NC, and the baselines —
//! is driven through [`XPathEngine`]: compile a query, run it over a
//! document, and report results plus per-phase timings (Fig. 18) and
//! memory (Figs. 19–20). Timings are measured by the harness around the
//! trait calls; memory is engine-internal accounting, since what the
//! paper's claim concerns is *what the engine must hold on to*.

use std::time::Duration;

/// Feature matrix row (Fig. 14).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Capabilities {
    /// Query language the real system used (for the Fig. 14 column).
    pub language: &'static str,
    /// Processes the document as a stream (bounded memory)?
    pub streaming: bool,
    /// Supports predicates on multiple location steps?
    pub multiple_predicates: bool,
    /// Supports the closure axis `//`?
    pub closures: bool,
    /// Supports aggregation output (`count()`, `sum()`)?
    pub aggregation: bool,
    /// Supports predicates whose evaluation requires buffering (data
    /// arriving before the predicate decides)?
    pub buffered_predicate_eval: bool,
}

/// Peak memory held by an engine during a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MemoryStats {
    /// Peak bytes of buffered/materialized data.
    pub peak_bytes: u64,
    /// Peak number of live buffered items (0 for unbuffered engines).
    pub peak_items: u64,
    /// Peak simultaneous queue entries (buffered item *references*) —
    /// the quantity the static analyzer's `MemoryBound` claims to bound.
    pub peak_buffered_items: u64,
    /// Peak simultaneous runtime configurations (automaton engines).
    pub peak_configs: u64,
    /// Bytes of resident preprocessed structure (DOM tree, full-text
    /// index) that lives for the whole query, not just transiently.
    pub resident_structure_bytes: u64,
}

impl MemoryStats {
    /// Total peak footprint: transient buffering plus resident structure.
    pub fn total_peak_bytes(&self) -> u64 {
        self.peak_bytes + self.resident_structure_bytes
    }
}

/// Per-phase wall-clock times (Fig. 18's stacked bars).
#[derive(Debug, Clone, Copy, Default)]
pub struct PhaseTimings {
    /// Parsing the query and building the engine ("Building").
    pub compile: Duration,
    /// Loading/indexing before evaluation can start ("Preprocessing" —
    /// zero for streaming engines).
    pub preprocess: Duration,
    /// Evaluating the query over the data ("Querying").
    pub query: Duration,
}

impl PhaseTimings {
    pub fn total(&self) -> Duration {
        self.compile + self.preprocess + self.query
    }
}

/// Everything a single engine run reports back to the harness.
#[derive(Debug, Clone)]
pub struct RunReport {
    pub results: Vec<String>,
    pub timings: PhaseTimings,
    pub memory: MemoryStats,
    /// SAX events processed (0 where not applicable).
    pub events: u64,
    /// The engine that actually ran — for XSQ this reflects automatic
    /// fast-path selection (`"XSQ-NC (auto)"` when the analyzer proved a
    /// full-mode query deterministic), so benches and tests can assert
    /// which path was taken.
    pub engine: String,
}

/// Why an engine declined to run a query (Fig. 14's empty cells).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Unsupported(pub String);

impl std::fmt::Display for Unsupported {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "unsupported: {}", self.0)
    }
}

impl std::error::Error for Unsupported {}

/// The uniform interface every system in the study implements.
pub trait XPathEngine {
    /// Display name (matches the paper's Fig. 14 where applicable).
    fn name(&self) -> &'static str;

    /// Feature matrix row.
    fn capabilities(&self) -> Capabilities;

    /// Evaluate `query` over `document`, or explain why it cannot.
    fn run(&self, query: &str, document: &[u8]) -> Result<RunReport, Box<dyn std::error::Error>>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_total_adds_resident() {
        let m = MemoryStats {
            peak_bytes: 100,
            resident_structure_bytes: 1000,
            ..Default::default()
        };
        assert_eq!(m.total_peak_bytes(), 1100);
    }

    #[test]
    fn timings_total() {
        let t = PhaseTimings {
            compile: Duration::from_millis(1),
            preprocess: Duration::from_millis(2),
            query: Duration::from_millis(3),
        };
        assert_eq!(t.total(), Duration::from_millis(6));
    }

    #[test]
    fn unsupported_displays_reason() {
        let u = Unsupported("predicates".into());
        assert!(u.to_string().contains("predicates"));
    }
}
