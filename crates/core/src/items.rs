//! Shared result items and the output-marking discipline of §4.3.
//!
//! With closures, the same stream element can be matched along several
//! HPDT paths at once. The paper's solution: buffer *references* to one
//! shared item; the first match whose predicates all hold marks the item
//! as **output**; once marked, later `clear` operations cannot retract it,
//! and the item is emitted exactly when it reaches the head of the output
//! queue — giving duplicate-free results in document order.
//!
//! Here the "output queue" is realized as the item store itself: items are
//! created in document order (each is *anchored* at the stream event that
//! produced its value), and an emission cursor advances over them,
//! emitting `Output` items and skipping `Dead` ones (items all of whose
//! buffered references were cleared). An item still `Pending` (or an
//! element item still being serialized) blocks the cursor — exactly the
//! paper's "remain unchanged … until it becomes the first item in the
//! queue".

/// Index of an item in the store.
pub type ItemId = u32;

/// Lifecycle of an item.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ItemState {
    /// Some match may still make this item a result.
    Pending,
    /// A match with all predicates true claimed it; it will be emitted.
    Output,
    /// Every reference was cleared; it can never be a result.
    Dead,
}

#[derive(Debug)]
struct Item {
    value: String,
    state: ItemState,
    /// Tag of the query that produced the item (0 for a single-query
    /// HPDT; the member index for a merged multi-query HPDT). Carried to
    /// the sink so shared consumers keep attribution.
    tag: u32,
    /// Element items are open while their element is being serialized;
    /// scalar items are created closed.
    closed: bool,
    /// Number of buffer entries referencing this item.
    refs: u32,
    /// Ordinal of the last event appended (deduplicates appends when
    /// several configurations feed the same element item).
    last_append_event: u64,
}

/// The store of result items plus the emission cursor.
#[derive(Debug, Default)]
pub struct ItemStore {
    items: Vec<Item>,
    cursor: usize,
    /// Anchor for the event being processed: all value productions of one
    /// query during one input event share one item (duplicate matches,
    /// §4.3). Distinct queries of a merged HPDT anchor distinct items —
    /// their result streams are independent — so the anchor is per tag
    /// (the vector is tiny: at most one entry per query that produced a
    /// value at this very event).
    current_event: u64,
    current_items: Vec<(u32, ItemId)>,
    live_bytes: usize,
    peak_bytes: usize,
    peak_live_items: usize,
    emitted: u64,
    died: u64,
}

impl ItemStore {
    pub fn new() -> Self {
        Self::default()
    }

    /// Start processing a new input event (resets the anchors).
    pub fn begin_event(&mut self, ordinal: u64) {
        self.current_event = ordinal;
        self.current_items.clear();
    }

    /// Get the item anchored at the current event for query `tag`,
    /// creating it with `value` if this is the tag's first production.
    /// `closed` is false for element items that will grow by appends.
    pub fn anchor(&mut self, tag: u32, value: &str, closed: bool) -> ItemId {
        if let Some(&(_, id)) = self.current_items.iter().find(|(t, _)| *t == tag) {
            return id;
        }
        let id = self.items.len() as ItemId;
        self.items.push(Item {
            value: value.to_string(),
            state: ItemState::Pending,
            tag,
            closed,
            refs: 0,
            last_append_event: self.current_event,
        });
        self.live_bytes += value.len();
        self.note_peaks();
        self.current_items.push((tag, id));
        id
    }

    /// A buffer entry now references the item.
    pub fn add_ref(&mut self, id: ItemId) {
        self.items[id as usize].refs += 1;
    }

    /// A buffer entry referencing the item was removed (cleared or
    /// flushed). A pending item with no remaining references is dead.
    pub fn release_ref(&mut self, id: ItemId) {
        let item = &mut self.items[id as usize];
        debug_assert!(item.refs > 0, "release without ref");
        item.refs -= 1;
        if item.refs == 0 && item.state == ItemState::Pending {
            item.state = ItemState::Dead;
            self.live_bytes -= item.value.len();
            item.value = String::new();
            self.died += 1;
        }
    }

    /// Mark the item as output (idempotent; never downgraded).
    pub fn mark_output(&mut self, id: ItemId) {
        let item = &mut self.items[id as usize];
        if item.state == ItemState::Pending {
            item.state = ItemState::Output;
        }
        debug_assert_ne!(item.state, ItemState::Dead, "flush of a dead item");
    }

    /// Append serialized content to an open element item. Appends are
    /// deduplicated per input event, so two configurations feeding the
    /// same item add its content once.
    pub fn append(&mut self, id: ItemId, content: &str) {
        let item = &mut self.items[id as usize];
        if item.last_append_event == self.current_event {
            return;
        }
        item.last_append_event = self.current_event;
        if item.state != ItemState::Dead {
            item.value.push_str(content);
            self.live_bytes += content.len();
            self.note_peaks();
        }
    }

    /// Close an open element item (idempotent).
    pub fn close(&mut self, id: ItemId) {
        self.items[id as usize].closed = true;
    }

    /// Is the item already closed? (Used to deduplicate the closing-tag
    /// append across configurations.)
    pub fn is_closed(&self, id: ItemId) -> bool {
        self.items[id as usize].closed
    }

    pub fn state(&self, id: ItemId) -> ItemState {
        self.items[id as usize].state
    }

    /// Advance the emission cursor: emit every resolved item at the head
    /// in document order. `f` receives the tag and value of emitted items.
    pub fn drain(&mut self, mut f: impl FnMut(u32, &str)) {
        while let Some(item) = self.items.get_mut(self.cursor) {
            match item.state {
                ItemState::Output if item.closed => {
                    let value = std::mem::take(&mut item.value);
                    let tag = item.tag;
                    self.live_bytes -= value.len();
                    self.emitted += 1;
                    self.cursor += 1;
                    f(tag, &value);
                }
                ItemState::Dead => {
                    self.cursor += 1;
                }
                _ => break,
            }
        }
    }

    /// End-of-stream cleanup: anything still pending can no longer become
    /// a result (all elements are closed), so it dies; then drain.
    pub fn finish(&mut self, f: impl FnMut(u32, &str)) {
        for item in &mut self.items[self.cursor..] {
            if item.state == ItemState::Pending {
                item.state = ItemState::Dead;
                self.live_bytes -= item.value.len();
                item.value = String::new();
                self.died += 1;
            }
        }
        self.drain(f);
    }

    /// Number of items not yet emitted or dead.
    pub fn pending_items(&self) -> usize {
        self.items[self.cursor..]
            .iter()
            .filter(|i| i.state == ItemState::Pending)
            .count()
    }

    fn note_peaks(&mut self) {
        self.peak_bytes = self.peak_bytes.max(self.live_bytes);
        let live = self.items.len() - (self.emitted + self.died) as usize;
        self.peak_live_items = self.peak_live_items.max(live);
    }

    /// Peak bytes held in item values at any point.
    pub fn peak_bytes(&self) -> usize {
        self.peak_bytes
    }

    /// Peak number of live (unemitted, undead) items.
    pub fn peak_live_items(&self) -> usize {
        self.peak_live_items
    }

    /// Total items ever created.
    pub fn total_items(&self) -> usize {
        self.items.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn anchor_shares_one_item_per_event() {
        let mut s = ItemStore::new();
        s.begin_event(1);
        let a = s.anchor(0, "x", true);
        let b = s.anchor(0, "ignored", true);
        assert_eq!(a, b);
        s.begin_event(2);
        let c = s.anchor(0, "y", true);
        assert_ne!(a, c);
    }

    #[test]
    fn output_then_drain_in_document_order() {
        let mut s = ItemStore::new();
        s.begin_event(1);
        let a = s.anchor(0, "first", true);
        s.add_ref(a);
        s.begin_event(2);
        let b = s.anchor(0, "second", true);
        s.add_ref(b);
        // Second resolves before first: nothing emits until first does.
        s.mark_output(b);
        s.release_ref(b);
        let mut out = Vec::new();
        s.drain(|_, v| out.push(v.to_string()));
        assert!(out.is_empty());
        s.mark_output(a);
        s.release_ref(a);
        s.drain(|_, v| out.push(v.to_string()));
        assert_eq!(out, ["first", "second"]);
    }

    #[test]
    fn cleared_references_kill_pending_items() {
        let mut s = ItemStore::new();
        s.begin_event(1);
        let a = s.anchor(0, "dead", true);
        s.add_ref(a);
        s.add_ref(a);
        s.release_ref(a);
        assert_eq!(s.state(a), ItemState::Pending);
        s.release_ref(a);
        assert_eq!(s.state(a), ItemState::Dead);
        let mut out = Vec::new();
        s.drain(|_, v| out.push(v.to_string()));
        assert!(out.is_empty());
    }

    #[test]
    fn output_mark_wins_over_clear() {
        // The crux of §4.3: one match outputs, another clears — the item
        // must survive and be emitted exactly once.
        let mut s = ItemStore::new();
        s.begin_event(1);
        let a = s.anchor(0, "kept", true);
        s.add_ref(a); // reference from path 1
        s.add_ref(a); // reference from path 2
        s.mark_output(a); // path 2's predicates all true
        s.release_ref(a); // flush removed path 2's entry
        s.release_ref(a); // path 1 cleared
        assert_eq!(s.state(a), ItemState::Output);
        let mut out = Vec::new();
        s.drain(|_, v| out.push(v.to_string()));
        assert_eq!(out, ["kept"]);
    }

    #[test]
    fn element_items_block_emission_until_closed() {
        let mut s = ItemStore::new();
        s.begin_event(1);
        let a = s.anchor(0, "<a>", false);
        s.mark_output(a);
        let mut out = Vec::new();
        s.drain(|_, v| out.push(v.to_string()));
        assert!(out.is_empty());
        s.begin_event(2);
        s.append(a, "text");
        s.begin_event(3);
        s.append(a, "</a>");
        s.close(a);
        s.drain(|_, v| out.push(v.to_string()));
        assert_eq!(out, ["<a>text</a>"]);
    }

    #[test]
    fn appends_are_deduplicated_per_event() {
        let mut s = ItemStore::new();
        s.begin_event(1);
        let a = s.anchor(0, "<a>", false);
        s.begin_event(2);
        s.append(a, "x");
        s.append(a, "x"); // second configuration, same event
        s.mark_output(a);
        s.close(a);
        let mut out = Vec::new();
        s.drain(|_, v| out.push(v.to_string()));
        assert_eq!(out, ["<a>x"]);
    }

    #[test]
    fn finish_kills_stragglers() {
        let mut s = ItemStore::new();
        s.begin_event(1);
        let a = s.anchor(0, "stuck", true);
        s.add_ref(a);
        s.begin_event(2);
        let b = s.anchor(0, "good", true);
        s.mark_output(b);
        let mut out = Vec::new();
        s.finish(|_, v| out.push(v.to_string()));
        assert_eq!(out, ["good"]);
        assert_eq!(s.pending_items(), 0);
    }

    #[test]
    fn memory_peaks_track_live_values() {
        let mut s = ItemStore::new();
        s.begin_event(1);
        let a = s.anchor(0, "aaaa", true);
        s.add_ref(a);
        s.begin_event(2);
        let b = s.anchor(0, "bb", true);
        s.add_ref(b);
        assert_eq!(s.peak_bytes(), 6);
        s.mark_output(a);
        s.release_ref(a);
        s.drain(|_, _| {});
        // Peak stays even after emission.
        assert_eq!(s.peak_bytes(), 6);
        assert_eq!(s.peak_live_items(), 2);
        assert_eq!(s.total_items(), 2);
    }
}
