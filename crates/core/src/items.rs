//! Shared result items and the output-marking discipline of §4.3.
//!
//! With closures, the same stream element can be matched along several
//! HPDT paths at once. The paper's solution: buffer *references* to one
//! shared item; the first match whose predicates all hold marks the item
//! as **output**; once marked, later `clear` operations cannot retract it,
//! and the item is emitted exactly when it reaches the head of the output
//! queue — giving duplicate-free results in document order.
//!
//! Here the "output queue" is realized as the item store itself: items are
//! created in document order (each is *anchored* at the stream event that
//! produced its value), and an emission cursor advances over them,
//! emitting `Output` items and skipping `Dead` ones (items all of whose
//! buffered references were cleared). An item still `Pending` (or an
//! element item still being serialized) blocks the cursor — exactly the
//! paper's "remain unchanged … until it becomes the first item in the
//! queue".
//!
//! Value bytes live in a [`ByteArena`], not per-item `String`s: an item's
//! value is a chain of arena segments, appended in place when the item is
//! the top allocation (the common case — one element serialized across
//! consecutive events) and chained otherwise. The arena is recycled
//! wholesale at quiescent points ([`ItemStore::recyclable`] /
//! [`ItemStore::recycle`]) and reset per document, so a matching steady
//! state performs no heap allocation once capacities have warmed up.

use crate::arena::{ByteArena, Span};

/// Index of an item in the store.
pub type ItemId = u32;

/// Sentinel for "no next segment".
const NIL: u32 = u32::MAX;

/// Lifecycle of an item.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ItemState {
    /// Some match may still make this item a result.
    Pending,
    /// A match with all predicates true claimed it; it will be emitted.
    Output,
    /// Every reference was cleared; it can never be a result.
    Dead,
}

/// One link in an item's value chain.
#[derive(Debug, Clone, Copy)]
struct Seg {
    span: Span,
    next: u32,
}

#[derive(Debug)]
struct Item {
    /// First and last segment of the value chain.
    head: u32,
    tail: u32,
    /// Total value length in bytes (0 once dead).
    len: u32,
    state: ItemState,
    /// Tag of the query that produced the item (0 for a single-query
    /// HPDT; the member index for a merged multi-query HPDT). Carried to
    /// the sink so shared consumers keep attribution.
    tag: u32,
    /// Element items are open while their element is being serialized;
    /// scalar items are created closed.
    closed: bool,
    /// Number of buffer entries referencing this item.
    refs: u32,
    /// Ordinal of the last event appended (deduplicates appends when
    /// several configurations feed the same element item).
    last_append_event: u64,
}

/// The store of result items plus the emission cursor.
#[derive(Debug, Default)]
pub struct ItemStore {
    items: Vec<Item>,
    segs: Vec<Seg>,
    data: ByteArena,
    /// Assembly buffer for multi-segment values at emission time.
    emit_buf: String,
    cursor: usize,
    /// Anchor for the event being processed: all value productions of one
    /// query during one input event share one item (duplicate matches,
    /// §4.3). Distinct queries of a merged HPDT anchor distinct items —
    /// their result streams are independent — so the anchor is per tag
    /// (the vector is tiny: at most one entry per query that produced a
    /// value at this very event).
    current_event: u64,
    current_items: Vec<(u32, ItemId)>,
    live_bytes: usize,
    peak_bytes: usize,
    /// Items not yet emitted or dead.
    live_items: usize,
    peak_live_items: usize,
    /// Sum of `refs` across items (buffer entries pointing in here).
    outstanding_refs: usize,
    /// Items ever anchored, across recycles (diagnostics/tests).
    total_created: u64,
}

impl ItemStore {
    pub fn new() -> Self {
        Self::default()
    }

    /// Start processing a new input event (resets the anchors).
    pub fn begin_event(&mut self, ordinal: u64) {
        self.current_event = ordinal;
        self.current_items.clear();
    }

    /// Get the item anchored at the current event for query `tag`,
    /// creating it with `value` if this is the tag's first production.
    /// `closed` is false for element items that will grow by appends.
    pub fn anchor(&mut self, tag: u32, value: &str, closed: bool) -> ItemId {
        if let Some(&(_, id)) = self.current_items.iter().find(|(t, _)| *t == tag) {
            return id;
        }
        let id = self.items.len() as ItemId;
        let seg = self.segs.len() as u32;
        self.segs.push(Seg {
            span: self.data.alloc(value.as_bytes()),
            next: NIL,
        });
        self.items.push(Item {
            head: seg,
            tail: seg,
            len: value.len() as u32,
            state: ItemState::Pending,
            tag,
            closed,
            refs: 0,
            last_append_event: self.current_event,
        });
        self.live_bytes += value.len();
        self.live_items += 1;
        self.total_created += 1;
        self.note_peaks();
        self.current_items.push((tag, id));
        id
    }

    /// A buffer entry now references the item.
    pub fn add_ref(&mut self, id: ItemId) {
        self.items[id as usize].refs += 1;
        self.outstanding_refs += 1;
    }

    /// A buffer entry referencing the item was removed (cleared or
    /// flushed). A pending item with no remaining references is dead.
    pub fn release_ref(&mut self, id: ItemId) {
        let item = &mut self.items[id as usize];
        debug_assert!(item.refs > 0, "release without ref");
        item.refs -= 1;
        self.outstanding_refs -= 1;
        if item.refs == 0 && item.state == ItemState::Pending {
            item.state = ItemState::Dead;
            self.live_bytes -= item.len as usize;
            item.len = 0;
            self.live_items -= 1;
        }
    }

    /// Mark the item as output (idempotent; never downgraded).
    pub fn mark_output(&mut self, id: ItemId) {
        let item = &mut self.items[id as usize];
        if item.state == ItemState::Pending {
            item.state = ItemState::Output;
        }
        debug_assert_ne!(item.state, ItemState::Dead, "flush of a dead item");
    }

    /// Append serialized content to an open element item. Appends are
    /// deduplicated per input event, so two configurations feeding the
    /// same item add its content once.
    pub fn append(&mut self, id: ItemId, content: &str) {
        let item = &mut self.items[id as usize];
        if item.last_append_event == self.current_event {
            return;
        }
        item.last_append_event = self.current_event;
        if item.state == ItemState::Dead {
            return;
        }
        let tail = &mut self.segs[item.tail as usize];
        if !self.data.try_extend(&mut tail.span, content.as_bytes()) {
            // Another item allocated above us: chain a new segment.
            let seg = self.segs.len() as u32;
            self.segs.push(Seg {
                span: self.data.alloc(content.as_bytes()),
                next: NIL,
            });
            self.segs[item.tail as usize].next = seg;
            item.tail = seg;
        }
        item.len += content.len() as u32;
        self.live_bytes += content.len();
        self.note_peaks();
    }

    /// Close an open element item (idempotent).
    pub fn close(&mut self, id: ItemId) {
        self.items[id as usize].closed = true;
    }

    /// Is the item already closed? (Used to deduplicate the closing-tag
    /// append across configurations.)
    pub fn is_closed(&self, id: ItemId) -> bool {
        self.items[id as usize].closed
    }

    pub fn state(&self, id: ItemId) -> ItemState {
        self.items[id as usize].state
    }

    /// Advance the emission cursor: emit every resolved item at the head
    /// in document order. `f` receives the tag and value of emitted items.
    pub fn drain(&mut self, mut f: impl FnMut(u32, &str)) {
        let Self {
            items,
            segs,
            data,
            emit_buf,
            cursor,
            live_bytes,
            live_items,
            ..
        } = self;
        while let Some(item) = items.get_mut(*cursor) {
            match item.state {
                ItemState::Output if item.closed => {
                    let (tag, head) = (item.tag, item.head);
                    let single = item.head == item.tail;
                    *live_bytes -= item.len as usize;
                    item.len = 0;
                    *live_items -= 1;
                    *cursor += 1;
                    if single {
                        // One segment: emit straight from the arena.
                        f(tag, data.get_str(segs[head as usize].span));
                    } else {
                        emit_buf.clear();
                        let mut s = head;
                        while s != NIL {
                            let seg = segs[s as usize];
                            emit_buf.push_str(data.get_str(seg.span));
                            s = seg.next;
                        }
                        f(tag, emit_buf);
                    }
                }
                ItemState::Dead => {
                    *cursor += 1;
                }
                _ => break,
            }
        }
    }

    /// End-of-stream cleanup: anything still pending can no longer become
    /// a result (all elements are closed), so it dies; then drain.
    pub fn finish(&mut self, f: impl FnMut(u32, &str)) {
        for item in &mut self.items[self.cursor..] {
            if item.state == ItemState::Pending {
                item.state = ItemState::Dead;
                self.live_bytes -= item.len as usize;
                item.len = 0;
                self.live_items -= 1;
            }
        }
        self.drain(f);
    }

    /// Is the store at a quiescent point where wholesale recycling is
    /// safe? Everything anchored so far has been emitted or died (the
    /// cursor has passed it) and no buffer entry still holds an `ItemId`.
    /// The caller must additionally ensure no *configuration* holds an
    /// item (see `RunnerCore::feed_raw`), since those ids would dangle.
    pub fn recyclable(&self) -> bool {
        self.cursor == self.items.len() && self.outstanding_refs == 0
    }

    /// Wholesale-free every item and all value bytes, keeping the
    /// allocations. Call only when [`Self::recyclable`] (and the caller's
    /// own id-holders are empty); ids handed out before this point must
    /// not be used again.
    pub fn recycle(&mut self) {
        debug_assert!(self.recyclable());
        self.items.clear();
        self.segs.clear();
        self.data.reset();
        self.cursor = 0;
        self.current_items.clear();
        debug_assert_eq!(self.live_bytes, 0);
        debug_assert_eq!(self.live_items, 0);
    }

    /// Reset for a fresh document, keeping every allocation (multi-doc
    /// `reset_with` reuse). Peaks restart: memory accounting is
    /// per-document.
    pub fn reset(&mut self) {
        self.items.clear();
        self.segs.clear();
        self.data.reset();
        self.emit_buf.clear();
        self.cursor = 0;
        self.current_event = 0;
        self.current_items.clear();
        self.live_bytes = 0;
        self.peak_bytes = 0;
        self.live_items = 0;
        self.peak_live_items = 0;
        self.outstanding_refs = 0;
    }

    /// Number of items not yet emitted or dead.
    pub fn pending_items(&self) -> usize {
        self.items[self.cursor..]
            .iter()
            .filter(|i| i.state == ItemState::Pending)
            .count()
    }

    fn note_peaks(&mut self) {
        self.peak_bytes = self.peak_bytes.max(self.live_bytes);
        self.peak_live_items = self.peak_live_items.max(self.live_items);
    }

    /// Peak bytes held in item values at any point.
    pub fn peak_bytes(&self) -> usize {
        self.peak_bytes
    }

    /// Peak number of live (unemitted, undead) items.
    pub fn peak_live_items(&self) -> usize {
        self.peak_live_items
    }

    /// Total items ever created (across recycles).
    pub fn total_items(&self) -> usize {
        self.total_created as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn anchor_shares_one_item_per_event() {
        let mut s = ItemStore::new();
        s.begin_event(1);
        let a = s.anchor(0, "x", true);
        let b = s.anchor(0, "ignored", true);
        assert_eq!(a, b);
        s.begin_event(2);
        let c = s.anchor(0, "y", true);
        assert_ne!(a, c);
    }

    #[test]
    fn output_then_drain_in_document_order() {
        let mut s = ItemStore::new();
        s.begin_event(1);
        let a = s.anchor(0, "first", true);
        s.add_ref(a);
        s.begin_event(2);
        let b = s.anchor(0, "second", true);
        s.add_ref(b);
        // Second resolves before first: nothing emits until first does.
        s.mark_output(b);
        s.release_ref(b);
        let mut out = Vec::new();
        s.drain(|_, v| out.push(v.to_string()));
        assert!(out.is_empty());
        s.mark_output(a);
        s.release_ref(a);
        s.drain(|_, v| out.push(v.to_string()));
        assert_eq!(out, ["first", "second"]);
    }

    #[test]
    fn cleared_references_kill_pending_items() {
        let mut s = ItemStore::new();
        s.begin_event(1);
        let a = s.anchor(0, "dead", true);
        s.add_ref(a);
        s.add_ref(a);
        s.release_ref(a);
        assert_eq!(s.state(a), ItemState::Pending);
        s.release_ref(a);
        assert_eq!(s.state(a), ItemState::Dead);
        let mut out = Vec::new();
        s.drain(|_, v| out.push(v.to_string()));
        assert!(out.is_empty());
    }

    #[test]
    fn output_mark_wins_over_clear() {
        // The crux of §4.3: one match outputs, another clears — the item
        // must survive and be emitted exactly once.
        let mut s = ItemStore::new();
        s.begin_event(1);
        let a = s.anchor(0, "kept", true);
        s.add_ref(a); // reference from path 1
        s.add_ref(a); // reference from path 2
        s.mark_output(a); // path 2's predicates all true
        s.release_ref(a); // flush removed path 2's entry
        s.release_ref(a); // path 1 cleared
        assert_eq!(s.state(a), ItemState::Output);
        let mut out = Vec::new();
        s.drain(|_, v| out.push(v.to_string()));
        assert_eq!(out, ["kept"]);
    }

    #[test]
    fn element_items_block_emission_until_closed() {
        let mut s = ItemStore::new();
        s.begin_event(1);
        let a = s.anchor(0, "<a>", false);
        s.mark_output(a);
        let mut out = Vec::new();
        s.drain(|_, v| out.push(v.to_string()));
        assert!(out.is_empty());
        s.begin_event(2);
        s.append(a, "text");
        s.begin_event(3);
        s.append(a, "</a>");
        s.close(a);
        s.drain(|_, v| out.push(v.to_string()));
        assert_eq!(out, ["<a>text</a>"]);
    }

    #[test]
    fn appends_are_deduplicated_per_event() {
        let mut s = ItemStore::new();
        s.begin_event(1);
        let a = s.anchor(0, "<a>", false);
        s.begin_event(2);
        s.append(a, "x");
        s.append(a, "x"); // second configuration, same event
        s.mark_output(a);
        s.close(a);
        let mut out = Vec::new();
        s.drain(|_, v| out.push(v.to_string()));
        assert_eq!(out, ["<a>x"]);
    }

    #[test]
    fn interleaved_appends_chain_segments() {
        // Two open element items growing turn-about force segment chains
        // (neither stays at the arena top), and both must still emit
        // their full concatenated values.
        let mut s = ItemStore::new();
        s.begin_event(1);
        let a = s.anchor(0, "<a>", false);
        s.begin_event(2);
        let b = s.anchor(1, "<b>", false);
        s.begin_event(3);
        s.append(a, "one");
        s.begin_event(4);
        s.append(b, "two");
        s.begin_event(5);
        s.append(a, "</a>");
        s.close(a);
        s.begin_event(6);
        s.append(b, "</b>");
        s.close(b);
        s.mark_output(a);
        s.mark_output(b);
        let mut out = Vec::new();
        s.drain(|t, v| out.push((t, v.to_string())));
        assert_eq!(
            out,
            [(0, "<a>one</a>".to_string()), (1, "<b>two</b>".to_string())]
        );
    }

    #[test]
    fn finish_kills_stragglers() {
        let mut s = ItemStore::new();
        s.begin_event(1);
        let a = s.anchor(0, "stuck", true);
        s.add_ref(a);
        s.begin_event(2);
        let b = s.anchor(0, "good", true);
        s.mark_output(b);
        let mut out = Vec::new();
        s.finish(|_, v| out.push(v.to_string()));
        assert_eq!(out, ["good"]);
        assert_eq!(s.pending_items(), 0);
    }

    #[test]
    fn memory_peaks_track_live_values() {
        let mut s = ItemStore::new();
        s.begin_event(1);
        let a = s.anchor(0, "aaaa", true);
        s.add_ref(a);
        s.begin_event(2);
        let b = s.anchor(0, "bb", true);
        s.add_ref(b);
        assert_eq!(s.peak_bytes(), 6);
        s.mark_output(a);
        s.release_ref(a);
        s.drain(|_, _| {});
        // Peak stays even after emission.
        assert_eq!(s.peak_bytes(), 6);
        assert_eq!(s.peak_live_items(), 2);
        assert_eq!(s.total_items(), 2);
    }

    #[test]
    fn recycle_at_quiescent_point_reuses_storage() {
        let mut s = ItemStore::new();
        s.begin_event(1);
        let a = s.anchor(0, "v1", true);
        s.add_ref(a);
        assert!(!s.recyclable()); // outstanding ref
        s.mark_output(a);
        s.release_ref(a);
        assert!(!s.recyclable()); // not yet drained past
        let mut out = Vec::new();
        s.drain(|_, v| out.push(v.to_string()));
        assert!(s.recyclable());
        s.recycle();
        // The store works identically after recycling.
        s.begin_event(2);
        let b = s.anchor(0, "v2", true);
        s.mark_output(b);
        s.drain(|_, v| out.push(v.to_string()));
        assert_eq!(out, ["v1", "v2"]);
        assert_eq!(s.total_items(), 2);
    }

    #[test]
    fn reset_clears_state_and_peaks() {
        let mut s = ItemStore::new();
        s.begin_event(1);
        let a = s.anchor(0, "value", true);
        s.add_ref(a);
        s.reset();
        assert_eq!(s.peak_bytes(), 0);
        assert_eq!(s.peak_live_items(), 0);
        assert!(s.recyclable());
        s.begin_event(1);
        let b = s.anchor(0, "x", true);
        s.mark_output(b);
        let mut out = Vec::new();
        s.drain(|_, v| out.push(v.to_string()));
        assert_eq!(out, ["x"]);
    }
}
