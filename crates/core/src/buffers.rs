//! The per-BPDT buffers and their depth-scoped operations (§3.3, §4.3).
//!
//! Each BPDT owns a queue of references to shared items. The operations
//! are exactly the paper's: `enqueue`, `clear`, `flush`, and `upload` —
//! all scoped by depth vector, so that a predicate resolving for one
//! match path never disturbs items buffered under a different path
//! (Example 6). There is deliberately no `dequeue`: items leave a queue
//! only wholesale, via flush, clear, or upload.
//!
//! Emission *order* is handled globally by [`crate::items::ItemStore`]
//! (items are anchored in document order), so queues here are unordered
//! reference bags; `flush` marks rather than writes.

use crate::depth_vector::DepthVector;
use crate::items::{ItemId, ItemStore};

/// One buffered reference: an item plus the depth vector under which it
/// was enqueued.
#[derive(Debug, Clone)]
pub struct Entry {
    pub item: ItemId,
    pub dv: DepthVector,
}

/// All BPDT queues, indexed densely (see `Hpdt::queue_index`).
#[derive(Debug)]
pub struct QueueSet {
    queues: Vec<Vec<Entry>>,
    /// Reusable staging buffer for `upload_matching` (moving entries
    /// between two queues of the same set needs a third place to stand;
    /// owning it keeps the steady state allocation-free).
    scratch: Vec<Entry>,
    live_entries: usize,
    peak_entries: usize,
}

impl QueueSet {
    pub fn new(count: usize) -> Self {
        QueueSet {
            queues: (0..count).map(|_| Vec::new()).collect(),
            scratch: Vec::new(),
            live_entries: 0,
            peak_entries: 0,
        }
    }

    /// Reset for a fresh document, keeping the queues' allocations when
    /// the count is unchanged (multi-document feeds).
    pub fn reset(&mut self, count: usize) {
        self.queues.resize_with(count, Vec::new);
        self.queues.truncate(count);
        for q in &mut self.queues {
            q.clear();
        }
        self.scratch.clear();
        self.live_entries = 0;
        self.peak_entries = 0;
    }

    /// Pre-size every queue from a static bound: a query the analyzer
    /// proved `Items(K)` never re-allocates its queues mid-stream.
    pub fn reserve(&mut self, per_queue: usize) {
        for q in &mut self.queues {
            let have = q.capacity();
            if have < per_queue {
                q.reserve_exact(per_queue - have);
            }
        }
    }

    /// `Q.enqueue(v)` — add a reference under the given depth vector.
    /// Takes the vector by reference: the entry shares the caller's tail
    /// (inline bits are a plain copy; spilled vectors are copy-on-write),
    /// so enqueueing never deep-copies the vector.
    pub fn enqueue(&mut self, queue: usize, item: ItemId, dv: &DepthVector, items: &mut ItemStore) {
        items.add_ref(item);
        self.queues[queue].push(Entry {
            item,
            dv: dv.clone(),
        });
        self.live_entries += 1;
        self.peak_entries = self.peak_entries.max(self.live_entries);
    }

    /// `Q.flush()` — mark every depth-matching item as output and drop
    /// the references (they are "sent to the output", §3.3; actual
    /// emission order is the item store's job).
    pub fn flush_matching(
        &mut self,
        queue: usize,
        dv: &DepthVector,
        prefix: usize,
        items: &mut ItemStore,
    ) {
        let live = &mut self.live_entries;
        self.queues[queue].retain(|entry| {
            if entry.dv.prefix_matches(dv, prefix) {
                items.mark_output(entry.item);
                items.release_ref(entry.item);
                *live -= 1;
                false
            } else {
                true
            }
        });
    }

    /// `Q.clear()` — drop the depth-matching references; items with no
    /// remaining references die.
    pub fn clear_matching(
        &mut self,
        queue: usize,
        dv: &DepthVector,
        prefix: usize,
        items: &mut ItemStore,
    ) {
        let live = &mut self.live_entries;
        self.queues[queue].retain(|entry| {
            if entry.dv.prefix_matches(dv, prefix) {
                items.release_ref(entry.item);
                *live -= 1;
                false
            } else {
                true
            }
        });
    }

    /// `Q.upload()` — move the depth-matching references to the target
    /// queue (the nearest ancestor BPDT whose predicate is undecided,
    /// §4.3). Reference counts are unchanged.
    pub fn upload_matching(&mut self, from: usize, to: usize, dv: &DepthVector, prefix: usize) {
        debug_assert_ne!(from, to);
        // Stage through the set's owned scratch rather than a fresh Vec:
        // we cannot borrow two queues mutably at once, and the scratch
        // keeps its capacity across calls.
        let scratch = &mut self.scratch;
        debug_assert!(scratch.is_empty());
        self.queues[from].retain(|entry| {
            if entry.dv.prefix_matches(dv, prefix) {
                scratch.push(entry.clone());
                false
            } else {
                true
            }
        });
        self.queues[to].append(&mut self.scratch);
    }

    /// Number of references currently buffered across all queues.
    pub fn live_entries(&self) -> usize {
        self.live_entries
    }

    /// Peak simultaneous buffered references.
    pub fn peak_entries(&self) -> usize {
        self.peak_entries
    }

    /// Entries in one queue (tests, invariant checks).
    pub fn len(&self, queue: usize) -> usize {
        self.queues[queue].len()
    }

    /// Are all queues empty? (Must hold at end of document.)
    pub fn all_empty(&self) -> bool {
        self.live_entries == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dv(depths: &[u32]) -> DepthVector {
        DepthVector::from_depths(depths)
    }

    fn setup() -> (QueueSet, ItemStore, ItemId, ItemId) {
        let mut qs = QueueSet::new(3);
        let mut items = ItemStore::new();
        items.begin_event(1);
        let a = items.anchor(0, "A", true);
        items.begin_event(2);
        let b = items.anchor(0, "B", true);
        qs.enqueue(0, a, &dv(&[0, 1, 3]), &mut items);
        qs.enqueue(0, b, &dv(&[0, 2, 3]), &mut items);
        (qs, items, a, b)
    }

    #[test]
    fn flush_is_depth_scoped() {
        let (mut qs, mut items, a, b) = setup();
        qs.flush_matching(0, &dv(&[0, 1]), 2, &mut items);
        assert_eq!(items.state(a), crate::items::ItemState::Output);
        assert_eq!(items.state(b), crate::items::ItemState::Pending);
        assert_eq!(qs.len(0), 1);
    }

    #[test]
    fn clear_is_depth_scoped_and_kills() {
        let (mut qs, mut items, a, b) = setup();
        qs.clear_matching(0, &dv(&[0, 2]), 2, &mut items);
        assert_eq!(items.state(a), crate::items::ItemState::Pending);
        assert_eq!(items.state(b), crate::items::ItemState::Dead);
        assert_eq!(qs.live_entries(), 1);
    }

    #[test]
    fn upload_moves_without_changing_refs() {
        let (mut qs, mut items, a, _b) = setup();
        qs.upload_matching(0, 1, &dv(&[0, 1]), 2);
        assert_eq!(qs.len(0), 1);
        assert_eq!(qs.len(1), 1);
        assert_eq!(items.state(a), crate::items::ItemState::Pending);
        // Now a flush on the target queue resolves the moved item.
        qs.flush_matching(1, &dv(&[0, 1]), 2, &mut items);
        assert_eq!(items.state(a), crate::items::ItemState::Output);
    }

    #[test]
    fn peak_entries_track_high_water_mark() {
        let (mut qs, mut items, _, _) = setup();
        assert_eq!(qs.peak_entries(), 2);
        qs.clear_matching(0, &dv(&[0]), 1, &mut items);
        assert!(qs.all_empty());
        assert_eq!(qs.peak_entries(), 2);
    }

    #[test]
    fn example_6_scenario() {
        // Item Z is referenced under two match paths: (1,2,10,11) via the
        // pub on line 2, and (1,9,10,11) via the pub on line 9. Clearing
        // at </pub> of line 9 (config dv (1,9)) must keep the other
        // reference alive.
        let mut qs = QueueSet::new(1);
        let mut items = ItemStore::new();
        items.begin_event(1);
        let z = items.anchor(0, "Z", true);
        qs.enqueue(0, z, &dv(&[1, 2, 10, 11]), &mut items);
        qs.enqueue(0, z, &dv(&[1, 9, 10, 11]), &mut items);
        qs.clear_matching(0, &dv(&[1, 9]), 2, &mut items);
        assert_eq!(items.state(z), crate::items::ItemState::Pending);
        // The correct match later flushes with config dv (1,2).
        qs.flush_matching(0, &dv(&[1, 2]), 2, &mut items);
        assert_eq!(items.state(z), crate::items::ItemState::Output);
        assert!(qs.all_empty());
    }
}
