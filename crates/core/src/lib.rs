//! # xsq-core — the XSQ streaming XPath engine
//!
//! A faithful reimplementation of the XSQ system (Peng & Chawathe,
//! *XPath Queries on Streaming Data*, SIGMOD 2003): XPath 1.0 queries with
//! multiple predicates, closures (`//`), and aggregations evaluated over
//! SAX event streams in a single pass, buffering only data whose
//! membership in the result cannot yet be decided.
//!
//! ## Architecture
//!
//! * Each location step compiles to a **basic pushdown transducer**
//!   (BPDT) from a per-predicate-category template (§3, Figs. 5–9) with
//!   START / NA / TRUE states encoding the predicate's status.
//! * BPDTs compose into a binary-tree **hierarchical PDT** (HPDT, §4):
//!   the right child hangs off a parent's NA state, the left child off its
//!   TRUE state, so a BPDT's position encodes which predicates are known
//!   true — which statically determines every buffer operation
//!   ([`ids::BpdtId`]).
//! * At runtime, **depth vectors** ([`depth_vector::DepthVector`])
//!   disambiguate the multiple match paths closures create over recursive
//!   data, and shared, output-marked **items** ([`items::ItemStore`])
//!   guarantee duplicate-free emission in document order.
//!
//! ## Quick start
//!
//! ```
//! let results = xsq_core::evaluate(
//!     "//pub[year>2000]//book[author]//name/text()",
//!     br#"<pub><book><name>X</name><author>A</author></book>
//!         <year>2002</year></pub>"#,
//! ).unwrap();
//! assert_eq!(results, ["X"]);
//! ```
//!
//! For streaming input, compile once and drive a [`runtime::Runner`]
//! event by event; results reach the [`sink::Sink`] the moment their
//! membership is decided.

pub mod aggregate;
pub mod analyze;
pub mod arcs;
pub mod arena;
pub mod buffers;
pub mod build;
pub mod depth_vector;
pub mod dot;
pub mod engine;
pub mod error;
pub mod ids;
pub mod items;
pub mod multi;
pub mod plancache;
pub mod projector;
pub mod qindex;
pub mod report;
pub mod runtime;
pub mod schema;
pub mod shard;
pub mod sink;
pub mod trace;

pub use analyze::{
    analyze, analyze_with_dtd, prune, verify, Analysis, BoundAnalysis, BufferClass, BufferPlan,
    Diagnostic, MemoryBound, PruneStats, Severity,
};
pub use build::{build_hpdt, Hpdt};
pub use depth_vector::DepthVector;
pub use engine::{evaluate, CompiledQuery, XsqEngine, XsqF, XsqMode, XsqNc};
pub use error::{CompileError, EngineError};
pub use ids::BpdtId;
pub use multi::{MultiRunner, QuerySet};
pub use plancache::{CachedPlan, PlanCache, PlanCacheStats};
pub use projector::Projector;
pub use qindex::{QueryId, QueryIndex, QuerySink, VecQuerySink};
pub use report::{Capabilities, MemoryStats, PhaseTimings, RunReport, Unsupported, XPathEngine};
pub use runtime::{RunStats, Runner, RunnerCore};
pub use shard::{
    run_sequential, run_sequential_with, run_sharded, run_sharded_with, DocOutput, ShardError,
    ShardOptions, ShardRun,
};
pub use sink::{CountingSink, FnSink, IgnoreTags, Sink, TaggedSink, TaggedVecSink, VecSink};
