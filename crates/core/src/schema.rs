//! Schema-aware query analysis and optimization — the paper's stated
//! future work ("automatically incorporate schema information, if
//! available, into the system for optimization", §5).
//!
//! Given a [`Dtd`], this module computes, per location step, the set of
//! element tags that can actually occupy it. Two optimizations follow:
//!
//! * **emptiness** — if some step's tag set is empty, the query can never
//!   produce a result on schema-valid documents; the engine can skip the
//!   stream entirely;
//! * **closure elimination** — a `//tag` step whose matches are provably
//!   all *direct children* of the previous step's elements rewrites to
//!   `/tag`. A fully rewritten query has a deterministic HPDT and runs on
//!   the XSQ-NC fast path; it also drops the `//` self-loops, shrinking
//!   the configuration set on recursive data.

use std::collections::BTreeSet;

use xsq_xml::dtd::Dtd;
use xsq_xpath::{Axis, NodeTest, Query};

/// Result of analyzing a query against a schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SchemaAnalysis {
    /// Tags that can occupy each location step on schema-valid input.
    pub step_tags: Vec<BTreeSet<String>>,
    /// True when every step can be occupied.
    pub satisfiable: bool,
    /// Steps (indices) whose closure axis was proven equivalent to the
    /// child axis.
    pub removable_closures: Vec<usize>,
}

/// Analyze `query` against `dtd`. `roots` are the possible document
/// elements; pass the empty set to use `dtd.root_candidates()`, or all
/// declared elements when the root is unknown.
pub fn analyze(query: &Query, dtd: &Dtd, roots: &BTreeSet<String>) -> SchemaAnalysis {
    let default_roots;
    let roots = if roots.is_empty() {
        default_roots = dtd.root_candidates();
        if default_roots.is_empty() {
            // Recursive schemas may have no unparented element; fall back
            // to "any declared element may be the root".
            &dtd.elements().map(str::to_string).collect()
        } else {
            &default_roots
        }
    } else {
        roots
    };

    let mut step_tags: Vec<BTreeSet<String>> = Vec::with_capacity(query.steps.len());
    let mut removable = Vec::new();
    // Context: tags that can hold the previous step's elements; None at
    // the start means "the document node".
    let mut context: Option<BTreeSet<String>> = None;
    for (i, step) in query.steps.iter().enumerate() {
        let candidates: BTreeSet<String> = match (&context, step.axis) {
            // Reverse axes never stream; the schema analyzer stays
            // conservative and keeps every declared element a candidate.
            (_, Axis::Parent | Axis::Ancestor | Axis::PrecedingSibling) => {
                dtd.elements().map(str::to_string).collect()
            }
            (None, Axis::Child) => roots.clone(),
            (None, Axis::Closure) => {
                let mut all: BTreeSet<String> = roots.clone();
                for r in roots {
                    all.extend(dtd.descendants_of(r));
                }
                all
            }
            (Some(ctx), Axis::Child) => ctx
                .iter()
                .flat_map(|c| dtd.children_of(c).map(str::to_string))
                .collect(),
            (Some(ctx), Axis::Closure) => {
                let mut all = BTreeSet::new();
                for c in ctx {
                    all.extend(dtd.descendants_of(c));
                }
                all
            }
        };
        let matched: BTreeSet<String> = candidates
            .into_iter()
            .filter(|t| match &step.test {
                NodeTest::Name(n) => n == t,
                NodeTest::Wildcard => true,
            })
            .collect();

        // Closure-elimination check: every matching tag occurs only as a
        // direct child of the context, never at depth ≥ 2 below it.
        if step.axis == Axis::Closure && !matched.is_empty() {
            let deep: BTreeSet<String> = match &context {
                None => roots.iter().flat_map(|r| dtd.descendants_of(r)).collect(),
                Some(ctx) => ctx
                    .iter()
                    .flat_map(|c| dtd.deep_descendants_of(c))
                    .collect(),
            };
            // For a first step, depth-1 candidates are the roots
            // themselves; deeper occurrences disqualify.
            if matched.iter().all(|t| !deep.contains(t)) {
                removable.push(i);
            }
        }

        context = Some(matched.clone());
        step_tags.push(matched);
    }
    let satisfiable = step_tags.iter().all(|s| !s.is_empty());
    SchemaAnalysis {
        step_tags,
        satisfiable,
        removable_closures: removable,
    }
}

/// Rewrite a query using the analysis: provably-child closures become
/// child steps. Returns the rewritten query and whether it changed.
pub fn rewrite(query: &Query, analysis: &SchemaAnalysis) -> (Query, bool) {
    let mut q = query.clone();
    let mut changed = false;
    for &i in &analysis.removable_closures {
        if q.steps[i].axis == Axis::Closure {
            q.steps[i].axis = Axis::Child;
            changed = true;
        }
    }
    (q, changed)
}

/// Convenience: analyze + rewrite against a DTD in one call.
///
/// ```
/// use xsq_core::schema::optimize;
/// use xsq_xml::dtd::Dtd;
///
/// let dtd = Dtd::parse(
///     "<!ELEMENT dblp (article*)> <!ELEMENT article (title)>\
///      <!ELEMENT title (#PCDATA)>",
/// ).unwrap();
/// let q = xsq_xpath::parse_query("//dblp//article//title/text()").unwrap();
/// let (optimized, analysis) = optimize(&q, &dtd);
/// assert!(analysis.satisfiable);
/// assert_eq!(optimized.to_string(), "/dblp/article/title/text()");
/// ```
pub fn optimize(query: &Query, dtd: &Dtd) -> (Query, SchemaAnalysis) {
    let analysis = analyze(query, dtd, &BTreeSet::new());
    let (q, _) = rewrite(query, &analysis);
    (q, analysis)
}

#[cfg(test)]
mod tests {
    use super::*;
    use xsq_xpath::parse_query;

    fn flat_dtd() -> Dtd {
        // Non-recursive: dblp-like.
        Dtd::from_edges(&[
            ("dblp", &["article", "inproceedings"]),
            ("article", &["author", "title", "year"]),
            ("inproceedings", &["author", "title", "year", "booktitle"]),
            ("author", &[]),
            ("title", &[]),
            ("year", &[]),
            ("booktitle", &[]),
        ])
    }

    fn recursive_dtd() -> Dtd {
        // pub may nest inside book inside pub (Fig. 2's shape).
        Dtd::from_edges(&[
            ("pub", &["year", "book", "pub"]),
            ("book", &["name", "author", "pub"]),
            ("year", &[]),
            ("name", &[]),
            ("author", &[]),
        ])
    }

    #[test]
    fn satisfiable_queries_have_nonempty_step_sets() {
        let q = parse_query("/dblp/article/title/text()").unwrap();
        let a = analyze(&q, &flat_dtd(), &BTreeSet::new());
        assert!(a.satisfiable);
        assert_eq!(a.step_tags[2].iter().collect::<Vec<_>>(), ["title"]);
    }

    #[test]
    fn impossible_paths_are_unsatisfiable() {
        // booktitle never occurs under article.
        let q = parse_query("/dblp/article/booktitle/text()").unwrap();
        let a = analyze(&q, &flat_dtd(), &BTreeSet::new());
        assert!(!a.satisfiable);
        // Nor does a bogus tag anywhere.
        let q = parse_query("//nosuch/text()").unwrap();
        assert!(!analyze(&q, &flat_dtd(), &BTreeSet::new()).satisfiable);
    }

    #[test]
    fn closures_rewrite_to_children_on_flat_schemas() {
        // In the dblp DTD, title only ever occurs as a direct child of a
        // record, and records as direct children of dblp.
        let q = parse_query("//dblp//article//title/text()").unwrap();
        let (optimized, a) = optimize(&q, &flat_dtd());
        assert!(a.satisfiable);
        assert_eq!(a.removable_closures, vec![0, 1, 2]);
        assert_eq!(optimized.to_string(), "/dblp/article/title/text()");
        assert!(
            !optimized.has_closure(),
            "fully deterministic after rewrite"
        );
    }

    #[test]
    fn recursive_schemas_keep_their_closures() {
        let q = parse_query("//pub//book//name/text()").unwrap();
        let (optimized, a) = optimize(&q, &recursive_dtd());
        assert!(a.satisfiable);
        // Every closure must survive: pub nests in book nests in pub, and
        // even name, though only ever a *direct* child of book, is
        // reachable at depth ≥ 2 below a book via book/pub/book/name —
        // so `//name ≡ /name` does NOT hold and the analyzer must not
        // claim it.
        assert!(a.removable_closures.is_empty());
        assert_eq!(optimized.to_string(), q.to_string());
    }

    #[test]
    fn rewritten_query_returns_identical_results() {
        let doc = br#"<dblp><article><title>T1</title></article>
            <inproceedings><author>A</author><title>T2</title></inproceedings></dblp>"#;
        let q = parse_query("//article//title/text()").unwrap();
        let (optimized, a) = optimize(&q, &flat_dtd());
        // `//article` must stay a closure — as the first step it matches
        // at depth 2 while `/article` would demand it as the document
        // element. `//title` under article rewrites.
        assert_eq!(a.removable_closures, vec![1]);
        assert_eq!(optimized.to_string(), "//article/title/text()");
        let before = crate::engine::evaluate(&q.to_string(), doc).unwrap();
        let after = crate::engine::evaluate(&optimized.to_string(), doc).unwrap();
        assert_eq!(before, after);
        assert_eq!(before, ["T1"]);
    }

    #[test]
    fn explicit_roots_override_candidates() {
        let dtd = recursive_dtd(); // no unparented element
        let q = parse_query("/pub/year/text()").unwrap();
        let roots: BTreeSet<String> = ["pub".to_string()].into();
        assert!(analyze(&q, &dtd, &roots).satisfiable);
        let roots: BTreeSet<String> = ["book".to_string()].into();
        assert!(!analyze(&q, &dtd, &roots).satisfiable);
    }

    #[test]
    fn wildcard_steps_collect_all_candidates() {
        let q = parse_query("/dblp/*/title/text()").unwrap();
        let a = analyze(&q, &flat_dtd(), &BTreeSet::new());
        assert!(a.satisfiable);
        assert_eq!(a.step_tags[1].len(), 2); // article, inproceedings
    }

    #[test]
    fn first_step_closure_rewrites_when_root_only() {
        // dblp occurs only as the root: //dblp ≡ /dblp.
        let q = parse_query("//dblp/article/title/text()").unwrap();
        let (optimized, a) = optimize(&q, &flat_dtd());
        assert_eq!(a.removable_closures, vec![0]);
        assert!(!optimized.has_closure());
    }
}
