//! Graphviz export of a compiled HPDT — renders the Fig. 11-style state
//! transition diagrams for any query.
//!
//! ```sh
//! xsq --dot '//pub[year>2000]//book[author]//name/text()' | dot -Tsvg > hpdt.svg
//! ```
//!
//! States are grouped into clusters per BPDT (the boxes of Fig. 11);
//! TRUE states are doubly circled, NA states dashed, the buffer actions
//! annotate the edges — matching the paper's visual language.

use std::fmt::Write;

use crate::arcs::{Action, ArcLabel, NamePat, StateRole};
use crate::build::Hpdt;
use crate::ids::BpdtId;

/// Render the HPDT as a Graphviz `digraph`.
pub fn to_dot(hpdt: &Hpdt) -> String {
    to_dot_named(hpdt, "hpdt", &format!("HPDT for {}", hpdt.query))
}

/// Render with an explicit graph name and title — the analyzer emits the
/// original and the pruned transducer side by side, and both must be
/// distinguishable (and concatenable into one Graphviz input).
pub fn to_dot_named(hpdt: &Hpdt, graph_name: &str, title: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph {graph_name} {{");
    let _ = writeln!(out, "  rankdir=TB;");
    let _ = writeln!(
        out,
        "  label=\"{}\"; labelloc=t; fontsize=16;",
        escape(title)
    );
    let _ = writeln!(out, "  node [fontname=\"monospace\", fontsize=10];");
    let _ = writeln!(out, "  edge [fontname=\"monospace\", fontsize=9];");

    // Cluster states by owning BPDT.
    let mut bpdts: Vec<BpdtId> = hpdt.states.iter().map(|s| s.owner).collect();
    bpdts.sort();
    bpdts.dedup();
    for bpdt in bpdts {
        let _ = writeln!(out, "  subgraph \"cluster_{}_{}\" {{", bpdt.layer, bpdt.seq);
        let _ = writeln!(
            out,
            "    label=\"bpdt({},{})\"; style=rounded;",
            bpdt.layer, bpdt.seq
        );
        for (i, info) in hpdt.states.iter().enumerate() {
            if info.owner != bpdt {
                continue;
            }
            let (shape, style) = match info.role {
                StateRole::Start => ("circle", "bold"),
                StateRole::True => ("doublecircle", "solid"),
                StateRole::Na => ("circle", "dashed"),
                StateRole::Witness => ("circle", "dotted"),
            };
            let _ = writeln!(
                out,
                "    s{i} [label=\"${i}\\n{:?}\", shape={shape}, style={style}];",
                info.role
            );
        }
        let _ = writeln!(out, "  }}");
    }

    for (from, arcs) in hpdt.arcs.iter().enumerate() {
        for arc in arcs {
            let mut label = label_text(&arc.label);
            if arc.guard.is_some() {
                label.push_str("\\n[guard]");
            }
            for a in &arc.actions {
                label.push_str("\\n{");
                label.push_str(action_text(a));
                label.push('}');
            }
            let style = match arc.label {
                ArcLabel::ClosureSelfLoop => ", style=dashed",
                ArcLabel::Catchall => ", style=dotted",
                _ => "",
            };
            let _ = writeln!(
                out,
                "  s{from} -> s{} [label=\"{}\"{}];",
                arc.target,
                escape(&label),
                style
            );
        }
    }
    let _ = writeln!(out, "}}");
    out
}

fn name_text(pat: &NamePat) -> String {
    match pat {
        NamePat::Name(n) => n.as_str().to_string(),
        NamePat::Any => "*".to_string(),
    }
}

fn label_text(label: &ArcLabel) -> String {
    match label {
        ArcLabel::StartDoc => "<root>".into(),
        ArcLabel::EndDoc => "</root>".into(),
        ArcLabel::BeginChild(p) => format!("<{}>", name_text(p)),
        ArcLabel::BeginAnyDepth(p) => format!("=<{}>", name_text(p)),
        ArcLabel::ClosureSelfLoop => "//".into(),
        ArcLabel::End(p) => format!("</{}>", name_text(p)),
        ArcLabel::TextSelf(p) => format!("<{}.text()>", name_text(p)),
        ArcLabel::TextChild(p) => format!("<{}.text()>", name_text(p)),
        ArcLabel::Catchall => "*̄".into(),
    }
}

fn action_text(a: &Action) -> &'static str {
    match a {
        Action::FlushSelf => "queue.flush()",
        Action::UploadSelf(_) => "queue.upload()",
        Action::ClearSelf => "queue.clear()",
        Action::Emit { .. } => "emit",
        Action::ElementStart { .. } => "element.start",
        Action::ElementAppend => "element.append",
        Action::ElementEnd => "element.end",
    }
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::build_hpdt;
    use xsq_xpath::parse_query;

    #[test]
    fn dot_output_is_structurally_sound() {
        let hpdt = build_hpdt(&parse_query("//pub[year>2000]//book[author]//name/text()").unwrap())
            .unwrap();
        let dot = to_dot(&hpdt);
        assert!(dot.starts_with("digraph hpdt {"));
        assert!(dot.trim_end().ends_with('}'));
        // One cluster per BPDT (Fig. 11 has 8 boxes).
        assert_eq!(dot.matches("subgraph").count(), 8);
        // Every state is declared and referenced consistently.
        for i in 0..hpdt.states.len() {
            assert!(dot.contains(&format!("s{i} [label")), "state {i} missing");
        }
        assert!(dot.contains("queue.flush()"));
        assert!(dot.contains("queue.upload()"));
        assert!(dot.contains("queue.clear()"));
        // Closure machinery rendered.
        assert!(dot.contains("style=dashed"));
    }

    #[test]
    fn named_rendering_controls_graph_name_and_title() {
        let hpdt = build_hpdt(&parse_query("/a/b/text()").unwrap()).unwrap();
        let dot = to_dot_named(&hpdt, "pruned", "pruned HPDT");
        assert!(dot.starts_with("digraph pruned {"));
        assert!(dot.contains("label=\"pruned HPDT\""));
    }

    #[test]
    fn quotes_in_queries_are_escaped() {
        let hpdt = build_hpdt(&parse_query("/a[b=\"x\"]").unwrap()).unwrap();
        let dot = to_dot(&hpdt);
        assert!(dot.contains("\\\"x\\\""));
    }
}
