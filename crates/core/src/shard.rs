//! Sharded multi-document evaluation: N documents on N threads.
//!
//! The single-document engine is one-pass and CPU-bound, so a corpus of
//! documents scales out trivially *if* nothing in the stack is shared
//! mutably: the symbol table is process-wide and lock-free on the hot
//! path, compiled HPDTs are immutable behind `Arc`, and all runtime
//! state (runner configurations, buffers, parser scratch) lives per
//! worker. This module provides the driver on top of those guarantees:
//!
//! - [`run_sharded`] fans a corpus out over a fixed worker pool through
//!   a bounded channel (backpressure: at most `queue_depth` documents
//!   are in flight beyond the ones being parsed),
//! - each worker owns a private [`QueryIndex`] instantiated from the
//!   [`QuerySet`]'s compiled plan via
//!   [`QueryIndex::subscribe_compiled`] — re-verified registration of
//!   the shared, analyzer-checked HPDTs, no recompilation — plus one
//!   reusable [`StreamParser`] whose scratch buffers and symbol cache
//!   persist across the documents it processes,
//! - per-document result buffers are merged back in **global document
//!   order**: results stream out for document *i* as soon as every
//!   document `< i` has been emitted, and within a document they keep
//!   the arrival order the sequential engine produces,
//! - a parse error aborts gracefully: dispatch stops, in-flight
//!   documents drain, workers join, and the error reported is the one
//!   from the lowest-numbered failing document — exactly the error a
//!   sequential fail-fast run would hit first. Documents before it are
//!   still emitted.
//!
//! [`run_sequential`] is the same merge contract on one thread and the
//! reference the equivalence tests (and the `multi_bench` shard
//! ablation) hold the pool to: byte-identical output, any worker count.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex};

use xsq_xml::StreamParser;

use crate::engine::XsqEngine;
use crate::error::EngineError;
use crate::multi::QuerySet;
use crate::qindex::prefix::QueryGroup;
use crate::qindex::{QueryId, QueryIndex, QuerySink, VecQuerySink};
use crate::report::MemoryStats;
use crate::runtime::RunStats;

/// Tuning knobs for the worker pool.
#[derive(Debug, Clone, Default)]
pub struct ShardOptions {
    /// Worker threads. `0` (the default) means one per available CPU.
    pub workers: usize,
    /// Bounded feed-channel capacity. `0` (the default) means
    /// `2 × workers`, enough to keep every worker busy without reading
    /// the whole corpus ahead.
    pub queue_depth: usize,
}

impl ShardOptions {
    /// A pool of exactly `workers` threads.
    pub fn with_workers(workers: usize) -> Self {
        ShardOptions {
            workers,
            ..Self::default()
        }
    }

    fn resolve_workers(&self) -> usize {
        if self.workers > 0 {
            return self.workers;
        }
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    }

    fn resolve_depth(&self, workers: usize) -> usize {
        if self.queue_depth > 0 {
            self.queue_depth
        } else {
            2 * workers
        }
    }
}

/// Everything one document produced, in intra-document arrival order.
/// `QueryId`s are global: the query's index in the [`QuerySet`].
#[derive(Debug, Clone, PartialEq)]
pub struct DocOutput {
    pub results: Vec<(QueryId, String)>,
    /// Running aggregate updates (aggregation queries only).
    pub updates: Vec<(QueryId, f64)>,
    /// Events in this document alone (not cumulative across the run).
    pub events: u64,
    /// Buffer/config peaks while this document was live.
    pub memory: MemoryStats,
}

/// A completed corpus run: one [`DocOutput`] per input document, in
/// input order.
#[derive(Debug)]
pub struct ShardRun {
    pub per_doc: Vec<DocOutput>,
    /// Worker threads the pool actually used (1 for the sequential
    /// reference driver).
    pub workers: usize,
}

impl ShardRun {
    /// One query's results across the whole corpus, in global document
    /// order — the merged per-query view.
    pub fn of(&self, id: QueryId) -> Vec<&str> {
        self.per_doc
            .iter()
            .flat_map(|d| d.results.iter())
            .filter(|(i, _)| *i == id)
            .map(|(_, v)| v.as_str())
            .collect()
    }

    /// Total results across all documents and queries.
    pub fn result_count(&self) -> usize {
        self.per_doc.iter().map(|d| d.results.len()).sum()
    }
}

/// Why a corpus run stopped.
#[derive(Debug)]
pub enum ShardError {
    /// A document failed to parse (or its stream broke). `doc` is the
    /// lowest-numbered failing document — the same one a sequential
    /// fail-fast run would report.
    Document { doc: usize, error: EngineError },
}

impl std::fmt::Display for ShardError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShardError::Document { doc, error } => {
                write!(f, "document {doc}: {error}")
            }
        }
    }
}

impl std::error::Error for ShardError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ShardError::Document { error, .. } => Some(error),
        }
    }
}

/// Swallows results during post-error cleanup.
struct DiscardSink;

impl QuerySink for DiscardSink {
    fn result(&mut self, _id: QueryId, _value: &str) {}
}

/// One worker's evaluation state: a private index over the shared plan,
/// a reusable parser, and the local→global query-id remap.
struct Worker<'d> {
    index: QueryIndex,
    parser: Option<StreamParser<&'d [u8]>>,
    /// `remap[local_id] = global query index`. [`subscribe_compiled`]
    /// assigns dense local ids per group in tag order; the plan's
    /// `members` say which set-level query each tag answers.
    ///
    /// [`subscribe_compiled`]: QueryIndex::subscribe_compiled
    remap: Vec<u32>,
}

impl<'d> Worker<'d> {
    fn new(engine: XsqEngine, plan: &[QueryGroup]) -> Self {
        let mut index = QueryIndex::new(engine);
        let mut remap = Vec::new();
        for g in plan {
            // The plan's HPDTs passed verification when the set compiled;
            // re-verification here is cheap and cannot fail.
            let ids = index
                .subscribe_compiled(Arc::clone(&g.hpdt))
                .expect("plan HPDT verified at compile time");
            debug_assert_eq!(ids.len(), g.members.len());
            remap.extend(g.members.iter().map(|&m| m as u32));
        }
        Worker {
            index,
            parser: None,
            remap,
        }
    }

    /// Run one document through the private index. On error the runner
    /// state is reset so the worker stays usable for in-flight drains.
    fn run_doc(&mut self, doc: &'d [u8]) -> Result<DocOutput, EngineError> {
        let parser = match &mut self.parser {
            Some(p) => {
                p.reset_with(doc);
                p
            }
            None => self.parser.insert(StreamParser::new(doc)),
        };
        let events_before = self.index.events();
        let mut sink = VecQuerySink::new();
        let fed = (|| -> Result<(), EngineError> {
            while let Some(ev) = parser.next_raw()? {
                self.index.feed_raw(&ev, &mut sink);
            }
            Ok(())
        })();
        if let Err(e) = fed {
            // Reset mid-document runner state; drop anything it emits.
            self.index.finish(&mut DiscardSink);
            return Err(e);
        }
        let stats = self.index.finish(&mut sink);
        Ok(self.attribute(sink, stats, events_before))
    }

    /// Remap a document's locally-tagged sink contents to global ids.
    fn attribute(&self, sink: VecQuerySink, stats: RunStats, events_before: u64) -> DocOutput {
        let global = |id: QueryId| QueryId(self.remap[id.0 as usize]);
        DocOutput {
            results: sink
                .results
                .into_iter()
                .map(|(id, v)| (global(id), v))
                .collect(),
            updates: sink
                .updates
                .into_iter()
                .map(|(id, v)| (global(id), v))
                .collect(),
            events: self.index.events() - events_before,
            memory: stats.memory,
        }
    }
}

/// Evaluate the set over every document on one thread, emitting each
/// document's output in order — the reference driver the pool must match
/// byte for byte.
pub fn run_sequential_with(
    set: &QuerySet,
    docs: &[impl AsRef<[u8]>],
    mut emit: impl FnMut(usize, DocOutput),
) -> Result<usize, ShardError> {
    let mut worker = Worker::new(set.engine(), set.plan());
    for (di, doc) in docs.iter().enumerate() {
        match worker.run_doc(doc.as_ref()) {
            Ok(out) => emit(di, out),
            Err(error) => return Err(ShardError::Document { doc: di, error }),
        }
    }
    Ok(1)
}

/// [`run_sequential_with`], collected into a [`ShardRun`].
pub fn run_sequential(set: &QuerySet, docs: &[impl AsRef<[u8]>]) -> Result<ShardRun, ShardError> {
    let mut per_doc = Vec::with_capacity(docs.len());
    let workers = run_sequential_with(set, docs, |_, out| per_doc.push(out))?;
    Ok(ShardRun { per_doc, workers })
}

/// Fan `docs` out over a worker pool and stream merged output through
/// `emit(doc_index, output)`, called strictly in document order. Returns
/// the worker count used.
///
/// With one worker (or zero/one documents) this degrades to
/// [`run_sequential_with`] on the calling thread — no pool, identical
/// output.
pub fn run_sharded_with(
    set: &QuerySet,
    docs: &[impl AsRef<[u8]>],
    opts: &ShardOptions,
    mut emit: impl FnMut(usize, DocOutput),
) -> Result<usize, ShardError> {
    let workers = opts.resolve_workers().min(docs.len().max(1));
    if workers <= 1 || docs.len() <= 1 {
        return run_sequential_with(set, docs, emit);
    }
    let depth = opts.resolve_depth(workers);
    let engine = set.engine();
    let plan = set.plan();

    // Feed: bounded, so a huge corpus never piles up unparsed beyond the
    // backpressure window. Results: unbounded, because every entry is a
    // document that already left the feed window.
    let (feed_tx, feed_rx) = mpsc::sync_channel::<(usize, &[u8])>(depth);
    let feed_rx = Mutex::new(feed_rx);
    let (out_tx, out_rx) = mpsc::channel::<(usize, Result<DocOutput, EngineError>)>();
    // Raised on the first failure: the dispatcher stops feeding new
    // documents; already-dispatched ones still run to completion so the
    // emitted prefix stays deterministic.
    let abort = AtomicBool::new(false);

    std::thread::scope(|s| {
        for _ in 0..workers {
            let out_tx = out_tx.clone();
            let (feed_rx, abort) = (&feed_rx, &abort);
            s.spawn(move || {
                let mut worker = Worker::new(engine, plan);
                loop {
                    // Hold the lock only to receive, not to parse.
                    let msg = feed_rx.lock().expect("feed lock").recv();
                    let Ok((di, doc)) = msg else { break };
                    let result = worker.run_doc(doc);
                    if result.is_err() {
                        abort.store(true, Ordering::Relaxed);
                    }
                    if out_tx.send((di, result)).is_err() {
                        break;
                    }
                }
            });
        }
        drop(out_tx);

        // Dispatch in document order from this thread; the bounded send
        // blocks when the pool is saturated.
        let mut dispatched = 0usize;
        for (di, doc) in docs.iter().enumerate() {
            if abort.load(Ordering::Relaxed) {
                break;
            }
            if feed_tx.send((di, doc.as_ref())).is_err() {
                break;
            }
            dispatched = di + 1;
        }
        drop(feed_tx);

        // Ordered merge: buffer out-of-order completions, emit the
        // contiguous prefix. Every dispatched document produces exactly
        // one message, so draining the channel sees them all.
        let mut pending: BTreeMap<usize, DocOutput> = BTreeMap::new();
        let mut next = 0usize;
        let mut first_err: Option<(usize, EngineError)> = None;
        for (di, result) in out_rx {
            match result {
                Ok(out) => {
                    pending.insert(di, out);
                }
                Err(e) => match &first_err {
                    Some((d, _)) if *d <= di => {}
                    _ => first_err = Some((di, e)),
                },
            }
            let limit = first_err.as_ref().map_or(dispatched, |(d, _)| *d);
            while next < limit {
                match pending.remove(&next) {
                    Some(out) => {
                        emit(next, out);
                        next += 1;
                    }
                    None => break,
                }
            }
        }
        match first_err {
            Some((doc, error)) => Err(ShardError::Document { doc, error }),
            None => Ok(workers),
        }
    })
}

/// [`run_sharded_with`], collected into a [`ShardRun`]: the whole corpus
/// evaluated on a pool, per-document outputs in global document order.
pub fn run_sharded(
    set: &QuerySet,
    docs: &[impl AsRef<[u8]>],
    opts: &ShardOptions,
) -> Result<ShardRun, ShardError> {
    let mut per_doc = Vec::with_capacity(docs.len());
    let workers = run_sharded_with(set, docs, opts, |_, out| per_doc.push(out))?;
    Ok(ShardRun { per_doc, workers })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corpus(n: usize) -> Vec<Vec<u8>> {
        (0..n)
            .map(|i| {
                format!(
                    "<pub><book id=\"{i}\"><name>B{i}</name><author>A{}</author>\
                     <price>{}</price></book><year>{}</year></pub>",
                    i % 3,
                    5 + (i % 7),
                    1998 + (i % 6),
                )
                .into_bytes()
            })
            .collect()
    }

    fn set() -> QuerySet {
        QuerySet::compile(
            XsqEngine::full(),
            &[
                "/pub/book/name/text()",
                "/pub/book/@id",
                "//book[author]/price/text()",
                "/pub/book/price/sum()",
            ],
        )
        .unwrap()
    }

    #[test]
    fn sharded_matches_sequential_exactly() {
        let docs = corpus(40);
        let set = set();
        let seq = run_sequential(&set, &docs).unwrap();
        for workers in [2, 3, 4, 8] {
            let sharded = run_sharded(&set, &docs, &ShardOptions::with_workers(workers)).unwrap();
            assert_eq!(sharded.workers, workers);
            assert_eq!(
                seq.per_doc, sharded.per_doc,
                "divergence at {workers} workers"
            );
        }
    }

    #[test]
    fn merged_per_query_view_is_document_ordered() {
        let docs = corpus(12);
        let set = set();
        let run = run_sharded(&set, &docs, &ShardOptions::with_workers(4)).unwrap();
        let names = run.of(QueryId(0));
        let expected: Vec<String> = (0..12).map(|i| format!("B{i}")).collect();
        assert_eq!(names, expected);
    }

    #[test]
    fn streaming_emit_is_in_order_and_complete() {
        let docs = corpus(25);
        let set = set();
        let mut seen = Vec::new();
        run_sharded_with(&set, &docs, &ShardOptions::with_workers(4), |di, _| {
            seen.push(di)
        })
        .unwrap();
        let expected: Vec<usize> = (0..25).collect();
        assert_eq!(seen, expected);
    }

    #[test]
    fn parse_error_reports_lowest_failing_document() {
        let mut docs = corpus(20);
        docs[7] = b"<pub><book></pub>".to_vec(); // tag mismatch
        docs[13] = b"not xml".to_vec();
        let set = set();
        let mut emitted = Vec::new();
        let err = run_sharded_with(&set, &docs, &ShardOptions::with_workers(4), |di, _| {
            emitted.push(di)
        })
        .unwrap_err();
        let ShardError::Document { doc, .. } = err;
        assert_eq!(doc, 7);
        // The emitted prefix is exactly the documents before the failure.
        assert_eq!(emitted, (0..7).collect::<Vec<_>>());
        // And it matches what sequential fail-fast produces.
        let seq_err = run_sequential(&set, &docs).unwrap_err();
        let ShardError::Document { doc, .. } = seq_err;
        assert_eq!(doc, 7);
    }

    #[test]
    fn workers_survive_a_failed_document_in_flight() {
        // The erroring document resets its worker's runner state; other
        // in-flight documents must still produce correct output.
        let mut docs = corpus(6);
        docs[5] = b"<a><b>".to_vec();
        let set = set();
        let err = run_sharded(&set, &docs, &ShardOptions::with_workers(2)).unwrap_err();
        let ShardError::Document { doc, .. } = err;
        assert_eq!(doc, 5);
    }

    #[test]
    fn empty_corpus_and_tiny_pools() {
        let set = set();
        let docs: Vec<Vec<u8>> = Vec::new();
        let run = run_sharded(&set, &docs, &ShardOptions::default()).unwrap();
        assert!(run.per_doc.is_empty());
        let one = corpus(1);
        let run = run_sharded(&set, &one, &ShardOptions::with_workers(8)).unwrap();
        assert_eq!(run.workers, 1, "one document never needs a pool");
        assert_eq!(run.per_doc.len(), 1);
    }

    #[test]
    fn aggregates_finalize_per_document() {
        let docs = corpus(5);
        let set = set();
        let run = run_sharded(&set, &docs, &ShardOptions::with_workers(2)).unwrap();
        // One sum() result per document, not one for the whole corpus.
        assert_eq!(run.of(QueryId(3)).len(), 5);
        let seq = run_sequential(&set, &docs).unwrap();
        assert_eq!(seq.of(QueryId(3)), run.of(QueryId(3)));
    }
}
