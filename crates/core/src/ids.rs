//! BPDT identifiers and the positional encoding of predicate results
//! (§4.2).
//!
//! Each BPDT gets an id `(l, k)`: `l` is its layer (location step index;
//! the root BPDT is layer 0) and `k` its sequence number in the layer.
//! Children are assigned so that `bpdt(l−1, k)`'s *right* child (hanging
//! off its NA state) is `bpdt(l, 2k)` and its *left* child (off its TRUE
//! state) is `bpdt(l, 2k+1)`.
//!
//! Writing `k = (b1 b2 … bl)₂`, bit `bi` is 1 **iff the predicate of the
//! layer-(i−1) BPDT on the path is known true** whenever the run is inside
//! this BPDT. (`b1` corresponds to the root BPDT, whose "predicate" is
//! vacuously true, so `b1 = 1` always.) All buffer decisions — flush
//! directly vs. upload, and where to upload — are derived statically from
//! this id, which is the paper's central trick.

use std::fmt;

/// Identifier of a BPDT in the HPDT: layer and in-layer sequence number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BpdtId {
    pub layer: u16,
    pub seq: u64,
}

impl BpdtId {
    /// The root BPDT `(0, 0)`.
    pub const ROOT: BpdtId = BpdtId { layer: 0, seq: 0 };

    pub fn new(layer: u16, seq: u64) -> Self {
        BpdtId { layer, seq }
    }

    /// Right child `(l+1, 2k)` — attached to this BPDT's NA state.
    pub fn right_child(&self) -> BpdtId {
        BpdtId::new(self.layer + 1, self.seq << 1)
    }

    /// Left child `(l+1, 2k+1)` — attached to this BPDT's TRUE state.
    pub fn left_child(&self) -> BpdtId {
        BpdtId::new(self.layer + 1, (self.seq << 1) | 1)
    }

    /// Parent id (undefined for the root).
    pub fn parent(&self) -> Option<BpdtId> {
        if self.layer == 0 {
            None
        } else {
            Some(BpdtId::new(self.layer - 1, self.seq >> 1))
        }
    }

    /// Is this BPDT the left (TRUE-side) child of its parent?
    pub fn is_left_child(&self) -> bool {
        self.layer > 0 && (self.seq & 1) == 1
    }

    /// Are the predicates of *all* ancestor layers known true here?
    /// (`k = 2^l − 1`, all id bits set.)
    pub fn all_ancestors_true(&self) -> bool {
        self.seq == (1u64 << self.layer) - 1
    }

    /// The destination of `queue.upload()` issued from this BPDT: the
    /// nearest ancestor that has this BPDT in its **right** subtree —
    /// i.e. the deepest ancestor whose predicate is still undecided on
    /// this path (§4.3). `None` when every ancestor predicate is true, in
    /// which case the operation is a flush to output instead.
    pub fn upload_target(&self) -> Option<BpdtId> {
        // Bit i (0-indexed from the least-significant end) of `seq`
        // records whether the layer-(l−1−i) ancestor's predicate is true.
        // The nearest undecided ancestor is the lowest zero bit.
        for i in 0..self.layer {
            if (self.seq >> i) & 1 == 0 {
                let target_layer = self.layer - 1 - i;
                return Some(BpdtId::new(target_layer, self.seq >> (i + 1)));
            }
        }
        None
    }

    /// When the run is inside this BPDT, is the predicate of the ancestor
    /// at `layer` known true? (Reads the id bit; `layer` must be `<
    /// self.layer`.)
    pub fn ancestor_true(&self, layer: u16) -> bool {
        debug_assert!(layer < self.layer);
        let bit = self.layer - 1 - layer;
        (self.seq >> bit) & 1 == 1
    }
}

impl fmt::Display for BpdtId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bpdt({},{})", self.layer, self.seq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn children_follow_fig_11() {
        // Root (0,0) → left child (1,1); (1,1) → right (2,2), left (2,3);
        // (2,2) → right (3,4), left (3,5); (2,3) → right (3,6), left (3,7).
        let root = BpdtId::ROOT;
        let pub_ = root.left_child();
        assert_eq!(pub_, BpdtId::new(1, 1));
        assert_eq!(pub_.right_child(), BpdtId::new(2, 2));
        assert_eq!(pub_.left_child(), BpdtId::new(2, 3));
        assert_eq!(BpdtId::new(2, 2).right_child(), BpdtId::new(3, 4));
        assert_eq!(BpdtId::new(2, 2).left_child(), BpdtId::new(3, 5));
        assert_eq!(BpdtId::new(2, 3).right_child(), BpdtId::new(3, 6));
        assert_eq!(BpdtId::new(2, 3).left_child(), BpdtId::new(3, 7));
    }

    #[test]
    fn parent_inverts_children() {
        let id = BpdtId::new(3, 5);
        assert_eq!(id.parent(), Some(BpdtId::new(2, 2)));
        assert!(id.is_left_child());
        assert!(!BpdtId::new(3, 4).is_left_child());
        assert_eq!(BpdtId::ROOT.parent(), None);
    }

    #[test]
    fn all_ancestors_true_is_the_all_ones_id() {
        assert!(BpdtId::ROOT.all_ancestors_true());
        assert!(BpdtId::new(3, 7).all_ancestors_true());
        assert!(!BpdtId::new(3, 6).all_ancestors_true());
        assert!(!BpdtId::new(3, 4).all_ancestors_true());
    }

    #[test]
    fn upload_targets_match_the_papers_examples() {
        // bpdt(3,4) = (100)₂: book and pub undecided → upload to bpdt(2,2)
        // (Example 5: name text is uploaded to the book BPDT first).
        assert_eq!(BpdtId::new(3, 4).upload_target(), Some(BpdtId::new(2, 2)));
        // bpdt(3,5) = (101)₂: book true, pub undecided → upload straight to
        // bpdt(1,1), skipping bpdt(2,2) (Example 7).
        assert_eq!(BpdtId::new(3, 5).upload_target(), Some(BpdtId::new(1, 1)));
        // bpdt(3,6) = (110)₂: pub true, book undecided → bpdt(2,3).
        assert_eq!(BpdtId::new(3, 6).upload_target(), Some(BpdtId::new(2, 3)));
        // All-true BPDTs flush to output instead.
        assert_eq!(BpdtId::new(3, 7).upload_target(), None);
        assert_eq!(BpdtId::new(1, 1).upload_target(), None);
        // bpdt(2,2) = (10)₂: pub undecided → bpdt(1,1) (Example 5: the
        // author witness uploads the items to bpdt(1,1)).
        assert_eq!(BpdtId::new(2, 2).upload_target(), Some(BpdtId::new(1, 1)));
    }

    #[test]
    fn ancestor_bits_read_correctly() {
        // bpdt(3,4) = (100)₂: root true, pub unknown, book unknown.
        let id = BpdtId::new(3, 4);
        assert!(id.ancestor_true(0));
        assert!(!id.ancestor_true(1));
        assert!(!id.ancestor_true(2));
        // bpdt(3,5) = (101)₂: root true, pub unknown, book true.
        let id = BpdtId::new(3, 5);
        assert!(id.ancestor_true(0));
        assert!(!id.ancestor_true(1));
        assert!(id.ancestor_true(2));
    }

    #[test]
    fn display_form() {
        assert_eq!(BpdtId::new(2, 3).to_string(), "bpdt(2,3)");
    }
}
