//! A per-runner bump arena for match-path byte storage.
//!
//! The no-match hot path has been allocation-free since the zero-copy
//! refactor; the *match* path still paid the allocator for every result
//! value (`String` per item). Following the buffer-minimization
//! discipline of Koch et al.'s FluX — memory traffic, not automaton
//! transitions, is the dominant cost on streams — the item store now
//! copies value bytes into one contiguous bump arena owned by the
//! runner. Allocation is a pointer bump; freeing is wholesale: the arena
//! resets when the store is provably quiescent (see
//! [`crate::items::ItemStore::try_recycle`]) and unconditionally between
//! documents, so a matching steady state touches the allocator exactly
//! zero times once the arena has grown to the working-set high-water
//! mark.
//!
//! Values are addressed as `(offset, len)` spans. A span that ends at
//! the current top of the arena can be extended in place
//! ([`ByteArena::try_extend`]) — the common case for element items
//! serialized by consecutive events — so single-item serialization stays
//! one contiguous span with no per-event segment churn.

/// A span handle into the arena: byte offset plus length.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    pub off: u32,
    pub len: u32,
}

impl Span {
    pub const EMPTY: Span = Span { off: 0, len: 0 };
}

/// Bump allocator over one growable byte buffer. `reset` keeps the
/// capacity, which is what makes the steady state allocation-free.
#[derive(Debug, Default)]
pub struct ByteArena {
    buf: Vec<u8>,
    /// High-water mark across resets (diagnostics).
    peak: usize,
}

impl ByteArena {
    pub fn new() -> Self {
        Self::default()
    }

    /// Copy `bytes` in, returning the span that now holds them.
    pub fn alloc(&mut self, bytes: &[u8]) -> Span {
        let off = self.buf.len() as u32;
        self.buf.extend_from_slice(bytes);
        self.peak = self.peak.max(self.buf.len());
        Span {
            off,
            len: bytes.len() as u32,
        }
    }

    /// Extend `span` in place with `bytes` if it ends at the top of the
    /// arena; returns `false` (arena untouched) when it does not, in
    /// which case the caller starts a fresh span.
    pub fn try_extend(&mut self, span: &mut Span, bytes: &[u8]) -> bool {
        if (span.off + span.len) as usize != self.buf.len() {
            return false;
        }
        self.buf.extend_from_slice(bytes);
        self.peak = self.peak.max(self.buf.len());
        span.len += bytes.len() as u32;
        true
    }

    /// The bytes of a span.
    pub fn get(&self, span: Span) -> &[u8] {
        &self.buf[span.off as usize..(span.off + span.len) as usize]
    }

    /// The bytes of a span as UTF-8 (spans are only ever built from
    /// whole `&str`s, so boundaries are always valid).
    pub fn get_str(&self, span: Span) -> &str {
        std::str::from_utf8(self.get(span)).expect("arena spans are whole strings")
    }

    /// Bytes currently bump-allocated.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// High-water mark of [`Self::len`] across resets.
    pub fn peak(&self) -> usize {
        self.peak
    }

    /// Drop every span, keeping the allocation.
    pub fn reset(&mut self) {
        self.buf.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_and_read_back() {
        let mut a = ByteArena::new();
        let x = a.alloc(b"hello");
        let y = a.alloc(b" world");
        assert_eq!(a.get_str(x), "hello");
        assert_eq!(a.get_str(y), " world");
        assert_eq!(a.len(), 11);
    }

    #[test]
    fn extend_only_at_top() {
        let mut a = ByteArena::new();
        let mut x = a.alloc(b"ab");
        assert!(a.try_extend(&mut x, b"cd"));
        assert_eq!(a.get_str(x), "abcd");
        let _y = a.alloc(b"zz");
        // x no longer ends at the top: extension must refuse.
        assert!(!a.try_extend(&mut x, b"ef"));
        assert_eq!(a.get_str(x), "abcd");
    }

    #[test]
    fn reset_keeps_capacity_and_peak() {
        let mut a = ByteArena::new();
        a.alloc(&[0u8; 1000]);
        let cap_before = a.buf.capacity();
        a.reset();
        assert_eq!(a.len(), 0);
        assert_eq!(a.peak(), 1000);
        assert!(a.buf.capacity() >= cap_before);
        // Re-filling to the same size must not grow the buffer.
        a.alloc(&[1u8; 1000]);
        assert_eq!(a.buf.capacity(), cap_before);
    }

    #[test]
    fn empty_span_roundtrip() {
        let mut a = ByteArena::new();
        let e = a.alloc(b"");
        assert_eq!(a.get_str(e), "");
        assert_eq!(a.get_str(Span::EMPTY), "");
    }
}
