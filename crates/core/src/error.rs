//! Errors for query compilation and engine runs.

use std::fmt;

/// Errors raised when compiling a query to an HPDT.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompileError {
    /// The query text failed to parse.
    Parse(String),
    /// A feature is not supported by the selected engine mode — e.g. a
    /// closure axis handed to XSQ-NC.
    Unsupported { feature: String, engine: String },
    /// The compiled transducer failed static verification (`analyze::verify`)
    /// — a builder invariant is broken and running it could panic or
    /// misbehave. Carries the first error-severity diagnostic.
    Malformed { diagnostic: String },
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::Parse(m) => write!(f, "query parse error: {m}"),
            CompileError::Unsupported { feature, engine } => {
                write!(f, "{engine} does not support {feature}")
            }
            CompileError::Malformed { diagnostic } => {
                write!(f, "malformed HPDT: {diagnostic}")
            }
        }
    }
}

impl std::error::Error for CompileError {}

impl From<xsq_xpath::ParseError> for CompileError {
    fn from(e: xsq_xpath::ParseError) -> Self {
        CompileError::Parse(e.to_string())
    }
}

/// Errors raised while running a compiled query over a stream.
#[derive(Debug)]
pub enum EngineError {
    /// Compilation failed.
    Compile(CompileError),
    /// The XML stream was malformed.
    Xml(xsq_xml::Error),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Compile(e) => write!(f, "{e}"),
            EngineError::Xml(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::Compile(e) => Some(e),
            EngineError::Xml(e) => Some(e),
        }
    }
}

impl From<CompileError> for EngineError {
    fn from(e: CompileError) -> Self {
        EngineError::Compile(e)
    }
}

impl From<xsq_xml::Error> for EngineError {
    fn from(e: xsq_xml::Error) -> Self {
        EngineError::Xml(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        let c = CompileError::Unsupported {
            feature: "closure axis //".into(),
            engine: "XSQ-NC".into(),
        };
        assert!(c.to_string().contains("XSQ-NC"));
        let e: EngineError = c.into();
        assert!(e.to_string().contains("closure"));
    }

    #[test]
    fn parse_error_converts() {
        let pe = xsq_xpath::parse_query("/a[").unwrap_err();
        let ce: CompileError = pe.into();
        assert!(matches!(ce, CompileError::Parse(_)));
    }
}
