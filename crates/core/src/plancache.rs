//! Cross-connection compiled-plan cache.
//!
//! Standing-query serving is templated in practice: thousands of
//! subscribers ask for the *same* batch of queries (a stock ticker, a
//! feed filter), and the server used to recompile the whole batch —
//! parse, HPDT build, merge, verify, prune, bound analysis — once per
//! connection. [`PlanCache`] compiles a batch **once per distinct
//! (engine mode, batch text)** and hands out a shared
//! [`CachedPlan`]: the prefix-sharing group plan (each group an
//! `Arc<Hpdt>`) plus the per-query static memory bounds. Subscribing a
//! cached plan into a [`QueryIndex`] is pure runtime-state
//! instantiation — no compilation at all — via
//! [`QueryIndex::subscribe_plan`].
//!
//! Entries are reference-counted by checkout: every [`PlanCache::checkout`]
//! must be paired with a [`PlanCache::release`] (the server does this on
//! the batch's last unsubscribe, or when the owning session drops), and
//! the entry is evicted when the last reference goes away, so a burst of
//! one-off queries cannot grow the cache without bound.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use xsq_xml::dtd::Dtd;
use xsq_xpath::Query;

use crate::analyze::MemoryBound;
use crate::engine::{XsqEngine, XsqMode};
use crate::error::CompileError;
use crate::qindex::prefix::{plan_groups, QueryGroup};

/// One compiled batch: the original texts in input order, the
/// prefix-sharing group plan, and each query's static memory bound
/// (derived against the cache's DTD, if any). Immutable and shared —
/// every subscriber of the same batch holds the same `Arc`.
#[derive(Debug)]
pub struct CachedPlan {
    key: String,
    mode: XsqMode,
    texts: Vec<String>,
    groups: Vec<QueryGroup>,
    bounds: Vec<MemoryBound>,
}

impl CachedPlan {
    /// The cache key this plan is filed under (pass to
    /// [`PlanCache::release`]).
    pub fn key(&self) -> &str {
        &self.key
    }

    /// The engine mode the batch compiled under.
    pub fn mode(&self) -> XsqMode {
        self.mode
    }

    /// Number of queries in the batch.
    pub fn len(&self) -> usize {
        self.texts.len()
    }

    pub fn is_empty(&self) -> bool {
        self.texts.is_empty()
    }

    /// Query texts in input order.
    pub fn texts(&self) -> &[String] {
        &self.texts
    }

    /// The compiled prefix-sharing groups (members index into
    /// [`CachedPlan::texts`]).
    pub fn groups(&self) -> &[QueryGroup] {
        &self.groups
    }

    /// Per-query static memory bounds, in input order.
    pub fn bounds(&self) -> &[MemoryBound] {
        &self.bounds
    }
}

struct Slot {
    plan: Arc<CachedPlan>,
    refs: usize,
}

#[derive(Default)]
struct Inner {
    entries: HashMap<String, Slot>,
    hits: u64,
    misses: u64,
}

/// Cache observability counters (surfaced through STAT).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlanCacheStats {
    /// Live entries (batches with at least one subscriber).
    pub entries: usize,
    /// Checkouts served from an existing entry.
    pub hits: u64,
    /// Checkouts that had to compile.
    pub misses: u64,
}

/// A keyed, reference-counted compiled-plan cache, shared across every
/// connection of one server (threaded and event-loop models alike).
pub struct PlanCache {
    /// Bounds are schema-dependent; the cache is built with the same
    /// DTD the server's admission policy uses, so cached bounds are
    /// exactly what the uncached path would have computed.
    dtd: Option<Arc<Dtd>>,
    inner: Mutex<Inner>,
}

impl PlanCache {
    pub fn new(dtd: Option<Arc<Dtd>>) -> Arc<PlanCache> {
        Arc::new(PlanCache {
            dtd,
            inner: Mutex::new(Inner::default()),
        })
    }

    fn cache_key(mode: XsqMode, queries: &[&str]) -> String {
        let mut key = String::from(match mode {
            XsqMode::Full => "f",
            XsqMode::NoClosure => "nc",
        });
        for q in queries {
            key.push('\n');
            key.push_str(q);
        }
        key
    }

    /// Fetch (or compile) the plan for a batch, taking one reference.
    /// Errors are attributed to the offending query index, mirroring
    /// [`crate::multi::QuerySet::compile`]; a failed checkout takes no
    /// reference and caches nothing.
    pub fn checkout(
        &self,
        engine: XsqEngine,
        queries: &[&str],
    ) -> Result<Arc<CachedPlan>, (usize, CompileError)> {
        let key = Self::cache_key(engine.mode(), queries);
        {
            let mut inner = self.inner.lock().unwrap();
            if let Some(slot) = inner.entries.get_mut(&key) {
                slot.refs += 1;
                let plan = Arc::clone(&slot.plan);
                inner.hits += 1;
                return Ok(plan);
            }
        }
        // Compile outside the lock: a slow build must not stall every
        // other connection's checkout. Two racing misses both compile;
        // the loser's work is discarded below.
        let plan = Arc::new(self.build(engine, queries, key)?);
        let mut inner = self.inner.lock().unwrap();
        inner.misses += 1;
        let slot = inner
            .entries
            .entry(plan.key.clone())
            .or_insert_with(|| Slot {
                plan: Arc::clone(&plan),
                refs: 0,
            });
        slot.refs += 1;
        Ok(Arc::clone(&slot.plan))
    }

    /// Drop one reference to a batch; the entry is evicted when the
    /// last reference goes away. Unknown keys are ignored (the entry
    /// may already be gone if release races a session teardown).
    pub fn release(&self, key: &str) {
        let mut inner = self.inner.lock().unwrap();
        if let Some(slot) = inner.entries.get_mut(key) {
            slot.refs = slot.refs.saturating_sub(1);
            if slot.refs == 0 {
                inner.entries.remove(key);
            }
        }
    }

    pub fn stats(&self) -> PlanCacheStats {
        let inner = self.inner.lock().unwrap();
        PlanCacheStats {
            entries: inner.entries.len(),
            hits: inner.hits,
            misses: inner.misses,
        }
    }

    fn build(
        &self,
        engine: XsqEngine,
        queries: &[&str],
        key: String,
    ) -> Result<CachedPlan, (usize, CompileError)> {
        let mut parsed: Vec<Query> = Vec::with_capacity(queries.len());
        for (i, q) in queries.iter().enumerate() {
            let query = xsq_xpath::parse_query(q).map_err(|e| (i, e.into()))?;
            if engine.mode() == XsqMode::NoClosure && query.has_closure() {
                return Err((
                    i,
                    CompileError::Unsupported {
                        feature: "the closure axis //".into(),
                        engine: "XSQ-NC".into(),
                    },
                ));
            }
            parsed.push(query);
        }
        let groups = plan_groups(&parsed).map_err(|e| (0, e))?;
        let dtd = self.dtd.as_deref();
        let bounds = queries
            .iter()
            .map(|q| match engine.compile_str_with_dtd(q, dtd) {
                Ok(c) => c.bound().clone(),
                Err(e) => MemoryBound::Unbounded {
                    reason: format!("bound analysis failed: {e}"),
                    span: xsq_xpath::Span::new(0, 0),
                },
            })
            .collect();
        Ok(CachedPlan {
            key,
            mode: engine.mode(),
            texts: queries.iter().map(|q| q.to_string()).collect(),
            groups,
            bounds,
        })
    }
}

impl std::fmt::Debug for PlanCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let stats = self.stats();
        f.debug_struct("PlanCache")
            .field("entries", &stats.entries)
            .field("hits", &stats.hits)
            .field("misses", &stats.misses)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::qindex::{QueryIndex, VecQuerySink};

    const DOC: &[u8] = b"<pub><book id=\"1\"><name>First</name><author>A</author>\
                         <price>10</price></book><year>2002</year></pub>";

    #[test]
    fn identical_batches_share_one_compiled_plan() {
        let cache = PlanCache::new(None);
        let batch = ["/pub/book/name/text()", "/pub/year/text()"];
        let a = cache.checkout(XsqEngine::full(), &batch).unwrap();
        let b = cache.checkout(XsqEngine::full(), &batch).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "second checkout must hit");
        assert!(Arc::ptr_eq(&a.groups()[0].hpdt, &b.groups()[0].hpdt));
        let stats = cache.stats();
        assert_eq!((stats.entries, stats.hits, stats.misses), (1, 1, 1));
    }

    #[test]
    fn subscribe_plan_matches_subscribe_group_results() {
        let cache = PlanCache::new(None);
        let batch = [
            "/pub/book/name/text()",
            "/pub/book/@id",
            "/pub/year/text()",
            "//price/sum()",
        ];
        let plan = cache.checkout(XsqEngine::full(), &batch).unwrap();

        let mut cached = QueryIndex::new(XsqEngine::full());
        let cached_ids = cached.subscribe_plan(&plan);
        let mut direct = QueryIndex::new(XsqEngine::full());
        let direct_ids = direct.subscribe_group(&batch).unwrap();
        assert_eq!(cached_ids, direct_ids);
        assert_eq!(cached.group_count(), direct.group_count());

        let mut got = VecQuerySink::new();
        cached.run_document(DOC, &mut got).unwrap();
        let mut want = VecQuerySink::new();
        direct.run_document(DOC, &mut want).unwrap();
        assert_eq!(got.results, want.results);
        assert_eq!(got.updates, want.updates);
    }

    #[test]
    fn release_evicts_on_last_reference() {
        let cache = PlanCache::new(None);
        let batch = ["/a/b/text()"];
        let a = cache.checkout(XsqEngine::full(), &batch).unwrap();
        let b = cache.checkout(XsqEngine::full(), &batch).unwrap();
        let key = a.key().to_string();
        cache.release(&key);
        assert_eq!(cache.stats().entries, 1, "one reference still live");
        cache.release(&key);
        assert_eq!(cache.stats().entries, 0, "last release evicts");
        // Re-checkout after eviction recompiles into a fresh entry.
        let c = cache.checkout(XsqEngine::full(), &batch).unwrap();
        assert!(!Arc::ptr_eq(&b, &c));
        assert_eq!(cache.stats().misses, 2);
        cache.release(c.key());
    }

    #[test]
    fn distinct_modes_get_distinct_entries() {
        let cache = PlanCache::new(None);
        let batch = ["/a/b/text()"];
        let f = cache.checkout(XsqEngine::full(), &batch).unwrap();
        let nc = cache.checkout(XsqEngine::no_closure(), &batch).unwrap();
        assert!(!Arc::ptr_eq(&f, &nc));
        assert_eq!(cache.stats().entries, 2);
    }

    #[test]
    fn errors_attribute_the_offending_query_and_cache_nothing() {
        let cache = PlanCache::new(None);
        let (i, _) = cache
            .checkout(XsqEngine::full(), &["/a/b/text()", "/a["])
            .unwrap_err();
        assert_eq!(i, 1);
        let (i, e) = cache
            .checkout(XsqEngine::no_closure(), &["/a/text()", "//b/text()"])
            .unwrap_err();
        assert_eq!(i, 1);
        assert!(matches!(e, CompileError::Unsupported { .. }));
        assert_eq!(cache.stats().entries, 0);
    }

    #[test]
    fn cached_bounds_match_the_uncached_analysis() {
        let dtd = Arc::new(
            Dtd::parse(
                "<!ELEMENT dblp ((article | inproceedings)*)>\
                 <!ELEMENT article (author*, title, year, pages)>\
                 <!ELEMENT inproceedings (author*, title, year, pages, booktitle?)>\
                 <!ELEMENT author (#PCDATA)> <!ELEMENT title (#PCDATA)>\
                 <!ELEMENT year (#PCDATA)> <!ELEMENT pages (#PCDATA)>\
                 <!ELEMENT booktitle (#PCDATA)>",
            )
            .unwrap(),
        );
        let cache = PlanCache::new(Some(Arc::clone(&dtd)));
        let batch = [
            "/a/b/text()",
            "/dblp/inproceedings[author]/title/text()",
            "/dblp/inproceedings[booktitle]/author/text()",
        ];
        let plan = cache.checkout(XsqEngine::full(), &batch).unwrap();
        let direct: Vec<MemoryBound> = batch
            .iter()
            .map(|q| {
                XsqEngine::full()
                    .compile_str_with_dtd(q, Some(&dtd))
                    .unwrap()
                    .bound()
                    .clone()
            })
            .collect();
        assert_eq!(plan.bounds(), &direct[..]);
    }
}
