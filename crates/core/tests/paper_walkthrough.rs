//! Example 5, §4.1: the paper walks Fig. 11's HPDT over Figure 1's
//! stream and narrates each buffer operation. This test replays the
//! walkthrough with the execution tracer and asserts the operations fire
//! at the narrated events.
//!
//! One fused hop relative to the paper: values produced under an
//! undecided ancestor are enqueued directly into the nearest undecided
//! ancestor's queue (the paper enqueues locally and uploads at the end
//! tag — Fig. 11's bpdt(3,4)); both routes are equivalent by the upload
//! definition of §4.3, and the observable operations from bpdt(2,2)
//! upward are identical.

use xsq_core::trace::TraceStep;
use xsq_core::{VecSink, XsqEngine};

const FIG1: &str = r#"<root><pub>
    <book id="1"><price>12.00</price><name>First</name><author>A</author>
      <price type="discount">10.00</price></book>
    <book id="2"><price>14.00</price><name>Second</name><author>A</author>
      <author>B</author><price type="discount">12.00</price></book>
    <year>2002</year>
</pub></root>"#;

#[test]
fn example_5_walkthrough_operations_fire_at_the_narrated_events() {
    // Fig. 11's query. Figure 1's document has a literal <root> element,
    // so the closure axes address it as in the paper.
    let query = "//pub[year>2000]//book[author]//name/text()";
    let compiled = XsqEngine::full().compile_str(query).unwrap();
    let mut steps: Vec<TraceStep> = Vec::new();
    let mut tracer = |s: TraceStep| steps.push(s);
    let mut runner = compiled.runner();
    runner.set_tracer(&mut tracer);
    let mut sink = VecSink::new();
    let events = xsq_xml::parse_to_events(FIG1.as_bytes()).unwrap();

    // Record when each result value is emitted (which input event).
    let mut emissions: Vec<(usize, String)> = Vec::new();
    for (i, ev) in events.iter().enumerate() {
        let before = sink.results.len();
        runner.feed(ev, &mut sink);
        for v in &sink.results[before..] {
            emissions.push((i, v.clone()));
        }
    }
    runner.finish(&mut sink);
    assert_eq!(sink.results, ["First", "Second"]);

    let find_step = |pred: &dyn Fn(&TraceStep) -> bool| -> &TraceStep {
        steps.iter().find(|s| pred(s)).expect("step present")
    };

    // "When it encounters the name 'First' … it enqueues the text content
    //  into the buffer" — the text event of the first name emits a value.
    let first_text = find_step(&|s| s.event.contains("(name,text()"));
    assert!(
        first_text
            .fired
            .iter()
            .any(|f| f.actions.iter().any(|a| a == "emit")),
        "value produced at the name text event: {first_text}"
    );
    assert!(first_text.buffered_after > 0, "…and it is buffered");

    // "The next event is the begin event of the author element, thus the
    //  HPDT … uploads the item to the buffer of bpdt(1,1)." Example 5
    // narrates the upload at <author>; Fig. 8's template (and Example 7's
    // correctness argument) place the resolution on </author> so that
    // same-event uploads from inside the witness child arrive first —
    // this implementation follows the figure.
    let author_end = find_step(&|s| s.event.starts_with("(/author"));
    assert!(
        author_end.fired.iter().any(|f| f.owner.contains("bpdt(2,")
            && f.actions
                .iter()
                .any(|a| a.contains("upload") && a.contains("bpdt(1,1)"))),
        "the author witness uploads book-level buffers to bpdt(1,1): {author_end}"
    );

    // "When the HPDT encounters the text event of the year element, it
    //  evaluates [year.text()>2000] … and flushes the content of its
    //  buffer to the output."
    let year_text = find_step(&|s| s.event.contains("(year,text()"));
    assert!(
        year_text
            .fired
            .iter()
            .any(|f| f.owner == "bpdt(1,1)" && f.actions.iter().any(|a| a.contains("flush"))),
        "the year witness flushes bpdt(1,1): {year_text}"
    );

    // Both names were buffered until exactly that event — document order,
    // released together by the flush.
    let year_index = steps
        .iter()
        .position(|s| s.event.contains("(year,text()"))
        .unwrap();
    assert_eq!(
        emissions
            .iter()
            .map(|(i, v)| (*i, v.as_str()))
            .collect::<Vec<_>>(),
        vec![(year_index, "First"), (year_index, "Second")],
        "results must stream out at the year text event, in document order"
    );

    // After the document closes, no buffered state remains.
    assert_eq!(steps.last().unwrap().buffered_after, 0);
    assert_eq!(steps.last().unwrap().configs_after, 1);
}

#[test]
fn failed_predicate_path_clears_at_the_end_tag() {
    // Flip the year so the predicate fails: the clear must fire at the
    // </pub> end event and nothing is emitted.
    let doc = FIG1.replace("2002", "1999");
    let compiled = XsqEngine::full()
        .compile_str("//pub[year>2000]//book[author]//name/text()")
        .unwrap();
    let mut steps: Vec<TraceStep> = Vec::new();
    let mut tracer = |s: TraceStep| steps.push(s);
    let mut runner = compiled.runner();
    runner.set_tracer(&mut tracer);
    let mut sink = VecSink::new();
    for ev in xsq_xml::parse_to_events(doc.as_bytes()).unwrap() {
        runner.feed(&ev, &mut sink);
    }
    runner.finish(&mut sink);
    assert!(sink.results.is_empty());
    let pub_end = steps.iter().find(|s| s.event.starts_with("(/pub")).unwrap();
    assert!(
        pub_end
            .fired
            .iter()
            .any(|f| f.actions.iter().any(|a| a.contains("clear"))),
        "the failed predicate clears at </pub>: {pub_end}"
    );
    assert_eq!(pub_end.buffered_after, 0);
}
